//! The event-driven kernel core, end to end.
//!
//! Three demonstrations of the jump-to-next-event refactor. First, a
//! kernel whose every thread is asleep crosses a long idle gap in zero
//! scheduling decisions — the clock jumps straight to the earliest
//! pending wake instead of ticking quantum by quantum. Second, the
//! event-driven core is reproducible: two runs from the same seed emit
//! bit-identical probe-bus streams on a mixed compute/IO workload. (The
//! legacy quantum-stepping mode is retired from the public API; the
//! two-mode equivalence proof lives on as an in-crate property test next
//! to the test-only variant.) Third, a shared loop composes
//! four heterogeneous [`EventSource`]s — the CPU kernel, the disk
//! scheduler, the cell switch, and the cluster market's reconciliation
//! timer — and services whichever is due earliest, interleaving all
//! four on one clock in nondecreasing time order.

use lottery_cluster::{BudgetPolicy, ClusterMarket};
use lottery_core::rng::ParkMiller;
use lottery_io::disk::{DiskPolicy, DiskScheduler};
use lottery_net::switch::Switch;
use lottery_sim::event::EventSource;
use lottery_sim::prelude::*;
use lottery_sim::replay::canonical_stream;

/// A kernel with a handful of threads, mixed compute and I/O, for the
/// reproducibility section.
fn mixed_kernel(seed: u32) -> (Kernel<LotteryPolicy>, Shared<FlightRecorder>) {
    let policy = LotteryPolicy::with_quantum(seed, SimDuration::from_ms(1));
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let bus = ProbeBus::enabled();
    let flight = Shared::new(FlightRecorder::new(1 << 16));
    bus.attach(flight.clone());
    kernel.set_probe_bus(bus);
    for (i, tickets) in [400u64, 200, 100].iter().enumerate() {
        kernel.spawn(
            format!("io-{i}"),
            Box::new(IoBound::new(
                SimDuration::from_us(700 + 300 * i as u64),
                SimDuration::from_us(2_000 + 500 * i as u64),
            )),
            FundingSpec::new(base, *tickets),
        );
    }
    kernel.spawn(
        "job",
        Box::new(FiniteJob::new(SimDuration::from_ms(30))),
        FundingSpec::new(base, 150),
    );
    kernel.policy_mut().set_structure(SelectStructure::Tree);
    (kernel, flight)
}

/// Entry point: decision-free idle jumps, mode equivalence, and the
/// shared heterogeneous event loop.
pub fn run(seed: u32) {
    // --- 1. Sleeping threads cost zero decisions. -------------------
    let policy = LotteryPolicy::with_quantum(seed, SimDuration::from_ms(1));
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    for i in 0..4u64 {
        kernel.spawn_sleeping(
            format!("sleeper-{i}"),
            Box::new(FiniteJob::new(SimDuration::from_ms(2))),
            FundingSpec::new(base, 100),
            SimTime::from_ms(500 + 20 * i),
        );
    }
    kernel.run_until(SimTime::from_ms(400));
    let horizon = kernel
        .next_event_at()
        .map(|at| at.since(kernel.now()))
        .unwrap_or(SimDuration::ZERO);
    println!(
        "idle window: now={} us, decisions={}, pending wakes={}, next wake in {} us",
        kernel.now().as_us(),
        kernel.metrics().decisions,
        kernel.pending_events(),
        horizon.as_us(),
    );
    if kernel.metrics().decisions == 0 && kernel.pending_events() == 4 {
        println!("OK 400 ms idle gap crossed decision-free: 4 sleepers pending, 0 decisions");
    } else {
        println!("FAIL idle gap should cost zero decisions");
    }
    kernel.run_until(SimTime::from_ms(700));
    let decisions = kernel.metrics().decisions;
    if kernel.live_threads() == 0 && decisions >= 8 && kernel.pending_events() == 0 {
        println!("OK all 4 wakes delivered and jobs ran to exit: {decisions} decisions total");
    } else {
        println!(
            "FAIL expected 4 completed jobs, got {} live threads after {decisions} decisions",
            kernel.live_threads()
        );
    }

    // --- 2. The event-driven stream is reproducible. ----------------
    let mut streams = Vec::new();
    for run in 0..2 {
        let (mut kernel, flight) = mixed_kernel(seed);
        kernel.run_until(SimTime::from_ms(200));
        let events: Vec<_> = flight.with(|f| f.events().cloned().collect());
        println!(
            "run {}: {} probe events, {} decisions, idle {} us",
            run + 1,
            events.len(),
            kernel.metrics().decisions,
            kernel.metrics().idle.as_us(),
        );
        streams.push(events);
    }
    let (first, second) = (&streams[0], &streams[1]);
    match first_divergence(&canonical_stream(first), &canonical_stream(second)) {
        None => println!(
            "OK event-driven stream reproducible bit-for-bit over 200 ms ({} events)",
            first.len()
        ),
        Some(d) => println!("FAIL repeat runs diverged at index {}", d.index),
    }

    // --- 3. One loop over four heterogeneous sources. ---------------
    let mut rng = ParkMiller::new(seed.wrapping_mul(7).max(1));
    let policy = LotteryPolicy::with_quantum(seed, SimDuration::from_ms(1));
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    kernel.spawn(
        "cpu-job",
        Box::new(FiniteJob::new(SimDuration::from_ms(12))),
        FundingSpec::new(base, 300),
    );
    kernel.spawn_sleeping(
        "late-job",
        Box::new(FiniteJob::new(SimDuration::from_ms(4))),
        FundingSpec::new(base, 100),
        SimTime::from_ms(30),
    );

    let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
    let a = disk.register("db", 300);
    let b = disk.register("scan", 100);
    for i in 0..24u64 {
        disk.submit(a, i * 64, 8);
        disk.submit(b, 10_000 + i * 512, 8);
    }

    let mut switch = Switch::new();
    let gold = switch.open_circuit("gold", 300);
    let bronze = switch.open_circuit("bronze", 100);
    for i in 0..40u64 {
        switch.enqueue(gold, i);
        switch.enqueue(bronze, i);
    }

    let mut market = ClusterMarket::new(
        2,
        seed,
        BudgetPolicy::DemandFollowing,
        &[("gold", 600), ("silver", 300)],
    )
    .expect("fresh market");
    market.set_round_period_us(10_000);

    let horizon = SimTime::from_ms(50);
    let mut serviced = [0u64; 4];
    let mut last_due = SimTime::ZERO;
    let mut ordered = true;
    loop {
        let due = [
            kernel.next_due(),
            disk.next_due(),
            switch.next_due(),
            market.next_due(),
        ];
        let Some((which, at)) = due
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|t| (i, t)))
            .min_by_key(|&(i, t)| (t, i))
        else {
            break;
        };
        if at >= horizon {
            break;
        }
        ordered &= at >= last_due;
        last_due = at;
        match which {
            0 => kernel.run_until(kernel.now() + SimDuration::from_ms(1)),
            1 => {
                disk.service_next(&mut rng).expect("pending disk request");
            }
            2 => {
                switch.forward(&mut rng).expect("pending cell");
            }
            _ => market.round(50).expect("reconciliation round"),
        }
        serviced[which] += 1;
    }
    println!(
        "shared loop to {} ms: kernel windows={}, disk requests={}, cells={}, market rounds={}",
        horizon.as_us() / 1_000,
        serviced[0],
        serviced[1],
        serviced[2],
        serviced[3],
    );
    let drained = disk.pending_requests() == 0 && switch.pending_cells() == 0;
    let cpu_done = kernel.live_threads() == 0;
    if ordered && drained && cpu_done && serviced[3] == 4 {
        println!(
            "OK four event sources interleaved on one clock in nondecreasing due order; \
             disk and switch drained, both jobs exited, 4 reconciliation rounds"
        );
    } else {
        println!(
            "FAIL shared loop: ordered={ordered} drained={drained} cpu_done={cpu_done} \
             rounds={}",
            serviced[3]
        );
    }
}
