//! Figures 1–3: the basic lottery walk and currency-graph valuation.

use lottery_core::prelude::*;
use lottery_stats::table::Table;

/// Figure 1: five clients with 10/2/5/1/2 tickets; the winning value 15
/// selects the third client.
pub fn fig1(_seed: u32) {
    let clients = [("c1", 10u64), ("c2", 2), ("c3", 5), ("c4", 1), ("c5", 2)];
    let mut pool: ListLottery<&str, u64> = ListLottery::without_move_to_front();
    for (name, tickets) in clients {
        pool.insert(name, tickets);
    }
    println!("total = {}", pool.total());
    let winning = 15;
    println!("winning ticket value = {winning} (paper's example draw)\n");

    let mut table = Table::new(&["client", "tickets", "running sum", "sum > 15?"]);
    let mut sum = 0;
    let mut winner = "";
    for (name, tickets) in clients {
        sum += tickets;
        let hit = sum > winning;
        table.row(&[
            name.to_string(),
            tickets.to_string(),
            sum.to_string(),
            if hit && winner.is_empty() {
                winner = name;
                "yes — winner".to_string()
            } else if winner.is_empty() {
                "no".to_string()
            } else {
                "(not examined)".to_string()
            },
        ]);
        if !winner.is_empty() && hit {
            // Continue printing rows for completeness of the table.
        }
    }
    print!("{}", table.render());
    let selected = pool.select(winning).copied().unwrap_or("?");
    println!("\nListLottery::select(15) = {selected} (paper: third client wins)");

    // And the empirical shares over many draws.
    let mut rng = ParkMiller::new(1);
    let mut wins = std::collections::HashMap::new();
    let draws = 100_000;
    for _ in 0..draws {
        *wins.entry(*pool.draw(&mut rng).unwrap()).or_insert(0u64) += 1;
    }
    let mut table = Table::new(&["client", "tickets", "expected share", "observed share"]);
    for (name, tickets) in clients {
        table.row(&[
            name.to_string(),
            tickets.to_string(),
            format!("{:.4}", tickets as f64 / 20.0),
            format!("{:.4}", wins[name] as f64 / draws as f64),
        ]);
    }
    println!("\nshares over {draws} draws:");
    print!("{}", table.render());
}

/// Figures 2 & 3: the kernel-object currency graph, with the paper's
/// published base values (thread2 = 400, thread3 = 600, thread4 = 2000).
pub fn fig3(_seed: u32) {
    let mut l = Ledger::new();
    let base = l.base();
    let alice = l.create_currency("alice").unwrap();
    let bob = l.create_currency("bob").unwrap();
    let t_alice = l.issue_root(base, 1000).unwrap();
    let t_bob = l.issue_root(base, 2000).unwrap();
    l.fund_currency(t_alice, alice).unwrap();
    l.fund_currency(t_bob, bob).unwrap();

    let task1 = l.create_currency("task1").unwrap();
    let task2 = l.create_currency("task2").unwrap();
    let task3 = l.create_currency("task3").unwrap();
    let f1 = l.issue_root(alice, 100).unwrap();
    let f2 = l.issue_root(alice, 200).unwrap();
    let f3 = l.issue_root(bob, 100).unwrap();
    l.fund_currency(f1, task1).unwrap();
    l.fund_currency(f2, task2).unwrap();
    l.fund_currency(f3, task3).unwrap();

    let names = ["thread1", "thread2", "thread3", "thread4"];
    let threads: Vec<ClientId> = names.iter().map(|n| l.create_client(*n)).collect();
    let amounts = [(task1, 100u64), (task2, 200), (task2, 300), (task3, 100)];
    for (i, &(cur, amt)) in amounts.iter().enumerate() {
        let t = l.issue_root(cur, amt).unwrap();
        l.fund_client(t, threads[i]).unwrap();
    }
    // task1 is inactive: thread1 is not runnable (paper: "task1 is
    // currently inactive").
    for &t in &threads[1..] {
        l.activate_client(t).unwrap();
    }

    let mut v = Valuator::new(&l);
    let mut table = Table::new(&["object", "denomination", "amount", "value (base units)"]);
    for (cur, label) in [
        (alice, "alice"),
        (bob, "bob"),
        (task1, "task1"),
        (task2, "task2"),
        (task3, "task3"),
    ] {
        let c = l.currency(cur).unwrap();
        table.row(&[
            format!("currency {label}"),
            "-".into(),
            format!("{} active / {} issued", c.active_amount(), c.total_amount()),
            format!("{:.0}", v.currency_value(cur).unwrap()),
        ]);
    }
    for (i, name) in names.iter().enumerate() {
        let (cur, amt) = amounts[i];
        let label = l.currency(cur).unwrap().name().to_string();
        table.row(&[
            name.to_string(),
            label,
            amt.to_string(),
            format!("{:.0}", v.client_value(threads[i]).unwrap()),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper's published values: thread2 = 400, thread3 = 600, thread4 = 2000");
}
