//! Deterministic record/replay, end to end.
//!
//! Captures a heavy-tailed trace window under every selection structure
//! on the uniprocessor kernel and under the distributed lottery on 2 and
//! 4 shards, replays each capture from its header, and asserts the
//! replayed probe-bus stream is bit-identical to the recording. One
//! canonical capture is written to `target/replay/capture.jsonl` (the
//! file `lotteryctl replay` consumes), then round-tripped through JSONL
//! and replayed again. Finally a single recorded event is mutated and the
//! divergence detector must flag exactly that index.

use std::fs;
use std::path::Path;

use lottery_sim::prelude::*;
use lottery_sim::replay::{record, structure_name, CaptureConfig, Replayer};
use lottery_sim::sched::lottery::SelectStructure;

use crate::traces::heavy_tailed_spec;

/// Entry point: bit-exact replays across structures and shards, JSONL
/// round-trip, and injected-divergence detection.
pub fn replay(seed: u32) {
    let spec = heavy_tailed_spec(u64::from(seed), 60, 6_000.0);
    let configs = [
        (SelectStructure::List, 0u32),
        (SelectStructure::Tree, 0),
        (SelectStructure::Alias, 0),
        (SelectStructure::Tree, 2),
        (SelectStructure::Alias, 4),
    ];

    let mut canonical = None;
    for (structure, shards) in configs {
        let config = CaptureConfig {
            seed,
            structure,
            shards,
            compensation: true,
            quantum_us: 1_000,
            until_us: 1_500_000,
        };
        let log = record(spec.clone(), &config).unwrap();
        let report = Replayer::new(log.clone()).run().unwrap();
        let verdict = match &report.divergence {
            None => "OK bit-exact".to_string(),
            Some(d) => format!("DIVERGED at index {}", d.index),
        };
        println!(
            "{verdict}: structure={} shards={shards} events={} draws-stamped seed={}",
            structure_name(structure),
            log.events.len(),
            log.header.seed
        );
        if canonical.is_none() {
            canonical = Some(log);
        }
    }
    let log = canonical.expect("at least one capture");

    // Persist the canonical capture for `lotteryctl replay`.
    let dir = Path::new("target/replay");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("capture.jsonl");
    match fs::write(&path, log.to_jsonl()) {
        Ok(()) => println!(
            "wrote {} ({} events + header)",
            path.display(),
            log.events.len()
        ),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    // The on-disk form must replay identically too: JSONL round-trip
    // preserves every f64 bit (shortest-round-trip printing).
    let reloaded = ReplayLog::from_jsonl(&log.to_jsonl()).unwrap();
    let report = Replayer::new(reloaded).run().unwrap();
    println!(
        "{}: capture.jsonl round-trip",
        if report.bit_exact() {
            "OK bit-exact"
        } else {
            "DIVERGED"
        }
    );

    // Tamper with one event: the detector must name exactly that index
    // and show both sides.
    let mut tampered = log.clone();
    let index = tampered.events.len() / 3;
    if let Some(event) = tampered.events.get_mut(index) {
        event.time_us += 7;
    }
    let report = Replayer::new(tampered).run().unwrap();
    match report.divergence {
        Some(d) if d.index == index => println!(
            "OK divergence detected at index {index}: recorded={:?} replayed={:?}",
            d.recorded.map(|e| e.kind.name()),
            d.replayed.map(|e| e.kind.name()),
        ),
        Some(d) => println!("WRONG index: expected {index}, got {}", d.index),
        None => println!("MISSED: mutation at {index} not detected"),
    }
}
