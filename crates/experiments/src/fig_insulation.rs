//! Figure 9: currencies insulate loads.

use lottery_apps::insulation::{self, InsulationExperiment};
use lottery_stats::table::Table;

/// Figure 9: tasks A1 = 100.A, A2 = 200.A, B1 = 100.B, B2 = 200.B; task
/// B3 = 300.B starts halfway. The inflation of currency B from 300 to 600
/// is locally contained.
pub fn fig9(seed: u32) {
    let config = InsulationExperiment {
        seed,
        ..InsulationExperiment::default()
    };
    let report = insulation::run(&config);

    let names = [
        "A1 (100.A)",
        "A2 (200.A)",
        "B1 (100.B)",
        "B2 (200.B)",
        "B3 (300.B)",
    ];
    let mut table = Table::new(&["time (s)", names[0], names[1], names[2], names[3], names[4]]);
    let mut t = 0u64;
    while t <= config.duration.as_us() {
        let mut row = vec![(t / 1_000_000).to_string()];
        for s in &report.progress {
            row.push(format!("{:.1}", s.value_at(t)));
        }
        table.row(&row);
        t += 30_000_000;
    }
    println!("cumulative CPU seconds:");
    print!("{}", table.render());

    let half = config.intruder_at.as_secs_f64();
    let tail = config.duration.as_secs_f64() - half;
    let mut table = Table::new(&["task", "rate before B3", "rate after B3", "change"]);
    for (i, name) in names.iter().enumerate() {
        let rb = report.before[i] / half;
        let ra = report.after[i] / tail;
        table.row(&[
            name.to_string(),
            format!("{rb:.3}"),
            format!("{ra:.3}"),
            if rb > 0.0 {
                format!("{:+.0}%", (ra / rb - 1.0) * 100.0)
            } else {
                "-".to_string()
            },
        ]);
    }
    println!();
    print!("{}", table.render());
    println!(
        "\naggregate A : B after B3 joins = {:.2} : 1 (paper: 1.00 : 1, A unaffected, B1/B2 halved)",
        report.a_after() / report.b_after()
    );
}
