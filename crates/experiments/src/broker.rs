//! The multi-resource broker: one grant, four currencies, 2:1 everywhere.
//!
//! Two tenants share a machine through a [`ResourceBroker`]: `db-gold`
//! (a db-server-shaped tenant, 2000-ticket grant) and `mc-silver` (a
//! Monte-Carlo tenant, 1000-ticket grant), each splitting its grant
//! evenly across cpu/disk/mem/net sub-currencies. The broker prices every
//! resource scheduler — the distributed CPU lottery, the disk lottery,
//! the inverse-lottery memory manager, and the cell switch — off the
//! *ledger valuation* of those sub-currencies.
//!
//! Mid-run, both tenants inflate their own sub-currencies (the db tenant
//! prints disk tickets for a background scanner; the Monte-Carlo tenant
//! error-drives its cpu worker funding up, Figure 6 style). Under
//! brokered valuation the 2:1 grant ratio holds within 5% simultaneously
//! on all four resources — inflation inside a tenant's currency dilutes
//! only that tenant. The raw ablation funds schedulers by face amount
//! instead, and the same inflation leaks straight into cross-tenant
//! shares; the [`DominantShareMonitor`] alarms on the drift.

use lottery_apps::montecarlo::relative_error;
use lottery_broker::{DemandTap, Resource, ResourceBroker, SplitPolicy, TenantId};
use lottery_core::prelude::*;
use lottery_io::{DiskPolicy, DiskScheduler};
use lottery_mem::MemoryManager;
use lottery_net::Switch;
use lottery_sim::prelude::*;
use lottery_stats::table::Table;

const STEPS: u32 = 600;
/// Steps excluded from share measurement while memory residency and the
/// CPU lottery reach steady state.
const WARMUP: u32 = 100;
/// Step at which both tenants start inflating their own currencies.
const INFLATE_AT: u32 = 100;
const STEP_MS: u64 = 25;
const FRAMES: u64 = 240;
const GOLD_GRANT: u64 = 2000;
const SILVER_GRANT: u64 = 1000;

struct Outcome {
    /// gold:silver usage ratios for cpu, disk, mem, net.
    ratios: [f64; 4],
    alarm: bool,
    monitor_text: String,
    refunds: u64,
}

/// One full mixed-workload run; `raw` selects the face-amount ablation.
fn run_mode(seed: u32, raw: bool) -> Outcome {
    let mut broker = ResourceBroker::new();
    broker.set_raw_funding(raw);
    let bus = ProbeBus::enabled();
    let monitor = Shared::new(DominantShareMonitor::new());
    let stats = Shared::new(Aggregator::new());
    bus.attach(monitor.clone());
    bus.attach(stats.clone());
    broker.set_probe_bus(bus.clone());

    let gold = broker
        .register_tenant("db-gold", GOLD_GRANT, SplitPolicy::even())
        .expect("fresh tenant");
    let silver = broker
        .register_tenant("mc-silver", SILVER_GRANT, SplitPolicy::even())
        .expect("fresh tenant");
    monitor.with(|m| {
        m.set_entitlement(gold.index(), GOLD_GRANT as f64);
        m.set_entitlement(silver.index(), SILVER_GRANT as f64);
    });

    // CPU: two compute-bound threads per tenant on a two-CPU distributed
    // lottery; each tenant's cpu weight divides across its threads.
    let policy = DistributedLottery::with_quantum(seed, 2, SimDuration::from_ms(1));
    let mut kernel = SmpKernel::new(policy, 2);
    kernel.set_probe_bus(bus.clone());
    let mut cpu_bind: Vec<(TenantId, ThreadId)> = Vec::new();
    for (tenant, tag) in [(gold, "db"), (silver, "mc")] {
        for i in 0..2 {
            let base = kernel.policy().base_currency();
            let tid = kernel.spawn(
                format!("{tag}{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 1),
            );
            cpu_bind.push((tenant, tid));
        }
    }

    let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
    disk.set_probe_bus(bus.clone());
    let disk_bind = [
        (gold, disk.register("db-gold", 1)),
        (silver, disk.register("mc-silver", 1)),
    ];
    let mut switch = Switch::new();
    switch.set_probe_bus(bus.clone());
    let net_bind = [
        (gold, switch.open_circuit("db-gold", 1)),
        (silver, switch.open_circuit("mc-silver", 1)),
    ];
    let mut mem = MemoryManager::new(FRAMES);
    let mem_bind = [
        (gold, mem.register("db-gold", 1)),
        (silver, mem.register("mc-silver", 1)),
    ];
    monitor.with(|m| {
        for (t, c) in &disk_bind {
            m.bind_client("disk", c.index(), t.index());
        }
        for (t, c) in &net_bind {
            m.bind_client("net", c.index(), t.index());
        }
    });

    let mut rng = ParkMiller::new(seed.wrapping_add(97));
    let mut silver_cpu_worker = None;
    let mut cpu_base = [0u64; 2];
    let mut disk_base = [0u64; 2];
    let mut net_base = [0u64; 2];
    let mut mem_integral = [0f64; 2];

    for step in 0..STEPS {
        // Both tenants stay busy on all four resources throughout.
        for &t in &[gold, silver] {
            for r in Resource::ALL {
                broker.record_demand(t, r, 1);
            }
        }
        if step % 10 == 0 {
            broker.rebalance().expect("funding graph stays well-formed");
        }
        broker.apply_cpu(kernel.policy_mut(), &cpu_bind).unwrap();
        broker.apply_disk(&mut disk, &disk_bind);
        broker.apply_net(&mut switch, &net_bind);
        broker.apply_mem(&mut mem, &mem_bind);

        // Intra-tenant inflation, identical in both modes: the db tenant
        // prints disk tickets for a background scanner; the Monte-Carlo
        // tenant error-drives its cpu worker funding (more remaining
        // error per Figure 6's scheme -> more printed tickets).
        if step == INFLATE_AT {
            broker
                .issue_worker(gold, Resource::Disk, 1_500)
                .expect("gold disk inflation");
            silver_cpu_worker = Some(
                broker
                    .issue_worker(silver, Resource::Cpu, 125)
                    .expect("silver cpu inflation"),
            );
        }
        if let Some(worker) = silver_cpu_worker {
            if step % 10 == 0 {
                let trials = (kernel.metrics().cpu_us(cpu_bind[2].1)
                    + kernel.metrics().cpu_us(cpu_bind[3].1))
                    / 1_000;
                let scale = (1.0 / relative_error(trials.max(1) as f64)).min(16.0);
                broker
                    .set_worker_amount(worker, (125.0 * scale).round().max(125.0) as u64)
                    .expect("worker re-pricing");
            }
        }

        // Disk and net: keep both tenants backlogged, serve a fixed
        // number of requests/slots per step.
        for i in 0..40u64 {
            for (k, &(_, c)) in disk_bind.iter().enumerate() {
                if disk.backlog(c) < 4 {
                    let sector = (u64::from(step) * 40 + i) * 64 + k as u64 * 500_000;
                    disk.submit(c, sector % 1_000_000, 8);
                }
            }
            disk.service_next(&mut rng).expect("disk stays backlogged");
        }
        for i in 0..40u64 {
            for &(_, vc) in &net_bind {
                if switch.backlog(vc) == 0 {
                    switch.enqueue(vc, u64::from(step) * 40 + i);
                }
            }
            switch.forward(&mut rng).expect("switch stays backlogged");
        }
        // Memory: equal alternating fault pressure; residency splits by
        // the inverse lottery's ticket-proportional revocation.
        for _ in 0..20 {
            for &(_, c) in &mem_bind {
                mem.fault(c, &mut rng).expect("faults always place a frame");
            }
        }

        let deadline = SimTime::from_ms(u64::from(step + 1) * STEP_MS);
        kernel.run_until(deadline).expect("compute-bound workloads");

        if step == WARMUP {
            for (slot, (tenant, _)) in disk_bind.iter().enumerate() {
                cpu_base[slot] = tenant_cpu_us(&kernel, &cpu_bind, *tenant);
                disk_base[slot] = disk.sectors_served(disk_bind[slot].1);
                net_base[slot] = switch.forwarded(net_bind[slot].1);
            }
        }
        if step >= WARMUP {
            for (slot, &(tenant, c)) in mem_bind.iter().enumerate() {
                let resident = mem.resident(c) as f64;
                mem_integral[slot] += resident;
                monitor.with(|m| m.record_units(tenant.index(), "mem", resident));
            }
            for &(tenant, _) in &disk_bind {
                let cpu_now = tenant_cpu_us(&kernel, &cpu_bind, tenant);
                broker.record_usage(tenant, Resource::Cpu, cpu_now);
            }
        }
    }

    // Feed cumulative CPU time into the monitor once at the end (the
    // per-step broker usage above already tracks it for `lotteryctl`
    // style reports; the monitor wants window totals).
    let mut ratios = [0.0f64; 4];
    let mut cpu_window = [0u64; 2];
    for (slot, &(tenant, _)) in disk_bind.iter().enumerate() {
        cpu_window[slot] = tenant_cpu_us(&kernel, &cpu_bind, tenant) - cpu_base[slot];
        monitor.with(|m| m.record_units(tenant.index(), "cpu", cpu_window[slot] as f64));
    }
    ratios[0] = cpu_window[0] as f64 / cpu_window[1] as f64;
    ratios[1] = (disk.sectors_served(disk_bind[0].1) - disk_base[0]) as f64
        / (disk.sectors_served(disk_bind[1].1) - disk_base[1]) as f64;
    ratios[2] = mem_integral[0] / mem_integral[1];
    ratios[3] = (switch.forwarded(net_bind[0].1) - net_base[0]) as f64
        / (switch.forwarded(net_bind[1].1) - net_base[1]) as f64;

    let (alarm, monitor_text) = monitor.with(|m| {
        let r = m.report();
        (r.any_alarm(), r.to_text())
    });
    Outcome {
        ratios,
        alarm,
        monitor_text,
        refunds: broker.refunds(),
    }
}

fn tenant_cpu_us(
    kernel: &SmpKernel<DistributedLottery>,
    bind: &[(TenantId, ThreadId)],
    tenant: TenantId,
) -> u64 {
    bind.iter()
        .filter(|(t, _)| *t == tenant)
        .map(|&(_, tid)| kernel.metrics().cpu_us(tid))
        .sum()
}

fn ratio_table(outcome: &Outcome) -> String {
    let mut table = Table::new(&["resource", "gold:silver", "error vs 2:1"]);
    for (name, ratio) in ["cpu", "disk", "mem", "net"].iter().zip(outcome.ratios) {
        table.row(&[
            name.to_string(),
            format!("{ratio:.3}:1"),
            format!("{:+.1}%", (ratio / 2.0 - 1.0) * 100.0),
        ]);
    }
    table.render()
}

/// Demand-driven refunds, in isolation: weights only, no schedulers.
fn refund_demo(_seed: u32) {
    let mut broker = ResourceBroker::new();
    let gold = broker
        .register_tenant("db-gold", GOLD_GRANT, SplitPolicy::even())
        .unwrap();
    let silver = broker
        .register_tenant("mc-silver", SILVER_GRANT, SplitPolicy::even())
        .unwrap();
    let before = broker.weight(silver, Resource::Cpu);
    // Silver stops touching the network; everything else stays busy.
    for t in [gold, silver] {
        for r in Resource::ALL {
            if !(t == silver && r == Resource::Net) {
                broker.record_demand(t, r, 1);
            }
        }
    }
    broker.rebalance().unwrap();
    let during = broker.weight(silver, Resource::Cpu);
    let gold_during = broker.weight(gold, Resource::Net);
    for t in [gold, silver] {
        for r in Resource::ALL {
            broker.record_demand(t, r, 1);
        }
    }
    broker.rebalance().unwrap();
    let after = broker.weight(silver, Resource::Cpu);
    println!(
        "\ndemand refund: mc-silver goes net-idle and its cpu weight appreciates \
         {before:.1} -> {during:.1} -> {after:.1} (restored on demand; db-gold net \
         weight stays {gold_during:.1}, {} refund)",
        broker.refunds()
    );
}

/// Caller-reported vs probe-bus-derived demand: the broker rebalances
/// unattended off the schedulers' own draw/completion events.
fn demand_source_ablation(seed: u32) {
    struct ModeOut {
        disk_served: [u64; 2],
        net_served: [u64; 2],
        disk_weights: [f64; 2],
        net_weights: [f64; 2],
        refunds: u64,
    }
    let run_mode = |derived: bool| -> ModeOut {
        let mut broker = ResourceBroker::new();
        let bus = ProbeBus::enabled();
        let tap = Shared::new(DemandTap::new());
        bus.attach(tap.clone());
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let mut switch = Switch::new();
        disk.set_probe_bus(bus.clone());
        switch.set_probe_bus(bus.clone());
        let gold = broker
            .register_tenant("db-gold", GOLD_GRANT, SplitPolicy::even())
            .unwrap();
        let silver = broker
            .register_tenant("mc-silver", SILVER_GRANT, SplitPolicy::even())
            .unwrap();
        let disk_bind = [
            (gold, disk.register("db-gold", 1)),
            (silver, disk.register("mc-silver", 1)),
        ];
        let net_bind = [
            (gold, switch.open_circuit("db-gold", 1)),
            (silver, switch.open_circuit("mc-silver", 1)),
        ];
        tap.with(|t| {
            for (tenant, c) in &disk_bind {
                t.bind(Resource::Disk, c.index(), *tenant);
            }
            for (tenant, vc) in &net_bind {
                t.bind(Resource::Net, vc.index(), *tenant);
            }
        });
        let mut rng = ParkMiller::new(seed.wrapping_add(31));
        for step in 0..300u64 {
            for i in 0..20u64 {
                for (k, &(_, c)) in disk_bind.iter().enumerate() {
                    if disk.backlog(c) < 4 {
                        let sector = ((step * 20 + i) * 64 + k as u64 * 500_000) % 1_000_000;
                        disk.submit(c, sector, 8);
                    }
                }
                disk.service_next(&mut rng).expect("disk stays backlogged");
            }
            for i in 0..20u64 {
                for &(_, vc) in &net_bind {
                    if switch.backlog(vc) == 0 {
                        switch.enqueue(vc, step * 20 + i);
                    }
                }
                switch.forward(&mut rng).expect("switch stays backlogged");
            }
            if derived {
                // No record_demand calls at all: the tap saw every draw
                // and completion the schedulers emitted this step.
                broker.absorb_demand(&tap);
            } else {
                tap.with(|t| t.drain());
                for &(t, _) in &disk_bind {
                    broker.record_demand(t, Resource::Disk, 1);
                }
                for &(t, _) in &net_bind {
                    broker.record_demand(t, Resource::Net, 1);
                }
            }
            broker.rebalance().expect("funding graph stays well-formed");
            broker.apply_disk(&mut disk, &disk_bind);
            broker.apply_net(&mut switch, &net_bind);
        }
        ModeOut {
            disk_served: [
                disk.sectors_served(disk_bind[0].1),
                disk.sectors_served(disk_bind[1].1),
            ],
            net_served: [
                switch.forwarded(net_bind[0].1),
                switch.forwarded(net_bind[1].1),
            ],
            disk_weights: [
                broker.weight(gold, Resource::Disk),
                broker.weight(silver, Resource::Disk),
            ],
            net_weights: [
                broker.weight(gold, Resource::Net),
                broker.weight(silver, Resource::Net),
            ],
            refunds: broker.refunds(),
        }
    };

    let reported = run_mode(false);
    let derived = run_mode(true);
    println!(
        "\ndemand-source ablation (300 steps, disk+net busy, cpu+mem idle):\n\
         caller-reported: disk {}:{} net {}:{} ({} refunds)\n\
         probe-bus tap:   disk {}:{} net {}:{} ({} refunds)",
        reported.disk_served[0],
        reported.disk_served[1],
        reported.net_served[0],
        reported.net_served[1],
        reported.refunds,
        derived.disk_served[0],
        derived.disk_served[1],
        derived.net_served[0],
        derived.net_served[1],
        derived.refunds,
    );
    // Rebalance keys on demand presence, not magnitude, so a tap that
    // merely watched the schedulers reproduces the caller-reported run
    // bit for bit: same funded set, same weights, same lottery stream.
    let identical = reported.disk_served == derived.disk_served
        && reported.net_served == derived.net_served
        && reported.disk_weights == derived.disk_weights
        && reported.net_weights == derived.net_weights
        && reported.refunds == derived.refunds;
    println!(
        "derived (probe-bus) demand reproduces caller-reported rebalancing: {}",
        if identical { "OK" } else { "FAILED" }
    );
}

/// Mixed db-server vs Monte-Carlo tenants through the broker: 2:1 on all
/// four resources at once, with a raw face-funding ablation.
pub fn run(seed: u32) {
    println!(
        "two tenants, one grant each (db-gold {GOLD_GRANT}, mc-silver {SILVER_GRANT}), split \
         across cpu/disk/mem/net;"
    );
    println!(
        "mid-run both tenants inflate their own sub-currencies (db prints disk tickets, \
         Monte-Carlo error-drives cpu tickets)\n"
    );

    let brokered = run_mode(seed, false);
    println!("brokered (ledger-valued) funding:");
    print!("{}", ratio_table(&brokered));
    println!("\ndominant-share monitor:");
    print!("{}", brokered.monitor_text);
    println!(
        "monitor {} ({} refunds during the busy run)",
        if brokered.alarm { "ALARM" } else { "quiet" },
        brokered.refunds
    );
    let held = brokered
        .ratios
        .iter()
        .all(|r| (r / 2.0 - 1.0).abs() <= 0.05)
        && !brokered.alarm;
    println!(
        "broker 2:1 isolation held within 5% on cpu, disk, mem, net: {}",
        if held { "OK" } else { "FAILED" }
    );

    refund_demo(seed);
    demand_source_ablation(seed);

    let raw = run_mode(seed, true);
    println!("\nraw (face-amount) funding ablation, same inflation:");
    print!("{}", ratio_table(&raw));
    println!("\ndominant-share monitor:");
    print!("{}", raw.monitor_text);
    println!("monitor {}", if raw.alarm { "ALARM" } else { "quiet" });
    let drifted = raw.ratios.iter().any(|r| (r / 2.0 - 1.0).abs() > 0.05) && raw.alarm;
    println!(
        "raw funding drifts under intra-tenant inflation: {}",
        if drifted { "CONFIRMED" } else { "NOT OBSERVED" }
    );
}
