//! Section 6's diverse resources: memory and communication bandwidth.

use lottery_core::prelude::*;
use lottery_io::{DiskPolicy, DiskScheduler};
use lottery_mem::paging::{hot_cold_reference, PagingSim};
use lottery_mem::MemoryManager;
use lottery_net::Switch;
use lottery_sim::prelude::*;
use lottery_stats::table::Table;

/// Inverse-lottery page reclamation: two clients under equal fault
/// pressure with a 3:1 memory-ticket split.
pub fn mem(seed: u32) {
    let mut mm = MemoryManager::new(256);
    let rich = mm.register("rich (300 tickets)", 300);
    let poor = mm.register("poor (100 tickets)", 100);
    let mut rng = ParkMiller::new(seed);

    let mut table = Table::new(&[
        "faults each",
        "rich resident",
        "poor resident",
        "rich evictions",
        "poor evictions",
    ]);
    for round in 1..=5u32 {
        for _ in 0..10_000 {
            mm.fault(rich, &mut rng).unwrap();
            mm.fault(poor, &mut rng).unwrap();
        }
        table.row(&[
            (round * 10_000).to_string(),
            mm.resident(rich).to_string(),
            mm.resident(poor).to_string(),
            mm.evictions(rich).to_string(),
            mm.evictions(poor).to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nsteady-state resident ratio {:.2}:1 under equal demand — the ticket-rich client keeps more of memory",
        mm.resident(rich) as f64 / mm.resident(poor) as f64
    );

    // Page-level view: identical hot/cold reference streams, 3:1 memory
    // tickets; the ticket-rich client keeps its working set resident and
    // faults less.
    let mut sim = PagingSim::new(64);
    let rich = sim.register("rich", 300);
    let poor = sim.register("poor", 100);
    let mut rng = ParkMiller::new(seed.wrapping_add(1));
    for _ in 0..80_000 {
        let p = hot_cold_reference(&mut rng, 60, 20, 0.8);
        sim.reference(rich, p, &mut rng).unwrap();
        let p = hot_cold_reference(&mut rng, 60, 20, 0.8);
        sim.reference(poor, p, &mut rng).unwrap();
    }
    let mut table = Table::new(&["client", "tickets", "resident frames", "fault rate"]);
    for (c, t) in [(rich, 300u64), (poor, 100)] {
        table.row(&[
            sim.name(c).to_string(),
            t.to_string(),
            sim.resident(c).to_string(),
            format!("{:.4}", sim.fault_rate(c)),
        ]);
    }
    println!("\npage-level paging with identical hot/cold reference streams:");
    print!("{}", table.render());
    println!(
        "\nmemory tickets buy working-set residency: fewer faults for the same reference stream"
    );
}

/// A lottery-scheduled switch port: three always-backlogged virtual
/// circuits with a 3:2:1 bandwidth-ticket allocation.
pub fn net(seed: u32) {
    let mut sw = Switch::new();
    let vcs = [
        sw.open_circuit("vc-a", 300),
        sw.open_circuit("vc-b", 200),
        sw.open_circuit("vc-c", 100),
    ];
    let mut rng = ParkMiller::new(seed);
    let slots = 60_000u64;
    for i in 0..slots {
        for &vc in &vcs {
            if sw.backlog(vc) < 8 {
                sw.enqueue(vc, i);
            }
        }
        sw.forward(&mut rng).unwrap();
    }

    let mut table = Table::new(&[
        "circuit",
        "tickets",
        "cells forwarded",
        "share",
        "mean delay (slots)",
    ]);
    for (&vc, tickets) in vcs.iter().zip([300u64, 200, 100]) {
        table.row(&[
            sw.name(vc).to_string(),
            tickets.to_string(),
            sw.forwarded(vc).to_string(),
            format!("{:.3}", sw.forwarded(vc) as f64 / slots as f64),
            format!("{:.1}", sw.delay_slots(vc).mean()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\ncongested-channel bandwidth divides 3:2:1 by ticket allocation (Section 6's proposal)"
    );
}

/// A lottery-scheduled disk: 3:1 bandwidth tickets against FCFS and
/// shortest-seek-first baselines.
pub fn disk(seed: u32) {
    let mut table = Table::new(&[
        "policy",
        "a sectors (300 tkt)",
        "b sectors (100 tkt)",
        "ratio",
        "head travel (Msectors)",
    ]);
    for (policy, label) in [
        (DiskPolicy::Lottery, "lottery"),
        (DiskPolicy::Fcfs, "fcfs"),
        (DiskPolicy::ShortestSeek, "sstf"),
    ] {
        let mut d = DiskScheduler::new(policy);
        let a = d.register("a", 300);
        let b = d.register("b", 100);
        let mut rng = ParkMiller::new(seed);
        for i in 0..40_000u64 {
            for (k, &c) in [a, b].iter().enumerate() {
                if d.backlog(c) < 4 {
                    d.submit(c, (i * 64 + k as u64 * 50_000) % 1_000_000, 8);
                }
            }
            d.service_next(&mut rng).unwrap();
        }
        table.row(&[
            label.to_string(),
            d.sectors_served(a).to_string(),
            d.sectors_served(b).to_string(),
            format!(
                "{:.2}:1",
                d.sectors_served(a) as f64 / d.sectors_served(b) as f64
            ),
            format!("{:.1}", d.seek_distance() as f64 / 1e6),
        ]);
    }
    print!("{}", table.render());
    println!("\nonly the lottery honors the 3:1 allocation; SSTF trades fairness for head travel");
}

/// The SMP extension: lottery scheduling over multiple CPUs via the
/// shared run queue (Section 4.2's distributed-scheduler direction).
pub fn smp(seed: u32) {
    let mut table = Table::new(&["cpus", "client tickets", "CPU share each", "utilization"]);
    for &cpus in &[1usize, 2, 4] {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, cpus);
        let tickets = [400u64, 200, 100, 100];
        let tids: Vec<ThreadId> = tickets
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                k.spawn(
                    format!("t{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, t),
                )
            })
            .collect();
        k.run_until(SimTime::from_secs(120))
            .expect("compute-bound workloads only");
        let shares: Vec<String> = tids
            .iter()
            .map(|&t| format!("{:.2}", k.metrics().cpu_us(t) as f64 / 120e6))
            .collect();
        table.row(&[
            cpus.to_string(),
            "400/200/100/100".to_string(),
            shares.join(" / "),
            format!("{:.3}", k.utilization()),
        ]);
    }
    print!("{}", table.render());
    println!("\nshares scale with machine capacity, capped at one full CPU per thread");
}

/// The distributed lottery: per-CPU partial-sum trees with rebalancing
/// hold a Figure 2 style 2:1 ticket ratio machine-wide.
pub fn smp_dist(seed: u32) {
    const CPUS: usize = 4;
    let policy = DistributedLottery::new(seed, CPUS);
    let base = policy.base_currency();
    let mut k = SmpKernel::new(policy, CPUS);
    // Four 200-ticket threads, then four 100-ticket threads: greedy
    // least-loaded homing lands one of each per shard (300 tickets each).
    let bigs: Vec<ThreadId> = (0..CPUS)
        .map(|i| {
            k.spawn(
                format!("big{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 200),
            )
        })
        .collect();
    let smalls: Vec<ThreadId> = (0..CPUS)
        .map(|i| {
            k.spawn(
                format!("small{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 100),
            )
        })
        .collect();
    let horizon = SimTime::from_secs(240);
    k.run_until(horizon).expect("compute-bound workloads only");

    let mut table = Table::new(&["shard", "threads", "queue depth", "ticket total", "picks"]);
    for s in 0..CPUS as u32 {
        let stats = k.policy_mut().shard_stats(s);
        table.row(&[
            s.to_string(),
            stats.threads.to_string(),
            stats.queue_depth.to_string(),
            format!("{:.0}", stats.ticket_total),
            stats.picks.to_string(),
        ]);
    }
    print!("{}", table.render());

    let mean = |tids: &[ThreadId]| {
        tids.iter().map(|&t| k.metrics().cpu_us(t)).sum::<u64>() as f64 / tids.len() as f64
    };
    let ratio = mean(&bigs) / mean(&smalls);
    println!(
        "\nmachine-wide CPU ratio (200-ticket mean : 100-ticket mean) = {ratio:.3}:1 \
         over {CPUS} CPUs ({} steals, {} migrations, {} rebalances)",
        k.policy().steals(),
        k.policy().migrations(),
        k.policy().rebalances(),
    );
    let ok = (ratio - 2.0).abs() <= 0.1;
    println!(
        "2:1 allocation held within 5%: {}",
        if ok { "OK" } else { "FAILED" }
    );

    smp_dist_io(seed);
}

/// The I/O-heavy variant: eight 200-ticket I/O-bound threads (5 ms run /
/// 12 ms sleep against a 10 ms quantum) pinned four each on shards 2–3,
/// against sixteen 100-ticket compute hogs pinned eight each on shards
/// 0–1 — a 2:1 per-thread ticket edge for the I/O class, whose collective
/// entitlement is exactly the two shards it is pinned to.
///
/// Every I/O burst ends in a partial-quantum block, so each sleeper
/// carries a Section 4.5 compensation factor of 2 — doubling its 200
/// tickets while it waits or sleeps. Compensated-weight rebalancing keeps
/// that `factor × funded` weight on the sleeper's home shard's books, so
/// the I/O shards look as loaded as they really are, the hogs stay out,
/// and a waking I/O thread only ever queues behind a sibling's 5 ms burst:
/// the 2:1 ticket ratio is delivered as CPU time. The raw-weight ablation
/// sees the I/O shards as near-empty whenever the sleepers are blocked,
/// migrates hogs onto them, and every wake then waits out full 10 ms hog
/// quanta it cannot preempt: the I/O class drifts well below its
/// entitlement. Idle I/O-shard capacity is still soaked up either way by
/// transient work stealing, which never re-homes a thread.
fn smp_dist_io(seed: u32) {
    const CPUS: usize = 4;
    const HOGS: usize = 16;
    const IOS: usize = 8;
    // 16 × 100 + 8 × 200 = 3200 base tickets machine-wide.
    const TOTAL_TICKETS: f64 = (HOGS * 100 + IOS * 200) as f64;
    let horizon = SimTime::from_secs(240);
    println!(
        "\nI/O-heavy mix: eight 200-ticket I/O-bound threads (5 ms run / 12 ms \
         sleep, 10 ms quantum) pinned on shards 2-3,"
    );
    println!(
        "sixteen 100-ticket hogs pinned on shards 0-1; compensated vs raw-weight rebalancing:"
    );
    for (label, aware) in [("compensated", true), ("raw", false)] {
        let mut policy = DistributedLottery::with_quantum(seed, CPUS, SimDuration::from_ms(10));
        policy.set_comp_aware_rebalance(aware);
        policy.set_rebalance(32, 1.75);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, CPUS);
        let hogs: Vec<ThreadId> = (0..HOGS)
            .map(|i| {
                k.spawn(
                    format!("hog{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 100),
                )
            })
            .collect();
        let ios: Vec<ThreadId> = (0..IOS)
            .map(|i| {
                k.spawn(
                    format!("io{i}"),
                    Box::new(IoBound::new(
                        SimDuration::from_ms(5),
                        SimDuration::from_ms(12),
                    )),
                    FundingSpec::new(base, 200),
                )
            })
            .collect();
        for (i, &t) in hogs.iter().enumerate() {
            k.policy_mut().migrate(t, (i % 2) as u32);
        }
        for (i, &t) in ios.iter().enumerate() {
            k.policy_mut().migrate(t, 2 + (i % 2) as u32);
        }
        k.run_until(horizon).expect("run/sleep workloads only");

        let mut table = Table::new(&["shard", "threads", "ticket total", "comp weight", "picks"]);
        for s in 0..CPUS as u32 {
            let stats = k.policy_mut().shard_stats(s);
            table.row(&[
                s.to_string(),
                stats.threads.to_string(),
                format!("{:.0}", stats.ticket_total),
                format!("{:.0}", stats.comp_weight + stats.resting_weight),
                stats.picks.to_string(),
            ]);
        }
        print!("{}", table.render());

        // Per-thread entitlement is the thread's ticket share of the
        // delivered machine; the worst |observed/entitled - 1| over all
        // threads is the drift headline.
        let total_cpu: u64 = hogs
            .iter()
            .chain(&ios)
            .map(|&t| k.metrics().cpu_us(t))
            .sum();
        let ratio_of = |t: ThreadId, tickets: f64| {
            (k.metrics().cpu_us(t) as f64 / total_cpu as f64) / (tickets / TOTAL_TICKETS)
        };
        let worst = hogs
            .iter()
            .map(|&t| ratio_of(t, 100.0))
            .chain(ios.iter().map(|&t| ratio_of(t, 200.0)))
            .map(|r| (r - 1.0).abs())
            .fold(0.0f64, f64::max);
        let mean = |tids: &[ThreadId]| {
            tids.iter().map(|&t| k.metrics().cpu_us(t)).sum::<u64>() as f64 / tids.len() as f64
        };
        let class_ratio = mean(&ios) / mean(&hogs);
        println!(
            "{label}: io:hog CPU ratio {class_ratio:.3}:1, worst thread \
             observed/entitled error {:.1}% ({} steals, {} migrations, {} rebalances)",
            worst * 100.0,
            k.policy().steals(),
            k.policy().migrations(),
            k.policy().rebalances(),
        );
        if aware {
            let ok = worst <= 0.05 && (class_ratio - 2.0).abs() <= 0.1;
            println!(
                "io-heavy 2:1 held within 5% under compensated rebalancing: {}",
                if ok { "OK" } else { "FAILED" }
            );
        } else {
            let drifted = worst > 0.05 || (class_ratio - 2.0).abs() > 0.1;
            println!(
                "raw-weight rebalancing drifts without compensated totals: {}",
                if drifted { "CONFIRMED" } else { "NOT OBSERVED" }
            );
        }
    }
}
