//! Ablations of the paper's design choices (DESIGN.md §4).

use lottery_apps::dhrystone::{self, FairnessRun};
use lottery_core::prelude::*;
use lottery_sim::prelude::*;
use lottery_stats::summary::Summary;
use lottery_stats::table::Table;

/// Section 4.2: list vs move-to-front list vs partial-sum tree. Reports
/// the mean number of entries examined per draw under a skewed ticket
/// distribution, and checks the structures agree on shares.
pub fn selection(seed: u32) {
    let sizes = [8usize, 64, 512];
    let mut table = Table::new(&[
        "clients",
        "list scan (mean)",
        "list+MTF scan (mean)",
        "tree comparisons (lg n)",
    ]);
    for &n in &sizes {
        // Skewed 80/20-style distribution: a few heavy clients dominate,
        // as in real mixes — the regime MTF exploits.
        let mut plain: ListLottery<usize, u64> = ListLottery::without_move_to_front();
        let mut mtf: ListLottery<usize, u64> = ListLottery::new();
        let mut tree: TreeLottery<usize, u64> = TreeLottery::new();
        for i in 0..n {
            let tickets = if i >= n - n / 8 { 1000 } else { 10 };
            plain.insert(i, tickets);
            mtf.insert(i, tickets);
            tree.insert(i, tickets);
        }
        let mut rng1 = ParkMiller::new(seed);
        let mut rng2 = ParkMiller::new(seed);
        let mut rng3 = ParkMiller::new(seed);
        for _ in 0..20_000 {
            plain.draw(&mut rng1).unwrap();
            mtf.draw(&mut rng2).unwrap();
            tree.draw(&mut rng3).unwrap();
        }
        table.row(&[
            n.to_string(),
            format!("{:.1}", plain.mean_scan_length().unwrap()),
            format!("{:.1}", mtf.mean_scan_length().unwrap()),
            format!("{}", tree.depth()),
        ]);
    }
    print!("{}", table.render());
    println!("\nthe paper's prototype uses the MTF list; trees win for large n (lg n comparisons)");
}

/// Section 2: "shorter time quanta can be used to further improve
/// accuracy" — fairness error of a 2:1 split over 60 s as the quantum
/// shrinks.
pub fn quantum_sweep(seed: u32) {
    let runs = 20u32;
    let mut table = Table::new(&[
        "quantum (ms)",
        "lotteries/sec",
        "mean |error| vs 2:1",
        "worst ratio",
    ]);
    for &q_ms in &[400u64, 200, 100, 50, 20, 10] {
        let mut errors = Vec::new();
        let mut worst = 2.0f64;
        for run in 0..runs {
            let report = dhrystone::run_fairness(
                &FairnessRun {
                    ratio: 2.0,
                    quantum: SimDuration::from_ms(q_ms),
                    seed: seed.wrapping_mul(31).wrapping_add(run * 7 + q_ms as u32),
                    ..FairnessRun::default()
                },
                SimDuration::from_secs(8),
            );
            errors.push((report.observed / 2.0 - 1.0).abs());
            if (report.observed - 2.0).abs() > (worst - 2.0).abs() {
                worst = report.observed;
            }
        }
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        table.row(&[
            q_ms.to_string(),
            (1000 / q_ms).to_string(),
            format!("{:.2}%", mean_err * 100.0),
            format!("{worst:.3}:1"),
        ]);
    }
    print!("{}", table.render());
    println!("\n({runs} seeded 60 s runs per quantum; binomial cv shrinks as 1/sqrt(lotteries))");
}

/// Section 4.5: compensation tickets on vs off for an interactive thread
/// using 20% of each quantum against a compute-bound peer with equal
/// funding. With compensation the CPU ratio is 1:1; without, the
/// interactive thread gets only ~1/5 of its entitlement.
///
/// Both the uniprocessor lottery and the distributed (per-CPU tree)
/// lottery are ablated here, through the one `set_compensation_enabled`
/// switch each policy delegates to the shared compensation hook.
pub fn compensation(seed: u32) {
    let mut table = Table::new(&[
        "policy",
        "compensation",
        "compute-bound CPU (s)",
        "interactive CPU (s)",
        "ratio",
    ]);
    let interactive_workload = || FractionalQuantum::new(SimDuration::from_ms(20));
    for &enabled in &[true, false] {
        let mut policy = LotteryPolicy::new(seed);
        policy.set_compensation_enabled(enabled);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let cpu_bound = kernel.spawn(
            "compute",
            Box::new(ComputeBound),
            FundingSpec::new(base, 400),
        );
        let interactive = kernel.spawn(
            "interactive",
            Box::new(interactive_workload()),
            FundingSpec::new(base, 400),
        );
        kernel.run_until(SimTime::from_secs(120));
        let a = kernel.metrics().cpu_us(cpu_bound) as f64 / 1e6;
        let b = kernel.metrics().cpu_us(interactive) as f64 / 1e6;
        table.row(&[
            "lottery".to_string(),
            if enabled { "on" } else { "off" }.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{:.2}:1", a / b),
        ]);
    }
    for &enabled in &[true, false] {
        let mut policy = DistributedLottery::new(seed, 1);
        policy.set_compensation_enabled(enabled);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let cpu_bound = kernel.spawn(
            "compute",
            Box::new(ComputeBound),
            FundingSpec::new(base, 400),
        );
        let interactive = kernel.spawn(
            "interactive",
            Box::new(interactive_workload()),
            FundingSpec::new(base, 400),
        );
        kernel.run_until(SimTime::from_secs(120));
        let a = kernel.metrics().cpu_us(cpu_bound) as f64 / 1e6;
        let b = kernel.metrics().cpu_us(interactive) as f64 / 1e6;
        table.row(&[
            "distributed".to_string(),
            if enabled { "on" } else { "off" }.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{:.2}:1", a / b),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper: without compensation the 1:1 allocation degrades toward 5:1 (Section 4.5);");
    println!("one shared hook switch ablates every policy the same way");
}

/// Lottery vs stride scheduling: identical long-run shares, but the
/// deterministic stride scheduler has far lower short-window variance.
pub fn stride(seed: u32) {
    let duration = SimTime::from_secs(60);
    let window = SimDuration::from_secs(1);

    // Lottery run.
    let policy = LotteryPolicy::new(seed);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let la = kernel.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 300));
    let lb = kernel.spawn("b", Box::new(ComputeBound), FundingSpec::new(base, 100));
    kernel.run_until(duration);
    let lottery_ratio = kernel.metrics().cpu_ratio(la, lb).unwrap();
    let mut lottery_windows = Summary::new();
    for w in kernel.metrics().cpu_window_shares(la, window, duration) {
        lottery_windows.record(w);
    }

    // Stride run.
    let mut kernel = Kernel::new(StridePolicy::new(SimDuration::from_ms(100)));
    let sa = kernel.spawn("a", Box::new(ComputeBound), 300u64);
    let sb = kernel.spawn("b", Box::new(ComputeBound), 100u64);
    kernel.run_until(duration);
    let stride_ratio = kernel.metrics().cpu_ratio(sa, sb).unwrap();
    let mut stride_windows = Summary::new();
    for w in kernel.metrics().cpu_window_shares(sa, window, duration) {
        stride_windows.record(w);
    }

    let mut table = Table::new(&[
        "policy",
        "observed 3:1 ratio",
        "1 s window share mean",
        "window stddev",
    ]);
    table.row(&[
        "lottery".into(),
        format!("{lottery_ratio:.2}:1"),
        format!("{:.3}", lottery_windows.mean()),
        format!("{:.4}", lottery_windows.stddev()),
    ]);
    table.row(&[
        "stride".into(),
        format!("{stride_ratio:.2}:1"),
        format!("{:.3}", stride_windows.mean()),
        format!("{:.4}", stride_windows.stddev()),
    ]);
    print!("{}", table.render());
    println!("\nstride (the authors' follow-up) trades randomness for determinism: same shares, lower variance");
}

/// Interactive responsiveness: dispatch latency of an I/O-bound thread
/// competing with compute-bound hogs, per policy.
///
/// The paper's introduction motivates lottery scheduling with interactive
/// systems that need "rapid, dynamic control over scheduling at a time
/// scale of milliseconds to seconds"; compensation tickets are what let an
/// interactive thread that uses a sliver of each quantum win dispatches
/// promptly (Section 4.5).
pub fn latency(seed: u32) {
    let duration = SimTime::from_secs(120);
    let hogs = 5usize;
    let interactive_workload = || IoBound::new(SimDuration::from_ms(5), SimDuration::from_ms(45));

    let mut table = Table::new(&[
        "policy",
        "mean dispatch wait (ms)",
        "max wait (ms)",
        "interactive CPU share",
    ]);

    // Lottery: interactive thread funded equally with each hog.
    {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let interactive = kernel.spawn(
            "interactive",
            Box::new(interactive_workload()),
            FundingSpec::new(base, 100),
        );
        for i in 0..hogs {
            kernel.spawn(
                format!("hog{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 100),
            );
        }
        kernel.run_until(duration);
        let m = kernel.metrics().thread(interactive).unwrap();
        table.row(&[
            "lottery".into(),
            format!("{:.1}", m.wait_us.mean() / 1e3),
            format!("{:.0}", m.wait_us.max() / 1e3),
            format!(
                "{:.3}",
                kernel.metrics().cpu_us(interactive) as f64 / duration.as_us() as f64
            ),
        ]);
    }

    // Lottery without compensation: the ablation.
    {
        let mut policy = LotteryPolicy::new(seed);
        policy.set_compensation_enabled(false);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let interactive = kernel.spawn(
            "interactive",
            Box::new(interactive_workload()),
            FundingSpec::new(base, 100),
        );
        for i in 0..hogs {
            kernel.spawn(
                format!("hog{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 100),
            );
        }
        kernel.run_until(duration);
        let m = kernel.metrics().thread(interactive).unwrap();
        table.row(&[
            "lottery (no comp.)".into(),
            format!("{:.1}", m.wait_us.mean() / 1e3),
            format!("{:.0}", m.wait_us.max() / 1e3),
            format!(
                "{:.3}",
                kernel.metrics().cpu_us(interactive) as f64 / duration.as_us() as f64
            ),
        ]);
    }

    // Decay-usage timesharing.
    {
        let mut kernel = Kernel::new(TimesharePolicy::new(SimDuration::from_ms(100)));
        let interactive = kernel.spawn("interactive", Box::new(interactive_workload()), 12u8);
        for i in 0..hogs {
            kernel.spawn(format!("hog{i}"), Box::new(ComputeBound), 12u8);
        }
        kernel.run_until(duration);
        let m = kernel.metrics().thread(interactive).unwrap();
        table.row(&[
            "timeshare".into(),
            format!("{:.1}", m.wait_us.mean() / 1e3),
            format!("{:.0}", m.wait_us.max() / 1e3),
            format!(
                "{:.3}",
                kernel.metrics().cpu_us(interactive) as f64 / duration.as_us() as f64
            ),
        ]);
    }

    // Round-robin.
    {
        let mut kernel = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
        let interactive = kernel.spawn("interactive", Box::new(interactive_workload()), ());
        for i in 0..hogs {
            kernel.spawn(format!("hog{i}"), Box::new(ComputeBound), ());
        }
        kernel.run_until(duration);
        let m = kernel.metrics().thread(interactive).unwrap();
        table.row(&[
            "round-robin".into(),
            format!("{:.1}", m.wait_us.mean() / 1e3),
            format!("{:.0}", m.wait_us.max() / 1e3),
            format!(
                "{:.3}",
                kernel.metrics().cpu_us(interactive) as f64 / duration.as_us() as f64
            ),
        ]);
    }

    print!("{}", table.render());
    println!("\ncompensation tickets give the interactive thread prompt dispatch without any");
    println!("priority tuning; disabling them (or using plain RR) makes it wait behind the hogs");
}

/// Section 7: lottery vs a classical fair-share scheduler.
///
/// Both produce the right *steady-state* shares; the difference the paper
/// stresses is responsiveness — "interactive systems require rapid,
/// dynamic control over scheduling at a time scale of milliseconds to
/// seconds", while fair-share schedulers converge over the decay
/// time scale of their usage accounting. Here two users run 2:1, the
/// allocation is flipped to 1:2 at t = 60 s, and the table reports how
/// long each scheduler takes to deliver the new ratio in 2-second windows.
pub fn fairshare(seed: u32) {
    let duration = SimTime::from_secs(120);
    let flip_at = SimTime::from_secs(60);
    let window = SimDuration::from_secs(2);
    // A window counts as converged when user A's share is within 20% of
    // the post-flip target (1/3).
    let converged = |share: f64| (share - 1.0 / 3.0).abs() < 1.0 / 3.0 * 0.2;

    let report = |label: &str, shares_a: Vec<f64>| {
        let start_idx = (flip_at.as_us() / window.as_us()) as usize;
        let settle = shares_a[start_idx..]
            .iter()
            .position(|&s| converged(s))
            .map(|w| w as u64 * window.as_us() / 1_000_000);
        let pre: f64 = shares_a[..start_idx].iter().sum::<f64>() / start_idx as f64;
        let post_tail: f64 = shares_a[shares_a.len() - 10..].iter().sum::<f64>() / 10.0;
        (
            label.to_string(),
            format!("{pre:.2}"),
            format!("{post_tail:.2}"),
            settle.map_or("never".to_string(), |s| format!("{s} s")),
        )
    };

    // Lottery: funding flip via ticket inflation.
    let lottery_shares = {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let a = kernel.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 200));
        let _b = kernel.spawn("b", Box::new(ComputeBound), FundingSpec::new(base, 100));
        kernel.run_until(flip_at);
        kernel.policy_mut().set_funding(a, 50).unwrap();
        kernel.run_until(duration);
        kernel.metrics().cpu_window_shares(a, window, duration)
    };

    // Fair share: share flip via set_shares.
    let fss_shares = {
        let mut policy = FairSharePolicy::new(SimDuration::from_ms(100));
        let ua = policy.create_user(200);
        let ub = policy.create_user(100);
        let mut kernel = Kernel::new(policy);
        let a = kernel.spawn("a", Box::new(ComputeBound), ua);
        let _b = kernel.spawn("b", Box::new(ComputeBound), ub);
        kernel.run_until(flip_at);
        kernel.policy_mut().set_shares(ua, 50);
        kernel.policy_mut().set_shares(ub, 100);
        kernel.run_until(duration);
        kernel.metrics().cpu_window_shares(a, window, duration)
    };

    let mut table = Table::new(&[
        "policy",
        "A share before flip",
        "A share at end",
        "time to settle after flip",
    ]);
    let (l, a1, a2, a3) = {
        let r = report("lottery", lottery_shares);
        (r.0, r.1, r.2, r.3)
    };
    table.row(&[l, a1, a2, a3]);
    let (l, a1, a2, a3) = {
        let r = report("fair share (4 s tick, 0.9 decay)", fss_shares);
        (r.0, r.1, r.2, r.3)
    };
    table.row(&[l, a1, a2, a3]);
    print!("{}", table.render());
    println!("\nthe lottery reflects the new allocation at the very next draws; the fair-share");
    println!("scheduler must first decay away the usage history its priorities encode");
}

/// Section 4.2 at scale: the alias sampler answers draws in O(1)
/// expected probes while the partial-sum tree pays lg n comparisons —
/// and both remain *exact*: the same RNG stream yields bit-identical
/// winner sequences across list, tree, and alias, through compensation
/// churn and mid-run structure switches.
pub fn alias_sampler(seed: u32) {
    // Part 1: exactness. Drive the same scripted workload — alternating
    // full quanta and half-quantum blocks (which grant and later revoke
    // compensation tickets) — through all three structures and compare
    // winner streams.
    let draws = 400usize;
    let run = |structure: SelectStructure| -> Vec<ThreadId> {
        let mut p = LotteryPolicy::new(seed.wrapping_add(7));
        p.set_structure(structure);
        let shared = p.create_currency("shared", 252_000).unwrap();
        for (i, &amount) in [100u64, 200, 300, 400].iter().enumerate() {
            let tid = ThreadId::from_index(i as u32);
            p.on_spawn(tid, FundingSpec::new(shared, amount));
            p.enqueue(tid, SimTime::ZERO);
        }
        let quantum = SimDuration::from_ms(100);
        let mut winners = Vec::with_capacity(draws);
        let mut blocked: Option<ThreadId> = None;
        for step in 0..draws {
            let Some(w) = p.pick(SimTime::ZERO) else {
                break;
            };
            winners.push(w);
            if step % 2 == 0 {
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            } else {
                p.charge(w, quantum / 2, quantum, EndReason::Blocked);
                if let Some(b) = blocked.replace(w) {
                    p.enqueue(b, SimTime::ZERO);
                }
            }
        }
        winners
    };
    let list = run(SelectStructure::List);
    let tree = run(SelectStructure::Tree);
    let alias = run(SelectStructure::Alias);
    let identical = list == tree && list == alias;
    println!(
        "winner streams bit-identical across list/tree/alias ({draws} draws, \
         compensation churn): {}",
        if identical { "OK" } else { "FAILED" }
    );

    // Part 2: probe cost. Uniform-ticket populations under dispatch
    // churn (remove the winner, requeue it at the same weight): the
    // alias overlay self-cleans, so its probe count stays flat while
    // the tree's depth grows with lg n.
    let mut table = Table::new(&[
        "clients",
        "alias probes (mean)",
        "tree depth (lg n)",
        "alias rebuilds",
    ]);
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut alias: AliasLottery<usize> = AliasLottery::with_capacity(n);
        let mut tree: TreeLottery<usize, f64> = TreeLottery::with_capacity(n);
        for i in 0..n {
            alias.insert(i, 10.0);
            tree.insert(i, 10.0);
        }
        alias.rebuild();
        let _ = alias.take_rebuild_events();
        let built = alias.rebuilds();
        let mut rng = ParkMiller::new(seed);
        let rounds = 20_000usize;
        let mut probes = 0u64;
        for _ in 0..rounds {
            let w = *alias.draw(&mut rng).unwrap();
            probes += u64::from(alias.last_probes());
            alias.remove(&w);
            alias.insert(w, 10.0);
        }
        table.row(&[
            n.to_string(),
            format!("{:.2}", probes as f64 / rounds as f64),
            tree.depth().to_string(),
            (alias.rebuilds() - built).to_string(),
        ]);
    }
    print!("{}", table.render());

    // Part 3: proportional-share isolation with the alias structure
    // driving dispatch.
    let mut p = LotteryPolicy::new(seed);
    p.set_structure(SelectStructure::Alias);
    let base = p.base_currency();
    let quantum = SimDuration::from_ms(100);
    let a = ThreadId::from_index(0);
    let b = ThreadId::from_index(1);
    p.on_spawn(a, FundingSpec::new(base, 2000));
    p.on_spawn(b, FundingSpec::new(base, 1000));
    p.enqueue(a, SimTime::ZERO);
    p.enqueue(b, SimTime::ZERO);
    let mut wins = [0u64; 2];
    for _ in 0..30_000 {
        let w = p.pick(SimTime::ZERO).unwrap();
        wins[w.index() as usize] += 1;
        p.charge(w, quantum, quantum, EndReason::QuantumExpired);
        p.enqueue(w, SimTime::ZERO);
    }
    let ratio = wins[0] as f64 / wins[1] as f64;
    println!("\nalias dispatch ratio (2000-ticket : 1000-ticket) = {ratio:.3}:1 over 30000 draws");
    let ok = (ratio - 2.0).abs() <= 0.1;
    println!(
        "alias 2:1 isolation held within 5%: {}",
        if ok { "OK" } else { "FAILED" }
    );
}
