//! The observability pipeline, end to end.
//!
//! Runs a Figure-9-shaped workload (two sibling currencies, uneven
//! intra-currency splits) with every probe-bus consumer attached at once:
//! a flight recorder, the counter aggregator, and the fairness-drift
//! monitor. Prints the drift report and a counter snapshot,
//! cross-checks the monitor's CPU shares against the kernel's own
//! [`Metrics`] accounting, and exports the flight record as JSONL plus a
//! Chrome `trace_event` timeline under `target/obs/`.

use std::fs;
use std::path::Path;

use lottery_sim::prelude::*;

/// End-to-end probe-bus run: drift table, counters, exports.
pub fn obs(seed: u32) {
    let duration = SimTime::from_secs(30);

    let mut policy = LotteryPolicy::new(seed);
    let base = policy.base_currency();
    let a = policy.create_subcurrency("A", base, 100).unwrap();
    let b = policy.create_subcurrency("B", base, 100).unwrap();
    let mut kernel = Kernel::new(policy);

    let flight = Shared::new(FlightRecorder::new(1 << 16));
    let stats = Shared::new(Aggregator::new());
    let monitor = Shared::new(FairnessMonitor::new());
    let bus = ProbeBus::enabled();
    bus.attach(flight.clone());
    bus.attach(stats.clone());
    bus.attach(monitor.clone());
    kernel.set_probe_bus(bus);

    // A is split 1:2 between A1/A2, B likewise between B1/B2; both
    // currencies are worth 100 base, so entitled base-unit values are
    // A1 = B1 = 33.3 and A2 = B2 = 66.7.
    let spawns = [
        ("A1", a, 100u64, 100.0 / 3.0),
        ("A2", a, 200, 200.0 / 3.0),
        ("B1", b, 100, 100.0 / 3.0),
        ("B2", b, 200, 200.0 / 3.0),
    ];
    let mut threads = Vec::new();
    for &(name, cur, amount, entitled) in &spawns {
        let tid = kernel.spawn(name, Box::new(ComputeBound), FundingSpec::new(cur, amount));
        monitor.with(|m| m.set_entitlement(tid.index(), entitled));
        threads.push((name, tid));
    }

    kernel.run_until(duration);

    let report = monitor.with(|m| m.report());
    println!("fairness drift (observed vs entitled, binomial z alarm):");
    print!("{}", report.to_text());

    // The monitor derives CPU shares purely from quantum-end probe
    // events; the kernel's Metrics accounts run segments directly. The
    // two pipelines must agree.
    let total_cpu: u64 = threads
        .iter()
        .map(|&(_, tid)| kernel.metrics().cpu_us(tid))
        .sum();
    let mut max_dev: f64 = 0.0;
    for (row, &(_, tid)) in report.rows.iter().zip(&threads) {
        let metrics_share = kernel.metrics().cpu_us(tid) as f64 / total_cpu as f64;
        max_dev = max_dev.max((row.cpu_share - metrics_share).abs());
    }
    println!(
        "probe-bus vs Metrics cpu-share max deviation: {max_dev:.6} ({})",
        if max_dev < 0.01 { "agree" } else { "DISAGREE" }
    );

    println!("\ncounter snapshot:");
    let text = stats.with(|s| s.prometheus_text());
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }

    let dir = Path::new("target/obs");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let (jsonl, trace, events, dropped) =
        flight.with(|f| (f.to_jsonl(), f.to_chrome_trace(), f.len(), f.dropped()));
    let jsonl_path = dir.join("flight.jsonl");
    let trace_path = dir.join("trace.json");
    match fs::write(&jsonl_path, &jsonl) {
        Ok(()) => println!(
            "\nwrote {} ({events} events, {dropped} dropped)",
            jsonl_path.display()
        ),
        Err(e) => eprintln!("failed to write {}: {e}", jsonl_path.display()),
    }
    match fs::write(&trace_path, &trace) {
        Ok(()) => println!("wrote {} (chrome://tracing)", trace_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", trace_path.display()),
    }
}
