//! Section 5.6: system overhead.
//!
//! The paper measures three Dhrystone tasks for 200 seconds and a
//! five-client database run under both the lottery kernel and unmodified
//! Mach, finding the lottery prototype's overhead "comparable to that of
//! the standard Mach timesharing policy". The simulator's analogue charges
//! an explicit per-decision cost — the paper's unoptimized list-based
//! lottery costs on the order of 1000 RISC instructions per decision
//! (~40 µs on the 25 MHz DECStation), against a few hundred for a
//! timesharing dequeue — plus a context-switch cost, and reports how much
//! useful progress each policy delivers.

use lottery_sim::prelude::*;
use lottery_stats::table::Table;

/// Per-decision cost, in microseconds: random draw + run-queue walk +
/// currency conversions for the unoptimized lottery; priority-queue
/// operations for the baselines.
const LOTTERY_DISPATCH_US: u64 = 40;
const TIMESHARE_DISPATCH_US: u64 = 15;
const RR_DISPATCH_US: u64 = 5;

/// Cache/TLB-refill cost charged when the dispatched thread changes.
const SWITCH_US: u64 = 150;

struct Outcome {
    useful_cpu_s: f64,
    overhead_ms: f64,
    decisions: u64,
    switches: u64,
}

fn dhrystone_total(policy_name: &str, tasks: usize, seed: u32) -> Outcome {
    let duration = SimTime::from_secs(200);
    fn finish<P: Policy>(mut kernel: Kernel<P>, tids: &[ThreadId], duration: SimTime) -> Outcome {
        kernel.run_until(duration);
        let cpu: u64 = tids.iter().map(|&t| kernel.metrics().cpu_us(t)).sum();
        Outcome {
            useful_cpu_s: cpu as f64 / 1e6,
            overhead_ms: kernel.metrics().switch_overhead.as_us() as f64 / 1e3,
            decisions: kernel.metrics().decisions,
            switches: kernel.metrics().context_switches,
        }
    }
    match policy_name {
        "lottery" => {
            let policy = LotteryPolicy::new(seed);
            let base = policy.base_currency();
            let mut kernel = Kernel::new(policy);
            kernel.set_dispatch_cost(SimDuration::from_us(LOTTERY_DISPATCH_US));
            kernel.set_context_switch_cost(SimDuration::from_us(SWITCH_US));
            let tids: Vec<ThreadId> = (0..tasks)
                .map(|i| {
                    kernel.spawn(
                        format!("dhry{i}"),
                        Box::new(ComputeBound),
                        FundingSpec::new(base, 100),
                    )
                })
                .collect();
            finish(kernel, &tids, duration)
        }
        "timeshare" => {
            let mut kernel = Kernel::new(TimesharePolicy::new(SimDuration::from_ms(100)));
            kernel.set_dispatch_cost(SimDuration::from_us(TIMESHARE_DISPATCH_US));
            kernel.set_context_switch_cost(SimDuration::from_us(SWITCH_US));
            let tids: Vec<ThreadId> = (0..tasks)
                .map(|i| kernel.spawn(format!("dhry{i}"), Box::new(ComputeBound), 12))
                .collect();
            finish(kernel, &tids, duration)
        }
        "round-robin" => {
            let mut kernel = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
            kernel.set_dispatch_cost(SimDuration::from_us(RR_DISPATCH_US));
            kernel.set_context_switch_cost(SimDuration::from_us(SWITCH_US));
            let tids: Vec<ThreadId> = (0..tasks)
                .map(|i| kernel.spawn(format!("dhry{i}"), Box::new(ComputeBound), ()))
                .collect();
            finish(kernel, &tids, duration)
        }
        _ => unreachable!("unknown policy"),
    }
}

/// Runs the Section 5.6 overhead comparison.
pub fn run(seed: u32) {
    println!("200-second Dhrystone runs; useful CPU excludes dispatch and switch costs:\n");
    let mut table = Table::new(&[
        "policy",
        "tasks",
        "useful CPU (s)",
        "overhead (ms)",
        "vs round-robin",
        "decisions",
        "switches",
    ]);
    for &tasks in &[3usize, 8] {
        let rr = dhrystone_total("round-robin", tasks, seed);
        for policy in ["round-robin", "timeshare", "lottery"] {
            let o = dhrystone_total(policy, tasks, seed);
            table.row(&[
                policy.to_string(),
                tasks.to_string(),
                format!("{:.4}", o.useful_cpu_s),
                format!("{:.1}", o.overhead_ms),
                format!("{:+.3}%", (o.useful_cpu_s / rr.useful_cpu_s - 1.0) * 100.0),
                o.decisions.to_string(),
                o.switches.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\npaper: 3 tasks within measurement noise (differences < stddev); 8 tasks 2.7% fewer"
    );
    println!("       iterations under lottery; database run 1155.5 s vs 1135.5 s (1.8% slower).");
    println!("       The paper attributes most of the difference to cache/TLB effects of");
    println!("       round-robin vs lottery dispatch *order*, not to lottery computation itself.");
    println!(
        "\nmodelled costs per decision: lottery {LOTTERY_DISPATCH_US} us, timeshare {TIMESHARE_DISPATCH_US} us, RR {RR_DISPATCH_US} us; context switch {SWITCH_US} us"
    );
    println!(
        "(cargo bench -p lottery-bench measures the real decision costs of this implementation)"
    );
}
