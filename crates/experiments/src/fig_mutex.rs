//! Figures 10 and 11: the lottery-scheduled mutex.

use lottery_core::prelude::*;
use lottery_stats::table::Table;
use lottery_sync::experiment::{self, MutexExperiment};
use lottery_sync::sim_mutex::{SimLotteryMutex, WaiterFunding};

/// Figure 10: the funding structure while t2 holds the lock and t3, t7,
/// t8 wait on it.
pub fn fig10(_seed: u32) {
    let mut ledger = Ledger::new();
    let group = ledger.create_currency("app").unwrap();
    let backing = ledger.issue_root(ledger.base(), 4000).unwrap();
    ledger.fund_currency(backing, group).unwrap();

    let names = ["t2", "t3", "t7", "t8"];
    let clients: Vec<ClientId> = names
        .iter()
        .map(|n| {
            let c = ledger.create_client(*n);
            let t = ledger.issue_root(group, 1).unwrap();
            ledger.fund_client(t, c).unwrap();
            ledger.activate_client(c).unwrap();
            c
        })
        .collect();

    let mut mutex = SimLotteryMutex::new(&mut ledger, "lock").unwrap();
    let funding = WaiterFunding {
        currency: group,
        amount: 1,
    };
    assert!(mutex.acquire(&mut ledger, clients[0], funding).unwrap());
    for &waiter in &clients[1..] {
        assert!(!mutex.acquire(&mut ledger, waiter, funding).unwrap());
        ledger.deactivate_client(waiter).unwrap();
    }

    let mut v = Valuator::new(&ledger);
    let mut table = Table::new(&["object", "state", "value (base units)"]);
    table.row(&[
        "lock currency".into(),
        format!(
            "{} backing transfers",
            ledger.currency(mutex.currency()).unwrap().backing().len()
        ),
        format!("{:.0}", v.currency_value(mutex.currency()).unwrap()),
    ]);
    for (i, name) in names.iter().enumerate() {
        let state = if mutex.holder() == Some(clients[i]) {
            "lock owner (holds inheritance ticket)"
        } else {
            "blocked, funding the lock"
        };
        table.row(&[
            name.to_string(),
            state.to_string(),
            format!("{:.0}", v.client_value(clients[i]).unwrap()),
        ]);
    }
    print!("{}", table.render());
    println!("\nthe owner executes with its own funding plus all waiter funding (priority-inversion-free)");
}

/// Figure 11: eight threads in two groups with a 2:1 allocation compete
/// for one mutex (h = c = 50 ms, two minutes).
pub fn fig11(seed: u32) {
    let config = MutexExperiment {
        seed,
        ..MutexExperiment::default()
    };
    let report = experiment::run(&config);

    let mut table = Table::new(&[
        "group",
        "funding",
        "acquisitions",
        "mean wait (ms)",
        "stddev (ms)",
    ]);
    for (i, g) in report.groups.iter().enumerate() {
        table.row(&[
            ["A", "B"][i].to_string(),
            config.group_funding[i].to_string(),
            g.acquisitions.to_string(),
            format!("{:.0}", g.waiting_ms.mean()),
            format!("{:.0}", g.waiting_ms.stddev()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nacquisition ratio A:B = {:.2}:1 (paper: 1.80:1, from 763:423)",
        report.acquisition_ratio(0, 1)
    );
    println!(
        "waiting time ratio A:B = 1:{:.2} (paper: 1:2.11, from 450 ms : 948 ms)",
        report.waiting_ratio(1, 0)
    );
    for (i, g) in report.groups.iter().enumerate() {
        println!("\ngroup {} waiting-time histogram:", ["A", "B"][i]);
        print!("{}", g.histogram.render(40));
    }
}

/// Figure 11 on the full kernel: the same two-group mutex workload with
/// CPU contention in play (lock scheduling and processor scheduling
/// interacting, as in the paper's CThreads prototype).
pub fn fig11_kernel(seed: u32) {
    use lottery_sim::prelude::*;

    // A 30 ms quantum guarantees the 50 ms hold spans preemptions, so the
    // lock is contended exactly as on real hardware.
    let mut policy = LotteryPolicy::with_quantum(seed, SimDuration::from_ms(30));
    let group_a = policy.create_currency("A", 2000).unwrap();
    let group_b = policy.create_currency("B", 1000).unwrap();
    let lock = policy.create_lock();
    let mut kernel = Kernel::new(policy);
    let worker = |lock| MutexWorker::new(lock, SimDuration::from_ms(50), SimDuration::from_ms(50));
    let spawn_group = |kernel: &mut Kernel<LotteryPolicy>, cur, tag: &str| -> Vec<ThreadId> {
        (0..4)
            .map(|i| {
                kernel.spawn(
                    format!("{tag}{i}"),
                    Box::new(worker(lock)),
                    FundingSpec::new(cur, 100),
                )
            })
            .collect()
    };
    let a = spawn_group(&mut kernel, group_a, "a");
    let b = spawn_group(&mut kernel, group_b, "b");
    kernel.run_until(SimTime::from_secs(120));

    let mut table = Table::new(&[
        "group",
        "funding",
        "lock cycles (CPU s / 0.1 s)",
        "mean lock wait (ms)",
        "mean waits recorded",
    ]);
    for (name, tids, funding) in [("A", &a, 2000u64), ("B", &b, 1000)] {
        let cpu: u64 = tids.iter().map(|&t| kernel.metrics().cpu_us(t)).sum();
        let mut waits = lottery_stats::Summary::new();
        for &t in tids {
            if let Some(m) = kernel.metrics().thread(t) {
                waits.merge(&m.lock_wait_us);
            }
        }
        table.row(&[
            name.to_string(),
            funding.to_string(),
            format!("{:.0}", cpu as f64 / 1e5),
            format!("{:.0}", waits.mean() / 1e3),
            waits.count().to_string(),
        ]);
    }
    print!("{}", table.render());
    let cpu = |tids: &Vec<ThreadId>| -> f64 {
        tids.iter()
            .map(|&t| kernel.metrics().cpu_us(t))
            .sum::<u64>() as f64
    };
    let wait_mean = |tids: &Vec<ThreadId>| -> f64 {
        let mut s = lottery_stats::Summary::new();
        for &t in tids {
            if let Some(m) = kernel.metrics().thread(t) {
                s.merge(&m.lock_wait_us);
            }
        }
        s.mean()
    };
    println!(
        "\ncycle ratio A:B = {:.2}:1 (paper's acquisitions: 1.80:1); wait ratio A:B = 1:{:.2} (paper: 1:2.11)",
        cpu(&a) / cpu(&b),
        wait_mean(&b) / wait_mean(&a)
    );
    println!(
        "with CPU contention modelled, absolute waits rise toward the paper's 450/948 ms scale"
    );
}
