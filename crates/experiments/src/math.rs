//! Section 2 and Section 6.2 distribution checks.

use lottery_core::inverse;
use lottery_core::prelude::*;
use lottery_stats::dist;
use lottery_stats::summary::Summary;
use lottery_stats::table::Table;

/// Section 2: the number of lotteries won by a client has a binomial
/// distribution; the number of lotteries until its first win is geometric;
/// the coefficient of variation of the observed win proportion is
/// `sqrt((1-p)/(np))`.
pub fn binomial(seed: u32) {
    let p = 0.25; // Client holds 1 of 4 tickets.
    let n_lotteries = 400u64;
    let trials = 2000;

    let mut rng = ParkMiller::new(seed);
    let mut wins = Summary::new();
    let mut first_wins = Summary::new();
    for _ in 0..trials {
        let mut won = 0u64;
        let mut first: Option<u64> = None;
        for i in 0..n_lotteries {
            let draw = rng.below(4);
            if draw == 0 {
                won += 1;
                if first.is_none() {
                    first = Some(i + 1);
                }
            }
        }
        wins.record(won as f64);
        if let Some(f) = first {
            first_wins.record(f as f64);
        }
    }

    let mut table = Table::new(&["quantity", "expected (closed form)", "observed"]);
    table.row(&[
        "E[wins]  (np)".into(),
        format!("{:.2}", dist::binomial_mean(n_lotteries, p)),
        format!("{:.2}", wins.mean()),
    ]);
    table.row(&[
        "Var[wins]  (np(1-p))".into(),
        format!("{:.2}", dist::binomial_variance(n_lotteries, p)),
        format!("{:.2}", wins.sample_variance()),
    ]);
    table.row(&[
        "cv of win proportion  sqrt((1-p)/np)".into(),
        format!("{:.4}", dist::win_proportion_cv(n_lotteries, p)),
        format!("{:.4}", wins.cv()),
    ]);
    table.row(&[
        "E[first win]  (1/p)".into(),
        format!("{:.2}", dist::geometric_mean(p)),
        format!("{:.2}", first_wins.mean()),
    ]);
    table.row(&[
        "Var[first win]  ((1-p)/p^2)".into(),
        format!("{:.2}", dist::geometric_variance(p)),
        format!("{:.2}", first_wins.sample_variance()),
    ]);
    print!("{}", table.render());
    println!(
        "\n({} trials of {} lotteries each, client holds 1 of 4 tickets)",
        trials, n_lotteries
    );
}

/// Section 6.2: inverse-lottery loss probabilities
/// `P[i] = (1/(n-1)) (1 - t_i/T)`.
pub fn inverse(seed: u32) {
    let tickets: [u64; 4] = [400, 300, 200, 100];
    let entries: Vec<(usize, u64)> = tickets.iter().copied().enumerate().collect();
    let draws = 200_000;
    let mut rng = ParkMiller::new(seed);
    let mut losses = [0u64; 4];
    for _ in 0..draws {
        losses[inverse::draw_loser(&entries, &mut rng).unwrap()] += 1;
    }

    let mut table = Table::new(&["client", "tickets", "P[loss] formula", "observed"]);
    let expected: Vec<f64> = (0..4)
        .map(|i| inverse::loss_probability(&tickets, i))
        .collect();
    for i in 0..4 {
        table.row(&[
            format!("c{i}"),
            tickets[i].to_string(),
            format!("{:.4}", expected[i]),
            format!("{:.4}", losses[i] as f64 / draws as f64),
        ]);
    }
    print!("{}", table.render());

    let expected_counts: Vec<f64> = expected.iter().map(|p| p * draws as f64).collect();
    let chi2 = dist::chi_square(&losses, &expected_counts);
    println!(
        "\nchi-square = {:.2} over 3 dof ({})",
        chi2,
        if dist::chi_square_ok(chi2, 3) {
            "consistent with the formula at the 0.999 level"
        } else {
            "INCONSISTENT — investigate"
        }
    );
}
