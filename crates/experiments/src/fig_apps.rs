//! Figures 6–8: Monte-Carlo inflation, the query server, and video rate
//! control.

use lottery_apps::dbserver::{self, DbExperiment};
use lottery_apps::montecarlo::{self, MonteCarloExperiment};
use lottery_apps::mpeg::{self, MpegExperiment};
use lottery_sim::prelude::*;
use lottery_stats::table::Table;

/// Figure 6: three staggered Monte-Carlo integrations, each periodically
/// setting its ticket value proportional to the square of its relative
/// error; cumulative trials sampled every 50 seconds.
pub fn fig6(seed: u32) {
    let config = MonteCarloExperiment {
        seed,
        ..MonteCarloExperiment::default()
    };
    let report = montecarlo::run(&config);
    let mut table = Table::new(&[
        "time (s)",
        "task0 Mtrials",
        "task1 Mtrials",
        "task2 Mtrials",
    ]);
    let end = config.duration.as_us();
    let step = 50_000_000u64;
    let mut t = 0;
    while t <= end {
        table.row(&[
            (t / 1_000_000).to_string(),
            format!("{:.2}", report.trials[0].value_at(t) / 1e6),
            format!("{:.2}", report.trials[1].value_at(t) / 1e6),
            format!("{:.2}", report.trials[2].value_at(t) / 1e6),
        ]);
        t += step;
    }
    print!("{}", table.render());
    println!(
        "\nfinal trials: {:.2}M / {:.2}M / {:.2}M — relative errors {:.5} / {:.5} / {:.5}",
        report.totals[0] / 1e6,
        report.totals[1] / 1e6,
        report.totals[2] / 1e6,
        report.errors[0],
        report.errors[1],
        report.errors[2],
    );
    println!("paper's shape: later tasks start fast and taper, curves converge (\"bumps\" at each start)");
}

/// Figure 7: three database clients with an 8:3:1 allocation against a
/// multithreaded server funded only by RPC ticket transfers.
pub fn fig7(seed: u32) {
    let config = DbExperiment {
        seed,
        ..DbExperiment::default()
    };
    let report = dbserver::run(&config);

    let mut table = Table::new(&[
        "time (s)",
        "client A (800)",
        "client B (300)",
        "client C (100)",
    ]);
    let mut t = 0u64;
    while t <= config.duration.as_us() {
        table.row(&[
            (t / 1_000_000).to_string(),
            format!("{:.0}", report.clients[0].completed.value_at(t)),
            format!("{:.0}", report.clients[1].completed.value_at(t)),
            format!("{:.0}", report.clients[2].completed.value_at(t)),
        ]);
        t += 100_000_000;
    }
    println!("cumulative queries processed:");
    print!("{}", table.render());

    let mut table = Table::new(&[
        "client",
        "tickets",
        "queries",
        "mean response (s)",
        "stddev (s)",
    ]);
    for (i, (name, tickets)) in [("A", 800u64), ("B", 300), ("C", 100)].iter().enumerate() {
        let c = &report.clients[i];
        table.row(&[
            name.to_string(),
            tickets.to_string(),
            c.queries.to_string(),
            format!("{:.2}", c.mean_response_secs),
            format!("{:.2}", c.stddev_response_secs),
        ]);
    }
    println!();
    print!("{}", table.render());
    println!("\npaper: responses 17.19 / 43.19 / 132.20 s; B and C complete 38 and 13 queries;");
    println!("       when A finishes its 20 queries, B+C have completed 10 in total");

    // The paper's milestone: completions by B and C at the moment A is
    // done with its 20 queries.
    let a_done_at = report.clients[0]
        .completed
        .points()
        .iter()
        .find(|&&(_, v)| v >= 20.0)
        .map(|&(t, _)| t);
    if let Some(t) = a_done_at {
        let b = report.clients[1].completed.value_at(t);
        let c = report.clients[2].completed.value_at(t);
        println!(
            "here: A finishes at {:.0} s with B+C at {:.0} queries",
            t as f64 / 1e6,
            b + c
        );
        // The paper's 17.19/43.19/132.20 triple reflects the fully
        // contended regime; once A exits, B and C speed up. Restrict the
        // means to queries completed while A was still active.
        let phase_mean = |i: usize| {
            let rs: Vec<f64> = report.clients[i]
                .responses
                .iter()
                .filter(|&&(at, _)| at <= t)
                .map(|&(_, r)| r / 1e6)
                .collect();
            if rs.is_empty() {
                0.0
            } else {
                rs.iter().sum::<f64>() / rs.len() as f64
            }
        };
        println!(
            "mean responses while all three clients were active: {:.2} / {:.2} / {:.2} s",
            phase_mean(0),
            phase_mean(1),
            phase_mean(2)
        );
    }
}

/// Figure 8: three MPEG viewers at 3:2:1, switched to 3:1:2 mid-run.
pub fn fig8(seed: u32) {
    let config = MpegExperiment {
        seed,
        ..MpegExperiment::default()
    };
    let report = mpeg::run(&config);
    let mut table = Table::new(&[
        "time (s)",
        "viewer A frames",
        "viewer B frames",
        "viewer C frames",
    ]);
    let mut t = 0u64;
    while t <= config.duration.as_us() {
        table.row(&[
            (t / 1_000_000).to_string(),
            format!("{:.0}", report.frames[0].value_at(t)),
            format!("{:.0}", report.frames[1].value_at(t)),
            format!("{:.0}", report.frames[2].value_at(t)),
        ]);
        t += 30_000_000;
    }
    print!("{}", table.render());
    println!(
        "\nrates before switch (A:B:C = 3:2:1): {:.2} / {:.2} / {:.2} frames/s (ratio {:.2} : {:.2} : 1)",
        report.rates_before[0],
        report.rates_before[1],
        report.rates_before[2],
        report.rates_before[0] / report.rates_before[2],
        report.rates_before[1] / report.rates_before[2],
    );
    println!(
        "rates after switch  (A:B:C = 3:1:2): {:.2} / {:.2} / {:.2} frames/s (ratio {:.2} : 1 : {:.2})",
        report.rates_after[0],
        report.rates_after[1],
        report.rates_after[2],
        report.rates_after[0] / report.rates_after[1],
        report.rates_after[2] / report.rates_after[1],
    );
    println!("paper (X-server distorted): 1.92:1.50:1 before, 1.92:1:1.53 after");
    let _ = SimTime::ZERO;
}
