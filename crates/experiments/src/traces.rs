//! Workload traces: heavy-tailed and diurnal job streams through the
//! scheduler, lottery vs FCFS-style admission.
//!
//! Two [`TraceSpec`] generators model the canonical open-system
//! workloads:
//!
//! * [`heavy_tailed_spec`] — Poisson arrivals with bounded-Pareto service
//!   demands (α ≈ 1.5), the classic "most jobs are tiny, most work is in
//!   the giants" mix where scheduling policy dominates stretch.
//! * [`diurnal_spec`] — a sinusoidally modulated arrival rate over the
//!   window, so load peaks and troughs like a day of interactive use.
//!
//! Each spec runs twice: once under lottery scheduling (tenants hold
//! currencies with different funding) and once under a run-to-completion
//! round-robin baseline that admits jobs strictly in arrival order and is
//! blind to tickets. The tables report per-tenant mean/p95 response time
//! and stretch. The same specs drive the `replay` experiment: every trace
//! here is a replayable capture.

use lottery_core::rng::SplitMix64;
use lottery_sim::prelude::*;
use lottery_sim::replay::{job_outcomes, record, run_fcfs, CaptureConfig, JobOutcome};
use lottery_sim::sched::lottery::SelectStructure;
use lottery_stats::table::Table;

/// Tenant currencies used by both generators: name and base funding.
pub const TENANTS: &[(&str, u64)] = &[("gold", 400), ("silver", 200), ("bronze", 100)];

/// Draws a unit uniform from the scatter generator.
fn unit(rng: &mut SplitMix64) -> f64 {
    // 53 high bits → exact dyadic rational in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Bounded-Pareto service demand in `[lo, hi]` microseconds with tail
/// index `alpha`, via inverse-CDF sampling.
fn bounded_pareto(rng: &mut SplitMix64, lo: f64, hi: f64, alpha: f64) -> u64 {
    let u = unit(rng);
    let lo_a = lo.powf(-alpha);
    let hi_a = hi.powf(-alpha);
    let x = (lo_a - u * (lo_a - hi_a)).powf(-1.0 / alpha);
    x as u64
}

/// Exponential inter-arrival gap with the given mean, in microseconds.
fn exp_gap(rng: &mut SplitMix64, mean_us: f64) -> u64 {
    let u = unit(rng).max(f64::MIN_POSITIVE);
    (-u.ln() * mean_us) as u64
}

/// Assembles a spec from generated `(arrival, service, sleep)` triples,
/// assigning tenants round-robin so every currency sees the same mix.
fn assemble(triples: Vec<(u64, u64, u64)>) -> TraceSpec {
    let currencies = TENANTS
        .iter()
        .map(|&(name, amount)| CurrencySnapshot {
            name: name.to_string(),
            amount,
        })
        .collect();
    let jobs = triples
        .into_iter()
        .enumerate()
        .map(|(i, (arrival_us, service_us, sleep_us))| {
            let (tenant, funding) = TENANTS[i % TENANTS.len()];
            TraceJob {
                arrival_us,
                service_us,
                sleep_us,
                tenant: tenant.to_string(),
                // Jobs split their tenant's currency evenly; the absolute
                // amount is arbitrary, shares are relative.
                tickets: funding,
            }
        })
        .collect();
    TraceSpec { currencies, jobs }
}

/// Poisson arrivals, bounded-Pareto service: `jobs` jobs at an offered
/// load where mean service ≈ `mean_gap_us` × utilisation.
pub fn heavy_tailed_spec(seed: u64, jobs: usize, mean_gap_us: f64) -> TraceSpec {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0u64;
    let mut triples = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        clock += exp_gap(&mut rng, mean_gap_us);
        let service = bounded_pareto(&mut rng, 500.0, 80_000.0, 1.5);
        // One job in four has an I/O phase half its service long.
        let sleep = if rng.next_u64().is_multiple_of(4) {
            service / 2
        } else {
            0
        };
        triples.push((clock, service, sleep));
    }
    assemble(triples)
}

/// Diurnal arrivals: the inter-arrival mean swings sinusoidally between
/// `mean_gap_us / 3` (peak) and `mean_gap_us` (trough) across `period_us`,
/// with fixed-ish service demands so the effect isolated is load shape.
pub fn diurnal_spec(seed: u64, jobs: usize, mean_gap_us: f64, period_us: u64) -> TraceSpec {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0u64;
    let mut triples = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        let phase = (clock % period_us) as f64 / period_us as f64;
        let day = (phase * std::f64::consts::TAU).sin();
        // day = +1 at peak → gap/3; day = -1 at trough → gap.
        let gap = mean_gap_us * (2.0 - day) / 3.0;
        clock += exp_gap(&mut rng, gap);
        let service = 2_000 + rng.next_u64() % 6_000;
        triples.push((clock, service, 0));
    }
    assemble(triples)
}

/// Mean and 95th percentile of a sample.
fn mean_p95(samples: &mut [f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p95 = samples[(samples.len() - 1) * 95 / 100];
    (mean, p95)
}

/// Prints per-tenant response/stretch for one run.
fn report(label: &str, spec: &TraceSpec, outcomes: &[JobOutcome]) {
    let mut table = Table::new(&[
        "tenant",
        "done",
        "resp mean (ms)",
        "resp p95 (ms)",
        "stretch mean",
        "stretch p95",
    ]);
    for &(tenant, _) in TENANTS {
        let mut resp: Vec<f64> = Vec::new();
        let mut stretch: Vec<f64> = Vec::new();
        for o in outcomes {
            if spec.jobs[o.job].tenant == tenant {
                resp.push(o.response_us as f64 / 1000.0);
                stretch.push(o.stretch);
            }
        }
        let n = resp.len();
        let (rm, rp) = mean_p95(&mut resp);
        let (sm, sp) = mean_p95(&mut stretch);
        table.row(&[
            tenant.to_string(),
            n.to_string(),
            format!("{rm:.2}"),
            format!("{rp:.2}"),
            format!("{sm:.2}"),
            format!("{sp:.2}"),
        ]);
    }
    println!(
        "{label}: {} of {} jobs finished",
        outcomes.len(),
        spec.jobs.len()
    );
    print!("{}", table.render());
}

/// Mean response time (ms) of one tenant's finished jobs.
fn tenant_mean_response(spec: &TraceSpec, outcomes: &[JobOutcome], tenant: &str) -> f64 {
    let mut resp: Vec<f64> = outcomes
        .iter()
        .filter(|o| spec.jobs[o.job].tenant == tenant)
        .map(|o| o.response_us as f64 / 1000.0)
        .collect();
    mean_p95(&mut resp).0
}

/// Runs one spec under lottery and FCFS and prints both tables,
/// returning the lottery outcomes for downstream assertions.
fn compare(name: &str, spec: &TraceSpec, seed: u32, until_us: u64) -> Vec<JobOutcome> {
    println!("--- {name} ---");
    let config = CaptureConfig {
        seed,
        structure: SelectStructure::Tree,
        shards: 0,
        compensation: true,
        // A short quantum so arrivals interleave at trace resolution
        // instead of batching behind 100 ms Mach quanta.
        quantum_us: 1_000,
        until_us,
    };
    let log = record(spec.clone(), &config).unwrap();
    let lottery = job_outcomes(spec, &log.events);
    report("lottery (tree, 1 ms quantum)", spec, &lottery);

    let fcfs_events = run_fcfs(spec, until_us);
    let fcfs = job_outcomes(spec, &fcfs_events);
    report("fcfs (run-to-completion round-robin)", spec, &fcfs);
    println!();
    lottery
}

/// Entry point: both generators, lottery vs FCFS.
pub fn traces(seed: u32) {
    let until_us = 3_000_000;
    // Mean service is ≈1.4 ms, so a 2 ms mean gap offers ≈70% load —
    // enough contention that admission policy shows in the tails.
    let heavy = heavy_tailed_spec(u64::from(seed), 150, 2_000.0);
    let heavy_lottery = compare(
        "heavy-tailed (bounded-Pareto α=1.5, Poisson arrivals)",
        &heavy,
        seed,
        until_us,
    );
    let gold = tenant_mean_response(&heavy, &heavy_lottery, "gold");
    let bronze = tenant_mean_response(&heavy, &heavy_lottery, "bronze");
    if gold < bronze {
        println!(
            "OK lottery orders tenants by funding on the heavy-tailed trace: \
             gold {gold:.2} ms < bronze {bronze:.2} ms mean response"
        );
    } else {
        println!("FAILED: gold mean response {gold:.2} ms did not beat bronze {bronze:.2} ms");
    }
    let diurnal = diurnal_spec(u64::from(seed), 120, 9_000.0, 500_000);
    compare(
        "diurnal (sinusoidal arrival rate)",
        &diurnal,
        seed,
        until_us,
    );
    println!(
        "every table above is a replayable capture: the `replay` experiment \
         re-runs such logs bit for bit"
    );
}
