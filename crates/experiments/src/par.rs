//! The real-thread backend, end to end.
//!
//! Three demonstrations of the `lottery-par` runtime on actual OS
//! threads. First, the 1-worker guarantee: a `ParKernel` with a single
//! worker replays the simulated pair it ports — one-CPU [`SmpKernel`]
//! over a one-shard [`DistributedLottery`] — bit for bit, winner by
//! winner. Second, proportional share survives real concurrency: four
//! workers racing on four OS threads still hold a 3:1 funding ratio
//! machine-wide, because each shard runs the same per-shard lottery the
//! simulator proves fair. Third, work stealing: a worker whose only job
//! exits early steals ready threads from its loaded peer over the
//! message channels, and after quiesce the ledger still carries exactly
//! the surviving threads' funding — value is conserved across
//! migrations and every thread is owned by exactly one worker.

use lottery_obs::EventKind;
use lottery_par::{ParKernel, WorkSpec};
use lottery_sim::prelude::*;

/// The heterogeneous anchor mix: `(work, amount, shared-currency?)`.
fn canonical_mix() -> Vec<(WorkSpec, u64, bool)> {
    vec![
        (WorkSpec::Compute, 300, false),
        (
            WorkSpec::Io {
                run: SimDuration::from_ms(7),
                sleep: SimDuration::from_ms(23),
            },
            100,
            true,
        ),
        (WorkSpec::YieldEvery(SimDuration::from_ms(13)), 200, true),
        (WorkSpec::Finite(SimDuration::from_ms(90)), 50, false),
    ]
}

/// One real worker over the anchor mix: winners as `(start µs, thread)`.
fn par_winners(seed: u32, quantum: SimDuration, until: SimTime) -> Vec<(u64, u32)> {
    let mut kernel = ParKernel::with_quantum(seed, 1, quantum);
    let shared = kernel.create_currency("shared", 1_000).expect("fresh");
    let base = kernel.base_currency();
    for (work, amount, in_shared) in canonical_mix() {
        let currency = if in_shared { shared } else { base };
        kernel.spawn(work, FundingSpec { currency, amount });
    }
    kernel.run(until).workers[0].winners.clone()
}

/// The simulated twin: same seed, same ledger ops, winners read back
/// from the flight record's dispatch probes.
fn sim_winners(seed: u32, quantum: SimDuration, until: SimTime) -> Vec<(u64, u32)> {
    let mut policy = DistributedLottery::with_quantum(seed, 1, quantum);
    let shared = policy.create_currency("shared", 1_000).expect("fresh");
    let base = policy.base_currency();
    let mut kernel = SmpKernel::new(policy, 1);
    let recorder = Shared::new(FlightRecorder::new(1 << 16));
    let bus = ProbeBus::enabled();
    bus.attach(recorder.clone());
    kernel.set_probe_bus(bus);
    for (i, (work, amount, in_shared)) in canonical_mix().into_iter().enumerate() {
        let currency = if in_shared { shared } else { base };
        kernel.spawn(
            format!("t{i}"),
            work.to_workload(),
            FundingSpec { currency, amount },
        );
    }
    kernel.run_until(until).expect("supported bursts only");
    recorder.with(|r| {
        assert_eq!(r.dropped(), 0, "flight capacity must hold the whole run");
        r.events()
            .filter_map(|e| match e.kind {
                EventKind::Dispatch { thread, .. } => Some((e.time_us, thread)),
                _ => None,
            })
            .collect()
    })
}

/// Entry point: 1-worker bit-equality, 4-worker proportional share, and
/// conservation under work stealing.
pub fn run(seed: u32) {
    // --- 1. One worker replays the simulator bit for bit. -----------
    let quantum = SimDuration::from_ms(20);
    let until = SimTime::ZERO + SimDuration::from_secs(2);
    let par = par_winners(seed, quantum, until);
    let sim = sim_winners(seed, quantum, until);
    println!(
        "1-worker anchor mix: {} real dispatches vs {} simulated",
        par.len(),
        sim.len()
    );
    if par == sim && par.len() > 50 {
        println!(
            "OK 1-worker winner stream bit-identical to the simulated SmpKernel tree \
             ({} dispatches)",
            par.len()
        );
    } else {
        let diverged = par.iter().zip(&sim).position(|(a, b)| a != b);
        println!("FAIL 1-worker stream diverged from the simulator at {diverged:?}");
    }

    // --- 2. Four real workers hold a 3:1 funding ratio. -------------
    // Spawn the heavy group first so least-loaded placement deals one
    // 300-ticket and one 100-ticket compute thread to every shard; each
    // worker then runs an independent 3:1 lottery and the machine-wide
    // dispatch ratio is the per-shard ratio.
    let workers = 4u32;
    let mut kernel = ParKernel::with_quantum(seed, workers, SimDuration::from_ms(5));
    let base = kernel.base_currency();
    for _ in 0..workers {
        kernel.spawn(WorkSpec::Compute, FundingSpec::new(base, 300));
    }
    for _ in 0..workers {
        kernel.spawn(WorkSpec::Compute, FundingSpec::new(base, 100));
    }
    let report = kernel.run(SimTime::ZERO + SimDuration::from_secs(4));
    let (mut heavy, mut light) = (0u64, 0u64);
    for worker in &report.workers {
        for &(_, tid) in &worker.winners {
            if tid < workers {
                heavy += 1;
            } else {
                light += 1;
            }
        }
    }
    let ratio = heavy as f64 / light.max(1) as f64;
    println!(
        "4 workers, 3:1 funding: {} heavy vs {} light dispatches over {} decisions \
         (ratio {ratio:.2})",
        heavy,
        light,
        report.decisions()
    );
    if (2.2..=4.0).contains(&ratio) {
        println!("OK 4 real workers hold the 3:1 funding ratio machine-wide: ratio {ratio:.2}");
    } else {
        println!("FAIL expected a ~3:1 dispatch ratio, got {ratio:.2}");
    }

    // --- 3. Work stealing conserves value and ownership. ------------
    // Worker 0 gets one short finite job (funded heavily so placement
    // isolates it); the other shards split nine compute threads. When
    // the finite job exits, worker 0 runs dry and must steal over the
    // channels to keep its CPU busy through the window.
    let mut kernel = ParKernel::with_quantum(seed, workers, SimDuration::from_ms(2));
    kernel.set_pace(Some(std::time::Duration::from_millis(1)));
    let base = kernel.base_currency();
    let mut spawned = Vec::new();
    spawned.push(kernel.spawn(
        WorkSpec::Finite(SimDuration::from_ms(6)),
        FundingSpec::new(base, 2_000),
    ));
    for _ in 0..9 {
        spawned.push(kernel.spawn(WorkSpec::Compute, FundingSpec::new(base, 100)));
    }
    let report = kernel.run(SimTime::ZERO + SimDuration::from_ms(300));
    report.assert_partition(&spawned);
    let steals = report.steals();
    let value = report.client_value_total();
    let busy_all = report.workers.iter().all(|w| w.decisions > 0);
    println!(
        "steal window: {} steals, {} decisions, surviving ledger value {value:.1} \
         (expect 900 after the finite job's funding is destroyed)",
        steals,
        report.decisions()
    );
    if steals >= 1 && busy_all && (value - 900.0).abs() < 1e-6 {
        println!(
            "OK work stealing conserved currency value across {steals} migrations; \
             every thread owned by exactly one worker"
        );
    } else {
        println!("FAIL steal run: steals={steals} busy_all={busy_all} value={value:.1} (want 900)");
    }
}
