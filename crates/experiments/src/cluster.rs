//! The cluster market: one grant per tenant, proportional share across
//! four nodes, and recovery when a node dies.
//!
//! Two tenants (`gold` 2000, `silver` 1000) each hold ONE cluster-level
//! grant over a 4-node [`ClusterMarket`]. The run opens with a demand
//! skew — gold's work all lands on node 0, silver's on node 3 — so the
//! demand-following budget policy concentrates each tenant's allocation
//! where its backlog is. Then demand turns uniform and saturating on
//! every node: reconciliation (periodic reports up, grant updates down,
//! one link-latency round each way) re-spreads the allocations, and the
//! 2:1 grant ratio re-appears cluster-wide within 5% on disk and net.
//!
//! Two failure drills ride the same machinery. The **node-loss**
//! scenario kills a node mid-saturation: the coordinator can only notice
//! via missed reports, declares the node lost after
//! [`LOSS_TIMEOUT_ROUNDS`], reclaims its allocations through inverse
//! lotteries (each quantum goes to the poorest-favored survivor), and
//! the 2:1 ratio holds on the survivors — no justified complaints. The
//! **ablation** replays the skew-then-uniform run but freezes
//! reconciliation at the phase turn ([`BudgetPolicy::StaticSplit`]):
//! allocations stay concentrated, two nodes strand with zero tickets,
//! and the cluster-wide ratio collapses — the drift the
//! [`DominantShareMonitor`](lottery_obs::DominantShareMonitor) flags as
//! a justified complaint.

use lottery_cluster::{BudgetPolicy, ClusterMarket, LOSS_TIMEOUT_ROUNDS};
use lottery_stats::table::Table;

const NODES: u32 = 4;
const GOLD_GRANT: u64 = 2000;
const SILVER_GRANT: u64 = 1000;
/// Disk slots and switch slots each node services per reconciliation round.
const SERVICES: u64 = 4;
/// Rounds of skewed, unsaturated demand (gold on node 0, silver on node 3).
const SKEW_ROUNDS: u32 = 12;
/// Rounds of uniform demand before measurement starts (re-convergence
/// plus link latency).
const CONVERGE_ROUNDS: u32 = 8;
/// Measurement window, in rounds. 16k disk draws cluster-wide, so the
/// binomial noise on a 2:1 ratio sits near 1.7% and the 5% check is a
/// 3-sigma bound.
const MEASURE_ROUNDS: u32 = 1000;
/// Star-link latency in rounds (SimNet default).
const LINK_LATENCY: u32 = 1;

fn new_market(seed: u32) -> ClusterMarket {
    ClusterMarket::new(
        NODES,
        seed,
        BudgetPolicy::DemandFollowing,
        &[("gold", GOLD_GRANT), ("silver", SILVER_GRANT)],
    )
    .expect("fresh market")
}

/// Keeps both tenants backlogged on every node: a steady 3 disk requests
/// and 3 cells per tenant per node per round, slightly above what either
/// tenant's share can drain. Backlog accumulates, which is the point —
/// queued work dominates the demand signal, and backlog is
/// self-equalizing (an under-funded node queues faster, attracts
/// funding, and the allocations settle even instead of churning on
/// lottery noise in the usage deltas).
fn saturate(m: &mut ClusterMarket) {
    for node in 0..m.node_count() {
        for tenant in 0..m.tenant_count() {
            m.offer(node, tenant, 3, 3);
        }
    }
}

/// gold:silver usage ratios on disk and net since `base`.
fn ratios_since(m: &ClusterMarket, base: &[[u64; 4]; 2]) -> [f64; 2] {
    let gold = m.usage(0);
    let silver = m.usage(1);
    let delta = |r: usize| (gold[r] - base[0][r]) as f64 / (silver[r] - base[1][r]).max(1) as f64;
    [delta(1), delta(3)]
}

fn within_5pct(ratios: &[f64; 2]) -> bool {
    ratios.iter().all(|r| (r / 2.0 - 1.0).abs() <= 0.05)
}

fn ratio_table(ratios: &[f64; 2]) -> String {
    let mut table = Table::new(&["resource", "gold:silver", "error vs 2:1"]);
    for (name, ratio) in ["disk", "net"].iter().zip(ratios) {
        table.row(&[
            name.to_string(),
            format!("{ratio:.3}:1"),
            format!("{:+.1}%", (ratio / 2.0 - 1.0) * 100.0),
        ]);
    }
    table.render()
}

fn alloc_line(m: &ClusterMarket, tenant: usize) -> String {
    let cells: Vec<String> = (0..m.node_count())
        .map(|n| format!("n{n}={}", m.alloc(tenant, n)))
        .collect();
    format!("{} [{}]", m.tenant_name(tenant), cells.join(" "))
}

struct Outcome {
    /// (gold alloc on node 0, silver alloc on node 3) at the phase turn.
    concentration: (u64, u64),
    /// Final per-tenant allocation lines.
    alloc_lines: [String; 2],
    /// gold:silver on disk and net over the measurement window.
    ratios: [f64; 2],
    moves: u64,
    complaint: bool,
    conserved: bool,
}

/// Skewed demand concentrates allocations; uniform demand re-spreads
/// them — unless `freeze` cuts reconciliation at the phase turn.
fn skew_then_uniform(seed: u32, freeze: bool) -> Outcome {
    let mut m = new_market(seed);
    // Phase 1: unsaturated skew. Gold's work exists only on node 0,
    // silver's only on node 3; everything offered is served the same
    // round, so the only signal is *where* demand is, not contention.
    for _ in 0..SKEW_ROUNDS {
        m.offer(0, 0, 2, 2);
        m.offer(NODES - 1, 1, 2, 2);
        m.round(SERVICES).expect("reconciliation round");
    }
    let concentration = (m.alloc(0, 0), m.alloc(1, NODES - 1));
    if freeze {
        m.set_policy(BudgetPolicy::StaticSplit);
    }
    // Phase 2: uniform saturating demand everywhere.
    for _ in 0..CONVERGE_ROUNDS {
        saturate(&mut m);
        m.round(SERVICES).expect("reconciliation round");
    }
    let base = [m.usage(0), m.usage(1)];
    for _ in 0..MEASURE_ROUNDS {
        saturate(&mut m);
        m.round(SERVICES).expect("reconciliation round");
    }
    let report = m.report();
    Outcome {
        concentration,
        alloc_lines: [alloc_line(&m, 0), alloc_line(&m, 1)],
        ratios: ratios_since(&m, &base),
        moves: report.moves,
        complaint: report.shares.any_complaint(),
        conserved: report.conserved,
    }
}

/// Kills a node mid-saturation and times the reclaim.
fn node_loss(seed: u32) {
    let mut m = new_market(seed);
    for _ in 0..10 {
        saturate(&mut m);
        m.round(SERVICES).expect("reconciliation round");
    }
    let victim = NODES - 1;
    let stranded = m.alloc(0, victim) + m.alloc(1, victim);
    let kill_round = m.round_count();
    m.kill(victim);
    // Loss detection is report-silence only: the victim's last report is
    // still in flight when it dies, so the coordinator hears it one
    // latency later, waits out the timeout, reclaims, and the refreshed
    // grants take one more latency to land on the survivors.
    let bound = LOSS_TIMEOUT_ROUNDS + 2 * LINK_LATENCY + 2;
    let mut reclaimed_after = None;
    while m.round_count() - kill_round <= bound {
        saturate(&mut m);
        m.round(SERVICES).expect("reconciliation round");
        let drained =
            !m.is_reachable(victim) && (0..m.tenant_count()).all(|t| m.alloc(t, victim) == 0);
        if drained && reclaimed_after.is_none() {
            reclaimed_after = Some(m.round_count() - kill_round);
        }
    }
    let base = [m.usage(0), m.usage(1)];
    for _ in 0..MEASURE_ROUNDS {
        saturate(&mut m);
        m.round(SERVICES).expect("reconciliation round");
    }
    let report = m.report();
    let ratios = ratios_since(&m, &base);
    println!(
        "\nnode-loss drill: node {victim} killed at round {kill_round} holding {stranded} \
         tickets of cluster grant"
    );
    match reclaimed_after {
        Some(rounds) => println!(
            "coordinator declared it lost and inverse lotteries redistributed all {stranded} \
             tickets {rounds} rounds later (bound {bound}: timeout {LOSS_TIMEOUT_ROUNDS} + \
             2x link latency + detection slack)"
        ),
        None => println!("allocations NOT drained within {bound} rounds"),
    }
    println!("post-loss allocations: {}", alloc_line(&m, 0));
    println!("                       {}", alloc_line(&m, 1));
    println!(
        "survivor-window shares over {MEASURE_ROUNDS} rounds on {} nodes:",
        NODES - 1
    );
    print!("{}", ratio_table(&ratios));
    println!(
        "conserved={} complaints={}",
        if report.conserved { "yes" } else { "NO" },
        if report.shares.any_complaint() {
            "JUSTIFIED"
        } else {
            "none"
        }
    );
    let confirmed = reclaimed_after.is_some_and(|r| r <= bound)
        && within_5pct(&ratios)
        && report.conserved
        && !report.shares.any_complaint();
    println!(
        "node-loss recovery within {} rounds (bound {bound}): {}",
        reclaimed_after.map_or(u32::MAX, |r| r),
        if confirmed {
            "CONFIRMED"
        } else {
            "NOT OBSERVED"
        }
    );
}

/// Demand skew, re-convergence, node loss, and the frozen-reconciliation
/// ablation on a 4-node cluster market.
pub fn run(seed: u32) {
    println!(
        "two tenants, one cluster-level grant each (gold {GOLD_GRANT}, silver {SILVER_GRANT}) \
         over {NODES} nodes;"
    );
    println!(
        "demand skews to opposite corners, then saturates uniformly; reconciliation is \
         report-driven over a 1-round-latency network\n"
    );

    let follow = skew_then_uniform(seed, false);
    println!(
        "demand-following: skew phase concentrated gold to {} tickets on node 0 and silver \
         to {} on node {} (of {GOLD_GRANT}/{SILVER_GRANT});",
        follow.concentration.0,
        follow.concentration.1,
        NODES - 1
    );
    println!(
        "after demand turned uniform, reconciliation re-spread the allocations \
         ({} grant moves total):",
        follow.moves
    );
    println!("  {}", follow.alloc_lines[0]);
    println!("  {}", follow.alloc_lines[1]);
    println!("measured over the last {MEASURE_ROUNDS} rounds:");
    print!("{}", ratio_table(&follow.ratios));
    println!(
        "conserved={} complaints={}",
        if follow.conserved { "yes" } else { "NO" },
        if follow.complaint {
            "JUSTIFIED"
        } else {
            "none"
        }
    );
    let held = within_5pct(&follow.ratios) && follow.conserved && !follow.complaint;
    println!(
        "cluster 2:1 isolation held within 5% across {NODES} nodes: {}",
        if held { "OK" } else { "FAILED" }
    );

    node_loss(seed);

    let frozen = skew_then_uniform(seed, true);
    println!(
        "\nablation: same run, but reconciliation freezes (static split) at the phase turn, \
         allocations stuck concentrated:"
    );
    println!("  {}", frozen.alloc_lines[0]);
    println!("  {}", frozen.alloc_lines[1]);
    print!("{}", ratio_table(&frozen.ratios));
    println!(
        "conserved={} complaints={}",
        if frozen.conserved { "yes" } else { "NO" },
        if frozen.complaint {
            "JUSTIFIED"
        } else {
            "none"
        }
    );
    let drifted = !within_5pct(&frozen.ratios) && frozen.complaint;
    println!(
        "static-split ablation drifts without reconciliation: {}",
        if drifted { "CONFIRMED" } else { "NOT OBSERVED" }
    );
}
