//! Figures 4 and 5: relative rate accuracy and fairness over time.

use lottery_apps::dhrystone::{self, FairnessRun};
use lottery_sim::prelude::*;
use lottery_stats::table::Table;

/// Figure 4: observed vs allocated iteration ratios for two Dhrystone
/// tasks, three 60-second runs per integral ratio 1..10, plus the paper's
/// 20:1 three-minute spot check.
pub fn fig4(seed: u32) {
    let mut table = Table::new(&["allocated", "run 1", "run 2", "run 3", "mean observed"]);
    for ratio in 1..=10u32 {
        let mut observed = Vec::new();
        for run in 0..3u32 {
            let report = dhrystone::run_fairness(
                &FairnessRun {
                    ratio: f64::from(ratio),
                    seed: seed.wrapping_mul(97).wrapping_add(ratio * 13 + run),
                    ..FairnessRun::default()
                },
                SimDuration::from_secs(8),
            );
            observed.push(report.observed);
        }
        let mean = observed.iter().sum::<f64>() / 3.0;
        table.row(&[
            format!("{ratio}:1"),
            format!("{:.2}:1", observed[0]),
            format!("{:.2}:1", observed[1]),
            format!("{:.2}:1", observed[2]),
            format!("{mean:.2}:1"),
        ]);
    }
    print!("{}", table.render());

    // The 20:1 spot check over three minutes (paper: 19.42 : 1).
    let report = dhrystone::run_fairness(
        &FairnessRun {
            ratio: 20.0,
            duration: SimTime::from_secs(180),
            seed,
            ..FairnessRun::default()
        },
        SimDuration::from_secs(8),
    );
    println!(
        "\n20:1 over three minutes: observed {:.2}:1 (paper: 19.42:1)",
        report.observed
    );
}

/// Figure 5: two Dhrystone tasks with a 2:1 allocation over 200 seconds;
/// average iterations/sec in consecutive 8-second windows.
pub fn fig5(seed: u32) {
    let report = dhrystone::run_fairness(
        &FairnessRun {
            ratio: 2.0,
            duration: SimTime::from_secs(200),
            seed,
            ..FairnessRun::default()
        },
        SimDuration::from_secs(8),
    );
    let mut table = Table::new(&["window (s)", "task1 iters/sec", "task2 iters/sec", "ratio"]);
    for (i, &(a, b)) in report.windows.iter().enumerate() {
        table.row(&[
            format!("{}-{}", i * 8, (i + 1) * 8),
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{:.2}:1", a / b.max(1.0)),
        ]);
    }
    print!("{}", table.render());
    let secs = 200.0;
    println!(
        "\nwhole-run averages: {:.0} and {:.0} iterations/sec (ratio {:.2}:1)",
        report.totals.0 / secs,
        report.totals.1 / secs,
        report.observed
    );
    println!("paper: 25378 and 12619 iterations/sec (ratio 2.01:1)");
}
