//! Regenerates every figure and table in the paper's evaluation.
//!
//! Usage: `experiments <id> [seed]`, where `<id>` is one of the
//! subcommands listed by `experiments help`. `experiments all` runs the
//! full suite in order. All output is plain text on stdout; EXPERIMENTS.md
//! records a reference transcript.

mod ablations;
mod broker;
mod cluster;
mod diverse;
mod events;
mod fig_apps;
mod fig_basics;
mod fig_insulation;
mod fig_mutex;
mod fig_rates;
mod math;
mod obs;
mod overhead;
mod par;
mod replay;
mod traces;

use std::env;
use std::process::ExitCode;

/// An experiment entry point, taking the RNG seed.
type Entry = fn(u32);

/// Every runnable experiment: (id, description, entry point).
const EXPERIMENTS: &[(&str, &str, Entry)] = &[
    (
        "fig1",
        "list-based lottery walk (Figure 1)",
        fig_basics::fig1,
    ),
    (
        "fig3",
        "currency graph valuation (Figures 2 & 3)",
        fig_basics::fig3,
    ),
    ("fig4", "relative rate accuracy (Figure 4)", fig_rates::fig4),
    (
        "fig5",
        "fairness over 8 s windows (Figure 5)",
        fig_rates::fig5,
    ),
    (
        "fig6",
        "Monte-Carlo error-driven inflation (Figure 6)",
        fig_apps::fig6,
    ),
    (
        "fig7",
        "client-server query rates (Figure 7)",
        fig_apps::fig7,
    ),
    (
        "fig8",
        "MPEG viewer rate control (Figure 8)",
        fig_apps::fig8,
    ),
    (
        "fig9",
        "currencies insulate loads (Figure 9)",
        fig_insulation::fig9,
    ),
    (
        "fig10",
        "lottery mutex funding structure (Figure 10)",
        fig_mutex::fig10,
    ),
    (
        "fig11",
        "mutex acquisitions & waiting times (Figure 11)",
        fig_mutex::fig11,
    ),
    (
        "fig11-kernel",
        "Figure 11 with CPU contention (in-kernel mutex)",
        fig_mutex::fig11_kernel,
    ),
    (
        "overhead",
        "system overhead vs baselines (Section 5.6)",
        overhead::run,
    ),
    (
        "obs",
        "probe-bus pipeline: drift monitor, counters, trace exports",
        obs::obs,
    ),
    (
        "traces",
        "workload traces: heavy-tailed & diurnal, lottery vs FCFS admission",
        traces::traces,
    ),
    (
        "replay",
        "deterministic record/replay: bit-exact round-trips & divergence diffing",
        replay::replay,
    ),
    (
        "events",
        "event-driven core: decision-free idle, mode equivalence, shared source loop",
        events::run,
    ),
    (
        "par",
        "real-thread backend: 1-worker bit-equality, 4-worker ratio, steal conservation",
        par::run,
    ),
    (
        "binomial",
        "lottery distribution properties (Section 2)",
        math::binomial,
    ),
    (
        "inverse",
        "inverse lottery probabilities (Section 6.2)",
        math::inverse,
    ),
    (
        "mem",
        "inverse-lottery page reclamation (Section 6.2)",
        diverse::mem,
    ),
    (
        "net",
        "lottery-scheduled cell switch (Section 6)",
        diverse::net,
    ),
    (
        "disk",
        "lottery-scheduled disk bandwidth (Section 6)",
        diverse::disk,
    ),
    (
        "smp",
        "multiprocessor lottery scheduling (extension)",
        diverse::smp,
    ),
    (
        "smp-dist",
        "distributed lottery: per-CPU trees hold 2:1 machine-wide (Section 4.2)",
        diverse::smp_dist,
    ),
    (
        "selection",
        "list vs tree vs move-to-front selection (Section 4.2)",
        ablations::selection,
    ),
    (
        "alias",
        "O(1) alias sampler: exact draws, flat probe cost at scale (Section 4.2)",
        ablations::alias_sampler,
    ),
    (
        "quantum-sweep",
        "accuracy vs quantum length (Section 2)",
        ablations::quantum_sweep,
    ),
    (
        "ablate-compensation",
        "compensation tickets on/off (Section 4.5)",
        ablations::compensation,
    ),
    (
        "ablate-stride",
        "lottery vs stride short-term variance",
        ablations::stride,
    ),
    (
        "latency",
        "interactive dispatch latency per policy (Section 4.5)",
        ablations::latency,
    ),
    (
        "fairshare",
        "lottery vs classical fair-share responsiveness (Section 7)",
        ablations::fairshare,
    ),
    (
        "broker",
        "multi-resource broker: one grant, 2:1 on cpu/disk/mem/net (Section 6)",
        broker::run,
    ),
    (
        "cluster",
        "cluster market: 4-node brokered lotteries, node loss, reconciliation ablation",
        cluster::run,
    ),
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (id, seed) = match args.as_slice() {
        [id] => (id.as_str(), 1u32),
        [id, seed] => match seed.parse() {
            Ok(s) => (id.as_str(), s),
            Err(_) => {
                eprintln!("seed must be a u32, got {seed:?}");
                return ExitCode::FAILURE;
            }
        },
        _ => ("help", 1),
    };

    match id {
        "help" | "--help" | "-h" => {
            println!("usage: experiments <id> [seed]\n\navailable experiments:");
            for (name, desc, _) in EXPERIMENTS {
                println!("  {name:<20} {desc}");
            }
            println!("  {:<20} run the entire suite", "all");
            ExitCode::SUCCESS
        }
        "all" => {
            for (name, desc, f) in EXPERIMENTS {
                println!("==> {name}: {desc}\n");
                f(seed);
                println!();
            }
            ExitCode::SUCCESS
        }
        _ => match EXPERIMENTS.iter().find(|(name, _, _)| *name == id) {
            Some((_, desc, f)) => {
                println!("==> {id}: {desc}\n");
                f(seed);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment {id:?}; try `experiments help`");
                ExitCode::FAILURE
            }
        },
    }
}
