//! # lottery-apps
//!
//! The paper's evaluation workloads (Section 5), implemented as drivers
//! over the [`lottery_sim`] kernel:
//!
//! * [`dhrystone`] — compute-bound rate-accuracy runs (Figures 4, 5).
//! * [`montecarlo`] — error²-driven dynamic ticket inflation (Figure 6).
//! * [`dbserver`] — multithreaded query server with RPC ticket transfers
//!   (Figure 7).
//! * [`mpeg`] — video viewers under mid-run allocation changes (Figure 8).
//! * [`insulation`] — currencies containing load and inflation (Figure 9).
//! * [`textsearch`] — a *real* (OS-thread) text-search server whose query
//!   queue is lottery-scheduled, with the corpus search implemented for
//!   real rather than simulated.

pub mod dbserver;
pub mod dhrystone;
pub mod insulation;
pub mod montecarlo;
pub mod mpeg;
pub mod textsearch;
