//! The multithreaded client-server experiment (Section 5.3, Figure 7).
//!
//! The paper's server loads the complete text of Shakespeare's plays
//! (4.6 MB) and serves case-insensitive substring searches; three clients
//! with an 8 : 3 : 1 ticket allocation issue queries in a closed loop. The
//! server *has no tickets of its own* — it relies entirely on the tickets
//! transferred by blocked clients through `mach_msg`, so both throughput
//! and response times track the allocation.
//!
//! Here each query is a fixed CPU cost at the server (scanning a fixed
//! corpus costs the same every time), which is all the ratios depend on.
//! The paper's observed response times (17.19 s, 43.19 s, 132.20 s) imply
//! roughly 11–12 CPU seconds per search on the DECStation; the default
//! [`DbExperiment::service`] reflects that.

use lottery_sim::prelude::*;
use lottery_stats::ProgressSeries;

/// Configuration for the client-server experiment.
#[derive(Debug, Clone)]
pub struct DbExperiment {
    /// Ticket allocation per client (the paper uses 8 : 3 : 1 × 100).
    pub client_tickets: Vec<u64>,
    /// Queries issued by each client (`None` = unbounded). The paper's
    /// high-priority client stops after 20.
    pub client_queries: Vec<Option<u64>>,
    /// Server worker threads.
    pub workers: usize,
    /// CPU cost of one query at the server.
    pub service: SimDuration,
    /// Client think time between queries.
    pub think: SimDuration,
    /// Experiment length.
    pub duration: SimTime,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// RNG seed.
    pub seed: u32,
}

impl Default for DbExperiment {
    fn default() -> Self {
        Self {
            client_tickets: vec![800, 300, 100],
            client_queries: vec![Some(20), None, None],
            workers: 3,
            service: SimDuration::from_ms(11_500),
            think: SimDuration::from_ms(50),
            duration: SimTime::from_secs(800),
            quantum: SimDuration::from_ms(100),
            seed: 1,
        }
    }
}

/// Per-client results.
#[derive(Debug)]
pub struct DbClientReport {
    /// Cumulative completed queries: `(time_us, count)`.
    pub completed: ProgressSeries,
    /// Mean response time in seconds.
    pub mean_response_secs: f64,
    /// Response-time standard deviation in seconds.
    pub stddev_response_secs: f64,
    /// Total queries completed.
    pub queries: u64,
    /// Every completed query: `(completion time_us, response time_us)`.
    pub responses: Vec<(u64, f64)>,
}

/// Results of the experiment.
#[derive(Debug)]
pub struct DbReport {
    /// One report per client, in `client_tickets` order.
    pub clients: Vec<DbClientReport>,
    /// Total CPU consumed by the server's worker threads, in seconds.
    pub server_cpu_secs: f64,
}

/// Runs the client-server experiment under lottery scheduling with RPC
/// ticket transfers.
pub fn run(config: &DbExperiment) -> DbReport {
    assert_eq!(
        config.client_tickets.len(),
        config.client_queries.len(),
        "one query budget per client"
    );
    let policy = LotteryPolicy::with_quantum(config.seed, config.quantum);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let port = kernel.create_port("db");

    // Server workers: one nominal ticket each — effectively unfunded, as
    // in the paper ("The server has no tickets of its own, and relies
    // completely upon the tickets transferred by clients").
    let mut workers = Vec::new();
    for i in 0..config.workers {
        workers.push(kernel.spawn(
            format!("worker{i}"),
            Box::new(RpcServer::new(port)),
            FundingSpec::new(base, 1),
        ));
    }

    let mut clients = Vec::new();
    for (i, (&tickets, &queries)) in config
        .client_tickets
        .iter()
        .zip(&config.client_queries)
        .enumerate()
    {
        clients.push(kernel.spawn(
            format!("client{i}"),
            Box::new(RpcClient::new(port, config.think, config.service, queries)),
            FundingSpec::new(base, tickets),
        ));
    }

    kernel.run_until(config.duration);

    let reports = clients
        .iter()
        .map(|&tid| {
            let m = kernel.metrics().thread(tid);
            match m {
                Some(m) => DbClientReport {
                    completed: m.rpc_series.clone(),
                    mean_response_secs: m.response_us.mean() / 1e6,
                    stddev_response_secs: m.response_us.stddev() / 1e6,
                    queries: m.rpcs_completed(),
                    responses: m.responses.clone(),
                },
                None => DbClientReport {
                    completed: ProgressSeries::new(),
                    mean_response_secs: 0.0,
                    stddev_response_secs: 0.0,
                    queries: 0,
                    responses: Vec::new(),
                },
            }
        })
        .collect();
    let server_cpu: u64 = workers.iter().map(|&w| kernel.metrics().cpu_us(w)).sum();
    DbReport {
        clients: reports,
        server_cpu_secs: server_cpu as f64 / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DbExperiment {
        DbExperiment {
            client_tickets: vec![800, 300, 100],
            client_queries: vec![Some(5), None, None],
            service: SimDuration::from_ms(2_000),
            duration: SimTime::from_secs(200),
            ..DbExperiment::default()
        }
    }

    #[test]
    fn throughput_tracks_allocation() {
        let report = run(&quick_config());
        let q1 = report.clients[1].queries as f64;
        let q2 = report.clients[2].queries as f64;
        assert!(q2 > 0.0, "the 1-share client must not starve");
        let ratio = q1 / q2;
        assert!(
            (1.8..=4.5).contains(&ratio),
            "3:1 clients should see roughly 3:1 throughput, got {ratio}"
        );
    }

    #[test]
    fn response_time_inversely_tracks_allocation() {
        // All clients unbounded so the contention level is stationary:
        // with every worker busy, response ≈ service / share, so the
        // 8 : 3 : 1 allocation yields roughly 1 : 2.7 : 8 response times.
        let report = run(&DbExperiment {
            client_queries: vec![None, None, None],
            service: SimDuration::from_ms(2_000),
            duration: SimTime::from_secs(400),
            ..DbExperiment::default()
        });
        let r0 = report.clients[0].mean_response_secs;
        let r1 = report.clients[1].mean_response_secs;
        let r2 = report.clients[2].mean_response_secs;
        assert!(r0 > 0.0 && r1 > 0.0 && r2 > 0.0);
        assert!(
            r2 / r0 > 4.0,
            "1-share client should wait much longer: {r0} vs {r2}"
        );
        assert!(r1 > r0 && r2 > r1, "ordering: {r0} {r1} {r2}");
    }

    #[test]
    fn high_priority_client_finishes_its_20_queries() {
        let report = run(&DbExperiment {
            service: SimDuration::from_ms(2_000),
            duration: SimTime::from_secs(400),
            ..DbExperiment::default()
        });
        assert_eq!(report.clients[0].queries, 20);
    }

    #[test]
    fn server_cpu_equals_completed_work() {
        let report = run(&quick_config());
        let total_queries: u64 = report.clients.iter().map(|c| c.queries).sum();
        // Each completed query cost exactly `service` CPU at the server;
        // in-flight queries at cutoff may add up to `workers` more.
        let expected = total_queries as f64 * 2.0;
        assert!(
            report.server_cpu_secs >= expected,
            "{} < {expected}",
            report.server_cpu_secs
        );
        assert!(report.server_cpu_secs <= expected + 3.0 * 2.0 + 1.0);
    }

    #[test]
    #[should_panic(expected = "one query budget per client")]
    fn mismatched_config_rejected() {
        let _ = run(&DbExperiment {
            client_queries: vec![None],
            ..DbExperiment::default()
        });
    }
}
