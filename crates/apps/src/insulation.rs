//! Load insulation with ticket currencies (Section 5.5, Figure 9).
//!
//! Two currencies A and B are identically funded. A runs two Dhrystone
//! tasks (100.A and 200.A); B runs two (100.B and 200.B). Halfway through,
//! a third task funded 300.B joins currency B — inflating B's internal
//! ticket supply from 300 to 600. The inflation is *locally contained*:
//! B1 and B2 slow to half their rates, while A1, A2, and the aggregate
//! A : B ratio are unaffected.

use lottery_sim::prelude::*;
use lottery_stats::ProgressSeries;

/// Configuration for the insulation experiment.
#[derive(Debug, Clone)]
pub struct InsulationExperiment {
    /// Base funding of each of the two currencies.
    pub currency_funding: u64,
    /// Ticket amounts of the two initial tasks in each currency.
    pub initial_tasks: (u64, u64),
    /// Ticket amount of the task that joins currency B mid-run.
    pub intruder: u64,
    /// When the intruder starts.
    pub intruder_at: SimTime,
    /// Total duration.
    pub duration: SimTime,
    /// Sampling step for the cumulative curves.
    pub sample: SimDuration,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// RNG seed.
    pub seed: u32,
}

impl Default for InsulationExperiment {
    fn default() -> Self {
        Self {
            currency_funding: 1000,
            initial_tasks: (100, 200),
            intruder: 300,
            intruder_at: SimTime::from_secs(150),
            duration: SimTime::from_secs(300),
            sample: SimDuration::from_secs(5),
            quantum: SimDuration::from_ms(100),
            seed: 1,
        }
    }
}

/// Results, in task order A1, A2, B1, B2, B3.
#[derive(Debug)]
pub struct InsulationReport {
    /// Cumulative CPU seconds per task, sampled.
    pub progress: Vec<ProgressSeries>,
    /// CPU seconds accrued before the intruder, per task.
    pub before: Vec<f64>,
    /// CPU seconds accrued after the intruder, per task.
    pub after: Vec<f64>,
}

impl InsulationReport {
    /// Aggregate currency-A CPU after the intruder.
    pub fn a_after(&self) -> f64 {
        self.after[0] + self.after[1]
    }

    /// Aggregate currency-B CPU after the intruder (including it).
    pub fn b_after(&self) -> f64 {
        self.after[2] + self.after[3] + self.after[4]
    }
}

/// Runs the Figure 9 experiment.
pub fn run(config: &InsulationExperiment) -> InsulationReport {
    let mut policy = LotteryPolicy::with_quantum(config.seed, config.quantum);
    let a = policy
        .create_currency("A", config.currency_funding)
        .expect("fresh ledger");
    let b = policy
        .create_currency("B", config.currency_funding)
        .expect("fresh ledger");
    let mut kernel = Kernel::new(policy);
    let (small, large) = config.initial_tasks;
    let mut tids = vec![
        kernel.spawn("A1", Box::new(ComputeBound), FundingSpec::new(a, small)),
        kernel.spawn("A2", Box::new(ComputeBound), FundingSpec::new(a, large)),
        kernel.spawn("B1", Box::new(ComputeBound), FundingSpec::new(b, small)),
        kernel.spawn("B2", Box::new(ComputeBound), FundingSpec::new(b, large)),
    ];

    let mut series: Vec<ProgressSeries> = (0..5).map(|_| ProgressSeries::new()).collect();
    let mut before = vec![0.0; 5];
    let mut started = false;
    let mut now = SimTime::ZERO;
    while now < config.duration {
        let next = (now + config.sample).min(config.duration);
        if !started && next >= config.intruder_at {
            kernel.run_until(config.intruder_at);
            for (i, &tid) in tids.iter().enumerate() {
                before[i] = kernel.metrics().cpu_us(tid) as f64 / 1e6;
            }
            tids.push(kernel.spawn(
                "B3",
                Box::new(ComputeBound),
                FundingSpec::new(b, config.intruder),
            ));
            started = true;
        }
        kernel.run_until(next);
        now = kernel.now().max(next);
        for (i, &tid) in tids.iter().enumerate() {
            series[i].record(now.as_us(), kernel.metrics().cpu_us(tid) as f64 / 1e6);
        }
    }

    let after: Vec<f64> = (0..5)
        .map(|i| {
            let total = tids
                .get(i)
                .map(|&tid| kernel.metrics().cpu_us(tid) as f64 / 1e6)
                .unwrap_or(0.0);
            total - before[i]
        })
        .collect();
    InsulationReport {
        progress: series,
        before,
        after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape() {
        let r = run(&InsulationExperiment::default());

        // Phase 1: A1:A2 = 1:2 and B1:B2 = 1:2; A and B split evenly.
        // The within-currency ratio is the noisiest statistic here (the
        // small task wins ~250 of 1500 quanta before the intruder, so a
        // 2-sigma excursion moves the ratio by ~0.3); keep the bound wide
        // enough that an unlucky but unbiased sample path passes.
        assert!(
            (r.before[1] / r.before[0] - 2.0).abs() < 0.35,
            "{:?}",
            r.before
        );
        assert!(
            (r.before[3] / r.before[2] - 2.0).abs() < 0.35,
            "{:?}",
            r.before
        );
        let a1 = r.before[0] + r.before[1];
        let b1 = r.before[2] + r.before[3];
        assert!((a1 / b1 - 1.0).abs() < 0.1, "A:B before = {}", a1 / b1);

        // Phase 2: the intruder inflates B from 300 to 600 — B1 and B2
        // halve, A1 and A2 are untouched, and A:B aggregate stays 1:1.
        assert!(
            (r.after[0] / r.before[0] - 1.0).abs() < 0.15,
            "A1 must be insulated: {} vs {}",
            r.after[0],
            r.before[0]
        );
        assert!(
            (r.after[2] / r.before[2] - 0.5).abs() < 0.15,
            "B1 must halve: {} vs {}",
            r.after[2],
            r.before[2]
        );
        let ratio = r.a_after() / r.b_after();
        assert!((ratio - 1.0).abs() < 0.1, "A:B after = {ratio}");
        // B3 runs at 300/600 of B's half of the machine.
        assert!(r.after[4] > 0.0);
        assert!(
            (r.after[4] / r.b_after() - 0.5).abs() < 0.1,
            "B3 share {}",
            r.after[4] / r.b_after()
        );
    }

    #[test]
    fn without_intruder_everything_is_stationary() {
        let r = run(&InsulationExperiment {
            intruder_at: SimTime::from_secs(150),
            intruder: 1,
            ..InsulationExperiment::default()
        });
        // A tiny 1.B intruder barely shifts B's internal split.
        assert!(
            (r.after[2] / r.before[2] - 300.0 / 301.0).abs() < 0.2,
            "{} vs {}",
            r.after[2],
            r.before[2]
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&InsulationExperiment::default());
        let b = run(&InsulationExperiment::default());
        assert_eq!(a.before, b.before);
        assert_eq!(a.after, b.after);
    }
}
