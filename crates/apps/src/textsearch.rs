//! A real text-search server with a lottery-scheduled query queue.
//!
//! The paper's client-server experiment runs case-insensitive substring
//! searches over the complete text of Shakespeare's plays (4.6 MB). The
//! simulator reproduces its *scheduling* behaviour
//! ([`crate::dbserver`]); this module reproduces the *computation* on real
//! threads: a deterministic pseudo-prose corpus, an honest
//! case-insensitive substring counter, and a server whose next query is
//! chosen **by lottery over client tickets** — the same proportional-share
//! queueing the paper applies to every contended resource.
//!
//! (The paper's own search string was "lottery", which "incidentally
//! occurs a total of 8 times in Shakespeare's plays".)

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use lottery_core::errors::{LotteryError, Result};
use lottery_core::lottery::{list::ListLottery, TicketPool};
use lottery_core::rng::{ParkMiller, SchedRng, SplitMix64};
use lottery_sync::primitives::{Condvar, Mutex};

/// Deterministically generates `words` words of pseudo-prose.
///
/// The vocabulary skews toward common English words with occasional rare
/// tokens, so substring queries have realistic, non-uniform hit counts.
pub fn generate_corpus(words: usize, seed: u64) -> String {
    const COMMON: &[&str] = &[
        "the", "and", "to", "of", "a", "in", "that", "is", "was", "he", "for", "it", "with", "as",
        "his", "on", "be", "at", "by", "had", "not", "are", "but", "from", "or", "have", "an",
        "they", "which", "one", "you", "were", "her", "all", "she", "there", "would", "their",
        "we", "him", "been", "has", "when", "who", "will", "more", "no", "if", "out", "king",
        "queen", "crown", "sword", "night", "day", "love", "death", "honor", "grace",
    ];
    const RARE: &[&str] = &["lottery", "currency", "ticket", "quantum", "inverse"];
    let mut rng = SplitMix64::new(seed);
    let mut out = String::with_capacity(words * 6);
    for i in 0..words {
        if i > 0 {
            // Sentence and line structure, so the text resembles prose.
            if i % 12 == 0 {
                out.push('.');
            }
            if i % 17 == 0 {
                out.push('\n');
            } else {
                out.push(' ');
            }
        }
        let word = if rng.next_u64().is_multiple_of(997) {
            RARE[(rng.next_u64() % RARE.len() as u64) as usize]
        } else {
            COMMON[(rng.next_u64() % COMMON.len() as u64) as usize]
        };
        // Occasionally capitalize, so case-insensitivity matters.
        if rng.next_u64().is_multiple_of(13) {
            let mut chars = word.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase());
                out.push_str(chars.as_str());
            }
        } else {
            out.push_str(word);
        }
    }
    out
}

/// Counts case-insensitive (ASCII) occurrences of `needle` in `haystack`,
/// including overlapping ones — the query operation of Section 5.3.
pub fn count_case_insensitive(haystack: &str, needle: &str) -> usize {
    if needle.is_empty() || needle.len() > haystack.len() {
        return 0;
    }
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    let mut count = 0;
    for window in h.windows(n.len()) {
        if window.iter().zip(n).all(|(a, b)| a.eq_ignore_ascii_case(b)) {
            count += 1;
        }
    }
    count
}

/// A query awaiting service.
#[derive(Debug, Clone)]
struct Query {
    client: usize,
    needle: String,
}

#[derive(Debug)]
struct QueueInner {
    /// Per-client FIFO of pending queries.
    pending: Vec<VecDeque<Query>>,
    tickets: Vec<u64>,
    rng: ParkMiller,
    closed: bool,
    in_flight: usize,
}

/// A multi-client query queue whose dequeue order is a ticket lottery.
#[derive(Debug)]
pub struct LotteryQueryQueue {
    inner: Mutex<QueueInner>,
    available: Condvar,
}

impl LotteryQueryQueue {
    /// Creates a queue for clients holding the given tickets.
    pub fn new(tickets: Vec<u64>, seed: u32) -> Self {
        let pending = tickets.iter().map(|_| VecDeque::new()).collect();
        Self {
            inner: Mutex::new(QueueInner {
                pending,
                tickets,
                rng: ParkMiller::new(seed),
                closed: false,
                in_flight: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Submits a query for `client`.
    ///
    /// # Errors
    ///
    /// [`LotteryError::StaleHandle`] never occurs here; an out-of-range
    /// client index yields [`LotteryError::EmptyLottery`].
    pub fn submit(&self, client: usize, needle: impl Into<String>) -> Result<()> {
        let mut inner = self.inner.lock();
        if client >= inner.pending.len() {
            return Err(LotteryError::EmptyLottery);
        }
        inner.pending[client].push_back(Query {
            client,
            needle: needle.into(),
        });
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Marks the queue closed: workers drain what is left, then stop.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    /// Takes the next query by lottery, blocking until one is available;
    /// `None` once the queue is closed and drained.
    fn take(&self) -> Option<Query> {
        let mut inner = self.inner.lock();
        loop {
            let backlogged: Vec<usize> = inner
                .pending
                .iter()
                .enumerate()
                .filter(|(i, q)| !q.is_empty() && inner.tickets[*i] > 0)
                .map(|(i, _)| i)
                .collect();
            if !backlogged.is_empty() {
                // Hold the lottery among clients with pending queries.
                let mut pool: ListLottery<usize, u64> = ListLottery::without_move_to_front();
                for &i in &backlogged {
                    pool.insert(i, inner.tickets[i]);
                }
                let winner = {
                    // Split borrow: the pool is local; draw from the rng.
                    let total = pool.total();
                    let value = inner.rng.below(total);
                    *pool.select(value).expect("non-empty pool")
                };
                let query = inner.pending[winner].pop_front().expect("backlogged");
                inner.in_flight += 1;
                return Some(query);
            }
            if inner.closed {
                return None;
            }
            self.available.wait(&mut inner);
        }
    }

    fn finish_one(&self) {
        self.inner.lock().in_flight -= 1;
    }

    /// Pending queries across all clients (excluding in-flight ones).
    pub fn backlog(&self) -> usize {
        self.inner.lock().pending.iter().map(VecDeque::len).sum()
    }
}

/// A completed query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// The submitting client's index.
    pub client: usize,
    /// The query string.
    pub needle: String,
    /// Occurrences found.
    pub matches: usize,
}

/// A running search server: worker threads draining a lottery queue over
/// a shared corpus.
pub struct SearchServer {
    queue: Arc<LotteryQueryQueue>,
    workers: Vec<JoinHandle<u64>>,
    results: Receiver<SearchResult>,
}

impl SearchServer {
    /// Starts `workers` threads over `corpus`, serving clients with the
    /// given ticket allocation.
    pub fn start(corpus: Arc<String>, tickets: Vec<u64>, workers: usize, seed: u32) -> Self {
        let queue = Arc::new(LotteryQueryQueue::new(tickets, seed));
        let (tx, rx): (Sender<SearchResult>, Receiver<SearchResult>) = channel();
        let handles = (0..workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let corpus = Arc::clone(&corpus);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while let Some(query) = queue.take() {
                        let matches = count_case_insensitive(&corpus, &query.needle);
                        queue.finish_one();
                        served += 1;
                        // The receiver may already be gone during shutdown.
                        let _ = tx.send(SearchResult {
                            client: query.client,
                            needle: query.needle,
                            matches,
                        });
                    }
                    served
                })
            })
            .collect();
        Self {
            queue,
            workers: handles,
            results: rx,
        }
    }

    /// The shared queue, for submitting queries.
    pub fn queue(&self) -> &Arc<LotteryQueryQueue> {
        &self.queue
    }

    /// Receives completed results until the server drains.
    pub fn results(&self) -> &Receiver<SearchResult> {
        &self.results
    }

    /// Closes the queue and joins the workers, returning per-worker
    /// service counts.
    pub fn shutdown(self) -> Vec<u64> {
        self.queue.close();
        self.workers
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = generate_corpus(10_000, 42);
        let b = generate_corpus(10_000, 42);
        assert_eq!(a, b);
        let c = generate_corpus(10_000, 43);
        assert_ne!(a, c);
        // Roughly 4-6 bytes per word.
        assert!(a.len() > 30_000 && a.len() < 80_000, "{}", a.len());
    }

    #[test]
    fn counting_is_case_insensitive_and_overlapping() {
        assert_eq!(count_case_insensitive("The THE the", "the"), 3);
        assert_eq!(count_case_insensitive("aaaa", "aa"), 3, "overlaps count");
        assert_eq!(count_case_insensitive("abc", ""), 0);
        assert_eq!(count_case_insensitive("ab", "abc"), 0);
        assert_eq!(count_case_insensitive("Lottery scheduling", "LOTTERY"), 1);
    }

    #[test]
    fn rare_words_occur_rarely() {
        let corpus = generate_corpus(200_000, 7);
        let rare = count_case_insensitive(&corpus, "lottery");
        let common = count_case_insensitive(&corpus, "the");
        assert!(rare > 0, "the rare word should appear");
        assert!(rare < 200, "but rarely: {rare}");
        assert!(common > 1_000, "common words dominate: {common}");
    }

    #[test]
    fn single_worker_service_order_follows_tickets() {
        // Pre-queue 200 queries per client with a 3:1 allocation; a
        // single worker's service order is then a pure seeded lottery.
        let corpus = Arc::new(generate_corpus(5_000, 1));
        let queue = LotteryQueryQueue::new(vec![300, 100], 9);
        for _ in 0..200 {
            queue.submit(0, "king").unwrap();
            queue.submit(1, "queen").unwrap();
        }
        let mut served = [0u32; 2];
        for _ in 0..100 {
            let q = queue.take().unwrap();
            let _ = count_case_insensitive(&corpus, &q.needle);
            queue.finish_one();
            served[q.client] += 1;
        }
        // E[served0] = 75, binomial stddev ≈ 4.3; allow 4 sigma.
        assert!(
            (58..=92).contains(&served[0]),
            "3:1 tickets served {served:?}"
        );
    }

    #[test]
    fn threaded_server_round_trip() {
        let corpus = Arc::new(generate_corpus(20_000, 5));
        let server = SearchServer::start(Arc::clone(&corpus), vec![100, 100], 2, 3);
        for i in 0..10 {
            let client = i % 2;
            server.queue().submit(client, "the").unwrap();
        }
        let mut results = Vec::new();
        for _ in 0..10 {
            results.push(server.results().recv().expect("result"));
        }
        let served: Vec<u64> = server.shutdown();
        assert_eq!(served.iter().sum::<u64>(), 10);
        let expected = count_case_insensitive(&corpus, "the");
        for r in results {
            assert_eq!(r.matches, expected);
            assert_eq!(r.needle, "the");
        }
    }

    #[test]
    fn submit_to_unknown_client_fails() {
        let queue = LotteryQueryQueue::new(vec![1], 1);
        assert!(queue.submit(5, "x").is_err());
    }

    #[test]
    fn closed_empty_queue_returns_none() {
        let queue = LotteryQueryQueue::new(vec![1], 1);
        queue.close();
        assert!(queue.take().is_none());
    }

    #[test]
    fn backlog_counts_pending() {
        let queue = LotteryQueryQueue::new(vec![1, 1], 1);
        queue.submit(0, "a").unwrap();
        queue.submit(1, "b").unwrap();
        assert_eq!(queue.backlog(), 2);
        let _ = queue.take().unwrap();
        assert_eq!(queue.backlog(), 1);
    }
}
