//! MPEG video viewers under dynamic ticket control (Section 5.4, Figure 8).
//!
//! Compton and Tennenhouse needed cooperating viewers and fragile feedback
//! loops to control display rates at application level; lottery scheduling
//! achieves it at the OS level by simply adjusting ticket allocations. The
//! paper runs three `mpeg_play` viewers of the same video with a 3 : 2 : 1
//! allocation, switched to 3 : 1 : 2 halfway through; the cumulative frame
//! curves (Figure 8) kink at the switch.
//!
//! A simulated viewer decodes continuously: each frame costs a fixed CPU
//! budget, so a viewer's display rate is its CPU share divided by the frame
//! cost. (The paper's own numbers were distorted by the single-threaded X11
//! server; the simulator shows the undistorted mechanism, which is also
//! what the paper's -no display runs measured.)

use lottery_sim::prelude::*;
use lottery_stats::ProgressSeries;

/// CPU cost of decoding one frame.
///
/// Chosen so a viewer owning the whole CPU displays ≈ 6 frames/sec, the
/// magnitude `mpeg_play` achieved on the paper's hardware.
pub const FRAME_COST: SimDuration = SimDuration::from_ms(167);

/// Configuration for the viewer experiment.
#[derive(Debug, Clone)]
pub struct MpegExperiment {
    /// Initial ticket allocation per viewer (Figure 8 uses 3 : 2 : 1).
    pub initial: Vec<u64>,
    /// Allocation after the switch point (3 : 1 : 2).
    pub switched: Vec<u64>,
    /// When the allocation changes.
    pub switch_at: SimTime,
    /// Total duration.
    pub duration: SimTime,
    /// Sampling step for the cumulative frame curves.
    pub sample: SimDuration,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// RNG seed.
    pub seed: u32,
}

impl Default for MpegExperiment {
    fn default() -> Self {
        Self {
            initial: vec![300, 200, 100],
            switched: vec![300, 100, 200],
            switch_at: SimTime::from_secs(150),
            duration: SimTime::from_secs(300),
            sample: SimDuration::from_secs(5),
            quantum: SimDuration::from_ms(100),
            seed: 1,
        }
    }
}

/// Results: cumulative frames per viewer plus per-phase rates.
#[derive(Debug)]
pub struct MpegReport {
    /// Cumulative frames displayed: `(time_us, frames)`, sampled.
    pub frames: Vec<ProgressSeries>,
    /// Average frame rates (frames/sec) before the switch.
    pub rates_before: Vec<f64>,
    /// Average frame rates after the switch.
    pub rates_after: Vec<f64>,
}

/// Runs the viewer experiment: three viewers, allocation switched mid-run.
pub fn run(config: &MpegExperiment) -> MpegReport {
    assert_eq!(
        config.initial.len(),
        config.switched.len(),
        "allocations must cover the same viewers"
    );
    let policy = LotteryPolicy::with_quantum(config.seed, config.quantum);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let viewers: Vec<ThreadId> = config
        .initial
        .iter()
        .enumerate()
        .map(|(i, &tickets)| {
            kernel.spawn(
                format!("viewer{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, tickets),
            )
        })
        .collect();

    let mut series: Vec<ProgressSeries> = viewers.iter().map(|_| ProgressSeries::new()).collect();
    let mut switched = false;
    let mut cpu_at_switch = vec![0u64; viewers.len()];
    let mut now = SimTime::ZERO;
    while now < config.duration {
        let next = (now + config.sample).min(config.duration);
        if !switched && next >= config.switch_at {
            kernel.run_until(config.switch_at);
            for (i, &v) in viewers.iter().enumerate() {
                cpu_at_switch[i] = kernel.metrics().cpu_us(v);
                kernel
                    .policy_mut()
                    .set_funding(v, config.switched[i])
                    .expect("viewer is live");
            }
            switched = true;
        }
        kernel.run_until(next);
        now = kernel.now().max(next);
        for (i, &v) in viewers.iter().enumerate() {
            let frames = kernel.metrics().cpu_us(v) as f64 / FRAME_COST.as_us() as f64;
            series[i].record(now.as_us(), frames);
        }
    }

    let switch_secs = config.switch_at.as_secs_f64();
    let tail_secs = config.duration.as_secs_f64() - switch_secs;
    let rates_before = viewers
        .iter()
        .enumerate()
        .map(|(i, _)| cpu_at_switch[i] as f64 / 1e6 / FRAME_COST.as_secs_f64() / switch_secs)
        .collect();
    let rates_after = viewers
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let cpu = kernel.metrics().cpu_us(v) - cpu_at_switch[i];
            cpu as f64 / 1e6 / FRAME_COST.as_secs_f64() / tail_secs
        })
        .collect();
    MpegReport {
        frames: series,
        rates_before,
        rates_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_follow_the_allocation_switch() {
        let report = run(&MpegExperiment::default());
        let b = &report.rates_before;
        // Before: 3 : 2 : 1.
        assert!((b[0] / b[2] - 3.0).abs() < 0.5, "{b:?}");
        assert!((b[1] / b[2] - 2.0).abs() < 0.4, "{b:?}");
        // After: 3 : 1 : 2 — viewers 1 and 2 swap.
        let a = &report.rates_after;
        assert!((a[0] / a[1] - 3.0).abs() < 0.6, "{a:?}");
        assert!((a[2] / a[1] - 2.0).abs() < 0.5, "{a:?}");
    }

    #[test]
    fn total_rate_is_cpu_bound() {
        let report = run(&MpegExperiment::default());
        let total_before: f64 = report.rates_before.iter().sum();
        let max_rate = 1.0 / FRAME_COST.as_secs_f64();
        assert!((total_before - max_rate).abs() < 0.1, "{total_before}");
    }

    #[test]
    fn cumulative_curves_kink_at_switch() {
        let report = run(&MpegExperiment::default());
        // Viewer 1 slows down after the switch: its second-half gain is
        // well below its first-half gain.
        let s = &report.frames[1];
        let half = 150_000_000u64;
        let first = s.value_at(half);
        let second = s.final_value() - first;
        assert!(
            second < first * 0.7,
            "viewer1 should slow: {first} then {second}"
        );
        // Viewer 2 speeds up.
        let s = &report.frames[2];
        let first = s.value_at(half);
        let second = s.final_value() - first;
        assert!(
            second > first * 1.4,
            "viewer2 should speed up: {first} then {second}"
        );
    }

    #[test]
    fn frames_are_monotone() {
        let report = run(&MpegExperiment::default());
        for s in &report.frames {
            let mut last = -1.0;
            for &(_, v) in s.points() {
                assert!(v >= last);
                last = v;
            }
        }
    }
}
