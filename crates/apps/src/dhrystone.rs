//! The Dhrystone workload (Sections 5.1, 5.5, 5.6).
//!
//! The paper uses the Dhrystone benchmark purely as a CPU-time odometer:
//! two compute-bound tasks run for a fixed wall-clock interval and their
//! iteration counts measure the processor share each received. Here a
//! Dhrystone task is a [`lottery_sim::workload::ComputeBound`] thread, and
//! iterations are derived from consumed CPU time at the calibrated rate of
//! the paper's DECStation 5000/125 (Figure 5's 2:1 run totals ≈ 38,000
//! iterations/sec across both tasks).

use lottery_sim::prelude::*;

/// Dhrystone iterations per second of CPU on the reference machine.
///
/// Calibrated so absolute numbers are of the paper's magnitude: the 2:1
/// experiment of Figure 5 sums to ≈ 38,000 iterations/sec.
pub const ITERATIONS_PER_CPU_SEC: f64 = 38_000.0;

/// Converts consumed CPU time to Dhrystone iterations.
pub fn iterations(cpu: SimDuration) -> f64 {
    cpu.as_secs_f64() * ITERATIONS_PER_CPU_SEC
}

/// Configuration for the relative-rate experiments (Figures 4 and 5).
#[derive(Debug, Clone)]
pub struct FairnessRun {
    /// Ticket allocation of task 1 relative to task 2 (task 2 holds
    /// [`FairnessRun::base_tickets`]).
    pub ratio: f64,
    /// Tickets held by the second task.
    pub base_tickets: u64,
    /// Wall-clock duration of the run.
    pub duration: SimTime,
    /// Scheduling quantum (the paper's platform used 100 ms).
    pub quantum: SimDuration,
    /// RNG seed.
    pub seed: u32,
}

impl Default for FairnessRun {
    fn default() -> Self {
        Self {
            ratio: 2.0,
            base_tickets: 100,
            duration: SimTime::from_secs(60),
            quantum: SimDuration::from_ms(100),
            seed: 1,
        }
    }
}

/// Results of one two-task run.
#[derive(Debug)]
pub struct FairnessReport {
    /// The allocated ticket ratio.
    pub allocated: f64,
    /// The observed iteration (CPU) ratio over the whole run.
    pub observed: f64,
    /// Iterations per second for each task in consecutive windows.
    pub windows: Vec<(f64, f64)>,
    /// Total iterations per task.
    pub totals: (f64, f64),
}

/// Runs two Dhrystone tasks under lottery scheduling with the given ticket
/// ratio, reporting observed rates (Figure 4's procedure; with
/// `window` sampling it also yields Figure 5's series).
pub fn run_fairness(config: &FairnessRun, window: SimDuration) -> FairnessReport {
    let policy = LotteryPolicy::with_quantum(config.seed, config.quantum);
    let base = policy.base_currency();
    let t1_tickets = (config.ratio * config.base_tickets as f64).round() as u64;
    let mut kernel = Kernel::new(policy);
    let t1 = kernel.spawn(
        "dhry1",
        Box::new(ComputeBound),
        FundingSpec::new(base, t1_tickets.max(1)),
    );
    let t2 = kernel.spawn(
        "dhry2",
        Box::new(ComputeBound),
        FundingSpec::new(base, config.base_tickets),
    );
    kernel.run_until(config.duration);

    let cpu1 = SimDuration::from_us(kernel.metrics().cpu_us(t1));
    let cpu2 = SimDuration::from_us(kernel.metrics().cpu_us(t2));
    let w1 = kernel
        .metrics()
        .cpu_window_shares(t1, window, config.duration);
    let w2 = kernel
        .metrics()
        .cpu_window_shares(t2, window, config.duration);
    let windows = w1
        .into_iter()
        .zip(w2)
        .map(|(a, b)| {
            // Window shares are CPU fractions; scale to iterations/sec.
            (a * ITERATIONS_PER_CPU_SEC, b * ITERATIONS_PER_CPU_SEC)
        })
        .collect();
    FairnessReport {
        allocated: config.ratio,
        observed: cpu1.as_us() as f64 / cpu2.as_us().max(1) as f64,
        windows,
        totals: (iterations(cpu1), iterations(cpu2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_scale_linearly() {
        assert_eq!(iterations(SimDuration::from_secs(1)), 38_000.0);
        assert_eq!(iterations(SimDuration::from_ms(500)), 19_000.0);
        assert_eq!(iterations(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn two_to_one_converges() {
        let report = run_fairness(&FairnessRun::default(), SimDuration::from_secs(8));
        assert!(
            (report.observed - 2.0).abs() < 0.25,
            "observed {}",
            report.observed
        );
        // Figure 5's scale: both tasks together consume the whole CPU.
        let total_rate = report.totals.0 + report.totals.1;
        assert!((total_rate - 60.0 * ITERATIONS_PER_CPU_SEC).abs() < 1.0);
        assert_eq!(report.windows.len(), 7, "60 s / 8 s windows");
    }

    #[test]
    fn ten_to_one_is_noisier_but_tracks() {
        let report = run_fairness(
            &FairnessRun {
                ratio: 10.0,
                ..FairnessRun::default()
            },
            SimDuration::from_secs(8),
        );
        // Figure 4's worst case for 10:1 was 13.42:1 over 60 s.
        assert!(
            (6.0..=15.0).contains(&report.observed),
            "observed {}",
            report.observed
        );
    }

    #[test]
    fn windows_sum_to_full_cpu() {
        let report = run_fairness(&FairnessRun::default(), SimDuration::from_secs(8));
        for &(a, b) in &report.windows {
            let sum = a + b;
            assert!(
                (sum - ITERATIONS_PER_CPU_SEC).abs() < ITERATIONS_PER_CPU_SEC * 0.02,
                "window sum {sum}"
            );
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = run_fairness(&FairnessRun::default(), SimDuration::from_secs(8));
        let b = run_fairness(&FairnessRun::default(), SimDuration::from_secs(8));
        assert_eq!(a.observed, b.observed);
    }
}
