//! Monte-Carlo tasks with error-driven ticket inflation (Section 5.2).
//!
//! "Scientists frequently execute several separate Monte-Carlo experiments
//! ... It is often desirable to obtain approximate results quickly whenever
//! a new experiment is started, while allowing older experiments to
//! continue reducing their error at a slower rate." The paper achieves this
//! by having each task periodically set its ticket value proportional to
//! the **square of its relative error** — since Monte-Carlo error scales as
//! `1/sqrt(trials)`, a task's funding is inversely proportional to its
//! completed trials, so a freshly started task executes quickly and then
//! tapers (Figure 6).

use lottery_core::rng::{SchedRng, SplitMix64};
use lottery_sim::prelude::*;
use lottery_stats::ProgressSeries;

/// Trials computed per second of CPU (the reference machine's rate; only
/// sets the axis scale of Figure 6).
pub const TRIALS_PER_CPU_SEC: f64 = 50_000.0;

/// Configuration for the staggered Monte-Carlo experiment.
#[derive(Debug, Clone)]
pub struct MonteCarloExperiment {
    /// Start time of each task.
    pub starts: Vec<SimTime>,
    /// Total experiment length.
    pub duration: SimTime,
    /// How often tasks re-evaluate their funding (the paper says
    /// "periodically"; 2 s keeps the control loop responsive at Figure 6's
    /// time scale).
    pub control_interval: SimDuration,
    /// Funding scale: tickets = ceil(scale × relative_error²), clamped to
    /// at least one ticket. Must be large enough that funding ratios stay
    /// resolvable late in the run (error² is 1/trials, so the default
    /// 1e12 keeps ~5 significant digits at 10⁷ trials).
    pub funding_scale: f64,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// RNG seed.
    pub seed: u32,
}

impl Default for MonteCarloExperiment {
    fn default() -> Self {
        Self {
            // Figure 6: three identical integrations started two minutes
            // apart, over a 1000-second window.
            starts: vec![
                SimTime::ZERO,
                SimTime::from_secs(120),
                SimTime::from_secs(240),
            ],
            duration: SimTime::from_secs(1000),
            control_interval: SimDuration::from_secs(2),
            funding_scale: 1e12,
            quantum: SimDuration::from_ms(100),
            seed: 1,
        }
    }
}

/// Results: per-task cumulative trials over time.
#[derive(Debug)]
pub struct MonteCarloReport {
    /// One series per task: `(time_us, cumulative trials)`.
    pub trials: Vec<ProgressSeries>,
    /// Final trial counts.
    pub totals: Vec<f64>,
    /// Final relative errors (`1/sqrt(trials)`).
    pub errors: Vec<f64>,
}

/// A real Monte-Carlo integration, for the computation itself (the
/// simulator only needs the trial *counts*, but the experiment is named
/// after \[Pre88\]'s actual numerical method — here estimating π by
/// sampling the unit square).
///
/// Returns `(estimate, observed relative error)` after `trials` samples.
///
/// # Examples
///
/// ```
/// use lottery_apps::montecarlo::estimate_pi;
///
/// let (pi, err) = estimate_pi(200_000, 7);
/// assert!((pi - std::f64::consts::PI).abs() < 0.02, "{pi}");
/// assert!(err < 0.01);
/// ```
pub fn estimate_pi(trials: u64, seed: u64) -> (f64, f64) {
    assert!(trials > 0, "at least one trial is required");
    let mut rng = SplitMix64::new(seed);
    let mut hits = 0u64;
    for _ in 0..trials {
        let x = rng.next_f64();
        let y = rng.next_f64();
        if x * x + y * y <= 1.0 {
            hits += 1;
        }
    }
    let estimate = 4.0 * hits as f64 / trials as f64;
    let observed_error = (estimate - std::f64::consts::PI).abs() / std::f64::consts::PI;
    (estimate, observed_error)
}

/// The relative error of a task after `trials` trials.
pub fn relative_error(trials: f64) -> f64 {
    if trials <= 0.0 {
        1.0
    } else {
        1.0 / trials.sqrt()
    }
}

/// Runs the staggered Monte-Carlo experiment under lottery scheduling with
/// dynamic, error-quadratic ticket inflation.
pub fn run(config: &MonteCarloExperiment) -> MonteCarloReport {
    let policy = LotteryPolicy::with_quantum(config.seed, config.quantum);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);

    let mut tids: Vec<Option<ThreadId>> = vec![None; config.starts.len()];
    let mut series: Vec<ProgressSeries> = config
        .starts
        .iter()
        .map(|_| ProgressSeries::new())
        .collect();

    let mut now = SimTime::ZERO;
    while now < config.duration {
        let next = (now + config.control_interval).min(config.duration);

        // Start any tasks whose start time has arrived.
        for (i, &start) in config.starts.iter().enumerate() {
            if tids[i].is_none() && start <= now {
                let tid = kernel.spawn(
                    format!("mc{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, config.funding_scale.ceil() as u64),
                );
                tids[i] = Some(tid);
            }
        }

        kernel.run_until(next);
        now = kernel.now().max(next);

        // Control step: each task re-funds itself proportionally to the
        // square of its relative error. error² = 1/trials, so funding is
        // scale/trials.
        for (i, tid) in tids.iter().enumerate() {
            let Some(tid) = *tid else { continue };
            let cpu = SimDuration::from_us(kernel.metrics().cpu_us(tid));
            let trials = cpu.as_secs_f64() * TRIALS_PER_CPU_SEC;
            series[i].record(now.as_us(), trials);
            let err = relative_error(trials);
            let funding = (config.funding_scale * err * err).ceil().max(1.0) as u64;
            kernel
                .policy_mut()
                .set_funding(tid, funding)
                .expect("task is live");
        }
    }

    let totals: Vec<f64> = series.iter().map(ProgressSeries::final_value).collect();
    let errors = totals.iter().map(|&t| relative_error(t)).collect();
    MonteCarloReport {
        trials: series,
        totals,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_estimate_converges_as_inverse_sqrt() {
        // The whole premise of the error²-driven funding: error shrinks
        // as 1/sqrt(trials). Check an order-of-magnitude improvement from
        // 100x the trials (allowing sampling noise).
        let (_, e_small) = estimate_pi(2_000, 11);
        let (_, e_large) = estimate_pi(2_000_000, 11);
        assert!(
            e_large < e_small,
            "more trials, smaller error: {e_small} vs {e_large}"
        );
        assert!(e_large < 0.005, "2M trials should be accurate: {e_large}");
    }

    #[test]
    fn pi_estimate_is_deterministic_per_seed() {
        assert_eq!(estimate_pi(10_000, 3), estimate_pi(10_000, 3));
        assert_ne!(estimate_pi(10_000, 3).0, estimate_pi(10_000, 4).0);
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(0.0), 1.0);
        assert_eq!(relative_error(100.0), 0.1);
        assert_eq!(relative_error(10_000.0), 0.01);
    }

    fn short_config() -> MonteCarloExperiment {
        MonteCarloExperiment {
            starts: vec![SimTime::ZERO, SimTime::from_secs(30)],
            duration: SimTime::from_secs(120),
            ..MonteCarloExperiment::default()
        }
    }

    #[test]
    fn late_starter_catches_up() {
        let report = run(&short_config());
        // The late task starts 30 s behind but, funded by its larger
        // error, must close most of the gap by the end.
        let t0 = report.totals[0];
        let t1 = report.totals[1];
        assert!(t1 > 0.0);
        let gap = (t0 - t1) / t0;
        assert!(
            gap < 0.2,
            "late task should close to within 20%: {t0} vs {t1} (gap {gap:.3})"
        );
    }

    #[test]
    fn errors_converge_toward_each_other() {
        let report = run(&short_config());
        let e0 = report.errors[0];
        let e1 = report.errors[1];
        assert!((e1 / e0) < 1.2, "errors should converge: {e0} vs {e1}");
    }

    #[test]
    fn single_task_gets_everything() {
        let report = run(&MonteCarloExperiment {
            starts: vec![SimTime::ZERO],
            duration: SimTime::from_secs(10),
            ..MonteCarloExperiment::default()
        });
        // 10 s of CPU at the calibrated rate.
        assert!((report.totals[0] - 10.0 * TRIALS_PER_CPU_SEC).abs() < TRIALS_PER_CPU_SEC * 0.05);
    }

    #[test]
    fn series_are_monotone() {
        let report = run(&short_config());
        for s in &report.trials {
            let mut last = -1.0;
            for &(_, v) in s.points() {
                assert!(v >= last);
                last = v;
            }
        }
    }
}
