//! Property tests on the switch's cell-conservation invariants.

use lottery_core::rng::ParkMiller;
use lottery_net::Switch;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cells are conserved: everything enqueued is either forwarded or
    /// still backlogged; forwarding per circuit is FIFO.
    #[test]
    fn cells_conserved_and_fifo(
        tickets in prop::collection::vec(0..100u64, 1..5),
        ops in prop::collection::vec((0..5usize, any::<bool>()), 1..300),
        seed in 1u32..10_000,
    ) {
        let mut sw = Switch::new();
        let vcs: Vec<_> = tickets
            .iter()
            .enumerate()
            .map(|(i, &t)| sw.open_circuit(format!("vc{i}"), t))
            .collect();
        let mut rng = ParkMiller::new(seed);
        let mut enqueued = vec![0u64; vcs.len()];
        let mut next_expected = vec![0u64; vcs.len()];
        for (target, do_enqueue) in ops {
            let vc = vcs[target % vcs.len()];
            if do_enqueue {
                // Cell ids are per-circuit sequence numbers, so FIFO can
                // be checked on dequeue.
                let i = vc.index() as usize;
                sw.enqueue(vc, enqueued[i]);
                enqueued[i] += 1;
            } else if let Ok((won, cell)) = sw.forward(&mut rng) {
                let i = won.index() as usize;
                prop_assert_eq!(cell.id, next_expected[i], "FIFO within circuit");
                next_expected[i] += 1;
                prop_assert!(tickets[i] > 0, "zero-ticket circuit won");
            }
            let accounted: u64 = vcs
                .iter()
                .map(|&vc| sw.forwarded(vc) + sw.backlog(vc) as u64)
                .sum();
            prop_assert_eq!(accounted, enqueued.iter().sum::<u64>(), "cell conservation");
        }
    }
}
