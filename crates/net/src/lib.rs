//! # lottery-net
//!
//! Lottery scheduling of communication resources.
//!
//! Section 6 of the paper observes that "a lottery can be used to allocate
//! resources wherever queueing is necessary for resource access" and
//! proposes scheduling virtual circuits at ATM switches so congested
//! channels divide bandwidth by ticket allocation. [`switch::Switch`]
//! implements that: an output port whose every forwarding slot is a lottery
//! among backlogged circuits.

pub mod switch;

pub use switch::{Cell, CircuitId, Switch};
