//! The lottery-scheduled cell switch.

use std::collections::VecDeque;

use lottery_core::errors::Result;
use lottery_core::lottery::{list::ListLottery, TicketPool};
use lottery_core::rng::SchedRng;
use lottery_obs::{EventKind, ProbeBus};
use lottery_stats::Summary;

/// Identifies a virtual circuit within a [`Switch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CircuitId(u32);

impl CircuitId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A cell queued on a circuit. The payload is opaque to the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Caller-assigned identifier (sequence number, flow tag, ...).
    pub id: u64,
    /// Slot index at which the cell was enqueued, for delay accounting.
    pub enqueued_at: u64,
}

#[derive(Debug)]
struct Circuit {
    name: String,
    tickets: u64,
    queue: VecDeque<Cell>,
    forwarded: u64,
    delay_slots: Summary,
}

/// An output-port scheduler that picks the next cell to forward by
/// lottery among backlogged circuits.
///
/// Each forwarding slot is one lottery: a circuit holding `t` of the `T`
/// tickets on backlogged circuits forwards with probability `t/T`, so
/// congested-channel bandwidth divides proportionally — the paper's
/// proposal for providing "different levels of service to virtual circuits
/// competing for congested channels" (Section 6.3's communication
/// discussion).
#[derive(Debug)]
pub struct Switch {
    circuits: Vec<Circuit>,
    slot: u64,
    bus: ProbeBus,
}

impl Default for Switch {
    fn default() -> Self {
        Self::new()
    }
}

impl Switch {
    /// Creates a switch with no circuits.
    pub fn new() -> Self {
        Self {
            circuits: Vec::new(),
            slot: 0,
            bus: ProbeBus::disabled(),
        }
    }

    /// Attaches the probe bus. Grant, draw, and completion events carry
    /// the `"net"` resource tag; the bus clock stays owned by whoever
    /// drives the simulation (this switch never calls `set_time_us`).
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.bus = bus;
    }

    /// Opens a circuit holding `tickets` bandwidth tickets.
    pub fn open_circuit(&mut self, name: impl Into<String>, tickets: u64) -> CircuitId {
        let id = CircuitId(self.circuits.len() as u32);
        self.circuits.push(Circuit {
            name: name.into(),
            tickets,
            queue: VecDeque::new(),
            forwarded: 0,
            delay_slots: Summary::new(),
        });
        self.bus.emit(|| EventKind::ResourceGrant {
            resource: "net",
            client: id.0,
            tickets,
        });
        id
    }

    /// Adjusts a circuit's ticket allocation.
    pub fn set_tickets(&mut self, vc: CircuitId, tickets: u64) {
        self.circuits[vc.0 as usize].tickets = tickets;
        self.bus.emit(|| EventKind::ResourceGrant {
            resource: "net",
            client: vc.0,
            tickets,
        });
    }

    /// Queues a cell on a circuit.
    pub fn enqueue(&mut self, vc: CircuitId, id: u64) {
        let slot = self.slot;
        self.circuits[vc.0 as usize].queue.push_back(Cell {
            id,
            enqueued_at: slot,
        });
    }

    /// Number of cells waiting on `vc`.
    pub fn backlog(&self, vc: CircuitId) -> usize {
        self.circuits[vc.0 as usize].queue.len()
    }

    /// Cells forwarded from `vc` so far.
    pub fn forwarded(&self, vc: CircuitId) -> u64 {
        self.circuits[vc.0 as usize].forwarded
    }

    /// Queueing delay (in slots) statistics for `vc`.
    pub fn delay_slots(&self, vc: CircuitId) -> &Summary {
        &self.circuits[vc.0 as usize].delay_slots
    }

    /// The circuit's name.
    pub fn name(&self, vc: CircuitId) -> &str {
        &self.circuits[vc.0 as usize].name
    }

    /// Slots elapsed (forwarding attempts, successful or idle).
    pub fn slots(&self) -> u64 {
        self.slot
    }

    /// Runs one forwarding slot: picks a backlogged circuit by lottery and
    /// dequeues its head cell.
    ///
    /// # Errors
    ///
    /// [`lottery_core::errors::LotteryError::EmptyLottery`] when no circuit has traffic (the
    /// output port idles; the slot still elapses).
    pub fn forward<R: SchedRng + ?Sized>(&mut self, rng: &mut R) -> Result<(CircuitId, Cell)> {
        self.slot += 1;
        // Build the per-slot pool over backlogged circuits. Circuit counts
        // are small (a switch port serves tens of VCs); the list lottery's
        // linear walk is the right tool, as in the paper's prototype.
        let mut pool: ListLottery<usize, u64> = ListLottery::without_move_to_front();
        for (i, c) in self.circuits.iter().enumerate() {
            if !c.queue.is_empty() && c.tickets > 0 {
                pool.insert(i, c.tickets);
            }
        }
        let entries = pool.len() as u32;
        let total = pool.total();
        let index = *pool.draw(rng)?;
        self.bus.emit(|| EventKind::ResourceDraw {
            resource: "net",
            client: index as u32,
            entries,
            total,
        });
        let circuit = &mut self.circuits[index];
        let cell = circuit
            .queue
            .pop_front()
            .expect("backlogged circuit has a cell");
        circuit.forwarded += 1;
        let delay = self.slot - 1 - cell.enqueued_at;
        circuit.delay_slots.record(delay as f64);
        self.bus.emit(|| EventKind::ResourceComplete {
            resource: "net",
            client: index as u32,
            units: 1,
            wait: delay,
        });
        Ok((CircuitId(index as u32), cell))
    }

    /// Cells waiting across every circuit.
    pub fn pending_cells(&self) -> usize {
        self.circuits.iter().map(|c| c.queue.len()).sum()
    }
}

/// The switch forwards one cell per slot; with cells queued, its next
/// forwarding opportunity is the upcoming slot boundary (slot `n` maps to
/// simulated microsecond `n` — the driver owns the slot-time scale). An
/// empty switch schedules nothing, so a shared event loop skips it.
impl lottery_sim::event::EventSource for Switch {
    fn next_due(&self) -> Option<lottery_sim::time::SimTime> {
        (self.pending_cells() > 0).then(|| lottery_sim::time::SimTime::from_us(self.slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_core::errors::LotteryError;
    use lottery_core::rng::ParkMiller;

    #[test]
    fn empty_switch_idles() {
        let mut sw = Switch::new();
        let mut rng = ParkMiller::new(1);
        assert_eq!(sw.forward(&mut rng), Err(LotteryError::EmptyLottery));
        assert_eq!(sw.slots(), 1, "the slot elapses even when idle");
    }

    #[test]
    fn single_circuit_fifo() {
        let mut sw = Switch::new();
        let vc = sw.open_circuit("only", 10);
        sw.enqueue(vc, 1);
        sw.enqueue(vc, 2);
        let mut rng = ParkMiller::new(1);
        assert_eq!(sw.forward(&mut rng).unwrap().1.id, 1);
        assert_eq!(sw.forward(&mut rng).unwrap().1.id, 2);
        assert_eq!(sw.backlog(vc), 0);
        assert_eq!(sw.forwarded(vc), 2);
    }

    #[test]
    fn saturated_circuits_share_proportionally() {
        // 3:2:1 tickets, always backlogged: forwarded cells converge to
        // 3:2:1 of the slots.
        let mut sw = Switch::new();
        let a = sw.open_circuit("a", 300);
        let b = sw.open_circuit("b", 200);
        let c = sw.open_circuit("c", 100);
        let mut rng = ParkMiller::new(9);
        let slots = 30_000;
        for i in 0..slots {
            // Keep every queue non-empty.
            for vc in [a, b, c] {
                if sw.backlog(vc) == 0 {
                    sw.enqueue(vc, i);
                }
            }
            sw.forward(&mut rng).unwrap();
        }
        let fa = sw.forwarded(a) as f64 / slots as f64;
        let fb = sw.forwarded(b) as f64 / slots as f64;
        let fc = sw.forwarded(c) as f64 / slots as f64;
        assert!((fa - 0.5).abs() < 0.02, "a share {fa}");
        assert!((fb - 1.0 / 3.0).abs() < 0.02, "b share {fb}");
        assert!((fc - 1.0 / 6.0).abs() < 0.02, "c share {fc}");
    }

    #[test]
    fn idle_circuits_do_not_consume_bandwidth() {
        // Work conservation: a backlogged low-ticket circuit gets the full
        // port when the heavy circuit is idle.
        let mut sw = Switch::new();
        let _heavy = sw.open_circuit("heavy", 1_000_000);
        let light = sw.open_circuit("light", 1);
        for i in 0..100 {
            sw.enqueue(light, i);
        }
        let mut rng = ParkMiller::new(2);
        for _ in 0..100 {
            let (vc, _) = sw.forward(&mut rng).unwrap();
            assert_eq!(vc, light);
        }
    }

    #[test]
    fn zero_ticket_circuit_starves_under_contention() {
        let mut sw = Switch::new();
        let a = sw.open_circuit("funded", 10);
        let z = sw.open_circuit("zero", 0);
        sw.enqueue(z, 1);
        let mut rng = ParkMiller::new(2);
        for i in 0..50 {
            sw.enqueue(a, i);
            let (vc, _) = sw.forward(&mut rng).unwrap();
            assert_eq!(vc, a);
        }
        assert_eq!(sw.backlog(z), 1);
    }

    #[test]
    fn delay_tracks_ticket_share() {
        // Lower-share circuits see longer queueing delays.
        let mut sw = Switch::new();
        let fast = sw.open_circuit("fast", 900);
        let slow = sw.open_circuit("slow", 100);
        let mut rng = ParkMiller::new(33);
        for i in 0..20_000u64 {
            if sw.backlog(fast) < 4 {
                sw.enqueue(fast, i);
            }
            if sw.backlog(slow) < 4 {
                sw.enqueue(slow, i);
            }
            sw.forward(&mut rng).unwrap();
        }
        assert!(
            sw.delay_slots(slow).mean() > sw.delay_slots(fast).mean() * 2.0,
            "slow {} vs fast {}",
            sw.delay_slots(slow).mean(),
            sw.delay_slots(fast).mean()
        );
    }

    #[test]
    fn probe_bus_sees_grants_draws_and_completions() {
        use lottery_obs::{Aggregator, ProbeBus, Shared};

        let bus = ProbeBus::enabled();
        let stats = Shared::new(Aggregator::new());
        bus.attach(stats.clone());
        let mut sw = Switch::new();
        sw.set_probe_bus(bus);
        let a = sw.open_circuit("a", 200);
        let b = sw.open_circuit("b", 100);
        sw.set_tickets(b, 150);
        let mut rng = ParkMiller::new(21);
        for i in 0..40u64 {
            for vc in [a, b] {
                if sw.backlog(vc) == 0 {
                    sw.enqueue(vc, i);
                }
            }
            sw.forward(&mut rng).unwrap();
        }
        stats.with(|s| {
            assert_eq!(s.resource_draws.get("net"), Some(&40));
            assert_eq!(s.resource_units.get("net"), Some(&40));
            assert!(s.resource_wait.contains_key("net"));
        });
    }

    #[test]
    fn set_tickets_reapportions() {
        let mut sw = Switch::new();
        let a = sw.open_circuit("a", 100);
        let b = sw.open_circuit("b", 100);
        sw.set_tickets(a, 300);
        let mut rng = ParkMiller::new(4);
        let slots = 20_000;
        for i in 0..slots {
            for vc in [a, b] {
                if sw.backlog(vc) == 0 {
                    sw.enqueue(vc, i);
                }
            }
            sw.forward(&mut rng).unwrap();
        }
        let ratio = sw.forwarded(a) as f64 / sw.forwarded(b) as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }
}
