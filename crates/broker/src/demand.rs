//! Probe-derived demand: closing the `record_demand` loop.
//!
//! The broker's demand-refund split originally relied on callers
//! reporting demand by hand each step. The probe bus already carries the
//! signal: disk and net schedulers emit [`EventKind::ResourceDraw`] for
//! every contested service slot and [`EventKind::ResourceComplete`] for
//! every finished request, both tagged with the scheduler-local client
//! index. A [`DemandTap`] sits on the bus, maps those client indexes back
//! to broker tenants, and accumulates demand units that
//! [`crate::ResourceBroker::absorb_demand`] folds into the normal demand
//! accounting before a rebalance — so `rebalance` runs unattended for
//! resources whose schedulers are probed. `record_demand` remains as the
//! manual override (and as the only source for resources, like the CPU
//! and memory schedulers, that do not emit per-client draw events).

use std::collections::BTreeMap;

use lottery_obs::{Event, EventKind, Recorder};

use crate::broker::{Resource, TenantId};

/// A bus recorder that turns resource draw/completion events into broker
/// demand, using a caller-maintained `(resource, client) → tenant` bind
/// map (the same shape the `apply_*` bind slices use).
#[derive(Debug, Default)]
pub struct DemandTap {
    bind: BTreeMap<(&'static str, u32), TenantId>,
    pending: BTreeMap<(TenantId, &'static str), u64>,
    /// Events that matched no binding (foreign clients on a shared bus).
    unbound: u64,
}

impl DemandTap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a scheduler-local client index on a resource to a tenant.
    /// Unbound clients are counted but contribute no demand.
    pub fn bind(&mut self, resource: Resource, client: u32, tenant: TenantId) {
        self.bind.insert((resource.name(), client), tenant);
    }

    /// Pending derived demand for one tenant and resource.
    pub fn pending(&self, tenant: TenantId, resource: Resource) -> u64 {
        self.pending
            .get(&(tenant, resource.name()))
            .copied()
            .unwrap_or(0)
    }

    /// Events that matched no binding so far.
    pub fn unbound(&self) -> u64 {
        self.unbound
    }

    /// Drains the accumulated demand as `(tenant, resource, units)` rows.
    pub fn drain(&mut self) -> Vec<(TenantId, Resource, u64)> {
        let drained = std::mem::take(&mut self.pending);
        drained
            .into_iter()
            .filter_map(|((tenant, tag), units)| {
                Resource::parse(tag).map(|resource| (tenant, resource, units))
            })
            .collect()
    }

    fn accumulate(&mut self, resource: &'static str, client: u32, units: u64) {
        match self.bind.get(&(resource, client)) {
            Some(&tenant) => *self.pending.entry((tenant, resource)).or_insert(0) += units,
            None => self.unbound += 1,
        }
    }
}

impl Recorder for DemandTap {
    fn record(&mut self, event: &Event) {
        match event.kind {
            // A draw means the client contended for (and won) a slot:
            // there was pending work. One unit per draw keeps the funded
            // bit alive without scaling demand by service size.
            EventKind::ResourceDraw {
                resource, client, ..
            } => self.accumulate(resource, client, 1),
            // Completions carry the serviced units — the demand actually
            // realized, which is what backlog-following budget policies
            // want to weigh.
            EventKind::ResourceComplete {
                resource,
                client,
                units,
                ..
            } => self.accumulate(resource, client, units),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> Event {
        Event { time_us: 0, kind }
    }

    #[test]
    fn draws_and_completions_accumulate_per_tenant() {
        let mut broker = crate::ResourceBroker::new();
        let gold = broker
            .register_tenant("gold", 2000, crate::SplitPolicy::even())
            .unwrap();
        let silver = broker
            .register_tenant("silver", 1000, crate::SplitPolicy::even())
            .unwrap();
        let mut tap = DemandTap::new();
        tap.bind(Resource::Disk, 0, gold);
        tap.bind(Resource::Disk, 1, silver);
        tap.bind(Resource::Net, 0, gold);
        tap.record(&ev(EventKind::ResourceDraw {
            resource: "disk",
            client: 0,
            entries: 2,
            total: 750,
        }));
        tap.record(&ev(EventKind::ResourceComplete {
            resource: "disk",
            client: 0,
            units: 16,
            wait: 100,
        }));
        tap.record(&ev(EventKind::ResourceDraw {
            resource: "disk",
            client: 1,
            entries: 2,
            total: 750,
        }));
        // Client 2 is nobody's: counted, not credited.
        tap.record(&ev(EventKind::ResourceComplete {
            resource: "net",
            client: 2,
            units: 4,
            wait: 1,
        }));
        assert_eq!(tap.pending(gold, Resource::Disk), 17);
        assert_eq!(tap.pending(silver, Resource::Disk), 1);
        assert_eq!(tap.pending(gold, Resource::Net), 0);
        assert_eq!(tap.unbound(), 1);
        let rows = tap.drain();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&(gold, Resource::Disk, 17)));
        assert_eq!(tap.pending(gold, Resource::Disk), 0);
    }

    #[test]
    fn non_resource_events_are_ignored() {
        let mut tap = DemandTap::new();
        tap.record(&ev(EventKind::Wake { thread: 3 }));
        tap.record(&ev(EventKind::LedgerOp { op: "fund-client" }));
        assert!(tap.drain().is_empty());
        assert_eq!(tap.unbound(), 0);
    }
}
