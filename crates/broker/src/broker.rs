//! The resource broker and its funding graph.
//!
//! Funding graph per tenant (all edges are ledger tickets):
//!
//! ```text
//! base ──grant──▶ tenant:<name> ──w_cpu──▶ <name>:cpu ──▶ sink client
//!                               ──w_disk─▶ <name>:disk ─▶ sink client
//!                               ──w_mem──▶ <name>:mem ──▶ sink client
//!                               ──w_net──▶ <name>:net ──▶ sink client
//! ```
//!
//! Each resource currency's *base-unit valuation* — `grant · w_r / Σ
//! active w` — is the weight the broker exports to that resource's
//! scheduler. The sink client keeps the activation chain live (a currency
//! with no active issued tickets is worthless) and doubles as the
//! scheduler-facing face amount in the raw ablation. Extra "worker"
//! tickets issued inside a resource currency ([`ResourceBroker::issue_worker`])
//! dilute the sink but never change the currency's valuation, which is
//! the whole point: intra-tenant inflation is contained by construction.

use lottery_core::currency::CurrencyId;
use lottery_core::errors::{LotteryError, Result};
use lottery_core::ledger::Ledger;
use lottery_core::ticket::TicketId;
use lottery_io::{DiskClientId, DiskScheduler};
use lottery_mem::{MemClientId, MemoryManager};
use lottery_net::{CircuitId, Switch};
use lottery_obs::{EventKind, ProbeBus};
use lottery_sim::prelude::{DistributedLottery, ThreadId};

/// The four brokered resource classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// CPU quanta (driven through [`DistributedLottery`]).
    Cpu,
    /// Disk bandwidth (driven through [`DiskScheduler`]).
    Disk,
    /// Memory frames (driven through [`MemoryManager`]'s inverse lottery).
    Mem,
    /// Network link slots (driven through [`Switch`]).
    Net,
}

impl Resource {
    /// All resources, in canonical order.
    pub const ALL: [Resource; 4] = [Resource::Cpu, Resource::Disk, Resource::Mem, Resource::Net];

    /// The resource's wire tag (matches probe-event `resource` fields).
    pub fn name(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::Disk => "disk",
            Resource::Mem => "mem",
            Resource::Net => "net",
        }
    }

    /// Parses a wire tag back into a resource.
    pub fn parse(s: &str) -> Option<Resource> {
        Resource::ALL.into_iter().find(|r| r.name() == s)
    }

    /// The resource's slot in `[u64; 4]` weight arrays.
    pub fn index(self) -> usize {
        match self {
            Resource::Cpu => 0,
            Resource::Disk => 1,
            Resource::Mem => 2,
            Resource::Net => 3,
        }
    }
}

/// How a tenant's grant divides across its four resource currencies.
///
/// Weights are relative (`[1, 1, 1, 1]` and `[5, 5, 5, 5]` are the same
/// split); a zero weight leaves the resource permanently unfunded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Fixed backing: idle resources keep their share of the grant.
    Static([u64; 4]),
    /// Same weights, but each [`ResourceBroker::rebalance`] unfunds
    /// resources with no demand recorded since the previous rebalance,
    /// refunding their backing to the grant — the remaining active
    /// resources appreciate proportionally — and re-funds them the moment
    /// demand returns.
    DemandRefund([u64; 4]),
}

impl SplitPolicy {
    /// An even demand-refunding split — the common default.
    pub fn even() -> Self {
        SplitPolicy::DemandRefund([1; 4])
    }

    fn weights(self) -> [u64; 4] {
        match self {
            SplitPolicy::Static(w) | SplitPolicy::DemandRefund(w) => w,
        }
    }

    fn refunding(self) -> bool {
        matches!(self, SplitPolicy::DemandRefund(_))
    }
}

/// Identifies a tenant within a [`ResourceBroker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// The raw index (the `tenant` field of broker probe events).
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Debug)]
struct ResourceSlot {
    /// The per-resource sub-currency (`<tenant>:<resource>`).
    currency: CurrencyId,
    /// The ticket in the tenant currency backing this sub-currency.
    backing: TicketId,
    /// Whether `backing` currently funds the currency (false after a
    /// demand refund).
    funded: bool,
    /// Relative split weight from the tenant's policy.
    weight: u64,
    /// Demand units recorded since the last rebalance.
    demand: u64,
    /// Cumulative usage units recorded via [`ResourceBroker::record_usage`].
    usage: u64,
    /// Worker clients issued inside the sub-currency (the sink is index 0).
    workers: u32,
}

#[derive(Debug)]
struct Tenant {
    name: String,
    grant: u64,
    /// The tenant currency the grant funds.
    currency: CurrencyId,
    /// The base-currency ticket carrying the grant.
    grant_ticket: TicketId,
    /// Whether the grant ticket currently funds the tenant currency
    /// (false after [`ResourceBroker::set_grant`] to zero).
    grant_funded: bool,
    policy: SplitPolicy,
    slots: [ResourceSlot; 4],
}

/// One (tenant, resource) row of a [`BrokerReport`].
#[derive(Debug, Clone)]
pub struct BrokerResourceRow {
    /// Tenant index.
    pub tenant: u32,
    /// Resource tag.
    pub resource: &'static str,
    /// Whether the backing ticket currently funds the sub-currency.
    pub funded: bool,
    /// The exported weight (valuation, or face amount in raw mode).
    pub weight: f64,
    /// This tenant's fraction of the resource's total exported weight.
    pub weight_share: f64,
    /// Cumulative usage units recorded for the tenant on the resource.
    pub usage: u64,
    /// This tenant's fraction of the resource's total recorded usage.
    pub observed_share: f64,
}

/// Per-tenant summary of a [`BrokerReport`].
#[derive(Debug, Clone)]
pub struct BrokerTenantRow {
    /// Tenant index.
    pub tenant: u32,
    /// Tenant name.
    pub name: String,
    /// Base-currency grant.
    pub grant: u64,
    /// Grant-proportional entitled share.
    pub entitled_share: f64,
    /// Max observed usage share across resources with recorded usage.
    pub dominant_share: f64,
    /// The resource realizing the dominant share (`"-"` when no usage).
    pub dominant_resource: &'static str,
}

/// Funding and observed-share snapshot over every tenant.
#[derive(Debug, Clone, Default)]
pub struct BrokerReport {
    /// Whether the broker was exporting raw face amounts.
    pub raw: bool,
    /// Per-(tenant, resource) rows, tenant-major in canonical order.
    pub rows: Vec<BrokerResourceRow>,
    /// Per-tenant summaries.
    pub tenants: Vec<BrokerTenantRow>,
}

/// Funds CPU, disk, memory, and network schedulers from per-tenant grants
/// held in one ledger. See the crate docs for the funding graph.
#[derive(Debug)]
pub struct ResourceBroker {
    ledger: Ledger,
    tenants: Vec<Tenant>,
    bus: ProbeBus,
    raw: bool,
    refunds: u64,
}

impl Default for ResourceBroker {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceBroker {
    /// Creates a broker with an empty ledger.
    pub fn new() -> Self {
        Self {
            ledger: Ledger::new(),
            tenants: Vec::new(),
            bus: ProbeBus::disabled(),
            raw: false,
            refunds: 0,
        }
    }

    /// Attaches the probe bus to the broker and its ledger. Funding
    /// changes emit [`EventKind::BrokerFunding`].
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.ledger.set_probe_bus(bus.clone());
        self.bus = bus;
    }

    /// Switches weight export to raw face amounts (`active_amount` of
    /// each sub-currency) instead of ledger valuations, and disables
    /// demand refunds — the non-brokered ablation. Under raw funding,
    /// worker tickets issued inside a sub-currency *do* grow the exported
    /// weight: inflation leaks across tenants.
    pub fn set_raw_funding(&mut self, raw: bool) {
        self.raw = raw;
    }

    /// Whether raw face-amount export is active.
    pub fn raw_funding(&self) -> bool {
        self.raw
    }

    /// The backing ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The backing ledger, mutably (escape hatch for experiments that
    /// manipulate the funding graph directly).
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Registers a tenant: issues `grant` base tickets into a fresh
    /// tenant currency and splits it across the four resource
    /// sub-currencies per `policy`.
    ///
    /// # Errors
    ///
    /// [`LotteryError::ZeroAmount`] when `grant` is zero or every policy
    /// weight is zero; ledger errors on duplicate tenant names.
    pub fn register_tenant(
        &mut self,
        name: impl Into<String>,
        grant: u64,
        policy: SplitPolicy,
    ) -> Result<TenantId> {
        let name = name.into();
        let weights = policy.weights();
        let weight_sum: u64 = weights.iter().sum();
        if grant == 0 || weight_sum == 0 {
            return Err(LotteryError::ZeroAmount);
        }
        let tenant_currency = self.ledger.create_currency(name.clone())?;
        let grant_ticket = self.ledger.issue_root(self.ledger.base(), grant)?;
        self.ledger.fund_currency(grant_ticket, tenant_currency)?;
        let id = TenantId(self.tenants.len() as u32);
        let mut slots = Vec::with_capacity(4);
        for resource in Resource::ALL {
            let weight = weights[resource.index()];
            let currency = self
                .ledger
                .create_currency(format!("{name}:{}", resource.name()))?;
            // A zero split weight cannot back a ticket; keep the currency
            // permanently unfunded with a placeholder backing in the
            // *base* currency that never funds anything.
            let (backing, funded) = if weight > 0 {
                let t = self.ledger.issue_root(tenant_currency, weight)?;
                self.ledger.fund_currency(t, currency)?;
                (t, true)
            } else {
                (self.ledger.issue_root(self.ledger.base(), 1)?, false)
            };
            // The sink client keeps the currency active and carries its
            // grant-proportional face amount, so raw-mode faces start at
            // the same split the valuation gives.
            if weight > 0 {
                let face = (grant * weight / weight_sum).max(1);
                let sink = self
                    .ledger
                    .create_client(format!("{name}:{}:sink", resource.name()));
                let sink_ticket = self.ledger.issue_root(currency, face)?;
                self.ledger.fund_client(sink_ticket, sink)?;
                self.ledger.activate_client(sink)?;
            }
            slots.push(ResourceSlot {
                currency,
                backing,
                funded,
                weight,
                demand: 0,
                usage: 0,
                workers: 1,
            });
        }
        let slots: [ResourceSlot; 4] = slots.try_into().expect("four resources");
        self.tenants.push(Tenant {
            name,
            grant,
            currency: tenant_currency,
            grant_ticket,
            grant_funded: true,
            policy,
            slots,
        });
        for resource in Resource::ALL {
            self.emit_funding(id, resource, false);
        }
        Ok(id)
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A tenant's name.
    pub fn name(&self, tenant: TenantId) -> &str {
        &self.tenants[tenant.0 as usize].name
    }

    /// Looks a tenant up by name.
    pub fn find_tenant(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .map(|i| TenantId(i as u32))
    }

    /// A tenant's base-currency grant.
    pub fn grant(&self, tenant: TenantId) -> u64 {
        self.tenants[tenant.0 as usize].grant
    }

    /// Re-prices a tenant's base-currency grant in place — the lever a
    /// cluster coordinator pulls when reconciliation moves funding
    /// between nodes. A zero grant unfunds the grant ticket entirely
    /// (the tenant's resource weights all collapse to zero but the
    /// funding graph stays intact); a later non-zero grant re-funds it.
    pub fn set_grant(&mut self, tenant: TenantId, grant: u64) -> Result<()> {
        let (ticket, currency, funded) = {
            let t = &self.tenants[tenant.0 as usize];
            (t.grant_ticket, t.currency, t.grant_funded)
        };
        if grant == 0 {
            if funded {
                self.ledger.unfund(ticket)?;
                self.tenants[tenant.0 as usize].grant_funded = false;
            }
        } else {
            self.ledger.set_amount(ticket, grant)?;
            if !funded {
                self.ledger.fund_currency(ticket, currency)?;
                self.tenants[tenant.0 as usize].grant_funded = true;
            }
        }
        self.tenants[tenant.0 as usize].grant = grant;
        for resource in Resource::ALL {
            self.emit_funding(tenant, resource, false);
        }
        Ok(())
    }

    /// A tenant's grant-proportional entitled share of every resource.
    pub fn entitled_share(&self, tenant: TenantId) -> f64 {
        let total: u64 = self.tenants.iter().map(|t| t.grant).sum();
        if total == 0 {
            0.0
        } else {
            self.tenants[tenant.0 as usize].grant as f64 / total as f64
        }
    }

    /// Records demand (pending work) for a tenant on a resource since the
    /// last rebalance. Any non-zero demand keeps the resource funded
    /// under [`SplitPolicy::DemandRefund`].
    pub fn record_demand(&mut self, tenant: TenantId, resource: Resource, units: u64) {
        self.tenants[tenant.0 as usize].slots[resource.index()].demand += units;
    }

    /// Folds demand derived by a [`crate::demand::DemandTap`] on the probe
    /// bus into the normal demand accounting, then clears the tap — the
    /// unattended alternative to calling [`ResourceBroker::record_demand`]
    /// by hand each step. Returns the total units absorbed.
    pub fn absorb_demand(&mut self, tap: &lottery_obs::Shared<crate::demand::DemandTap>) -> u64 {
        let rows = tap.with(|t| t.drain());
        let mut total = 0;
        for (tenant, resource, units) in rows {
            self.record_demand(tenant, resource, units);
            total += units;
        }
        total
    }

    /// The demand units accumulated for a tenant since the last
    /// rebalance, per resource in canonical order — the per-node demand
    /// export cluster reconciliation reports upstream.
    pub fn pending_demand(&self, tenant: TenantId) -> [u64; 4] {
        let slots = &self.tenants[tenant.0 as usize].slots;
        [
            slots[0].demand,
            slots[1].demand,
            slots[2].demand,
            slots[3].demand,
        ]
    }

    /// Records completed usage units for a tenant on a resource (feeds
    /// the observed shares of [`ResourceBroker::report`]).
    pub fn record_usage(&mut self, tenant: TenantId, resource: Resource, units: u64) {
        self.tenants[tenant.0 as usize].slots[resource.index()].usage += units;
    }

    /// Cumulative usage units recorded for a tenant on a resource.
    pub fn usage(&self, tenant: TenantId, resource: Resource) -> u64 {
        self.tenants[tenant.0 as usize].slots[resource.index()].usage
    }

    /// Rebalances demand-refunding tenants: unfunds backings of resources
    /// with zero recorded demand (refunding them to the grant), re-funds
    /// resources whose demand returned, emits a funding event per
    /// (tenant, resource), and clears the demand accumulators.
    ///
    /// Refunds are suspended in raw mode — the ablation exports static
    /// faces precisely so drift is attributable to missing valuation.
    pub fn rebalance(&mut self) -> Result<()> {
        for index in 0..self.tenants.len() {
            let id = TenantId(index as u32);
            let refunding = self.tenants[index].policy.refunding() && !self.raw;
            for resource in Resource::ALL {
                let slot = &self.tenants[index].slots[resource.index()];
                let (backing, currency, funded, weight, demand) = (
                    slot.backing,
                    slot.currency,
                    slot.funded,
                    slot.weight,
                    slot.demand,
                );
                let mut refunded = false;
                if refunding && weight > 0 {
                    if demand == 0 && funded {
                        self.ledger.unfund(backing)?;
                        self.tenants[index].slots[resource.index()].funded = false;
                        self.refunds += 1;
                        refunded = true;
                    } else if demand > 0 && !funded {
                        self.ledger.fund_currency(backing, currency)?;
                        self.tenants[index].slots[resource.index()].funded = true;
                    }
                }
                self.tenants[index].slots[resource.index()].demand = 0;
                self.emit_funding(id, resource, refunded);
            }
        }
        Ok(())
    }

    /// Total demand refunds performed so far.
    pub fn refunds(&self) -> u64 {
        self.refunds
    }

    /// The weight the broker exports for a tenant's resource, in base
    /// units: the sub-currency's ledger valuation, or its active face
    /// amount under raw funding. Zero when the resource is refunded.
    pub fn weight(&self, tenant: TenantId, resource: Resource) -> f64 {
        let slot = &self.tenants[tenant.0 as usize].slots[resource.index()];
        if self.raw {
            self.ledger
                .currency(slot.currency)
                .map(|c| c.active_amount() as f64)
                .unwrap_or(0.0)
        } else {
            self.ledger
                .cached_currency_value(slot.currency)
                .unwrap_or(0.0)
        }
    }

    /// Issues an active worker client funded by `amount` fresh tickets
    /// inside a tenant's resource sub-currency — intra-tenant inflation.
    /// Under valuation export this dilutes the tenant's own workers and
    /// nothing else; under raw export it grows the exported weight.
    ///
    /// Returns the worker's funding ticket so callers can re-price it
    /// later with [`ResourceBroker::set_worker_amount`].
    pub fn issue_worker(
        &mut self,
        tenant: TenantId,
        resource: Resource,
        amount: u64,
    ) -> Result<TicketId> {
        let slot = &self.tenants[tenant.0 as usize].slots[resource.index()];
        let currency = slot.currency;
        let worker_index = slot.workers;
        let name = format!(
            "{}:{}:{}",
            self.tenants[tenant.0 as usize].name,
            resource.name(),
            worker_index
        );
        let client = self.ledger.create_client(name);
        let ticket = self.ledger.issue_root(currency, amount)?;
        self.ledger.fund_client(ticket, client)?;
        self.ledger.activate_client(client)?;
        self.tenants[tenant.0 as usize].slots[resource.index()].workers += 1;
        Ok(ticket)
    }

    /// Re-prices a worker's funding ticket in place (dynamic inflation,
    /// e.g. error-driven Monte-Carlo funding).
    pub fn set_worker_amount(&mut self, ticket: TicketId, amount: u64) -> Result<()> {
        self.ledger.set_amount(ticket, amount)
    }

    /// Pushes per-tenant CPU weights into a [`DistributedLottery`].
    /// `bind` maps tenants to their threads; a tenant's weight divides
    /// evenly across its threads (clamped to ≥ 1 — the scheduler rejects
    /// zero-ticket funding, and a refunded tenant should idle, not
    /// panic).
    pub fn apply_cpu(
        &self,
        policy: &mut DistributedLottery,
        bind: &[(TenantId, ThreadId)],
    ) -> Result<()> {
        let mut thread_counts = vec![0u64; self.tenants.len()];
        for (tenant, _) in bind {
            thread_counts[tenant.0 as usize] += 1;
        }
        for &(tenant, thread) in bind {
            let threads = thread_counts[tenant.0 as usize].max(1);
            let amount = (self.weight(tenant, Resource::Cpu) / threads as f64).round() as u64;
            policy.set_funding(thread, amount.max(1))?;
        }
        Ok(())
    }

    /// Pushes per-tenant disk weights into a [`DiskScheduler`].
    pub fn apply_disk(&self, disk: &mut DiskScheduler, bind: &[(TenantId, DiskClientId)]) {
        for &(tenant, client) in bind {
            disk.set_tickets(client, self.weight(tenant, Resource::Disk).round() as u64);
        }
    }

    /// Pushes per-tenant memory weights into a [`MemoryManager`].
    pub fn apply_mem(&self, mem: &mut MemoryManager, bind: &[(TenantId, MemClientId)]) {
        for &(tenant, client) in bind {
            mem.set_tickets(client, self.weight(tenant, Resource::Mem).round() as u64);
        }
    }

    /// Pushes per-tenant network weights into a [`Switch`].
    pub fn apply_net(&self, switch: &mut Switch, bind: &[(TenantId, CircuitId)]) {
        for &(tenant, circuit) in bind {
            switch.set_tickets(circuit, self.weight(tenant, Resource::Net).round() as u64);
        }
    }

    /// Snapshots funding and observed shares across every tenant.
    pub fn report(&self) -> BrokerReport {
        let mut resource_weight = [0.0f64; 4];
        let mut resource_usage = [0u64; 4];
        for (index, tenant) in self.tenants.iter().enumerate() {
            let id = TenantId(index as u32);
            for resource in Resource::ALL {
                resource_weight[resource.index()] += self.weight(id, resource);
                resource_usage[resource.index()] += tenant.slots[resource.index()].usage;
            }
        }
        let mut rows = Vec::new();
        let mut tenants = Vec::new();
        for (index, tenant) in self.tenants.iter().enumerate() {
            let id = TenantId(index as u32);
            let mut dominant_share = 0.0;
            let mut dominant_resource = "-";
            for resource in Resource::ALL {
                let slot = &tenant.slots[resource.index()];
                let weight = self.weight(id, resource);
                let weight_total = resource_weight[resource.index()];
                let usage_total = resource_usage[resource.index()];
                let observed_share = if usage_total > 0 {
                    slot.usage as f64 / usage_total as f64
                } else {
                    0.0
                };
                if usage_total > 0 && observed_share > dominant_share {
                    dominant_share = observed_share;
                    dominant_resource = resource.name();
                }
                rows.push(BrokerResourceRow {
                    tenant: id.0,
                    resource: resource.name(),
                    funded: slot.funded,
                    weight,
                    weight_share: if weight_total > 0.0 {
                        weight / weight_total
                    } else {
                        0.0
                    },
                    usage: slot.usage,
                    observed_share,
                });
            }
            tenants.push(BrokerTenantRow {
                tenant: id.0,
                name: tenant.name.clone(),
                grant: tenant.grant,
                entitled_share: self.entitled_share(id),
                dominant_share,
                dominant_resource,
            });
        }
        BrokerReport {
            raw: self.raw,
            rows,
            tenants,
        }
    }

    fn emit_funding(&self, tenant: TenantId, resource: Resource, refunded: bool) {
        let weight = self.weight(tenant, resource);
        self.bus.emit(|| EventKind::BrokerFunding {
            tenant: tenant.0,
            resource: resource.name(),
            weight,
            refunded,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_core::rng::ParkMiller;
    use lottery_io::DiskPolicy;

    fn two_tenants(broker: &mut ResourceBroker) -> (TenantId, TenantId) {
        let gold = broker
            .register_tenant("gold", 2000, SplitPolicy::even())
            .unwrap();
        let silver = broker
            .register_tenant("silver", 1000, SplitPolicy::even())
            .unwrap();
        (gold, silver)
    }

    #[test]
    fn grants_split_evenly_across_resources() {
        let mut broker = ResourceBroker::new();
        let (gold, silver) = two_tenants(&mut broker);
        for r in Resource::ALL {
            assert!((broker.weight(gold, r) - 500.0).abs() < 1e-9, "{r:?}");
            assert!((broker.weight(silver, r) - 250.0).abs() < 1e-9, "{r:?}");
        }
        assert!((broker.entitled_share(gold) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn static_weights_respect_the_split() {
        let mut broker = ResourceBroker::new();
        let t = broker
            .register_tenant("db", 1000, SplitPolicy::Static([1, 5, 2, 2]))
            .unwrap();
        assert!((broker.weight(t, Resource::Cpu) - 100.0).abs() < 1e-9);
        assert!((broker.weight(t, Resource::Disk) - 500.0).abs() < 1e-9);
        assert!((broker.weight(t, Resource::Mem) - 200.0).abs() < 1e-9);
        assert!((broker.weight(t, Resource::Net) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_split_weight_stays_unfunded() {
        let mut broker = ResourceBroker::new();
        let t = broker
            .register_tenant("cpu-only", 600, SplitPolicy::Static([1, 1, 1, 0]))
            .unwrap();
        assert_eq!(broker.weight(t, Resource::Net), 0.0);
        assert!((broker.weight(t, Resource::Cpu) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn disk_inflation_cannot_leak_across_tenants() {
        let mut broker = ResourceBroker::new();
        let (gold, silver) = two_tenants(&mut broker);
        // Gold prints 10k disk tickets for a new worker — 20x its sink.
        broker.issue_worker(gold, Resource::Disk, 10_000).unwrap();
        // Valued weights are pinned by the backing tickets: nothing moved,
        // on disk or anywhere else.
        for r in Resource::ALL {
            assert!((broker.weight(gold, r) - 500.0).abs() < 1e-9, "{r:?}");
            assert!((broker.weight(silver, r) - 250.0).abs() < 1e-9, "{r:?}");
        }
        // The raw ablation sees the printed face value directly.
        broker.set_raw_funding(true);
        assert!((broker.weight(gold, Resource::Disk) - 10_500.0).abs() < 1e-9);
        assert!((broker.weight(silver, Resource::Disk) - 250.0).abs() < 1e-9);
        assert!((broker.weight(gold, Resource::Cpu) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn demand_refund_reprices_active_resources() {
        let mut broker = ResourceBroker::new();
        let (gold, silver) = two_tenants(&mut broker);
        // Silver goes net-idle; everything else stays busy.
        for t in [gold, silver] {
            for r in Resource::ALL {
                if !(t == silver && r == Resource::Net) {
                    broker.record_demand(t, r, 1);
                }
            }
        }
        broker.rebalance().unwrap();
        assert_eq!(broker.weight(silver, Resource::Net), 0.0);
        // Silver's grant now backs three active resources: 1000/3 each.
        assert!((broker.weight(silver, Resource::Cpu) - 1000.0 / 3.0).abs() < 1e-9);
        // Gold is untouched.
        assert!((broker.weight(gold, Resource::Net) - 500.0).abs() < 1e-9);
        assert_eq!(broker.refunds(), 1);
        // Demand returns: the next rebalance restores the even split.
        for t in [gold, silver] {
            for r in Resource::ALL {
                broker.record_demand(t, r, 1);
            }
        }
        broker.rebalance().unwrap();
        assert!((broker.weight(silver, Resource::Net) - 250.0).abs() < 1e-9);
        assert!((broker.weight(silver, Resource::Cpu) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn static_split_never_refunds() {
        let mut broker = ResourceBroker::new();
        let t = broker
            .register_tenant("fixed", 800, SplitPolicy::Static([1, 1, 1, 1]))
            .unwrap();
        // No demand recorded at all; a static tenant keeps its backing.
        broker.rebalance().unwrap();
        assert!((broker.weight(t, Resource::Net) - 200.0).abs() < 1e-9);
        assert_eq!(broker.refunds(), 0);
    }

    #[test]
    fn raw_mode_suspends_refunds() {
        let mut broker = ResourceBroker::new();
        let (_, silver) = two_tenants(&mut broker);
        broker.set_raw_funding(true);
        broker.rebalance().unwrap();
        assert_eq!(broker.refunds(), 0);
        assert!((broker.weight(silver, Resource::Net) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn applied_disk_weights_hold_two_to_one() {
        let mut broker = ResourceBroker::new();
        let (gold, silver) = two_tenants(&mut broker);
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let dg = disk.register("gold", 1);
        let ds = disk.register("silver", 1);
        broker.apply_disk(&mut disk, &[(gold, dg), (silver, ds)]);
        let mut rng = ParkMiller::new(41);
        for i in 0..30_000u64 {
            for (k, &c) in [dg, ds].iter().enumerate() {
                if disk.backlog(c) < 4 {
                    disk.submit(c, (i * 64 + k as u64 * 1000) % 100_000, 8);
                }
            }
            disk.service_next(&mut rng).unwrap();
        }
        let ratio = disk.sectors_served(dg) as f64 / disk.sectors_served(ds) as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn worker_repricing_moves_raw_but_not_valued_weight() {
        let mut broker = ResourceBroker::new();
        let (gold, _) = two_tenants(&mut broker);
        let w = broker.issue_worker(gold, Resource::Cpu, 100).unwrap();
        broker.set_worker_amount(w, 4_000).unwrap();
        assert!((broker.weight(gold, Resource::Cpu) - 500.0).abs() < 1e-9);
        broker.set_raw_funding(true);
        assert!((broker.weight(gold, Resource::Cpu) - 4_500.0).abs() < 1e-9);
    }

    #[test]
    fn report_shapes_and_dominant_usage() {
        let mut broker = ResourceBroker::new();
        let (gold, silver) = two_tenants(&mut broker);
        broker.record_usage(gold, Resource::Disk, 800);
        broker.record_usage(silver, Resource::Disk, 200);
        broker.record_usage(gold, Resource::Cpu, 600);
        broker.record_usage(silver, Resource::Cpu, 400);
        let report = broker.report();
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.tenants.len(), 2);
        let g = &report.tenants[0];
        assert_eq!(g.dominant_resource, "disk");
        assert!((g.dominant_share - 0.8).abs() < 1e-12);
        let disk_row = report
            .rows
            .iter()
            .find(|r| r.tenant == 0 && r.resource == "disk")
            .unwrap();
        assert!((disk_row.weight_share - 2.0 / 3.0).abs() < 1e-9);
        assert!((disk_row.observed_share - 0.8).abs() < 1e-12);
    }

    #[test]
    fn find_tenant_and_metadata() {
        let mut broker = ResourceBroker::new();
        let (gold, _) = two_tenants(&mut broker);
        assert_eq!(broker.find_tenant("gold"), Some(gold));
        assert_eq!(broker.find_tenant("nobody"), None);
        assert_eq!(broker.name(gold), "gold");
        assert_eq!(broker.grant(gold), 2000);
        assert_eq!(broker.tenant_count(), 2);
        assert_eq!(gold.index(), 0);
    }

    #[test]
    fn set_grant_reprices_and_survives_zero() {
        let mut broker = ResourceBroker::new();
        let (gold, silver) = two_tenants(&mut broker);
        broker.set_grant(gold, 4000).unwrap();
        for r in Resource::ALL {
            assert!((broker.weight(gold, r) - 1000.0).abs() < 1e-9, "{r:?}");
            assert!((broker.weight(silver, r) - 250.0).abs() < 1e-9, "{r:?}");
        }
        assert_eq!(broker.grant(gold), 4000);
        // Zero drains the tenant's weights without touching silver.
        broker.set_grant(gold, 0).unwrap();
        for r in Resource::ALL {
            assert_eq!(broker.weight(gold, r), 0.0, "{r:?}");
            assert!((broker.weight(silver, r) - 250.0).abs() < 1e-9, "{r:?}");
        }
        assert!((broker.entitled_share(silver) - 1.0).abs() < 1e-12);
        // And funding comes back whole.
        broker.set_grant(gold, 2000).unwrap();
        for r in Resource::ALL {
            assert!((broker.weight(gold, r) - 500.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn absorbed_tap_demand_keeps_resources_funded() {
        use lottery_obs::Shared;
        let mut broker = ResourceBroker::new();
        let (gold, silver) = two_tenants(&mut broker);
        let tap = Shared::new(crate::DemandTap::new());
        tap.with(|t| {
            t.bind(Resource::Disk, 0, gold);
            t.bind(Resource::Net, 1, silver);
        });
        let mut on_bus = tap.clone();
        use lottery_obs::Recorder as _;
        on_bus.record(&lottery_obs::Event {
            time_us: 0,
            kind: EventKind::ResourceDraw {
                resource: "disk",
                client: 0,
                entries: 2,
                total: 750,
            },
        });
        let absorbed = broker.absorb_demand(&tap);
        assert_eq!(absorbed, 1);
        assert_eq!(broker.pending_demand(gold), [0, 1, 0, 0]);
        broker.rebalance().unwrap();
        // Disk stayed funded off derived demand; everything idle refunded.
        assert!(broker.weight(gold, Resource::Disk) > 0.0);
        assert_eq!(broker.weight(gold, Resource::Cpu), 0.0);
        assert_eq!(broker.weight(silver, Resource::Net), 0.0);
    }

    #[test]
    fn zero_grant_rejected() {
        let mut broker = ResourceBroker::new();
        assert_eq!(
            broker.register_tenant("none", 0, SplitPolicy::even()),
            Err(LotteryError::ZeroAmount)
        );
        assert_eq!(
            broker.register_tenant("none", 10, SplitPolicy::Static([0; 4])),
            Err(LotteryError::ZeroAmount)
        );
    }

    #[test]
    fn resource_tags_round_trip() {
        for r in Resource::ALL {
            assert_eq!(Resource::parse(r.name()), Some(r));
        }
        assert_eq!(Resource::parse("gpu"), None);
    }
}
