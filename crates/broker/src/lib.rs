//! Multi-resource lottery broker: one grant funding four currencies.
//!
//! The paper's pitch for currencies (Sections 3.2 and 6) is that tickets
//! are a *uniform* abstraction across diverse resources: CPU quanta, disk
//! requests, memory frames, and network link slots can all be priced in
//! tickets backed by one base grant. This crate supplies the layer that
//! makes the pitch concrete: a [`ResourceBroker`] registers each tenant
//! with a single base-currency grant, mints per-resource sub-currencies
//! (`cpu`, `disk`, `mem`, `net`) funded from that grant, and prices each
//! resource scheduler's tickets off the *ledger valuation* of those
//! sub-currencies.
//!
//! Two properties fall out of routing everything through one
//! [`lottery_core::ledger::Ledger`]:
//!
//! * **Inflation containment** — tickets issued inside one tenant's disk
//!   currency dilute only that currency; its base-unit value (what the
//!   broker exports to the disk scheduler) is pinned by the backing
//!   ticket, so a tenant printing disk tickets cannot grow its disk share
//!   or leak into anyone's CPU share. The [`ResourceBroker::set_raw_funding`]
//!   ablation bypasses valuation and exports face amounts instead,
//!   reproducing exactly that leak.
//! * **Demand-driven refunds** — under [`SplitPolicy::DemandRefund`], a
//!   rebalance unfunds the backing ticket of any resource with no
//!   recorded demand. The tenant currency's active amount shrinks, so the
//!   grant automatically re-prices the tenant's *active* resources upward
//!   (inverse currency dilution): idle entitlements flow back to the
//!   grant instead of evaporating.

pub mod broker;
pub mod demand;

pub use broker::{
    BrokerReport, BrokerResourceRow, BrokerTenantRow, Resource, ResourceBroker, SplitPolicy,
    TenantId,
};
pub use demand::DemandTap;
