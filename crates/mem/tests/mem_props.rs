//! Property tests on the memory manager's conservation invariants.

use lottery_core::rng::ParkMiller;
use lottery_mem::{MemoryManager, ReclaimOutcome};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Fault { client: usize },
    Release { client: usize },
    SetTickets { client: usize, tickets: u64 },
}

fn op_strategy(clients: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..clients).prop_map(|client| Op::Fault { client }),
        1 => (0..clients).prop_map(|client| Op::Release { client }),
        1 => (0..clients, 0..1000u64).prop_map(|(client, tickets)| Op::SetTickets {
            client,
            tickets
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frames are conserved through arbitrary fault/release/re-ticket
    /// sequences, victims always held a frame, and faults always succeed.
    #[test]
    fn frames_are_conserved(
        frames in 1..64u64,
        tickets in prop::collection::vec(0..500u64, 2..6),
        ops in prop::collection::vec(op_strategy(6), 1..200),
        seed in 1u32..10_000,
    ) {
        let mut mm = MemoryManager::new(frames);
        let ids: Vec<_> = tickets
            .iter()
            .enumerate()
            .map(|(i, &t)| mm.register(format!("c{i}"), t))
            .collect();
        let mut rng = ParkMiller::new(seed);
        for op in ops {
            match op {
                Op::Fault { client } => {
                    let id = ids[client % ids.len()];
                    let before: u64 = ids.iter().map(|&c| mm.resident(c)).sum();
                    let out = mm.fault(id, &mut rng).unwrap();
                    let after: u64 = ids.iter().map(|&c| mm.resident(c)).sum();
                    match out {
                        ReclaimOutcome::FreeFrame => {
                            prop_assert_eq!(after, before + 1);
                        }
                        ReclaimOutcome::Evicted { .. } => {
                            prop_assert_eq!(after, before, "eviction moves, not grows");
                        }
                    }
                }
                Op::Release { client } => {
                    let id = ids[client % ids.len()];
                    let had = mm.resident(id);
                    let r = mm.release(id);
                    prop_assert_eq!(r.is_ok(), had > 0);
                }
                Op::SetTickets { client, tickets } => {
                    mm.set_tickets(ids[client % ids.len()], tickets);
                }
            }
            let resident: u64 = ids.iter().map(|&c| mm.resident(c)).sum();
            prop_assert_eq!(resident + mm.free_frames(), frames, "frame conservation");
        }
    }
}
