//! The inverse-lottery page-frame manager.

use lottery_core::errors::{LotteryError, Result};
use lottery_core::rng::SchedRng;

/// Identifies a memory client within a [`MemoryManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemClientId(u32);

impl MemClientId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// What a fault did to satisfy the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimOutcome {
    /// A free frame was available; nothing was evicted.
    FreeFrame,
    /// One frame was revoked from the given victim by inverse lottery.
    Evicted {
        /// The client that lost a frame.
        victim: MemClientId,
    },
}

#[derive(Debug, Clone)]
struct MemClient {
    name: String,
    tickets: u64,
    resident: u64,
    evictions: u64,
    faults: u64,
}

/// A fixed pool of physical frames shared by ticketed clients.
///
/// # Examples
///
/// ```
/// use lottery_core::rng::ParkMiller;
/// use lottery_mem::MemoryManager;
///
/// let mut mm = MemoryManager::new(64);
/// let big = mm.register("big", 300);
/// let small = mm.register("small", 100);
/// let mut rng = ParkMiller::new(1);
/// for _ in 0..1000 {
///     mm.fault(big, &mut rng).unwrap();
///     mm.fault(small, &mut rng).unwrap();
/// }
/// // The better-funded client retains more resident pages.
/// assert!(mm.resident(big) > mm.resident(small));
/// ```
#[derive(Debug)]
pub struct MemoryManager {
    frames: u64,
    free: u64,
    clients: Vec<MemClient>,
}

impl MemoryManager {
    /// Creates a manager over `frames` physical frames.
    ///
    /// # Panics
    ///
    /// Panics on a zero-frame pool; a machine needs memory.
    pub fn new(frames: u64) -> Self {
        assert!(frames > 0, "frame pool must be non-empty");
        Self {
            frames,
            free: frames,
            clients: Vec::new(),
        }
    }

    /// Registers a client holding `tickets` memory tickets.
    pub fn register(&mut self, name: impl Into<String>, tickets: u64) -> MemClientId {
        let id = MemClientId(self.clients.len() as u32);
        self.clients.push(MemClient {
            name: name.into(),
            tickets,
            resident: 0,
            evictions: 0,
            faults: 0,
        });
        id
    }

    /// Total frames in the pool.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Currently unallocated frames.
    pub fn free_frames(&self) -> u64 {
        self.free
    }

    /// Frames resident for `client`.
    pub fn resident(&self, client: MemClientId) -> u64 {
        self.clients[client.0 as usize].resident
    }

    /// Frames revoked from `client` so far.
    pub fn evictions(&self, client: MemClientId) -> u64 {
        self.clients[client.0 as usize].evictions
    }

    /// Faults taken by `client` so far.
    pub fn faults(&self, client: MemClientId) -> u64 {
        self.clients[client.0 as usize].faults
    }

    /// The client's name.
    pub fn name(&self, client: MemClientId) -> &str {
        &self.clients[client.0 as usize].name
    }

    /// Adjusts a client's memory tickets (inflation/deflation).
    pub fn set_tickets(&mut self, client: MemClientId, tickets: u64) {
        self.clients[client.0 as usize].tickets = tickets;
    }

    /// Releases one of `client`'s frames back to the pool voluntarily.
    pub fn release(&mut self, client: MemClientId) -> Result<()> {
        let c = &mut self.clients[client.0 as usize];
        if c.resident == 0 {
            return Err(LotteryError::EmptyLottery);
        }
        c.resident -= 1;
        self.free += 1;
        Ok(())
    }

    /// Services a page fault for `client`: allocates a free frame, or runs
    /// an inverse lottery to revoke one.
    ///
    /// The victim distribution follows Section 6.2: client `i` loses with
    /// probability proportional to `(1 - t_i/T)` *and* to its share of
    /// memory in use. Clients holding no frames cannot lose (there is
    /// nothing to revoke). With a single occupant the faulting client
    /// self-evicts — the degenerate case of a full machine.
    pub fn fault<R: SchedRng + ?Sized>(
        &mut self,
        client: MemClientId,
        rng: &mut R,
    ) -> Result<ReclaimOutcome> {
        self.clients[client.0 as usize].faults += 1;
        if self.free > 0 {
            self.free -= 1;
            self.clients[client.0 as usize].resident += 1;
            return Ok(ReclaimOutcome::FreeFrame);
        }

        // Composite inverse-lottery weights: (T - t_i) * resident_i in
        // exact integer arithmetic. (T - t_i) is the complement weight of
        // the pure inverse lottery; multiplying by the resident count
        // weighs by the fraction of memory in use.
        let total_tickets: u64 = self.clients.iter().map(|c| c.tickets).sum();
        let occupants = self.clients.iter().filter(|c| c.resident > 0).count();
        if occupants == 0 {
            // All frames free was handled above; no occupants means the
            // pool accounting broke.
            unreachable!("full pool with no occupants");
        }
        let weights: Vec<u128> = self
            .clients
            .iter()
            .map(|c| {
                let complement = if occupants == 1 || total_tickets == 0 {
                    // Degenerate cases: a lone occupant must lose, and an
                    // unticketed population is revoked uniformly.
                    1
                } else {
                    u128::from(total_tickets - c.tickets.min(total_tickets))
                };
                complement * u128::from(c.resident)
            })
            .collect();
        let total: u128 = weights.iter().sum();
        if total == 0 {
            // Possible when every occupant holds all the tickets
            // (complement 0). Fall back to revoking from the largest
            // resident set.
            let victim = self
                .clients
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.resident)
                .map(|(i, _)| i)
                .expect("occupants exist");
            return Ok(self.evict(victim, client));
        }
        let total_u64 = u64::try_from(total).map_err(|_| LotteryError::AmountOverflow)?;
        let winning = u128::from(rng.below(total_u64));
        let mut sum = 0u128;
        let mut victim = weights.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            sum += w;
            if w > 0 && winning < sum {
                victim = i;
                break;
            }
        }
        Ok(self.evict(victim, client))
    }

    fn evict(&mut self, victim: usize, faulter: MemClientId) -> ReclaimOutcome {
        debug_assert!(self.clients[victim].resident > 0);
        self.clients[victim].resident -= 1;
        self.clients[victim].evictions += 1;
        self.clients[faulter.0 as usize].resident += 1;
        ReclaimOutcome::Evicted {
            victim: MemClientId(victim as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_core::rng::ParkMiller;

    #[test]
    fn free_frames_first() {
        let mut mm = MemoryManager::new(4);
        let a = mm.register("a", 100);
        let mut rng = ParkMiller::new(1);
        for _ in 0..4 {
            assert_eq!(mm.fault(a, &mut rng).unwrap(), ReclaimOutcome::FreeFrame);
        }
        assert_eq!(mm.free_frames(), 0);
        assert_eq!(mm.resident(a), 4);
        assert_eq!(mm.faults(a), 4);
    }

    #[test]
    fn lone_occupant_self_evicts() {
        let mut mm = MemoryManager::new(2);
        let a = mm.register("a", 100);
        let _b = mm.register("b", 100);
        let mut rng = ParkMiller::new(1);
        mm.fault(a, &mut rng).unwrap();
        mm.fault(a, &mut rng).unwrap();
        let out = mm.fault(a, &mut rng).unwrap();
        assert_eq!(out, ReclaimOutcome::Evicted { victim: a });
        assert_eq!(mm.resident(a), 2);
        assert_eq!(mm.evictions(a), 1);
    }

    #[test]
    fn empty_handed_clients_never_victimized() {
        let mut mm = MemoryManager::new(2);
        let a = mm.register("a", 1);
        let b = mm.register("b", 1_000_000);
        let mut rng = ParkMiller::new(3);
        mm.fault(a, &mut rng).unwrap();
        mm.fault(a, &mut rng).unwrap();
        // b holds nothing: every eviction must hit a, despite b's terrible
        // ticket position.
        for _ in 0..50 {
            let out = mm.fault(a, &mut rng).unwrap();
            assert_eq!(out, ReclaimOutcome::Evicted { victim: a });
        }
        assert_eq!(mm.evictions(b), 0);
        let _ = b;
    }

    #[test]
    fn ticket_rich_client_keeps_more_memory() {
        // Equal fault pressure, 3:1 tickets: steady state should favor the
        // rich client's resident set.
        let mut mm = MemoryManager::new(100);
        let rich = mm.register("rich", 300);
        let poor = mm.register("poor", 100);
        let mut rng = ParkMiller::new(11);
        for _ in 0..20_000 {
            mm.fault(rich, &mut rng).unwrap();
            mm.fault(poor, &mut rng).unwrap();
        }
        let r = mm.resident(rich) as f64;
        let p = mm.resident(poor) as f64;
        assert_eq!(mm.resident(rich) + mm.resident(poor), 100);
        assert!(r / p > 1.5, "rich should hold well over half: {r} vs {p}");
        // And the poor client pays more evictions.
        assert!(mm.evictions(poor) > mm.evictions(rich));
    }

    #[test]
    fn zero_ticket_population_degenerates_to_usage_weighting() {
        let mut mm = MemoryManager::new(10);
        let a = mm.register("a", 0);
        let b = mm.register("b", 0);
        let mut rng = ParkMiller::new(5);
        for _ in 0..10 {
            mm.fault(a, &mut rng).unwrap();
        }
        // a holds everything; b faults must evict from a.
        let out = mm.fault(b, &mut rng).unwrap();
        assert_eq!(out, ReclaimOutcome::Evicted { victim: a });
    }

    #[test]
    fn release_returns_frames() {
        let mut mm = MemoryManager::new(2);
        let a = mm.register("a", 1);
        let mut rng = ParkMiller::new(5);
        mm.fault(a, &mut rng).unwrap();
        assert_eq!(mm.free_frames(), 1);
        mm.release(a).unwrap();
        assert_eq!(mm.free_frames(), 2);
        assert_eq!(mm.resident(a), 0);
        assert!(mm.release(a).is_err());
    }

    #[test]
    fn set_tickets_shifts_steady_state() {
        let mut mm = MemoryManager::new(60);
        let a = mm.register("a", 100);
        let b = mm.register("b", 100);
        let mut rng = ParkMiller::new(21);
        for _ in 0..5_000 {
            mm.fault(a, &mut rng).unwrap();
            mm.fault(b, &mut rng).unwrap();
        }
        let before = mm.resident(a);
        // Inflate a's memory rights and keep faulting.
        mm.set_tickets(a, 900);
        for _ in 0..5_000 {
            mm.fault(a, &mut rng).unwrap();
            mm.fault(b, &mut rng).unwrap();
        }
        let after = mm.resident(a);
        assert!(after > before, "{after} <= {before}");
    }

    #[test]
    #[should_panic(expected = "frame pool must be non-empty")]
    fn zero_frames_rejected() {
        let _ = MemoryManager::new(0);
    }

    #[test]
    fn names_round_trip() {
        let mut mm = MemoryManager::new(1);
        let a = mm.register("alpha", 1);
        assert_eq!(mm.name(a), "alpha");
        assert_eq!(a.index(), 0);
    }
}
