//! A page-level paging simulator over the inverse-lottery manager.
//!
//! [`crate::manager::MemoryManager`] decides *which client* loses a frame;
//! this module adds the page level: clients reference virtual pages, a
//! reference to a non-resident page faults, and the victim client evicts
//! its oldest resident page (FIFO within the client — the global
//! proportional-share decision is the inverse lottery, per Section 6.2;
//! the local replacement order is deliberately simple).

use std::collections::{HashSet, VecDeque};

use lottery_core::errors::Result;
use lottery_core::rng::SchedRng;

/// Identifies a paging client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PagingClientId(u32);

impl PagingClientId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Debug)]
struct PagingClient {
    name: String,
    tickets: u64,
    /// Resident virtual page numbers.
    resident: HashSet<u64>,
    /// Residency order, oldest first (FIFO replacement within a client).
    order: VecDeque<u64>,
    references: u64,
    faults: u64,
    evictions: u64,
}

/// A fixed pool of frames shared by page-referencing clients.
///
/// # Examples
///
/// ```
/// use lottery_core::rng::ParkMiller;
/// use lottery_mem::paging::PagingSim;
///
/// let mut sim = PagingSim::new(8);
/// let c = sim.register("proc", 100);
/// let mut rng = ParkMiller::new(1);
/// assert!(!sim.reference(c, 0, &mut rng).unwrap(), "first touch faults");
/// assert!(sim.reference(c, 0, &mut rng).unwrap(), "now resident");
/// ```
#[derive(Debug)]
pub struct PagingSim {
    frames: u64,
    clients: Vec<PagingClient>,
}

impl PagingSim {
    /// Creates a simulator over `frames` physical frames.
    ///
    /// # Panics
    ///
    /// Panics on a zero-frame pool.
    pub fn new(frames: u64) -> Self {
        assert!(frames > 0, "frame pool must be non-empty");
        Self {
            frames,
            clients: Vec::new(),
        }
    }

    /// Registers a client holding `tickets` memory tickets.
    pub fn register(&mut self, name: impl Into<String>, tickets: u64) -> PagingClientId {
        let id = PagingClientId(self.clients.len() as u32);
        self.clients.push(PagingClient {
            name: name.into(),
            tickets,
            resident: HashSet::new(),
            order: VecDeque::new(),
            references: 0,
            faults: 0,
            evictions: 0,
        });
        id
    }

    /// Adjusts a client's memory tickets.
    pub fn set_tickets(&mut self, client: PagingClientId, tickets: u64) {
        self.clients[client.0 as usize].tickets = tickets;
    }

    /// Frames resident for `client`.
    pub fn resident(&self, client: PagingClientId) -> u64 {
        self.clients[client.0 as usize].resident.len() as u64
    }

    /// References issued by `client`.
    pub fn references(&self, client: PagingClientId) -> u64 {
        self.clients[client.0 as usize].references
    }

    /// Faults taken by `client`.
    pub fn faults(&self, client: PagingClientId) -> u64 {
        self.clients[client.0 as usize].faults
    }

    /// Frames revoked from `client`.
    pub fn evictions(&self, client: PagingClientId) -> u64 {
        self.clients[client.0 as usize].evictions
    }

    /// The client's fault rate so far (faults per reference).
    pub fn fault_rate(&self, client: PagingClientId) -> f64 {
        let c = &self.clients[client.0 as usize];
        if c.references == 0 {
            0.0
        } else {
            c.faults as f64 / c.references as f64
        }
    }

    /// The client's name.
    pub fn name(&self, client: PagingClientId) -> &str {
        &self.clients[client.0 as usize].name
    }

    fn total_resident(&self) -> u64 {
        self.clients.iter().map(|c| c.resident.len() as u64).sum()
    }

    /// References virtual `page` for `client`. Returns `true` on a hit;
    /// on a miss the page is faulted in, revoking a frame by inverse
    /// lottery when the pool is full (Section 6.2's composite weighting).
    pub fn reference<R: SchedRng + ?Sized>(
        &mut self,
        client: PagingClientId,
        page: u64,
        rng: &mut R,
    ) -> Result<bool> {
        let idx = client.0 as usize;
        self.clients[idx].references += 1;
        if self.clients[idx].resident.contains(&page) {
            return Ok(true);
        }
        self.clients[idx].faults += 1;

        if self.total_resident() >= self.frames {
            // Composite inverse-lottery weights: (T - t_i) scaled by the
            // fraction of memory in use, exactly as in
            // [`crate::manager::MemoryManager`].
            let total_tickets: u64 = self.clients.iter().map(|c| c.tickets).sum();
            let occupants = self
                .clients
                .iter()
                .filter(|c| !c.resident.is_empty())
                .count();
            let entries: Vec<(usize, u64)> = self
                .clients
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let complement = if occupants == 1 || total_tickets == 0 {
                        1
                    } else {
                        total_tickets - c.tickets.min(total_tickets)
                    };
                    (i, complement * c.resident.len() as u64)
                })
                .collect();
            // The composite weights are already *loss* weights, so the
            // victim is a forward draw over them (the `1/(n-1)` inverse
            // transform is baked into the complement factor).
            let total: u64 = entries.iter().map(|&(_, w)| w).sum();
            let victim = if total == 0 {
                // Degenerate: a single client, or every occupant holding
                // all the tickets — evict from the largest resident set.
                self.clients
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| c.resident.len())
                    .map(|(i, _)| i)
                    .expect("occupants exist")
            } else {
                let winning = rng.below(total);
                let mut sum = 0u64;
                let mut chosen = None;
                for &(i, w) in &entries {
                    sum += w;
                    if w > 0 && winning < sum {
                        chosen = Some(i);
                        break;
                    }
                }
                chosen.expect("winning value below the total")
            };
            let v = &mut self.clients[victim];
            let evicted = v.order.pop_front().expect("victim holds a page");
            v.resident.remove(&evicted);
            v.evictions += 1;
        }

        let c = &mut self.clients[idx];
        c.resident.insert(page);
        c.order.push_back(page);
        Ok(false)
    }
}

/// A hot/cold page-reference generator: with probability
/// `hot_prob`, reference a page from the first `hot` pages; otherwise from
/// the remaining `total - hot` cold pages.
pub fn hot_cold_reference<R: SchedRng + ?Sized>(
    rng: &mut R,
    total_pages: u64,
    hot_pages: u64,
    hot_prob: f64,
) -> u64 {
    debug_assert!(hot_pages <= total_pages && hot_pages > 0);
    if rng.next_f64() < hot_prob {
        rng.below(hot_pages)
    } else if total_pages > hot_pages {
        hot_pages + rng.below(total_pages - hot_pages)
    } else {
        rng.below(total_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_core::rng::ParkMiller;

    #[test]
    fn hits_after_first_touch() {
        let mut sim = PagingSim::new(4);
        let c = sim.register("c", 10);
        let mut rng = ParkMiller::new(1);
        assert!(!sim.reference(c, 7, &mut rng).unwrap());
        assert!(sim.reference(c, 7, &mut rng).unwrap());
        assert_eq!(sim.faults(c), 1);
        assert_eq!(sim.references(c), 2);
        assert_eq!(sim.resident(c), 1);
    }

    #[test]
    fn full_pool_evicts_fifo_within_victim() {
        let mut sim = PagingSim::new(2);
        let c = sim.register("c", 10);
        let mut rng = ParkMiller::new(1);
        sim.reference(c, 0, &mut rng).unwrap();
        sim.reference(c, 1, &mut rng).unwrap();
        // Third page evicts page 0 (the oldest).
        sim.reference(c, 2, &mut rng).unwrap();
        assert_eq!(sim.resident(c), 2);
        assert!(
            !sim.reference(c, 0, &mut rng).unwrap(),
            "page 0 was evicted"
        );
        assert_eq!(sim.evictions(c), 2);
    }

    #[test]
    fn ticket_rich_client_faults_less() {
        // Both clients cycle working sets larger than half the pool;
        // the 3:1 ticket holder should keep more resident and fault less.
        let frames = 64;
        let mut sim = PagingSim::new(frames);
        let rich = sim.register("rich", 300);
        let poor = sim.register("poor", 100);
        let mut rng = ParkMiller::new(11);
        for _ in 0..60_000 {
            let p_rich = hot_cold_reference(&mut rng, 60, 20, 0.8);
            sim.reference(rich, p_rich, &mut rng).unwrap();
            let p_poor = hot_cold_reference(&mut rng, 60, 20, 0.8);
            sim.reference(poor, p_poor, &mut rng).unwrap();
        }
        assert!(
            sim.fault_rate(rich) < sim.fault_rate(poor),
            "rich {} vs poor {}",
            sim.fault_rate(rich),
            sim.fault_rate(poor)
        );
        assert!(sim.resident(rich) > sim.resident(poor));
        assert_eq!(sim.resident(rich) + sim.resident(poor), frames);
    }

    #[test]
    fn inflation_shifts_fault_rates() {
        let mut sim = PagingSim::new(32);
        let a = sim.register("a", 100);
        let b = sim.register("b", 100);
        let mut rng = ParkMiller::new(5);
        let run = |sim: &mut PagingSim, rng: &mut ParkMiller| {
            for _ in 0..20_000 {
                let pa = hot_cold_reference(rng, 40, 10, 0.7);
                sim.reference(a, pa, rng).unwrap();
                let pb = hot_cold_reference(rng, 40, 10, 0.7);
                sim.reference(b, pb, rng).unwrap();
            }
        };
        run(&mut sim, &mut rng);
        let resident_before = sim.resident(a);
        sim.set_tickets(a, 900);
        run(&mut sim, &mut rng);
        assert!(
            sim.resident(a) > resident_before,
            "{} vs {resident_before}",
            sim.resident(a)
        );
    }

    #[test]
    fn hot_cold_generator_shape() {
        let mut rng = ParkMiller::new(9);
        let mut hot_refs = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if hot_cold_reference(&mut rng, 100, 10, 0.9) < 10 {
                hot_refs += 1;
            }
        }
        let share = f64::from(hot_refs) / f64::from(n);
        assert!((share - 0.9).abs() < 0.01, "hot share {share}");
    }

    #[test]
    fn frames_conserved() {
        let mut sim = PagingSim::new(16);
        let a = sim.register("a", 10);
        let b = sim.register("b", 20);
        let mut rng = ParkMiller::new(3);
        for i in 0..5_000u64 {
            sim.reference(a, i % 37, &mut rng).unwrap();
            sim.reference(b, i % 53, &mut rng).unwrap();
            assert!(sim.resident(a) + sim.resident(b) <= 16);
        }
        assert_eq!(sim.resident(a) + sim.resident(b), 16);
    }
}
