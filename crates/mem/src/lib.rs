//! # lottery-mem
//!
//! Inverse-lottery management of space-shared resources — the Section 6.2
//! proposal, realized as a physical-page allocator.
//!
//! Time-shared resources pick a lottery *winner*; finely divisible
//! space-shared resources like memory instead pick a *loser* that must
//! relinquish a unit it holds. When a page fault finds no free frame, the
//! manager chooses a victim client "with probability proportional to both
//! `[1/(n-1)](1 - t/T)` and the fraction of physical memory in use by that
//! client", then reclaims one of the victim's frames.

pub mod manager;
pub mod paging;

pub use manager::{MemClientId, MemoryManager, ReclaimOutcome};
pub use paging::{hot_cold_reference, PagingClientId, PagingSim};
