//! In-kernel lottery mutexes: lock scheduling and CPU scheduling
//! interacting, as in the paper's CThreads prototype (Section 6.1).

use lottery_sim::prelude::*;
use lottery_sim::sched::LockId;

/// Builds the paper's Figure 11 workload on the real kernel: two groups
/// of four threads with 2:1 group funding, all hammering one mutex with
/// h = c = 50 ms.
fn figure11_kernel(seed: u32) -> (Kernel<LotteryPolicy>, Vec<ThreadId>, Vec<ThreadId>, LockId) {
    // A 30 ms quantum: the 50 ms hold always spans a preemption, so the
    // lock is genuinely contended (with a quantum that divides the
    // 100 ms cycle exactly, each thread would release within its own
    // quantum and no one would ever wait).
    let mut policy = LotteryPolicy::with_quantum(seed, SimDuration::from_ms(30));
    let group_a = policy.create_currency("A", 2000).unwrap();
    let group_b = policy.create_currency("B", 1000).unwrap();
    let lock = policy.create_lock();
    let mut kernel = Kernel::new(policy);
    let worker = |lock| MutexWorker::new(lock, SimDuration::from_ms(50), SimDuration::from_ms(50));
    let a: Vec<ThreadId> = (0..4)
        .map(|i| {
            kernel.spawn(
                format!("a{i}"),
                Box::new(worker(lock)),
                FundingSpec::new(group_a, 100),
            )
        })
        .collect();
    let b: Vec<ThreadId> = (0..4)
        .map(|i| {
            kernel.spawn(
                format!("b{i}"),
                Box::new(worker(lock)),
                FundingSpec::new(group_b, 100),
            )
        })
        .collect();
    (kernel, a, b, lock)
}

#[test]
fn figure11_with_cpu_contention() {
    let (mut kernel, a, b, _) = figure11_kernel(1);
    kernel.run_until(SimTime::from_secs(120));

    // Acquisitions: each completed hold is 50 ms of CPU inside the lock;
    // count via lock waits + initial grabs ≈ blocks. Use CPU as the
    // proxy: each cycle is exactly 100 ms CPU (50 hold + 50 compute).
    let cpu = |tids: &[ThreadId]| -> f64 {
        tids.iter()
            .map(|&t| kernel.metrics().cpu_us(t))
            .sum::<u64>() as f64
    };
    let ratio = cpu(&a) / cpu(&b);
    assert!(
        (1.4..=2.4).contains(&ratio),
        "2:1 funding should yield ~1.8:1 lock cycles, got {ratio}"
    );

    // Waiting times: group B waits roughly twice as long (paper 1:2.11).
    let wait = |tids: &[ThreadId]| -> f64 {
        let mut sum = lottery_stats::Summary::new();
        for &t in tids {
            if let Some(m) = kernel.metrics().thread(t) {
                sum.merge(&m.lock_wait_us);
            }
        }
        sum.mean()
    };
    let wait_ratio = wait(&b) / wait(&a);
    assert!(
        (1.3..=3.5).contains(&wait_ratio),
        "waiting ratio {wait_ratio}"
    );
}

#[test]
fn fifo_locks_ignore_tickets() {
    // The baseline: under round-robin FIFO locks, the ticket allocation
    // cannot exist; both "groups" cycle at the same rate.
    let mut policy = RoundRobinPolicy::new(SimDuration::from_ms(100));
    let lock = policy.create_lock();
    let mut kernel = Kernel::new(policy);
    let worker = |lock| MutexWorker::new(lock, SimDuration::from_ms(50), SimDuration::from_ms(50));
    let tids: Vec<ThreadId> = (0..8)
        .map(|i| kernel.spawn(format!("t{i}"), Box::new(worker(lock)), ()))
        .collect();
    kernel.run_until(SimTime::from_secs(120));
    let first = kernel.metrics().cpu_us(tids[0]) as f64;
    for &t in &tids[1..] {
        let r = kernel.metrics().cpu_us(t) as f64 / first;
        assert!((r - 1.0).abs() < 0.2, "FIFO should equalize, got {r}");
    }
}

#[test]
fn mutex_holder_inherits_waiter_funding() {
    // Priority inversion (Section 6.1 / [Sha90]): a 1-ticket thread is
    // preempted while holding the lock; a 1000-ticket hog then dominates
    // the CPU. Without inheritance the holder would need ~1000 quanta per
    // win and its remaining 9.9 s of hold time would take hours; with the
    // waiter's transfer funding the inheritance ticket, the holder runs
    // at near parity with the hog and the rich waiter acquires soon.
    let mut policy = LotteryPolicy::new(5);
    let base = policy.base_currency();
    let lock = policy.create_lock();
    let mut kernel = Kernel::new(policy);
    let poor_holder = kernel.spawn(
        "poor",
        Box::new(MutexWorker::new(
            lock,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        )),
        FundingSpec::new(base, 1),
    );
    // Let the poor thread acquire and run 100 ms of its hold, alone.
    kernel.run_until(SimTime::from_ms(100));
    assert_eq!(kernel.metrics().cpu_us(poor_holder), 100_000);
    let holder_value_alone = kernel.policy().value_of(poor_holder);
    assert_eq!(holder_value_alone, 1.0);

    let _hog = kernel.spawn("hog", Box::new(ComputeBound), FundingSpec::new(base, 1000));
    let rich_waiter = kernel.spawn(
        "rich",
        Box::new(MutexWorker::new(
            lock,
            SimDuration::from_ms(50),
            SimDuration::from_ms(50),
        )),
        FundingSpec::new(base, 1000),
    );
    // Run until the rich waiter has blocked on the lock.
    kernel.run_until(SimTime::from_secs(2));
    assert!(
        matches!(kernel.thread(rich_waiter).state(), ThreadState::Blocked(_)),
        "rich waiter should be parked on the lock"
    );
    // The inheritance ticket now carries the waiter's 1000 tickets.
    let inherited = kernel.policy().value_of(poor_holder);
    assert!(
        (inherited - 1001.0).abs() < 1.0,
        "holder should be worth ~1001, got {inherited}"
    );

    // The holder finishes its remaining ~9.9 s of hold at ~1001/2001 of
    // the CPU (~20 s of wall time) and hands the lock to the waiter.
    kernel.run_until(SimTime::from_secs(40));
    let holder_cpu = kernel.metrics().cpu_us(poor_holder) as f64 / 1e6;
    assert!(
        holder_cpu >= 10.0,
        "holder should complete its hold on inherited funding: {holder_cpu}s"
    );
    let waiter_waits = kernel
        .metrics()
        .thread(rich_waiter)
        .map(|m| m.lock_wait_us.count())
        .unwrap_or(0);
    assert!(
        waiter_waits >= 1,
        "the waiter should have been handed the lock"
    );
}

#[test]
fn uncontended_kernel_mutex_is_transparent() {
    let mut policy = LotteryPolicy::new(2);
    let base = policy.base_currency();
    let lock = policy.create_lock();
    let mut kernel = Kernel::new(policy);
    let t = kernel.spawn(
        "solo",
        Box::new(MutexWorker::new(
            lock,
            SimDuration::from_ms(30),
            SimDuration::from_ms(70),
        )),
        FundingSpec::new(base, 100),
    );
    kernel.run_until(SimTime::from_secs(10));
    // Never blocks on the lock; consumes all CPU.
    assert_eq!(kernel.metrics().cpu_us(t), 10_000_000);
    let m = kernel.metrics().thread(t).unwrap();
    assert_eq!(m.lock_wait_us.count(), 0);
}

#[test]
fn lock_waits_are_recorded() {
    let (mut kernel, a, b, _) = figure11_kernel(9);
    kernel.run_until(SimTime::from_secs(30));
    let total_waits: u64 = a
        .iter()
        .chain(&b)
        .filter_map(|&t| kernel.metrics().thread(t))
        .map(|m| m.lock_wait_us.count())
        .sum();
    assert!(total_waits > 50, "waits recorded: {total_waits}");
}
