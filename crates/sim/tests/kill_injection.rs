//! Failure injection: threads killed in every blocking state, with full
//! cleanup verified (no leaked tickets, no dangling waiters, no crashed
//! servers).

use lottery_sim::prelude::*;

fn lottery_kernel(seed: u32) -> Kernel<LotteryPolicy> {
    Kernel::new(LotteryPolicy::new(seed))
}

#[test]
fn kill_ready_thread_cleans_ledger() {
    let mut k = lottery_kernel(1);
    let base = k.policy().base_currency();
    let a = k.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 100));
    let b = k.spawn("b", Box::new(ComputeBound), FundingSpec::new(base, 100));
    k.run_until(SimTime::from_secs(1));
    k.kill(a);
    assert!(k.thread(a).is_exited());
    assert_eq!(k.policy().ledger().clients().count(), 1);
    assert_eq!(k.policy().ledger().tickets().count(), 1);
    // The survivor now owns the whole machine.
    let before = k.metrics().cpu_us(b);
    k.run_until(SimTime::from_secs(2));
    assert_eq!(k.metrics().cpu_us(b) - before, 1_000_000);
    // Idempotent.
    k.kill(a);
}

#[test]
fn kill_sleeping_thread_ignores_pending_wake() {
    let mut k = lottery_kernel(2);
    let base = k.policy().base_currency();
    let sleeper = k.spawn(
        "sleeper",
        Box::new(IoBound::new(
            SimDuration::from_ms(10),
            SimDuration::from_secs(5),
        )),
        FundingSpec::new(base, 100),
    );
    let _worker = k.spawn(
        "worker",
        Box::new(ComputeBound),
        FundingSpec::new(base, 100),
    );
    k.run_until(SimTime::from_secs(1));
    assert!(matches!(k.thread(sleeper).state(), ThreadState::Blocked(_)));
    k.kill(sleeper);
    // The wake event at t=5s fires into an exited thread: must not panic
    // or resurrect it.
    k.run_until(SimTime::from_secs(10));
    assert!(k.thread(sleeper).is_exited());
    assert_eq!(k.metrics().cpu_us(sleeper), 10_000);
}

#[test]
fn kill_rpc_client_mid_service_drops_reply() {
    let mut k = lottery_kernel(3);
    let base = k.policy().base_currency();
    let port = k.create_port("svc");
    let server = k.spawn(
        "server",
        Box::new(RpcServer::new(port)),
        FundingSpec::new(base, 1),
    );
    let client = k.spawn(
        "client",
        Box::new(RpcClient::new(
            port,
            SimDuration::from_ms(10),
            SimDuration::from_secs(4),
            None,
        )),
        FundingSpec::new(base, 400),
    );
    // Let the request get delivered and partially served.
    k.run_until(SimTime::from_secs(1));
    assert!(matches!(k.thread(client).state(), ThreadState::Blocked(_)));
    k.kill(client);
    // The server finishes the 4 s of work and replies into the void.
    k.run_until(SimTime::from_secs(10));
    assert!(k.thread(client).is_exited());
    assert!(k.metrics().cpu_us(server) >= 4_000_000);
    // The transfer was repaid and the dead client's objects are gone:
    // only the server's funding ticket remains.
    assert_eq!(k.policy().ledger().tickets().count(), 1);
    assert_eq!(k.policy().ledger().clients().count(), 1);
    // The server is parked again, healthy.
    assert_eq!(k.port(port).idle_receivers(), 1);
}

#[test]
fn kill_rpc_client_with_queued_message_purges_it() {
    let mut k = lottery_kernel(4);
    let base = k.policy().base_currency();
    let port = k.create_port("svc");
    let _server = k.spawn(
        "server",
        Box::new(RpcServer::new(port)),
        FundingSpec::new(base, 1),
    );
    // The first client occupies the server before the second exists, so
    // the second's request is guaranteed to queue undelivered.
    let busy = k.spawn(
        "busy",
        Box::new(RpcClient::new(
            port,
            SimDuration::ZERO,
            SimDuration::from_secs(5),
            None,
        )),
        FundingSpec::new(base, 100),
    );
    k.run_until(SimTime::from_ms(500));
    assert_eq!(k.port(port).backlog(), 0, "busy's request is in service");
    let doomed = k.spawn(
        "doomed",
        Box::new(RpcClient::new(
            port,
            SimDuration::ZERO,
            SimDuration::from_secs(5),
            None,
        )),
        FundingSpec::new(base, 100),
    );
    k.run_until(SimTime::from_secs(1));
    assert_eq!(k.port(port).backlog(), 1, "second request is queued");
    k.kill(doomed);
    assert_eq!(k.port(port).backlog(), 0, "queued request purged");
    // The server must keep cycling on the surviving client only.
    k.run_until(SimTime::from_secs(30));
    let m = k.metrics().thread(busy).unwrap();
    assert!(m.rpcs_completed() >= 4, "{}", m.rpcs_completed());
}

#[test]
fn kill_receiving_server_leaves_port_consistent() {
    let mut k = lottery_kernel(5);
    let base = k.policy().base_currency();
    let port = k.create_port("svc");
    let w1 = k.spawn(
        "w1",
        Box::new(RpcServer::new(port)),
        FundingSpec::new(base, 1),
    );
    let w2 = k.spawn(
        "w2",
        Box::new(RpcServer::new(port)),
        FundingSpec::new(base, 1),
    );
    k.run_until(SimTime::from_secs(1));
    assert_eq!(k.port(port).idle_receivers(), 2);
    k.kill(w1);
    assert_eq!(k.port(port).idle_receivers(), 1);
    // A client's request must reach the surviving worker.
    let client = k.spawn(
        "client",
        Box::new(RpcClient::new(
            port,
            SimDuration::ZERO,
            SimDuration::from_ms(100),
            Some(3),
        )),
        FundingSpec::new(base, 100),
    );
    k.run_until(SimTime::from_secs(5));
    assert_eq!(k.metrics().thread(client).unwrap().rpcs_completed(), 3);
    let _ = w2;
}

#[test]
fn kill_lock_waiter_repays_its_transfer() {
    let mut policy = LotteryPolicy::new(6);
    let base = policy.base_currency();
    let lock = policy.create_lock();
    let mut k = Kernel::new(policy);
    let holder = k.spawn(
        "holder",
        Box::new(MutexWorker::new(
            lock,
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        )),
        FundingSpec::new(base, 100),
    );
    k.run_until(SimTime::from_ms(100));
    let waiter = k.spawn(
        "waiter",
        Box::new(MutexWorker::new(
            lock,
            SimDuration::from_ms(50),
            SimDuration::from_ms(50),
        )),
        FundingSpec::new(base, 400),
    );
    k.run_until(SimTime::from_secs(1));
    assert!(matches!(k.thread(waiter).state(), ThreadState::Blocked(_)));
    // Holder value includes the waiter's 400 through the inheritance.
    assert!((k.policy().value_of(holder) - 500.0).abs() < 1.0);

    k.kill(waiter);
    // The transfer is repaid: the holder is back to its own 100.
    assert!((k.policy().value_of(holder) - 100.0).abs() < 1.0);
    // The holder's future unlocks find no waiter and must not wake the
    // dead thread.
    k.run_until(SimTime::from_secs(30));
    assert!(k.thread(waiter).is_exited());
    assert!(k.metrics().cpu_us(holder) > 20_000_000);
}

#[test]
fn kill_all_threads_stops_the_machine() {
    let mut k = lottery_kernel(7);
    let base = k.policy().base_currency();
    let tids: Vec<ThreadId> = (0..4)
        .map(|i| {
            k.spawn(
                format!("t{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 10),
            )
        })
        .collect();
    k.run_until(SimTime::from_secs(1));
    for t in tids {
        k.kill(t);
    }
    let now = k.now();
    let idle_before = k.metrics().idle;
    k.run_until(SimTime::from_secs(100));
    // Nothing left to run: the remainder of the window is pure idle time.
    assert_eq!(k.now(), SimTime::from_secs(100));
    assert_eq!(
        k.metrics().idle - idle_before,
        SimTime::from_secs(100).since(now)
    );
    assert_eq!(k.live_threads(), 0);
    assert_eq!(k.policy().ledger().tickets().count(), 0);
}
