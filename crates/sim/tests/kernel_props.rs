//! Property tests on the kernel's accounting invariants.

use lottery_sim::prelude::*;
use proptest::prelude::*;

/// A randomly shaped workload description.
#[derive(Debug, Clone)]
enum Shape {
    Compute,
    Io { run_ms: u64, sleep_ms: u64 },
    Fractional { run_ms: u64 },
    Finite { total_ms: u64 },
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Compute),
        (1..80u64, 1..200u64).prop_map(|(run_ms, sleep_ms)| Shape::Io { run_ms, sleep_ms }),
        (1..99u64).prop_map(|run_ms| Shape::Fractional { run_ms }),
        (1..500u64).prop_map(|total_ms| Shape::Finite { total_ms }),
    ]
}

fn build(shape: &Shape) -> Box<dyn Workload> {
    match *shape {
        Shape::Compute => Box::new(ComputeBound),
        Shape::Io { run_ms, sleep_ms } => Box::new(IoBound::new(
            SimDuration::from_ms(run_ms),
            SimDuration::from_ms(sleep_ms),
        )),
        Shape::Fractional { run_ms } => {
            Box::new(FractionalQuantum::new(SimDuration::from_ms(run_ms)))
        }
        Shape::Finite { total_ms } => Box::new(FiniteJob::new(SimDuration::from_ms(total_ms))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Time conservation: consumed CPU + idle + switch overhead equals
    /// the elapsed clock (up to the 1 µs anti-livelock charges counted in
    /// overhead-free dispatches), for arbitrary workload mixes under the
    /// lottery policy.
    #[test]
    fn time_is_conserved(
        shapes in prop::collection::vec(shape_strategy(), 1..6),
        seed in 1u32..10_000,
    ) {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let tids: Vec<ThreadId> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| kernel.spawn(format!("t{i}"), build(s), FundingSpec::new(base, 100)))
            .collect();
        kernel.run_until(SimTime::from_secs(20));
        let cpu: u64 = tids.iter().map(|&t| kernel.metrics().cpu_us(t)).sum();
        let idle = kernel.metrics().idle.as_us();
        let overhead = kernel.metrics().switch_overhead.as_us();
        let elapsed = kernel.now().as_us();
        // Zero-CPU yields charge 1 µs of unattributed wall time each;
        // FractionalQuantum never yields without running, so the budget
        // here is exact.
        prop_assert_eq!(cpu + idle + overhead, elapsed,
            "cpu {} + idle {} + overhead {} != elapsed {}", cpu, idle, overhead, elapsed);
    }

    /// The lottery policy's ledger never leaks objects: after all threads
    /// exit, no clients or tickets remain.
    #[test]
    fn ledger_is_clean_after_exits(
        totals in prop::collection::vec(1..300u64, 1..6),
        seed in 1u32..10_000,
    ) {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        for (i, &ms) in totals.iter().enumerate() {
            kernel.spawn(
                format!("job{i}"),
                Box::new(FiniteJob::new(SimDuration::from_ms(ms))),
                FundingSpec::new(base, 50 + i as u64),
            );
        }
        kernel.run_until(SimTime::from_secs(60));
        prop_assert_eq!(kernel.live_threads(), 0);
        prop_assert_eq!(kernel.policy().ledger().clients().count(), 0);
        prop_assert_eq!(kernel.policy().ledger().tickets().count(), 0);
        // All requested CPU was delivered.
        let spent: u64 = (0..totals.len())
            .map(|i| kernel.metrics().cpu_us(ThreadId::from_index(i as u32)))
            .sum();
        let requested: u64 = totals.iter().map(|ms| ms * 1000).sum();
        prop_assert_eq!(spent, requested);
    }

    /// The SMP kernel conserves capacity: total CPU consumed never
    /// exceeds `cpus × elapsed`, and equals it when enough compute-bound
    /// threads exist.
    #[test]
    fn smp_capacity_bounds(
        cpus in 1usize..5,
        threads in 1usize..8,
        seed in 1u32..10_000,
    ) {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut kernel = SmpKernel::new(policy, cpus);
        let tids: Vec<ThreadId> = (0..threads)
            .map(|i| {
                kernel.spawn(
                    format!("t{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 100),
                )
            })
            .collect();
        kernel.run_until(SimTime::from_secs(10)).unwrap();
        let total: u64 = tids.iter().map(|&t| kernel.metrics().cpu_us(t)).sum();
        let capacity = kernel.now().as_us() * cpus as u64;
        prop_assert!(total <= capacity, "{} > {}", total, capacity);
        if threads >= cpus {
            prop_assert_eq!(total, 10_000_000 * cpus.min(threads) as u64);
        } else {
            prop_assert_eq!(total, 10_000_000 * threads as u64);
        }
    }

    /// Per-thread CPU time is monotone and stored series are consistent
    /// with the final counter.
    #[test]
    fn cpu_series_consistent(seed in 1u32..10_000) {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let t = kernel.spawn(
            "io",
            Box::new(IoBound::new(SimDuration::from_ms(7), SimDuration::from_ms(23))),
            FundingSpec::new(base, 100),
        );
        kernel.run_until(SimTime::from_secs(10));
        let m = kernel.metrics().thread(t).unwrap();
        let mut last = 0.0;
        for &(_, v) in m.cpu_series.points() {
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert_eq!(last as u64, kernel.metrics().cpu_us(t));
    }
}
