//! Event-driven core equivalence: the rebased kernels must reproduce the
//! quantum-stepping seed bit for bit.
//!
//! Golden captures under `tests/data/` were recorded by the pre-refactor
//! quantum-stepping core (list/tree/alias × 0/2/4 shards). Replaying
//! them through the current core must be bit-exact; any divergence is a
//! behavioural regression in the event rebase. (The live two-mode
//! property proof moved in-crate with the now test-only
//! `TimeMode::Stepping` — see `src/stepping_equivalence.rs`.)
//!
//! The `regenerate_goldens` test (ignored by default) rewrites the data
//! files from whatever core is compiled — run it only to re-seed the
//! corpus after an *intentional* stream change, never to paper over a
//! divergence.

use std::fs;
use std::path::PathBuf;

use lottery_obs::{CurrencySnapshot, ReplayLog, TraceJob, TraceSpec};
use lottery_sim::kernel::Kernel;
use lottery_sim::replay::{record, structure_name, CaptureConfig, Replayer};
use lottery_sim::sched::lottery::{FundingSpec, LotteryPolicy, SelectStructure};
use lottery_sim::time::{SimDuration, SimTime};
use lottery_sim::workload::{Burst, Scripted};
use proptest::prelude::*;

/// The capture matrix required by the acceptance criteria.
const MATRIX: &[(SelectStructure, u32)] = &[
    (SelectStructure::List, 0),
    (SelectStructure::Tree, 0),
    (SelectStructure::Alias, 0),
    (SelectStructure::List, 2),
    (SelectStructure::Tree, 2),
    (SelectStructure::Alias, 2),
    (SelectStructure::List, 4),
    (SelectStructure::Tree, 4),
    (SelectStructure::Alias, 4),
];

/// A workload with enough shape to exercise the whole decision loop:
/// three tenants at 4:2:1 funding, staggered arrivals, I/O sleeps that
/// trigger compensation, and one job that outlives the window.
fn golden_spec() -> TraceSpec {
    TraceSpec {
        currencies: vec![
            CurrencySnapshot {
                name: "gold".into(),
                amount: 400,
            },
            CurrencySnapshot {
                name: "silver".into(),
                amount: 200,
            },
            CurrencySnapshot {
                name: "bronze".into(),
                amount: 100,
            },
        ],
        jobs: vec![
            TraceJob {
                arrival_us: 0,
                service_us: 40_000,
                sleep_us: 0,
                tenant: "gold".into(),
                tickets: 100,
            },
            TraceJob {
                arrival_us: 0,
                service_us: 25_000,
                sleep_us: 3_000,
                tenant: "silver".into(),
                tickets: 100,
            },
            TraceJob {
                arrival_us: 2_000,
                service_us: 18_000,
                sleep_us: 0,
                tenant: "bronze".into(),
                tickets: 100,
            },
            TraceJob {
                arrival_us: 7_500,
                service_us: 12_000,
                sleep_us: 5_000,
                tenant: "gold".into(),
                tickets: 50,
            },
            TraceJob {
                arrival_us: 11_000,
                service_us: 30_000,
                sleep_us: 1_000,
                tenant: "silver".into(),
                tickets: 200,
            },
            TraceJob {
                arrival_us: 23_000,
                service_us: 9_000,
                sleep_us: 0,
                tenant: "bronze".into(),
                tickets: 300,
            },
            TraceJob {
                arrival_us: 40_000,
                service_us: 500_000,
                sleep_us: 20_000,
                tenant: "gold".into(),
                tickets: 75,
            },
            TraceJob {
                arrival_us: 60_000,
                service_us: 14_000,
                sleep_us: 2_500,
                tenant: "bronze".into(),
                tickets: 120,
            },
        ],
    }
}

fn golden_config(structure: SelectStructure, shards: u32) -> CaptureConfig {
    CaptureConfig {
        seed: 42,
        structure,
        shards,
        compensation: true,
        quantum_us: 1_000,
        until_us: 120_000,
    }
}

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

fn golden_path(structure: SelectStructure, shards: u32) -> PathBuf {
    data_dir().join(format!(
        "capture_{}_{shards}.jsonl",
        structure_name(structure)
    ))
}

/// Regenerates the golden corpus from the compiled core. Ignored: the
/// files are the pre-refactor reference and only change intentionally.
#[test]
#[ignore = "rewrites the golden corpus; run only after an intentional stream change"]
fn regenerate_goldens() {
    fs::create_dir_all(data_dir()).unwrap();
    for &(structure, shards) in MATRIX {
        let log = record(golden_spec(), &golden_config(structure, shards)).unwrap();
        assert!(!log.events.is_empty());
        fs::write(golden_path(structure, shards), log.to_jsonl()).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Deadline exactness: `run_until` leaves the clock at the deadline
    /// even when a quantum is split in flight, while the compat variant
    /// `run_until_completing` overshoots to the quantum boundary exactly
    /// as the pre-event core did.
    #[test]
    fn run_until_is_exact_and_completing_overshoots(
        deadline_us in 100..5_000u64,
        quantum_us in 200..3_000u64,
    ) {
        let build = || {
            let policy = LotteryPolicy::with_quantum(7, SimDuration::from_us(quantum_us));
            let base = policy.base_currency();
            let mut kernel = Kernel::new(policy);
            kernel.spawn(
                "worker",
                Box::new(Scripted::once(vec![Burst::Run(SimDuration::from_secs(1))])),
                FundingSpec::new(base, 100),
            );
            kernel
        };

        let mut exact = build();
        exact.run_until(SimTime::from_us(deadline_us));
        prop_assert_eq!(exact.now(), SimTime::from_us(deadline_us));

        let mut compat = build();
        compat.run_until_completing(SimTime::from_us(deadline_us));
        // The legacy loop only stops at quantum boundaries: the first
        // multiple of the quantum at or past the deadline.
        let quanta = deadline_us.div_ceil(quantum_us);
        prop_assert_eq!(compat.now(), SimTime::from_us(quanta * quantum_us));
    }
}

/// Every golden capture recorded by the quantum-stepping core replays
/// bit-exactly through the current (event-driven) core.
#[test]
fn golden_captures_replay_bit_exact() {
    for &(structure, shards) in MATRIX {
        let path = golden_path(structure, shards);
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run regenerate_goldens?)", path.display()));
        let log = ReplayLog::from_jsonl(&text).unwrap();
        let report = Replayer::new(log).run().unwrap();
        assert!(
            report.bit_exact(),
            "{} shards={shards} diverged: {:?}",
            structure_name(structure),
            report.divergence
        );
    }
}
