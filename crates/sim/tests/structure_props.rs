//! Winner-stream exactness across Section 4.2 search structures.
//!
//! The list scan, the partial-sum tree, and the alias sampler are three
//! implementations of the same draw: consume one uniform variate, find
//! the first ready slot whose prefix sum exceeds it. With integral
//! ticket values every prefix sum is exact in f64, so the three
//! structures must produce **bit-identical** winner sequences — not
//! statistically similar ones — under arbitrary funding churn,
//! block/yield compensation, and even mid-run structure switches.
//!
//! Ticket amounts are multiples of 100 and blocks burn 2/8 or 4/8 of
//! the quantum, so compensation factors are 4 or 2 and every derived
//! valuation stays an integer: f64 addition over integers below 2^53 is
//! exact, which is what makes "bit-identical" a fair demand.

use lottery_sim::prelude::*;
use proptest::prelude::*;

/// One scripted mutation, applied between picks.
#[derive(Debug, Clone)]
enum Step {
    /// The winner uses its full quantum and is requeued.
    FullQuantum,
    /// The winner uses `eighths/8` of the quantum and blocks; the
    /// previously blocked thread (if any) is requeued. Grants a
    /// compensation ticket with an integral factor (8/2 or 8/4).
    Block { eighths: u64 },
    /// Inflate thread `t % threads` to `100 * k` tickets.
    Inflate { t: usize, k: u64 },
    /// Switch the winner-search structure mid-run.
    Switch { s: u8 },
}

fn churn_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => Just(Step::FullQuantum),
        2 => prop_oneof![Just(2u64), Just(4u64)].prop_map(|eighths| Step::Block { eighths }),
        2 => (0..8usize, 1..6u64).prop_map(|(t, k)| Step::Inflate { t, k }),
    ]
}

fn switching_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        7 => churn_strategy(),
        1 => (0..3u8).prop_map(|s| Step::Switch { s }),
    ]
}

fn structure_of(s: u8) -> SelectStructure {
    match s % 3 {
        0 => SelectStructure::List,
        1 => SelectStructure::Tree,
        _ => SelectStructure::Alias,
    }
}

/// Drives a `LotteryPolicy` through `script` starting in `initial`,
/// returning the winner sequence.
fn run(seed: u32, initial: SelectStructure, threads: usize, script: &[Step]) -> Vec<ThreadId> {
    let mut p = LotteryPolicy::new(seed);
    p.set_structure(initial);
    let base = p.base_currency();
    for i in 0..threads {
        let tid = ThreadId::from_index(i as u32);
        p.on_spawn(tid, FundingSpec::new(base, 100 * (i as u64 + 1)));
        p.enqueue(tid, SimTime::ZERO);
    }
    let quantum = SimDuration::from_ms(100);
    let mut winners = Vec::with_capacity(script.len());
    let mut blocked: Option<ThreadId> = None;
    for step in script {
        let Some(w) = p.pick(SimTime::ZERO) else {
            break;
        };
        winners.push(w);
        match *step {
            Step::FullQuantum => {
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
            Step::Block { eighths } => {
                let used = SimDuration::from_ms(100 * eighths / 8);
                p.charge(w, used, quantum, EndReason::Blocked);
                if let Some(b) = blocked.replace(w) {
                    p.enqueue(b, SimTime::ZERO);
                }
            }
            Step::Inflate { t, k } => {
                let target = ThreadId::from_index((t % threads) as u32);
                p.set_funding(target, 100 * k).unwrap();
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
            Step::Switch { s } => {
                p.set_structure(structure_of(s));
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
        }
    }
    winners
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three structures draw the same winners from the same RNG
    /// stream under funding churn and compensation grant/revoke cycles.
    #[test]
    fn winner_streams_identical_across_structures(
        seed in 1..u32::MAX,
        threads in 2..8usize,
        script in proptest::collection::vec(churn_strategy(), 1..120),
    ) {
        let list = run(seed, SelectStructure::List, threads, &script);
        let tree = run(seed, SelectStructure::Tree, threads, &script);
        let alias = run(seed, SelectStructure::Alias, threads, &script);
        prop_assert_eq!(&list, &tree);
        prop_assert_eq!(&list, &alias);
    }

    /// Switching structures mid-run (list → tree → alias, any order,
    /// any time) never perturbs the winner stream: the structures are
    /// interchangeable at every instant, not just at steady state.
    #[test]
    fn winner_streams_invariant_under_midrun_switches(
        seed in 1..u32::MAX,
        initial in 0..3u8,
        threads in 2..8usize,
        script in proptest::collection::vec(switching_strategy(), 1..120),
    ) {
        // A switch-free baseline run in each fixed structure, compared
        // against the switching run: every prefix of the switching run
        // must match the fixed-structure stream because each individual
        // draw is exact regardless of which structure serviced it.
        let switching = run(seed, structure_of(initial), threads, &script);
        let fixed: Vec<Step> = script
            .iter()
            .map(|s| match s {
                Step::Switch { .. } => Step::FullQuantum,
                other => other.clone(),
            })
            .collect();
        let list = run(seed, SelectStructure::List, threads, &fixed);
        prop_assert_eq!(switching, list);
    }
}
