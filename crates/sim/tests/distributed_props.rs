//! Properties of the distributed lottery (Section 4.2's per-CPU trees).
//!
//! Two invariants keep the sharded scheduler honest:
//!
//! * **ticket-weight conservation** — however clients are spawned,
//!   exited, migrated, or inflated, the sum of every shard's partial-sum
//!   tree total equals the ledger's base-currency valuation of the ready
//!   set: sharding redistributes weight, it never creates or destroys it;
//! * **RNG-stream invariance on one shard** — a 1-shard
//!   `DistributedLottery` is the existing `LotteryPolicy` in tree mode:
//!   the same ledger operation sequence, the same slot order, the same
//!   draw discipline, so the winner streams are bit-identical.

use lottery_sim::prelude::*;
use proptest::prelude::*;

/// One scripted mutation, applied between picks.
#[derive(Debug, Clone)]
enum Step {
    /// The winner uses its full quantum and is requeued.
    FullQuantum,
    /// The winner uses `eighths/8` of the quantum and blocks; the
    /// previously blocked thread (if any) is requeued. Grants a
    /// compensation ticket. Restricted to 2 and 4 eighths so every
    /// derived value stays exactly representable.
    Block { eighths: u64 },
    /// Inflate thread `t % threads` to `100 * k` tickets.
    Inflate { t: usize, k: u64 },
    /// Re-home thread `t % threads` to shard `s % shards`.
    Migrate { t: usize, s: u32 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::FullQuantum),
        prop_oneof![Just(2u64), Just(4u64)].prop_map(|eighths| Step::Block { eighths }),
        (0..8usize, 1..6u64).prop_map(|(t, k)| Step::Inflate { t, k }),
        (0..8usize, 0..8u32).prop_map(|(t, s)| Step::Migrate { t, s }),
    ]
}

/// Drives a distributed policy through `script`, returning the winner
/// sequence. Rebalancing is left at its defaults so migrations come from
/// both the script and the policy itself.
fn run_distributed(
    seed: u32,
    shards: usize,
    threads: usize,
    script: &[Step],
    check_conservation: bool,
) -> Vec<ThreadId> {
    let mut p = DistributedLottery::new(seed, shards);
    let base = p.base_currency();
    for i in 0..threads {
        let tid = ThreadId::from_index(i as u32);
        p.on_spawn(tid, FundingSpec::new(base, 100 * (i as u64 + 1)));
        p.enqueue(tid, SimTime::ZERO);
    }
    let quantum = SimDuration::from_ms(100);
    let mut winners = Vec::with_capacity(script.len());
    let mut blocked: Option<ThreadId> = None;
    for (i, step) in script.iter().enumerate() {
        let cpu = (i % shards) as u32;
        let Some(w) = p.pick_on(cpu, SimTime::ZERO) else {
            break;
        };
        winners.push(w);
        match *step {
            Step::FullQuantum => {
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
            Step::Block { eighths } => {
                let used = SimDuration::from_ms(100 * eighths / 8);
                p.charge(w, used, quantum, EndReason::Blocked);
                if let Some(b) = blocked.replace(w) {
                    p.enqueue(b, SimTime::ZERO);
                }
            }
            Step::Inflate { t, k } => {
                let target = ThreadId::from_index((t % threads) as u32);
                p.set_funding(target, 100 * k).unwrap();
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
            Step::Migrate { t, s } => {
                let target = ThreadId::from_index((t % threads) as u32);
                p.migrate(target, s % shards as u32);
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
        }
        if check_conservation {
            // After every step the ready set is every thread except the
            // one currently blocked, and every thread is base-funded —
            // so the machine-wide tree total must equal the ledger's
            // valuation of exactly those clients.
            let expected: f64 = (0..threads)
                .map(|t| ThreadId::from_index(t as u32))
                .filter(|&tid| Some(tid) != blocked)
                .map(|tid| p.value_of(tid))
                .sum();
            let total = p.ready_ticket_total();
            assert!(
                (total - expected).abs() < 1e-9,
                "shard totals {total} != ledger value {expected} after step {i}"
            );
            // Compensation conservation: however grants, revocations,
            // steals, and migrations have shuffled clients around, the
            // per-shard compensated weights must sum to the ledger's
            // global compensated value — shard transfer moves weight, it
            // never mints or leaks it.
            let comp_sum: f64 = (0..shards as u32)
                .map(|s| p.ledger().compensation_shard_weight(s))
                .sum();
            let comp_total = p.ledger().compensation_total_weight();
            assert!(
                (comp_sum - comp_total).abs() < 1e-6,
                "per-shard compensated weights {comp_sum} != global {comp_total} after step {i}"
            );
        }
    }
    winners
}

/// Mirrors `run_distributed` on the shared-tree `LotteryPolicy`,
/// ignoring `Migrate` targets (a 1-shard migration is a no-op).
fn run_shared_tree(seed: u32, threads: usize, script: &[Step]) -> Vec<ThreadId> {
    let mut p = LotteryPolicy::new(seed);
    p.set_structure(SelectStructure::Tree);
    let base = p.base_currency();
    for i in 0..threads {
        let tid = ThreadId::from_index(i as u32);
        p.on_spawn(tid, FundingSpec::new(base, 100 * (i as u64 + 1)));
        p.enqueue(tid, SimTime::ZERO);
    }
    let quantum = SimDuration::from_ms(100);
    let mut winners = Vec::with_capacity(script.len());
    let mut blocked: Option<ThreadId> = None;
    for step in script {
        let Some(w) = p.pick(SimTime::ZERO) else {
            break;
        };
        winners.push(w);
        match *step {
            Step::FullQuantum | Step::Migrate { .. } => {
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
            Step::Block { eighths } => {
                let used = SimDuration::from_ms(100 * eighths / 8);
                p.charge(w, used, quantum, EndReason::Blocked);
                if let Some(b) = blocked.replace(w) {
                    p.enqueue(b, SimTime::ZERO);
                }
            }
            Step::Inflate { t, k } => {
                let target = ThreadId::from_index((t % threads) as u32);
                p.set_funding(target, 100 * k).unwrap();
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
        }
    }
    winners
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharding conserves ticket weight: after arbitrary
    /// spawn/inflate/migrate/block sequences, the sum of per-shard tree
    /// totals equals the ledger's base-currency valuation of the ready
    /// set.
    #[test]
    fn shard_totals_conserve_ledger_value(
        seed in 1..u32::MAX,
        shards in 1..6usize,
        threads in 2..8usize,
        script in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        run_distributed(seed, shards, threads, &script, true);
    }

    /// On one shard the distributed lottery IS the shared partial-sum
    /// tree: winner streams are bit-identical, so distributing the
    /// scheduler changed nothing about the mechanism itself.
    #[test]
    fn single_shard_matches_shared_tree_exactly(
        seed in 1..u32::MAX,
        threads in 2..8usize,
        script in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        let distributed = run_distributed(seed, 1, threads, &script, false);
        let shared = run_shared_tree(seed, threads, &script);
        prop_assert_eq!(distributed, shared);
    }
}

proptest! {
    // Each case is a full SmpKernel simulation; a handful of cases at a
    // wide alarm band is the right trade against runtime.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Section 4.5 over SMP: an I/O-bound client burning a partial
    /// quantum per dispatch carries a recurring compensation factor
    /// `f = quantum/used`, and the fairness monitor folds that factor
    /// into its entitled share. With equal base tickets per shard the
    /// compensated lottery delivers exactly that share of wins — every
    /// client's `weight × quantum` product collapses to `tickets ×
    /// quantum`, so per-shard lottery rates cancel — and the binomial
    /// z-score over a long run stays inside the alarm band.
    #[test]
    fn io_share_matches_compensated_entitlement_on_smp(
        seed in 1..u32::MAX,
        shards in 2..5usize,
        per_shard in 2..4usize,
        used_ms in prop_oneof![Just(5u64), Just(6), Just(8)],
    ) {
        let policy = DistributedLottery::with_quantum(seed, shards, SimDuration::from_ms(10));
        let base = policy.base_currency();
        let mut kernel = SmpKernel::new(policy, shards);
        let monitor = Shared::new(FairnessMonitor::with_alarm_z(4.5));
        let bus = ProbeBus::enabled();
        bus.attach(monitor.clone());
        kernel.set_probe_bus(bus);

        // One partial-quantum client plus hogs, all funded 100 tickets,
        // pinned so every shard carries the same base-ticket total.
        let io = kernel.spawn(
            "io",
            Box::new(FractionalQuantum::new(SimDuration::from_ms(used_ms))),
            FundingSpec::new(base, 100),
        );
        kernel.policy_mut().migrate(io, 0);
        monitor.with(|m| m.set_entitlement(io.index(), 100.0));
        for i in 1..shards * per_shard {
            let t = kernel.spawn(
                format!("hog{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 100),
            );
            kernel.policy_mut().migrate(t, (i / per_shard) as u32);
            monitor.with(|m| m.set_entitlement(t.index(), 100.0));
        }
        kernel
            .run_until(SimTime::from_secs(60))
            .expect("run/yield workloads only");

        let report = monitor.with(|m| m.report());
        let io_row = report
            .rows
            .iter()
            .find(|r| r.thread == io.index())
            .expect("io thread registered");
        prop_assert!(
            (io_row.comp_factor - 10.0 / used_ms as f64).abs() < 1e-9,
            "io comp factor {} != quantum/used",
            io_row.comp_factor
        );
        prop_assert!(
            !report.any_alarm(),
            "binomial drift alarm:\n{}",
            report.to_text()
        );
    }
}
