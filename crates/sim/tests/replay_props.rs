//! Record/replay determinism under random workloads.
//!
//! The acceptance bar for the replay subsystem: any generated
//! [`TraceSpec`], run under any selection structure on the uniprocessor
//! kernel or across distributed shards, must replay bit-identically from
//! its header — and a single mutated event in the recording must be
//! flagged at exactly its index, with both sides of the divergence
//! reported.

use lottery_sim::prelude::*;
use lottery_sim::replay::{record, CaptureConfig, Replayer};
use proptest::prelude::*;

fn job_strategy() -> impl Strategy<Value = TraceJob> {
    (
        0..150_000u64,
        500..20_000u64,
        prop_oneof![3 => Just(0u64), 1 => 500..5_000u64],
        0..3usize,
        1..4u64,
    )
        .prop_map(|(arrival_us, service_us, sleep_us, tenant, t)| TraceJob {
            arrival_us,
            service_us,
            sleep_us,
            tenant: ["a", "b", "c"][tenant].to_string(),
            tickets: 100 * t,
        })
}

fn spec_strategy() -> impl Strategy<Value = TraceSpec> {
    proptest::collection::vec(job_strategy(), 1..10).prop_map(|jobs| TraceSpec {
        currencies: vec![
            CurrencySnapshot {
                name: "a".into(),
                amount: 300,
            },
            CurrencySnapshot {
                name: "b".into(),
                amount: 200,
            },
            CurrencySnapshot {
                name: "c".into(),
                amount: 100,
            },
        ],
        jobs,
    })
}

fn structure_of(s: u8) -> SelectStructure {
    match s % 3 {
        0 => SelectStructure::List,
        1 => SelectStructure::Tree,
        _ => SelectStructure::Alias,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every structure × {uniprocessor, 2 shards, 3 shards} replays its
    /// own capture bit for bit, including through the JSONL wire form.
    #[test]
    fn random_workloads_replay_bit_identically(
        seed in 1..u32::MAX,
        spec in spec_strategy(),
        compensation in prop_oneof![Just(true), Just(false)],
    ) {
        for s in 0..3u8 {
            for shards in [0u32, 2, 3] {
                let config = CaptureConfig {
                    seed,
                    structure: structure_of(s),
                    shards,
                    compensation,
                    quantum_us: 2_000,
                    until_us: 400_000,
                };
                let log = record(spec.clone(), &config).unwrap();
                let reloaded = ReplayLog::from_jsonl(&log.to_jsonl()).unwrap();
                let report = Replayer::new(reloaded).run().unwrap();
                prop_assert!(
                    report.bit_exact(),
                    "structure {s} shards {shards} diverged: {:?}",
                    report.divergence
                );
            }
        }
    }

    /// A single mutated event is reported at exactly its index, with the
    /// recorded and replayed events both present in the report.
    #[test]
    fn injected_mutation_is_flagged_at_its_index(
        seed in 1..u32::MAX,
        spec in spec_strategy(),
        s in 0..3u8,
        shards in prop_oneof![Just(0u32), Just(2u32)],
        pick in 0..u64::MAX,
    ) {
        let config = CaptureConfig {
            seed,
            structure: structure_of(s),
            shards,
            compensation: true,
            quantum_us: 2_000,
            until_us: 400_000,
        };
        let mut log = record(spec, &config).unwrap();
        prop_assume!(!log.events.is_empty());
        let index = (pick % log.events.len() as u64) as usize;
        log.events[index].time_us += 1;
        let report = Replayer::new(log).run().unwrap();
        let div = report.divergence.expect("mutation must be detected");
        prop_assert_eq!(div.index, index);
        prop_assert!(div.recorded.is_some());
        prop_assert!(div.replayed.is_some());
    }
}
