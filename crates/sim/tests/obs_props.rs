//! RNG-stream invariance of the probe bus.
//!
//! The observability contract that matters most for reproducibility:
//! attaching recorders must never perturb scheduling. Every lottery
//! consumes random numbers in exactly the same order whether or not the
//! bus is enabled, so the winner sequence is bit-identical. These
//! properties drive the policy through random mutation scripts — full and
//! partial quanta (exercising compensation), blocks, and dynamic ticket
//! inflation — with observation on and off, for both selection
//! structures.

use lottery_obs::{Aggregator, FlightRecorder, ProbeBus, Shared};
use lottery_sim::prelude::*;
use proptest::prelude::*;

/// One scripted scheduling step, applied after each pick.
#[derive(Debug, Clone)]
enum Step {
    /// The winner uses its full quantum and is requeued.
    FullQuantum,
    /// The winner uses `eighths/8` of the quantum and blocks; the
    /// previously blocked thread (if any) is requeued. Grants a
    /// compensation ticket. Restricted to 2 and 4 eighths so the
    /// compensation factors (4.0, 2.0) and every derived value stay
    /// exactly representable — the list walk's prefix sums and the
    /// tree's hierarchical sums then agree bit-for-bit.
    Block { eighths: u64 },
    /// Inflate thread `t % threads` to `100 * k` tickets, then a full
    /// quantum for the winner.
    Inflate { t: usize, k: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::FullQuantum),
        prop_oneof![Just(2u64), Just(4u64)].prop_map(|eighths| Step::Block { eighths }),
        (0..8usize, 1..6u64).prop_map(|(t, k)| Step::Inflate { t, k }),
    ]
}

/// Runs `script` against a fresh policy, returning the winner sequence.
fn run(
    structure: SelectStructure,
    seed: u32,
    threads: usize,
    script: &[Step],
    bus: Option<ProbeBus>,
) -> Vec<ThreadId> {
    let mut p = LotteryPolicy::new(seed);
    p.set_structure(structure);
    if let Some(bus) = bus {
        p.set_probe_bus(bus);
    }
    let base = p.base_currency();
    for i in 0..threads {
        let tid = ThreadId::from_index(i as u32);
        p.on_spawn(tid, FundingSpec::new(base, 100 * (i as u64 + 1)));
        p.enqueue(tid, SimTime::ZERO);
    }
    let quantum = SimDuration::from_ms(100);
    let mut winners = Vec::with_capacity(script.len());
    let mut blocked: Option<ThreadId> = None;
    for step in script {
        let Some(w) = p.pick(SimTime::ZERO) else {
            break;
        };
        winners.push(w);
        match *step {
            Step::FullQuantum => {
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
            Step::Block { eighths } => {
                let used = SimDuration::from_ms(100 * eighths / 8);
                p.charge(w, used, quantum, EndReason::Blocked);
                if let Some(b) = blocked.replace(w) {
                    p.enqueue(b, SimTime::ZERO);
                }
            }
            Step::Inflate { t, k } => {
                let target = ThreadId::from_index((t % threads) as u32);
                p.set_funding(target, 100 * k).unwrap();
                p.charge(w, quantum, quantum, EndReason::QuantumExpired);
                p.enqueue(w, SimTime::ZERO);
            }
        }
    }
    winners
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Winner sequences are bit-identical with observation off, with a
    /// no-op-ish aggregator attached, and with a flight recorder
    /// attached — for both selection structures.
    #[test]
    fn winner_sequence_invariant_under_observation(
        seed in 1..u32::MAX,
        threads in 2..8usize,
        script in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        for structure in [SelectStructure::List, SelectStructure::Tree] {
            let silent = run(structure, seed, threads, &script, None);
            let aggregated = run(
                structure,
                seed,
                threads,
                &script,
                Some(ProbeBus::with_recorder(Shared::new(Aggregator::new()))),
            );
            let recorded = run(
                structure,
                seed,
                threads,
                &script,
                Some(ProbeBus::with_recorder(Shared::new(FlightRecorder::new(256)))),
            );
            prop_assert_eq!(&silent, &aggregated, "aggregator perturbed {:?}", structure);
            prop_assert_eq!(&silent, &recorded, "flight recorder perturbed {:?}", structure);
        }
    }

    /// List and tree agree with each other while observed — observation
    /// composes with the structural equivalence the unit suite checks.
    #[test]
    fn structures_agree_while_observed(
        seed in 1..u32::MAX,
        threads in 2..8usize,
        script in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let list = run(
            SelectStructure::List,
            seed,
            threads,
            &script,
            Some(ProbeBus::with_recorder(Shared::new(Aggregator::new()))),
        );
        let tree = run(
            SelectStructure::Tree,
            seed,
            threads,
            &script,
            Some(ProbeBus::with_recorder(Shared::new(Aggregator::new()))),
        );
        prop_assert_eq!(list, tree);
    }
}
