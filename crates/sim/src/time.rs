//! Simulated time.
//!
//! The simulator's clock counts microseconds in a `u64`, giving more than
//! half a million simulated years of range — far beyond any experiment.
//! Newtypes keep instants and durations from being confused and make every
//! experiment parameter (`quantum`, run lengths, window sizes) explicit
//! about units.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `us` microseconds after the epoch.
    pub const fn from_us(us: u64) -> Self {
        Self(us)
    }

    /// An instant `ms` milliseconds after the epoch.
    pub const fn from_ms(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// An instant `s` seconds after the epoch.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics when `earlier` is later than `self`; the simulator's clock is
    /// monotone, so this indicates a harness bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }

    /// Saturating duration since `earlier` (zero when `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        Self(us)
    }

    /// `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Microseconds.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The fraction `self / whole`, for compensation factors.
    ///
    /// Returns 1.0 when `whole` is zero.
    pub fn fraction_of(self, whole: SimDuration) -> f64 {
        if whole.0 == 0 {
            1.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ms(5).as_us(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_ms(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_us(), 1_000_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10) + SimDuration::from_ms(5);
        assert_eq!(t, SimTime::from_ms(15));
        assert_eq!(t.since(SimTime::from_ms(10)), SimDuration::from_ms(5));
        let mut d = SimDuration::from_ms(1);
        d += SimDuration::from_us(500);
        assert_eq!(d.as_us(), 1_500);
        assert_eq!(d * 2, SimDuration::from_us(3_000));
        assert_eq!(d / 3, SimDuration::from_us(500));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_ms(1);
        let late = SimTime::from_ms(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_us(1).saturating_sub(SimDuration::from_us(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_panics_on_regression() {
        let _ = SimTime::from_ms(1).since(SimTime::from_ms(2));
    }

    #[test]
    fn fraction_of() {
        let q = SimDuration::from_ms(100);
        assert_eq!(SimDuration::from_ms(20).fraction_of(q), 0.2);
        assert_eq!(SimDuration::from_ms(20).fraction_of(SimDuration::ZERO), 1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_us(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_ms(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn min_and_is_zero() {
        assert_eq!(
            SimDuration::from_ms(2).min(SimDuration::from_ms(1)),
            SimDuration::from_ms(1)
        );
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_us(1).is_zero());
    }
}
