//! Stride scheduling: the deterministic counterpart to lottery scheduling.
//!
//! Stride scheduling is the authors' follow-up to the lottery work
//! (Waldspurger & Weihl, *Stride Scheduling: Deterministic
//! Proportional-Share Resource Management*, MIT/LCS/TM-528, 1995). Each
//! client has a *stride* inversely proportional to its tickets and a *pass*
//! value; the client with the minimum pass runs next, advancing its pass by
//! its stride scaled by the fraction of the quantum actually used.
//!
//! It allocates the same long-run proportions as the lottery with far lower
//! short-term variance, which is exactly what the de-randomization ablation
//! (`experiments ablate-stride`) measures.

use std::collections::BinaryHeap;

use super::{EndReason, Policy};
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// The stride constant: `stride = STRIDE1 / tickets`.
pub const STRIDE1: u64 = 1 << 20;

#[derive(Debug, Clone, Copy)]
struct StrideState {
    tickets: u64,
    stride: u64,
    pass: u64,
    queued: bool,
}

/// Min-pass entry for the ready heap (reversed for `BinaryHeap`).
#[derive(Debug, PartialEq, Eq)]
struct Entry {
    pass: u64,
    seq: u64,
    tid: ThreadId,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smallest pass first; ties broken by arrival order.
        other
            .pass
            .cmp(&self.pass)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic proportional-share policy.
#[derive(Debug)]
pub struct StridePolicy {
    heap: BinaryHeap<Entry>,
    state: Vec<StrideState>,
    quantum: SimDuration,
    seq: u64,
    /// Pass of the most recently picked client: rejoining threads start
    /// here rather than at a stale (unfairly small) pass.
    global_pass: u64,
    ready: usize,
}

impl StridePolicy {
    /// Creates a stride policy with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum.
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        Self {
            heap: BinaryHeap::new(),
            state: Vec::new(),
            quantum,
            seq: 0,
            global_pass: 0,
            ready: 0,
        }
    }

    /// Changes a thread's ticket allocation, recomputing its stride.
    ///
    /// Takes effect at the thread's next enqueue (pass values already in
    /// the heap are not rewritten, matching the lottery policy where ticket
    /// changes apply at the next draw).
    pub fn set_tickets(&mut self, tid: ThreadId, tickets: u64) {
        let s = &mut self.state[tid.index() as usize];
        s.tickets = tickets.max(1);
        s.stride = STRIDE1 / s.tickets;
    }

    /// A thread's current tickets.
    pub fn tickets(&self, tid: ThreadId) -> u64 {
        self.state[tid.index() as usize].tickets
    }
}

impl Policy for StridePolicy {
    /// The thread's ticket count (minimum 1).
    type Spec = u64;

    fn on_spawn(&mut self, tid: ThreadId, tickets: u64) {
        let idx = tid.index() as usize;
        if self.state.len() <= idx {
            self.state.resize(
                idx + 1,
                StrideState {
                    tickets: 1,
                    stride: STRIDE1,
                    pass: 0,
                    queued: false,
                },
            );
        }
        let tickets = tickets.max(1);
        self.state[idx] = StrideState {
            tickets,
            stride: STRIDE1 / tickets,
            pass: self.global_pass,
            queued: false,
        };
    }

    fn on_exit(&mut self, tid: ThreadId) {
        // Lazy removal: mark dequeued; stale heap entries are skipped.
        let s = &mut self.state[tid.index() as usize];
        if s.queued {
            s.queued = false;
            self.ready -= 1;
        }
    }

    fn enqueue(&mut self, tid: ThreadId, _now: SimTime) {
        let global = self.global_pass;
        let s = &mut self.state[tid.index() as usize];
        debug_assert!(!s.queued, "double enqueue of {tid}");
        s.queued = true;
        // A thread rejoining after a block must not carry an ancient pass,
        // or it would monopolize the CPU to "catch up".
        s.pass = s.pass.max(global);
        self.seq += 1;
        self.heap.push(Entry {
            pass: s.pass,
            seq: self.seq,
            tid,
        });
        self.ready += 1;
    }

    fn pick(&mut self, _now: SimTime) -> Option<ThreadId> {
        while let Some(entry) = self.heap.pop() {
            let s = &mut self.state[entry.tid.index() as usize];
            // Skip entries that no longer reflect the thread's state
            // (dequeued by exit, or superseded by a newer enqueue).
            if !s.queued || s.pass != entry.pass {
                continue;
            }
            s.queued = false;
            self.ready -= 1;
            self.global_pass = s.pass;
            return Some(entry.tid);
        }
        None
    }

    fn charge(&mut self, tid: ThreadId, used: SimDuration, quantum: SimDuration, _why: EndReason) {
        let s = &mut self.state[tid.index() as usize];
        // Advance pass by the stride scaled to actual usage, so a thread
        // that used half its quantum pays half a stride (the stride
        // paper's fractional-quantum extension).
        let scaled = (s.stride as f64 * used.fraction_of(quantum)).round() as u64;
        s.pass += scaled.max(1);
    }

    fn quantum(&self) -> SimDuration {
        self.quantum
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);

    fn full_charge(p: &mut StridePolicy, tid: ThreadId) {
        p.charge(
            tid,
            SimDuration::from_ms(100),
            SimDuration::from_ms(100),
            EndReason::QuantumExpired,
        );
    }

    #[test]
    fn three_to_one_pattern() {
        // Tickets 3:1 — in any window of 4 picks, T0 gets 3.
        let mut p = StridePolicy::new(SimDuration::from_ms(100));
        p.on_spawn(T0, 3);
        p.on_spawn(T1, 1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        let mut wins = [0u32; 2];
        for _ in 0..400 {
            let t = p.pick(SimTime::ZERO).unwrap();
            full_charge(&mut p, t);
            p.enqueue(t, SimTime::ZERO);
            wins[t.index() as usize] += 1;
        }
        assert_eq!(wins[0], 300);
        assert_eq!(wins[1], 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut p = StridePolicy::new(SimDuration::from_ms(100));
            p.on_spawn(T0, 2);
            p.on_spawn(T1, 5);
            p.enqueue(T0, SimTime::ZERO);
            p.enqueue(T1, SimTime::ZERO);
            let mut order = Vec::new();
            for _ in 0..50 {
                let t = p.pick(SimTime::ZERO).unwrap();
                full_charge(&mut p, t);
                p.enqueue(t, SimTime::ZERO);
                order.push(t);
            }
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejoining_thread_does_not_monopolize() {
        let mut p = StridePolicy::new(SimDuration::from_ms(100));
        p.on_spawn(T0, 1);
        p.on_spawn(T1, 1);
        p.enqueue(T0, SimTime::ZERO);
        // T0 runs alone for a long time (T1 "blocked").
        for _ in 0..100 {
            let t = p.pick(SimTime::ZERO).unwrap();
            assert_eq!(t, T0);
            full_charge(&mut p, t);
            p.enqueue(t, SimTime::ZERO);
        }
        // T1 wakes: its pass snaps to the global pass, so the next 10
        // picks split roughly evenly instead of T1 taking all of them.
        p.enqueue(T1, SimTime::ZERO);
        let mut t1_wins = 0;
        for _ in 0..10 {
            let t = p.pick(SimTime::ZERO).unwrap();
            full_charge(&mut p, t);
            p.enqueue(t, SimTime::ZERO);
            if t == T1 {
                t1_wins += 1;
            }
        }
        assert!(t1_wins <= 6, "t1 won {t1_wins}/10 after rejoin");
    }

    #[test]
    fn partial_quantum_advances_pass_partially() {
        let mut p = StridePolicy::new(SimDuration::from_ms(100));
        p.on_spawn(T0, 1);
        p.charge(
            T0,
            SimDuration::from_ms(50),
            SimDuration::from_ms(100),
            EndReason::Yielded,
        );
        assert_eq!(p.state[0].pass, STRIDE1 / 2);
    }

    #[test]
    fn set_tickets_changes_stride() {
        let mut p = StridePolicy::new(SimDuration::from_ms(100));
        p.on_spawn(T0, 1);
        p.set_tickets(T0, 4);
        assert_eq!(p.tickets(T0), 4);
        assert_eq!(p.state[0].stride, STRIDE1 / 4);
        // Zero tickets clamp to one.
        p.set_tickets(T0, 0);
        assert_eq!(p.tickets(T0), 1);
    }

    #[test]
    fn exited_thread_never_picked() {
        let mut p = StridePolicy::new(SimDuration::from_ms(100));
        p.on_spawn(T0, 1);
        p.on_spawn(T1, 1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.on_exit(T0);
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
        assert_eq!(p.pick(SimTime::ZERO), None);
    }
}
