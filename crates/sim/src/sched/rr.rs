//! Plain round-robin scheduling.
//!
//! The simplest baseline: a FIFO ready queue and a fixed quantum. Under
//! unmodified Mach, "threads with equal priority are run round-robin"
//! (Section 5.6, footnote 9) — this policy models that degenerate case and
//! anchors the overhead comparisons.

use std::collections::VecDeque;

use super::{EndReason, LockId, Policy};
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// FIFO round-robin policy.
#[derive(Debug)]
pub struct RoundRobinPolicy {
    queue: VecDeque<ThreadId>,
    quantum: SimDuration,
    /// FIFO kernel mutexes: (holder, waiters).
    locks: Vec<(Option<ThreadId>, VecDeque<ThreadId>)>,
}

impl RoundRobinPolicy {
    /// Creates a round-robin policy with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum; time could not advance.
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        Self {
            queue: VecDeque::new(),
            quantum,
            locks: Vec::new(),
        }
    }
}

impl Policy for RoundRobinPolicy {
    type Spec = ();

    fn on_spawn(&mut self, _tid: ThreadId, _spec: ()) {}

    fn on_exit(&mut self, tid: ThreadId) {
        self.queue.retain(|&t| t != tid);
    }

    fn enqueue(&mut self, tid: ThreadId, _now: SimTime) {
        debug_assert!(!self.queue.contains(&tid), "double enqueue of {tid}");
        self.queue.push_back(tid);
    }

    fn pick(&mut self, _now: SimTime) -> Option<ThreadId> {
        self.queue.pop_front()
    }

    fn charge(&mut self, _tid: ThreadId, _used: SimDuration, _q: SimDuration, _why: EndReason) {}

    fn quantum(&self) -> SimDuration {
        self.quantum
    }

    fn ready_len(&self) -> usize {
        self.queue.len()
    }

    /// FIFO mutexes: handoff strictly in arrival order — the baseline
    /// against the lottery mutex's proportional handoff.
    fn create_lock(&mut self) -> LockId {
        let id = LockId::from_index(self.locks.len() as u32);
        self.locks.push((None, VecDeque::new()));
        id
    }

    fn lock(&mut self, tid: ThreadId, lock: LockId) -> bool {
        let (holder, waiters) = &mut self.locks[lock.index() as usize];
        match holder {
            None => {
                debug_assert!(waiters.is_empty());
                *holder = Some(tid);
                true
            }
            Some(_) => {
                waiters.push_back(tid);
                false
            }
        }
    }

    fn unlock(&mut self, tid: ThreadId, lock: LockId) -> Option<ThreadId> {
        let (holder, waiters) = &mut self.locks[lock.index() as usize];
        debug_assert_eq!(*holder, Some(tid), "unlock by non-holder");
        let next = waiters.pop_front();
        *holder = next;
        next
    }

    fn cancel_lock_waits(&mut self, tid: ThreadId) {
        for (_, waiters) in &mut self.locks {
            waiters.retain(|&t| t != tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);
    const T2: ThreadId = ThreadId::from_index(2);

    #[test]
    fn fifo_order() {
        let mut p = RoundRobinPolicy::new(SimDuration::from_ms(10));
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.enqueue(T2, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T2));
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        assert_eq!(p.pick(SimTime::ZERO), None);
    }

    #[test]
    fn exit_removes_queued_thread() {
        let mut p = RoundRobinPolicy::new(SimDuration::from_ms(10));
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.on_exit(T0);
        assert_eq!(p.ready_len(), 1);
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        let _ = RoundRobinPolicy::new(SimDuration::ZERO);
    }
}
