//! The distributed lottery policy (Section 4.2's closing remark).
//!
//! The paper notes the partial-sum tree "can also be used as the basis of
//! a distributed lottery scheduler". This module builds that scheduler:
//! one partial-sum tree per CPU *shard*, each client assigned a home
//! shard, and every dispatch decision a purely local lottery over the
//! picking CPU's own tree. Global proportional share is preserved because
//! a client's tickets are worth the same base units wherever they live:
//! each CPU holds lotteries at the same rate, and a client holding value
//! `v` on a shard of total `S` wins `v/S` of that shard's dispatches —
//! so keeping per-shard totals balanced keeps machine-wide service
//! proportional to `v/T`.
//!
//! Three mechanisms keep the shards honest:
//!
//! * **sharded dirty notifications** — the ledger's valuation
//!   invalidations are partitioned by home shard
//!   ([`Ledger::drain_dirty_shard`]), so a pick settles only its own
//!   shard's stale weights instead of contending on one global queue;
//! * **work stealing** — a CPU whose shard has no ready thread draws from
//!   the heaviest foreign shard, keeping CPUs busy without
//!   re-centralizing the common case;
//! * **ticket-weight rebalancing** — every `rebalance_interval` picks the
//!   policy compares per-shard totals and, past a configurable imbalance
//!   bound, migrates ready threads from the heaviest shard to the
//!   lightest until the bound holds again. By default the comparison uses
//!   *effective* (compensated) totals: each shard's ready tree total plus
//!   the ledger's resting compensated weight — the `factor × funded`
//!   value its blocked, compensated threads bring back when they wake.
//!   Raw tree totals mistake a shard full of sleeping I/O-bound threads
//!   for an idle one ([`DistributedLottery::set_comp_aware_rebalance`]
//!   exposes that ablation).
//!
//! With a single shard the policy is *bit-identical* to
//! [`super::lottery::LotteryPolicy`] in tree mode: the same ledger
//! operation sequence, the same ready/tree slot order, and the same RNG
//! discipline (one `next_f64` per non-degenerate draw, none when the pool
//! is worthless).

use lottery_core::client::ClientId;
use lottery_core::currency::CurrencyId;
use lottery_core::errors::Result;
use lottery_core::ledger::Ledger;
use lottery_core::lottery::alias::AliasLottery;
use lottery_core::lottery::index::DenseIndex;
use lottery_core::lottery::tree::TreeLottery;
use lottery_core::lottery::TicketPool;
use lottery_core::rng::{ParkMiller, SchedRng};
use lottery_core::ticket::TicketId;
use lottery_obs::{EventKind, ProbeBus};

use super::comp::CompensationHook;
use super::lottery::{FundingSpec, SelectStructure};
use super::{EndReason, Policy};
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

#[derive(Debug, Clone, Copy)]
struct ThreadFunding {
    client: ClientId,
    ticket: TicketId,
}

/// One CPU's slice of the machine: a ready queue mirrored by a winner
/// structure (partial-sum tree or alias table) over the cached client
/// values of its threads.
#[derive(Debug)]
struct Shard {
    /// Ready threads homed here, in scan order; removal swap-removes so
    /// the order always mirrors the mirror structure's slot order.
    ready: Vec<ThreadId>,
    /// Cached-weight mirror of `ready` (tree mode — the default). Thread
    /// ids are dense, so the slot index is a flat table, not a hash map.
    tree: TreeLottery<ThreadId, f64, DenseIndex>,
    /// Cached-weight mirror of `ready` (alias mode).
    alias: AliasLottery<ThreadId, DenseIndex>,
    /// Lotteries resolved from this shard.
    picks: u64,
}

impl Shard {
    fn new() -> Self {
        Self {
            ready: Vec::new(),
            tree: TreeLottery::with_index(1),
            alias: AliasLottery::with_index(0),
            picks: 0,
        }
    }

    /// The active mirror's total under `structure`.
    fn total(&self, structure: SelectStructure) -> f64 {
        if structure == SelectStructure::Alias {
            self.alias.total()
        } else {
            self.tree.total()
        }
    }
}

/// Per-shard statistics, as reported by [`DistributedLottery::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Threads homed on this shard (ready or not).
    pub threads: u32,
    /// Ready-queue depth.
    pub queue_depth: u32,
    /// Total ticket value of the shard's ready threads, in base units.
    pub ticket_total: f64,
    /// Compensated weight homed here: the base-unit worth of the implicit
    /// compensation tickets this shard's threads hold.
    pub comp_weight: f64,
    /// Resting compensated weight: `factor × funded` of this shard's
    /// blocked compensated threads — invisible to `ticket_total`, but the
    /// value the tree regains when they wake.
    pub resting_weight: f64,
    /// Lotteries resolved from this shard's tree.
    pub picks: u64,
    /// Pending dirty-client notifications owned by this shard.
    pub dirty_depth: u32,
}

/// A lottery policy with one partial-sum tree per CPU.
pub struct DistributedLottery {
    ledger: Ledger,
    rng: ParkMiller,
    quantum: SimDuration,
    /// Per-thread funding, indexed by thread id.
    threads: Vec<Option<ThreadFunding>>,
    /// Per-CPU shards; a thread's lotteries happen on its home shard.
    shards: Vec<Shard>,
    /// Home shard per thread, indexed by thread id.
    home: Vec<u32>,
    /// Membership index: thread id -> position in its home shard's
    /// `ready`, `None` when not queued.
    ready_pos: Vec<Option<u32>>,
    /// Reverse map from ledger clients to threads (flat, indexed by the
    /// client's arena slot), for routing sharded dirty notifications back
    /// to mirror slots without hashing.
    client_threads: Vec<Option<ThreadId>>,
    /// Reusable drain buffer: no allocation per pick.
    dirty_buf: Vec<ClientId>,
    /// The per-shard winner-search structure ([`SelectStructure::List`]
    /// has no distributed analogue and behaves like `Tree`).
    structure: SelectStructure,
    /// Shared compensation grant/revoke policy (Section 4.5).
    comp: CompensationHook,
    /// Whether homing, stealing, and rebalancing compare *effective*
    /// (compensated) shard totals; `false` is the raw-weight ablation.
    comp_aware: bool,
    /// Lotteries held (for overhead accounting).
    lotteries: u64,
    /// Picks since the last rebalance check.
    picks_since_check: u32,
    /// How many picks between rebalance checks.
    rebalance_interval: u32,
    /// A shard is "heavy" when its total exceeds `bound × mean`.
    imbalance_bound: f64,
    /// Work-stealing picks (local tree was empty).
    steals: u64,
    /// Threads re-homed by rebalancing or explicit migration.
    migrations: u64,
    /// Rebalance rounds that found the bound violated.
    rebalances: u64,
    /// Probe bus for shard/draw observability (disabled by default).
    bus: ProbeBus,
}

impl DistributedLottery {
    /// Creates a distributed lottery over `shards` per-CPU trees with the
    /// paper's 100 ms quantum.
    ///
    /// # Panics
    ///
    /// Panics on zero shards.
    pub fn new(seed: u32, shards: usize) -> Self {
        Self::with_quantum(seed, shards, SimDuration::from_ms(100))
    }

    /// Creates a distributed lottery with an explicit quantum.
    ///
    /// # Panics
    ///
    /// Panics on zero shards or a zero quantum.
    pub fn with_quantum(seed: u32, shards: usize, quantum: SimDuration) -> Self {
        assert!(shards > 0, "a distributed lottery needs at least one shard");
        assert!(!quantum.is_zero(), "quantum must be positive");
        let mut ledger = Ledger::new();
        ledger.set_dirty_shards(shards);
        Self {
            ledger,
            rng: ParkMiller::new(seed),
            quantum,
            threads: Vec::new(),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            home: Vec::new(),
            ready_pos: Vec::new(),
            client_threads: Vec::new(),
            dirty_buf: Vec::new(),
            structure: SelectStructure::Tree,
            comp: CompensationHook::new(),
            comp_aware: true,
            lotteries: 0,
            picks_since_check: 0,
            rebalance_interval: 32,
            imbalance_bound: 1.5,
            steals: 0,
            migrations: 0,
            rebalances: 0,
            bus: ProbeBus::disabled(),
        }
    }

    /// Number of shards (one per CPU).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Tunes the rebalancer: check every `interval` picks, and call a
    /// shard heavy when its total exceeds `bound × mean`.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval or a bound below 1.
    pub fn set_rebalance(&mut self, interval: u32, bound: f64) {
        assert!(interval > 0, "rebalance interval must be positive");
        assert!(bound >= 1.0, "imbalance bound must be at least 1");
        self.rebalance_interval = interval;
        self.imbalance_bound = bound;
    }

    /// Disables compensation tickets (the Section 4.5 ablation).
    pub fn set_compensation_enabled(&mut self, enabled: bool) {
        self.comp.set_enabled(enabled);
    }

    /// Whether compensation tickets are enabled (replay stamps capture
    /// this switch).
    pub fn compensation_enabled(&self) -> bool {
        self.comp.enabled()
    }

    /// The Park–Miller state the next draw will consume — the replay
    /// checkpoint. Passing this value as the seed of a fresh policy
    /// reproduces the remaining draw stream exactly (seeds in
    /// `[1, 2^31 - 2]` are taken verbatim).
    pub fn rng_state(&self) -> u32 {
        self.rng.state()
    }

    /// Chooses whether homing, stealing, and rebalancing compare
    /// effective (compensated) shard totals — ready tree value plus the
    /// resting compensated weight of blocked threads — or raw ready tree
    /// totals only. Raw totals are the ablation: a shard whose I/O-bound
    /// threads are asleep looks empty and attracts load it cannot carry.
    pub fn set_comp_aware_rebalance(&mut self, enabled: bool) {
        self.comp_aware = enabled;
    }

    /// Whether rebalancing currently compares compensated totals.
    pub fn comp_aware_rebalance(&self) -> bool {
        self.comp_aware
    }

    /// Selects the per-shard winner-search structure, rebuilding every
    /// shard's mirror from its ready queue (in queue order) with exact
    /// values from the valuation cache. [`SelectStructure::List`] has no
    /// distributed analogue and behaves like `Tree`. Emits one
    /// [`EventKind::StructureRebuild`] per shard.
    pub fn set_structure(&mut self, structure: SelectStructure) {
        let structure = if structure == SelectStructure::Alias {
            SelectStructure::Alias
        } else {
            SelectStructure::Tree
        };
        self.structure = structure;
        for s in 0..self.shards.len() as u32 {
            let start = std::time::Instant::now();
            // Every ready weight is computed fresh below; notifications
            // pending on this shard are obsolete.
            let mut dirty = std::mem::take(&mut self.dirty_buf);
            self.ledger.drain_dirty_shard_into(s, &mut dirty);
            self.dirty_buf = dirty;
            let sh = &mut self.shards[s as usize];
            sh.tree = TreeLottery::with_index(sh.ready.len());
            sh.alias = AliasLottery::with_index(sh.ready.len());
            for i in 0..self.shards[s as usize].ready.len() {
                let tid = self.shards[s as usize].ready[i];
                let client = self.funding_info(tid).client;
                let value = self.ledger.cached_client_value(client).unwrap_or(0.0);
                let sh = &mut self.shards[s as usize];
                if structure == SelectStructure::Alias {
                    sh.alias.insert(tid, value);
                } else {
                    sh.tree.insert(tid, value);
                }
            }
            let sh = &mut self.shards[s as usize];
            if structure == SelectStructure::Alias {
                sh.alias.rebuild();
                sh.alias.take_rebuild_events();
            }
            let clients = sh.ready.len() as u32;
            let rebuild_ns = start.elapsed().as_nanos() as u64;
            self.bus.emit(|| EventKind::StructureRebuild {
                structure: if structure == SelectStructure::Alias {
                    "alias"
                } else {
                    "tree"
                },
                clients,
                stale: 0,
                rebuild_ns,
            });
        }
    }

    /// The active per-shard winner-search structure.
    pub fn structure(&self) -> SelectStructure {
        self.structure
    }

    /// A shard's weight as the load balancer sees it: the ready mirror
    /// total, plus (in compensated mode) the `factor × funded` weight of
    /// its resting compensated threads.
    fn effective_total(&self, shard: u32) -> f64 {
        let ready = self.shards[shard as usize].total(self.structure);
        if self.comp_aware {
            ready + self.ledger.compensation_resting_weight(shard)
        } else {
            ready
        }
    }

    /// The base currency of this policy's ledger.
    pub fn base_currency(&self) -> CurrencyId {
        self.ledger.base()
    }

    /// Creates a currency backed by `amount` base-currency tickets.
    pub fn create_currency(&mut self, name: &str, amount: u64) -> Result<CurrencyId> {
        let cur = self.ledger.create_currency(name)?;
        let backing = self.ledger.issue_root(self.ledger.base(), amount)?;
        self.ledger.fund_currency(backing, cur)?;
        Ok(cur)
    }

    /// Changes the face amount of a thread's funding ticket — dynamic
    /// ticket inflation/deflation (Section 3.2).
    pub fn set_funding(&mut self, tid: ThreadId, amount: u64) -> Result<()> {
        let funding = self.funding_info(tid);
        self.ledger.set_amount(funding.ticket, amount)?;
        self.bus.emit(|| EventKind::WeightChange {
            client: funding.client.index(),
            tickets: amount,
            origin: "set-funding",
        });
        Ok(())
    }

    /// The face amount of a thread's funding ticket.
    pub fn funding(&self, tid: ThreadId) -> u64 {
        self.ledger
            .ticket(self.funding_info(tid).ticket)
            .map(|t| t.amount())
            .unwrap_or(0)
    }

    /// The ledger client backing a thread.
    pub fn client_of(&self, tid: ThreadId) -> ClientId {
        self.funding_info(tid).client
    }

    /// A thread's current value in base units (including compensation).
    pub fn value_of(&self, tid: ThreadId) -> f64 {
        self.ledger
            .cached_client_value(self.funding_info(tid).client)
            .unwrap_or(0.0)
    }

    /// A thread's home shard.
    pub fn home_of(&self, tid: ThreadId) -> u32 {
        self.home[tid.index() as usize]
    }

    /// Read access to the underlying ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Write access to the underlying ledger.
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Number of lotteries held so far.
    pub fn lotteries_held(&self) -> u64 {
        self.lotteries
    }

    /// Work-stealing picks so far.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Threads re-homed so far (rebalancing plus explicit migration).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Rebalance rounds that found the imbalance bound violated.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Per-shard statistics. Settles the shard's pending invalidations
    /// first so the reported totals are exact.
    pub fn shard_stats(&mut self, shard: u32) -> ShardStats {
        self.refresh_shard(shard);
        let threads = self
            .threads
            .iter()
            .enumerate()
            .filter(|(i, f)| f.is_some() && self.home.get(*i) == Some(&shard))
            .count() as u32;
        let sh = &self.shards[shard as usize];
        ShardStats {
            threads,
            queue_depth: sh.ready.len() as u32,
            ticket_total: sh.total(self.structure),
            comp_weight: self.ledger.compensation_shard_weight(shard),
            resting_weight: self.ledger.compensation_resting_weight(shard),
            picks: sh.picks,
            dirty_depth: self.ledger.dirty_shard_depth(shard) as u32,
        }
    }

    /// Sum of every shard's mirror total, in base units — the
    /// machine-wide ready ticket value the conservation proptests check.
    pub fn ready_ticket_total(&mut self) -> f64 {
        for s in 0..self.shards.len() as u32 {
            self.refresh_shard(s);
        }
        self.shards.iter().map(|s| s.total(self.structure)).sum()
    }

    /// Re-homes a thread to `shard`, moving its ready entry, tree leaf,
    /// and dirty-notification ownership.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard or an unregistered thread.
    pub fn migrate(&mut self, tid: ThreadId, shard: u32) {
        assert!((shard as usize) < self.shards.len(), "no such shard");
        let funding = self.funding_info(tid);
        let from = self.home[tid.index() as usize];
        if from == shard {
            return;
        }
        let was_ready = self.remove_ready(tid);
        if was_ready {
            let sh = &mut self.shards[from as usize];
            sh.tree.remove(&tid);
            sh.alias.remove(&tid);
        }
        self.home[tid.index() as usize] = shard;
        self.ledger.assign_dirty_shard(funding.client, shard);
        if was_ready {
            self.push_ready(tid);
            let value = self
                .ledger
                .cached_client_value(funding.client)
                .unwrap_or(0.0);
            let sh = &mut self.shards[shard as usize];
            if self.structure == SelectStructure::Alias {
                sh.alias.insert(tid, value);
            } else {
                sh.tree.insert(tid, value);
            }
        }
        self.migrations += 1;
        let thread = tid.index();
        self.bus.emit(|| EventKind::ShardMigrate {
            thread,
            from_shard: from,
            to_shard: shard,
        });
    }

    fn funding_info(&self, tid: ThreadId) -> ThreadFunding {
        self.threads
            .get(tid.index() as usize)
            .copied()
            .flatten()
            .expect("thread not registered with the distributed lottery")
    }

    /// The shard a fresh thread should call home: the one with the least
    /// effective ticket value, ties to the lowest index.
    fn least_loaded_shard(&self) -> u32 {
        let mut best = 0u32;
        let mut best_total = f64::INFINITY;
        for i in 0..self.shards.len() as u32 {
            let total = self.effective_total(i);
            if total < best_total {
                best_total = total;
                best = i;
            }
        }
        best
    }

    /// Whether a thread is on its home shard's ready queue (`O(1)`).
    fn is_ready(&self, tid: ThreadId) -> bool {
        self.ready_pos
            .get(tid.index() as usize)
            .copied()
            .flatten()
            .is_some()
    }

    /// Appends a thread to its home shard's ready queue.
    fn push_ready(&mut self, tid: ThreadId) {
        let idx = tid.index() as usize;
        if self.ready_pos.len() <= idx {
            self.ready_pos.resize(idx + 1, None);
        }
        debug_assert!(self.ready_pos[idx].is_none(), "double enqueue of {tid}");
        let shard = &mut self.shards[self.home[idx] as usize];
        self.ready_pos[idx] = Some(shard.ready.len() as u32);
        shard.ready.push(tid);
    }

    /// Removes a thread from its home shard's ready queue in `O(1)`.
    ///
    /// Swap-removes — the same motion [`TreeLottery`]'s removal applies
    /// to its leaf slots — so ready order and tree slot order stay
    /// identical within every shard.
    fn remove_ready(&mut self, tid: ThreadId) -> bool {
        let idx = tid.index() as usize;
        let Some(pos) = self.ready_pos.get(idx).copied().flatten() else {
            return false;
        };
        let pos = pos as usize;
        let shard = &mut self.shards[self.home[idx] as usize];
        shard.ready.swap_remove(pos);
        self.ready_pos[idx] = None;
        if pos < shard.ready.len() {
            let moved = shard.ready[pos];
            self.ready_pos[moved.index() as usize] = Some(pos as u32);
        }
        true
    }

    /// Settles a shard's pending valuation invalidations into its mirror
    /// structure (tree leaves or alias slots).
    ///
    /// Only this shard's dirty queue is drained — invalidations homed
    /// elsewhere wait for their own shard's next pick.
    fn refresh_shard(&mut self, shard: u32) {
        let mut dirty = std::mem::take(&mut self.dirty_buf);
        self.ledger.drain_dirty_shard_into(shard, &mut dirty);
        if !dirty.is_empty() {
            // One batch per dispatch decision: the shard's queue is
            // drained into the reusable scratch buffer above (ascending
            // client-id order) and revalued in a single pass.
            let depth = dirty.len() as u32;
            self.bus.emit(|| EventKind::DirtyBatch { shard, depth });
        }
        for &client in &dirty {
            let Some(tid) = self
                .client_threads
                .get(client.index() as usize)
                .copied()
                .flatten()
            else {
                continue;
            };
            if !self.is_ready(tid) {
                continue;
            }
            let value = self.ledger.cached_client_value(client).unwrap_or(0.0);
            let sh = &mut self.shards[shard as usize];
            if self.structure == SelectStructure::Alias {
                sh.alias.set_weight(&tid, value);
            } else {
                sh.tree.set_weight(&tid, value);
            }
        }
        self.dirty_buf = dirty;
    }

    /// The heaviest foreign shard with ready work, for stealing.
    fn steal_victim(&mut self, thief: u32) -> Option<u32> {
        let mut best: Option<(u32, f64)> = None;
        for s in 0..self.shards.len() as u32 {
            if s == thief || self.shards[s as usize].ready.is_empty() {
                continue;
            }
            self.refresh_shard(s);
            let total = self.effective_total(s);
            if best.is_none_or(|(_, t)| total > t) {
                best = Some((s, total));
            }
        }
        best.map(|(s, _)| s)
    }

    /// Holds one lottery over `shard`'s tree and removes the winner.
    ///
    /// Mirrors [`super::lottery::LotteryPolicy`]'s tree draw exactly: a
    /// winning value is consumed from the RNG precisely when the pool has
    /// positive value; a worthless pool degenerates to FIFO without
    /// drawing.
    fn draw_from(&mut self, cpu: u32, shard: u32, stolen: bool) -> ThreadId {
        self.lotteries += 1;
        self.shards[shard as usize].picks += 1;
        let alias_mode = self.structure == SelectStructure::Alias;
        let sh = &self.shards[shard as usize];
        let entries = sh.ready.len() as u32;
        let total = sh.total(self.structure);
        let empty = if alias_mode {
            sh.alias.is_empty()
        } else {
            sh.tree.is_empty()
        };
        let (tid, winning) = if empty || total <= 0.0 {
            (sh.ready[0], -1.0)
        } else {
            let winning = self.rng.next_f64() * total;
            let sh = &mut self.shards[shard as usize];
            let selected = if alias_mode {
                sh.alias.select(winning).copied()
            } else {
                sh.tree.select(winning).copied()
            };
            let tid = selected.unwrap_or(self.shards[shard as usize].ready[0]);
            (tid, winning)
        };
        let sh = &self.shards[shard as usize];
        let levels = if alias_mode {
            sh.alias.last_probes()
        } else {
            sh.tree.depth()
        };
        let winner = tid.index();
        self.bus.emit(|| EventKind::LotteryDraw {
            structure: if alias_mode { "shard-alias" } else { "shard" },
            entries,
            levels,
            total,
            winning,
            winner,
        });
        self.bus
            .emit(|| EventKind::ShardPick { cpu, shard, stolen });
        if stolen {
            self.steals += 1;
            self.bus.emit(|| EventKind::ShardSteal {
                cpu,
                victim: shard,
                thread: winner,
            });
        }
        {
            let sh = &mut self.shards[shard as usize];
            sh.tree.remove(&tid);
            sh.alias.remove(&tid);
        }
        self.remove_ready(tid);
        if alias_mode {
            for ev in self.shards[shard as usize].alias.take_rebuild_events() {
                self.bus.emit(|| EventKind::StructureRebuild {
                    structure: "alias",
                    clients: ev.clients,
                    stale: ev.stale,
                    rebuild_ns: ev.rebuild_ns,
                });
            }
        }
        let client = self.funding_info(tid).client;
        // The winner starts its quantum: revoke any compensation ticket
        // through the shared hook (which emits the revocation event).
        self.comp
            .on_dispatch(&mut self.ledger, &self.bus, tid, client);
        tid
    }

    /// Checks per-shard effective totals and migrates ready threads from
    /// the heaviest shard to the lightest until the bound holds again.
    fn maybe_rebalance(&mut self) {
        for s in 0..self.shards.len() as u32 {
            self.refresh_shard(s);
        }
        // Sample the per-shard compensation share while the totals are
        // fresh; the aggregator's `lottery_compensation_weight{shard=…}`
        // gauges are fed from exactly these events.
        if self.bus.is_enabled() {
            for s in 0..self.shards.len() as u32 {
                let weight = self.ledger.compensation_shard_weight(s);
                let total = self.effective_total(s);
                self.bus.emit(|| EventKind::ShardCompensation {
                    shard: s,
                    weight,
                    total,
                });
            }
        }
        let mut round = 0u64;
        // Each migration strictly shrinks the heaviest shard, so the
        // total ready count bounds the rounds.
        let max_rounds = self.shards.iter().map(|s| s.ready.len() as u64).sum();
        loop {
            let totals: Vec<f64> = (0..self.shards.len() as u32)
                .map(|s| self.effective_total(s))
                .collect();
            let sum: f64 = totals.iter().sum();
            let mean = sum / totals.len() as f64;
            let (heavy, &max_total) = totals
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one shard");
            if mean <= 0.0 || max_total <= self.imbalance_bound * mean {
                break;
            }
            if round == 0 {
                self.rebalances += 1;
                self.bus.emit(|| EventKind::ShardImbalance {
                    max_total,
                    mean_total: mean,
                });
            }
            round += 1;
            if round > max_rounds || self.shards[heavy].ready.len() <= 1 {
                break;
            }
            let (light, &min_total) = totals
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one shard");
            // Move the ready thread that brings the heavy/light pair
            // closest to their midpoint. Only strict improvements
            // (`0 < v < max - min`) are eligible: anything else would
            // swap the imbalance and oscillate.
            let midpoint = (max_total - min_total) / 2.0;
            let mut choice: Option<(ThreadId, f64)> = None;
            for &tid in &self.shards[heavy].ready {
                let v = self
                    .ledger
                    .cached_client_value(self.funding_info(tid).client)
                    .unwrap_or(0.0);
                if v <= 0.0 || v >= max_total - min_total {
                    continue;
                }
                let distance = (v - midpoint).abs();
                if choice.is_none_or(|(_, best)| distance < (best - midpoint).abs()) {
                    choice = Some((tid, v));
                }
            }
            let Some((tid, _)) = choice else {
                // No single migration can help at this ticket
                // granularity; the bound stays violated until values
                // shift.
                break;
            };
            self.migrate(tid, light as u32);
        }
    }
}

impl Policy for DistributedLottery {
    type Spec = FundingSpec;

    /// Registers a thread, homing it on the least-loaded shard.
    ///
    /// # Panics
    ///
    /// Panics when the spec names a stale currency or a zero amount —
    /// both are harness configuration bugs.
    fn on_spawn(&mut self, tid: ThreadId, spec: FundingSpec) {
        let client = self.ledger.create_client(format!("{tid}"));
        let ticket = self
            .ledger
            .issue_root(spec.currency, spec.amount)
            .expect("invalid funding spec");
        self.ledger
            .fund_client(ticket, client)
            .expect("fresh client and ticket");
        let idx = tid.index() as usize;
        if self.threads.len() <= idx {
            self.threads.resize(idx + 1, None);
            self.home.resize(idx + 1, 0);
        }
        self.threads[idx] = Some(ThreadFunding { client, ticket });
        let home = self.least_loaded_shard();
        self.home[idx] = home;
        self.ledger.assign_dirty_shard(client, home);
        let slot = client.index() as usize;
        if self.client_threads.len() <= slot {
            self.client_threads.resize(slot + 1, None);
        }
        self.client_threads[slot] = Some(tid);
        self.bus.emit(|| EventKind::WeightChange {
            client: client.index(),
            tickets: spec.amount,
            origin: "spawn",
        });
    }

    fn on_exit(&mut self, tid: ThreadId) {
        let funding = self.funding_info(tid);
        let home = self.home[tid.index() as usize];
        if self.remove_ready(tid) {
            let sh = &mut self.shards[home as usize];
            sh.tree.remove(&tid);
            sh.alias.remove(&tid);
        }
        self.client_threads[funding.client.index() as usize] = None;
        self.ledger
            .deactivate_client(funding.client)
            .expect("client liveness");
        self.ledger
            .destroy_client_and_funding(funding.client)
            .expect("client liveness");
        self.threads[tid.index() as usize] = None;
    }

    fn enqueue(&mut self, tid: ThreadId, _now: SimTime) {
        let funding = self.funding_info(tid);
        self.ledger
            .activate_client(funding.client)
            .expect("client liveness");
        self.push_ready(tid);
        // Activation just invalidated the client, so this read revalues
        // precisely the changed subgraph; siblings refresh at their own
        // shard's next pick.
        let value = self
            .ledger
            .cached_client_value(funding.client)
            .unwrap_or(0.0);
        let home = self.home[tid.index() as usize];
        let sh = &mut self.shards[home as usize];
        if self.structure == SelectStructure::Alias {
            sh.alias.insert(tid, value);
        } else {
            sh.tree.insert(tid, value);
        }
    }

    /// A shard-0 lottery — the uniprocessor entry point.
    fn pick(&mut self, now: SimTime) -> Option<ThreadId> {
        self.pick_on(0, now)
    }

    /// A local lottery on the CPU's own shard; steals from the heaviest
    /// foreign shard when the local queue is empty.
    fn pick_on(&mut self, cpu: u32, _now: SimTime) -> Option<ThreadId> {
        let local = cpu % self.shards.len() as u32;
        self.refresh_shard(local);
        let (shard, stolen) = if self.shards[local as usize].ready.is_empty() {
            match self.steal_victim(local) {
                Some(victim) => (victim, true),
                None => return None,
            }
        } else {
            (local, false)
        };
        let tid = self.draw_from(cpu, shard, stolen);
        self.picks_since_check += 1;
        if self.picks_since_check >= self.rebalance_interval && self.shards.len() > 1 {
            self.picks_since_check = 0;
            self.maybe_rebalance();
        }
        Some(tid)
    }

    fn charge(&mut self, tid: ThreadId, used: SimDuration, quantum: SimDuration, why: EndReason) {
        // The shared hook grants a partial-quantum compensation factor and
        // deactivates a blocked client's tickets so shared-currency values
        // redistribute (Section 4.4).
        let client = self.funding_info(tid).client;
        self.comp
            .on_charge(&mut self.ledger, &self.bus, tid, client, used, quantum, why);
    }

    fn quantum(&self) -> SimDuration {
        self.quantum
    }

    fn ready_len(&self) -> usize {
        self.shards.iter().map(|s| s.ready.len()).sum()
    }

    /// Stores the bus and forwards a clone to the ledger, so draw events
    /// and cache/mutation events share one pipeline.
    fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.ledger.set_probe_bus(bus.clone());
        self.bus = bus;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);
    const T2: ThreadId = ThreadId::from_index(2);
    const T3: ThreadId = ThreadId::from_index(3);

    fn base_spec(p: &DistributedLottery, amount: u64) -> FundingSpec {
        FundingSpec::new(p.base_currency(), amount)
    }

    #[test]
    fn spawns_spread_across_shards() {
        let mut p = DistributedLottery::new(1, 2);
        let spec = base_spec(&p, 100);
        for i in 0..4 {
            let tid = ThreadId::from_index(i);
            p.on_spawn(tid, spec);
            p.enqueue(tid, SimTime::ZERO);
        }
        let homes: Vec<u32> = (0..4).map(|i| p.home_of(ThreadId::from_index(i))).collect();
        assert_eq!(homes.iter().filter(|&&h| h == 0).count(), 2);
        assert_eq!(homes.iter().filter(|&&h| h == 1).count(), 2);
        // Dirty ownership follows the home assignment.
        for i in 0..4 {
            let tid = ThreadId::from_index(i);
            assert_eq!(p.ledger().dirty_shard_of(p.client_of(tid)), p.home_of(tid));
        }
    }

    #[test]
    fn local_picks_stay_on_the_cpu_shard() {
        let mut p = DistributedLottery::new(7, 2);
        let spec = base_spec(&p, 100);
        for i in 0..4 {
            let tid = ThreadId::from_index(i);
            p.on_spawn(tid, spec);
            p.enqueue(tid, SimTime::ZERO);
        }
        let w0 = p.pick_on(0, SimTime::ZERO).unwrap();
        let w1 = p.pick_on(1, SimTime::ZERO).unwrap();
        assert_eq!(p.home_of(w0), 0);
        assert_eq!(p.home_of(w1), 1);
        assert_eq!(p.steals(), 0);
    }

    #[test]
    fn empty_shard_steals_from_the_heaviest() {
        let mut p = DistributedLottery::new(7, 2);
        let spec = base_spec(&p, 100);
        p.on_spawn(T0, spec);
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.home_of(T0), 0);
        // CPU 1's shard is empty: it must steal T0 from shard 0.
        assert_eq!(p.pick_on(1, SimTime::ZERO), Some(T0));
        assert_eq!(p.steals(), 1);
        assert_eq!(p.pick_on(1, SimTime::ZERO), None);
    }

    #[test]
    fn proportional_shares_hold_per_shard() {
        let mut p = DistributedLottery::new(42, 1);
        let s0 = base_spec(&p, 300);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        let mut wins = [0u32; 2];
        let n = 20_000;
        for _ in 0..n {
            p.enqueue(T0, SimTime::ZERO);
            p.enqueue(T1, SimTime::ZERO);
            let w = p.pick(SimTime::ZERO).unwrap();
            wins[w.index() as usize] += 1;
            let other = p.pick(SimTime::ZERO).unwrap();
            assert_ne!(w, other);
        }
        let share = f64::from(wins[0]) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn migration_moves_ready_entry_and_dirty_ownership() {
        let mut p = DistributedLottery::new(3, 2);
        let spec = base_spec(&p, 100);
        p.on_spawn(T0, spec);
        p.enqueue(T0, SimTime::ZERO);
        let from = p.home_of(T0);
        let to = 1 - from;
        p.migrate(T0, to);
        assert_eq!(p.home_of(T0), to);
        assert_eq!(p.migrations(), 1);
        assert_eq!(p.ledger().dirty_shard_of(p.client_of(T0)), to);
        let stats = p.shard_stats(to);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.ticket_total, 100.0);
        assert_eq!(p.shard_stats(from).queue_depth, 0);
        // The migrated thread is still drawable from its new home.
        assert_eq!(p.pick_on(to, SimTime::ZERO), Some(T0));
    }

    #[test]
    fn rebalancer_restores_the_imbalance_bound() {
        let mut p = DistributedLottery::new(9, 2);
        p.set_rebalance(1, 1.5);
        let spec = base_spec(&p, 100);
        // Spawn interleaved so both shards start with four threads each...
        for i in 0..8 {
            let tid = ThreadId::from_index(i);
            p.on_spawn(tid, spec);
            p.enqueue(tid, SimTime::ZERO);
        }
        // ...then inflate all of shard 0's threads 10x, violating the
        // bound (4000 vs 400).
        for i in 0..8 {
            let tid = ThreadId::from_index(i);
            if p.home_of(tid) == 0 {
                p.set_funding(tid, 1000).unwrap();
            }
        }
        // The next pick triggers a rebalance check.
        let w = p.pick_on(0, SimTime::ZERO).unwrap();
        assert!(p.rebalances() >= 1, "imbalance went unnoticed");
        assert!(p.migrations() >= 1, "no thread migrated");
        p.enqueue(w, SimTime::ZERO);
        let t0 = p.shard_stats(0).ticket_total;
        let t1 = p.shard_stats(1).ticket_total;
        let mean = (t0 + t1) / 2.0;
        assert!(
            t0.max(t1) <= 1.5 * mean + 1e-9,
            "still imbalanced: {t0} vs {t1}"
        );
    }

    #[test]
    fn ready_ticket_total_conserves_ledger_value() {
        let mut p = DistributedLottery::new(5, 4);
        let shared = p.create_currency("shared", 1000).unwrap();
        p.on_spawn(T0, FundingSpec::new(shared, 100));
        p.on_spawn(T1, FundingSpec::new(shared, 300));
        let base = base_spec(&p, 600);
        p.on_spawn(T2, base);
        p.on_spawn(T3, base_spec(&p, 400));
        for tid in [T0, T1, T2, T3] {
            p.enqueue(tid, SimTime::ZERO);
        }
        // shared is worth 1000 split 1:3, plus 600 + 400 base.
        assert_eq!(p.ready_ticket_total(), 2000.0);
        p.set_funding(T2, 100).unwrap();
        assert_eq!(p.ready_ticket_total(), 1500.0);
    }

    #[test]
    fn exit_cleans_up_shard_state() {
        let mut p = DistributedLottery::new(5, 2);
        let spec = base_spec(&p, 100);
        p.on_spawn(T0, spec);
        p.enqueue(T0, SimTime::ZERO);
        p.on_exit(T0);
        assert_eq!(p.ready_len(), 0);
        assert_eq!(p.ledger().clients().count(), 0);
        assert_eq!(p.ledger().tickets().count(), 0);
        assert_eq!(p.pick_on(0, SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = DistributedLottery::new(1, 0);
    }

    /// Per-shard alias tables must reproduce the per-shard trees' winner
    /// sequence draw for draw: same ledger operations, same slot order,
    /// same RNG discipline — just an O(1) search instead of a descent.
    #[test]
    fn alias_shards_match_tree_shards_exactly() {
        let run = |structure: SelectStructure| -> Vec<ThreadId> {
            let mut p = DistributedLottery::new(20_260_807, 4);
            let shared = p.create_currency("shared", 252_000).unwrap();
            let amounts = [100u64, 200, 300, 400, 500, 600, 700, 800];
            for (i, &amount) in amounts.iter().enumerate() {
                let tid = ThreadId::from_index(i as u32);
                p.on_spawn(tid, FundingSpec::new(shared, amount));
                p.enqueue(tid, SimTime::ZERO);
            }
            p.set_structure(structure);
            let mut winners = Vec::new();
            let mut blocked: Option<ThreadId> = None;
            for step in 0..400u32 {
                let cpu = step % 4;
                let Some(w) = p.pick_on(cpu, SimTime::ZERO) else {
                    continue;
                };
                winners.push(w);
                if step % 2 == 0 {
                    p.charge(
                        w,
                        SimDuration::from_ms(100),
                        SimDuration::from_ms(100),
                        EndReason::QuantumExpired,
                    );
                    p.enqueue(w, SimTime::ZERO);
                } else {
                    p.charge(
                        w,
                        SimDuration::from_ms(50),
                        SimDuration::from_ms(100),
                        EndReason::Blocked,
                    );
                    if let Some(b) = blocked.replace(w) {
                        p.enqueue(b, SimTime::ZERO);
                    }
                }
            }
            winners
        };
        let tree = run(SelectStructure::Tree);
        let alias = run(SelectStructure::Alias);
        assert_eq!(tree, alias);
        assert!(tree.iter().any(|&t| t != tree[0]));
    }

    #[test]
    fn alias_shards_pick_proportionally() {
        let mut p = DistributedLottery::new(42, 1);
        p.set_structure(SelectStructure::Alias);
        assert_eq!(p.structure(), SelectStructure::Alias);
        let s0 = base_spec(&p, 300);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        let mut wins = [0u32; 2];
        let n = 20_000;
        for _ in 0..n {
            p.enqueue(T0, SimTime::ZERO);
            p.enqueue(T1, SimTime::ZERO);
            let w = p.pick(SimTime::ZERO).unwrap();
            wins[w.index() as usize] += 1;
            let other = p.pick(SimTime::ZERO).unwrap();
            assert_ne!(w, other);
        }
        let share = f64::from(wins[0]) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn alias_shards_survive_migration_and_exit() {
        let mut p = DistributedLottery::new(3, 2);
        p.set_structure(SelectStructure::Alias);
        let spec = base_spec(&p, 100);
        for i in 0..4 {
            let tid = ThreadId::from_index(i);
            p.on_spawn(tid, spec);
            p.enqueue(tid, SimTime::ZERO);
        }
        let from = p.home_of(T0);
        let to = 1 - from;
        p.migrate(T0, to);
        assert_eq!(p.home_of(T0), to);
        // The migrated thread is drawable from its new home's alias table.
        let mut seen = false;
        for _ in 0..16 {
            if let Some(w) = p.pick_on(to, SimTime::ZERO) {
                seen |= w == T0;
                p.enqueue(w, SimTime::ZERO);
            }
        }
        assert!(seen, "migrated thread never won on its new shard");
        p.on_exit(T1);
        assert_eq!(p.ready_len(), 3);
    }
}
