//! Decay-usage timesharing — the stand-in for the stock Mach policy.
//!
//! The paper's overhead and fairness comparisons run against the standard
//! Mach timesharing policy, a *decay-usage* scheduler of the family
//! analysed by Hellerstein \[Hel93\]: each thread's priority is depressed in
//! proportion to its recent CPU usage, and usage decays geometrically so
//! old consumption is gradually forgiven. Such schedulers give interactive
//! threads good response times but offer no proportional-share control —
//! which is precisely the gap lottery scheduling fills.
//!
//! Concretely, this implementation mirrors the classic 4.3BSD/Mach scheme:
//!
//! * effective priority = `base + usage / USAGE_SHIFT`, clamped to 31;
//! * `usage` grows by the CPU consumed each quantum;
//! * once per simulated second, `usage *= 5/8` (Mach's decay factor).

use std::collections::VecDeque;

use super::{EndReason, Policy};
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Number of priority levels (0 most urgent).
pub const LEVELS: usize = 32;

/// Microseconds of aged usage per priority-level penalty.
const USAGE_SHIFT: u64 = 50_000;

/// Decay numerator/denominator applied each second: `usage *= 5/8`.
const DECAY_NUM: u64 = 5;
const DECAY_DEN: u64 = 8;

#[derive(Debug, Clone, Copy, Default)]
struct Ts {
    base: u8,
    usage_us: u64,
}

/// Decay-usage timesharing policy.
#[derive(Debug)]
pub struct TimesharePolicy {
    queues: Vec<VecDeque<ThreadId>>,
    state: Vec<Ts>,
    quantum: SimDuration,
    ready: usize,
    last_decay: SimTime,
}

impl TimesharePolicy {
    /// Creates a timesharing policy with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum.
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        Self {
            queues: (0..LEVELS).map(|_| VecDeque::new()).collect(),
            state: Vec::new(),
            quantum,
            ready: 0,
            last_decay: SimTime::ZERO,
        }
    }

    /// The effective priority level a thread would queue at.
    pub fn effective_priority(&self, tid: ThreadId) -> usize {
        let ts = self.state[tid.index() as usize];
        (usize::from(ts.base) + (ts.usage_us / USAGE_SHIFT) as usize).min(LEVELS - 1)
    }

    /// A thread's aged usage, for tests and diagnostics.
    pub fn usage_us(&self, tid: ThreadId) -> u64 {
        self.state[tid.index() as usize].usage_us
    }

    /// Applies the per-second geometric decay for every elapsed second.
    fn decay(&mut self, now: SimTime) {
        let mut elapsed = now.saturating_since(self.last_decay);
        while elapsed >= SimDuration::from_secs(1) {
            for ts in &mut self.state {
                ts.usage_us = ts.usage_us * DECAY_NUM / DECAY_DEN;
            }
            self.last_decay += SimDuration::from_secs(1);
            elapsed -= SimDuration::from_secs(1);
        }
    }
}

impl Policy for TimesharePolicy {
    /// The thread's base priority (0 = most urgent user level).
    type Spec = u8;

    fn on_spawn(&mut self, tid: ThreadId, base: u8) {
        let idx = tid.index() as usize;
        if self.state.len() <= idx {
            self.state.resize(idx + 1, Ts::default());
        }
        self.state[idx] = Ts {
            base: base.min(LEVELS as u8 - 1),
            usage_us: 0,
        };
    }

    fn on_exit(&mut self, tid: ThreadId) {
        for q in &mut self.queues {
            let before = q.len();
            q.retain(|&t| t != tid);
            self.ready -= before - q.len();
        }
    }

    fn enqueue(&mut self, tid: ThreadId, _now: SimTime) {
        let level = self.effective_priority(tid);
        self.queues[level].push_back(tid);
        self.ready += 1;
    }

    fn pick(&mut self, now: SimTime) -> Option<ThreadId> {
        self.decay(now);
        for q in &mut self.queues {
            if let Some(tid) = q.pop_front() {
                self.ready -= 1;
                return Some(tid);
            }
        }
        None
    }

    fn charge(&mut self, tid: ThreadId, used: SimDuration, _q: SimDuration, _why: EndReason) {
        self.state[tid.index() as usize].usage_us += used.as_us();
    }

    fn quantum(&self) -> SimDuration {
        self.quantum
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);

    fn policy() -> TimesharePolicy {
        let mut p = TimesharePolicy::new(SimDuration::from_ms(100));
        p.on_spawn(T0, 12);
        p.on_spawn(T1, 12);
        p
    }

    #[test]
    fn usage_depresses_priority() {
        let mut p = policy();
        assert_eq!(p.effective_priority(T0), 12);
        p.charge(
            T0,
            SimDuration::from_ms(100),
            SimDuration::from_ms(100),
            EndReason::QuantumExpired,
        );
        assert_eq!(p.effective_priority(T0), 14, "100 ms usage = 2 levels");
        assert_eq!(p.effective_priority(T1), 12);
    }

    #[test]
    fn hog_loses_to_light_user() {
        let mut p = policy();
        p.charge(
            T0,
            SimDuration::from_ms(300),
            SimDuration::from_ms(100),
            EndReason::QuantumExpired,
        );
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
    }

    #[test]
    fn decay_forgives_history() {
        let mut p = policy();
        p.charge(
            T0,
            SimDuration::from_secs(1),
            SimDuration::from_ms(100),
            EndReason::QuantumExpired,
        );
        let before = p.usage_us(T0);
        // Ten simulated seconds of decay: usage * (5/8)^10 ≈ 0.9% of it.
        let _ = p.pick(SimTime::from_secs(10));
        let after = p.usage_us(T0);
        assert!(after < before / 100, "{after} vs {before}");
    }

    #[test]
    fn priority_clamps_at_bottom() {
        let mut p = policy();
        p.charge(
            T0,
            SimDuration::from_secs(10),
            SimDuration::from_ms(100),
            EndReason::QuantumExpired,
        );
        assert_eq!(p.effective_priority(T0), LEVELS - 1);
    }

    #[test]
    fn no_proportional_control() {
        // Two equal-base compute-bound threads end up alternating: the one
        // that just ran always has the worse priority. There is no knob for
        // a 2:1 split — the motivating deficiency for lottery scheduling.
        let mut p = policy();
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        let first = p.pick(SimTime::ZERO).unwrap();
        p.charge(
            first,
            SimDuration::from_ms(100),
            SimDuration::from_ms(100),
            EndReason::QuantumExpired,
        );
        p.enqueue(first, SimTime::ZERO);
        let second = p.pick(SimTime::ZERO).unwrap();
        assert_ne!(first, second);
    }
}
