//! A classical fair-share scheduler (Kay & Lauder style).
//!
//! Section 7 contrasts lottery scheduling with "fair share schedulers
//! \[that\] allocate resources so that users get fair machine shares over
//! long periods of time" [Hen84, Kay88]: they monitor CPU usage and
//! "dynamically adjust conventional priorities to push actual usage closer
//! to entitled shares", with the complexity, periodic usage updates, and
//! slow (minutes-scale) convergence the paper criticizes.
//!
//! This implementation follows the classic two-level scheme: every thread
//! belongs to a *user* holding a share allocation; a thread's effective
//! priority is depressed by both its own decayed usage and its user's
//! decayed usage normalized by the user's shares. The decay runs on a
//! periodic tick. Comparing it against the lottery policy (`experiments
//! fairshare`) reproduces the paper's argument: similar steady-state
//! shares, far slower response to change.

use super::{EndReason, Policy};
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Identifies a user (share group) within the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(u32);

impl UserId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Debug, Clone, Copy)]
struct User {
    shares: u64,
    usage_us: f64,
}

#[derive(Debug, Clone, Copy)]
struct Ts {
    user: usize,
    usage_us: f64,
    queued: bool,
    arrival: u64,
}

/// The fair-share policy.
#[derive(Debug)]
pub struct FairSharePolicy {
    users: Vec<User>,
    threads: Vec<Option<Ts>>,
    ready: Vec<ThreadId>,
    quantum: SimDuration,
    /// Decay applied every tick: `usage *= decay`.
    decay: f64,
    tick: SimDuration,
    last_decay: SimTime,
    arrivals: u64,
}

impl FairSharePolicy {
    /// Creates a fair-share policy with the given quantum, the classic
    /// 4-second usage tick, and a 0.9 decay factor.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum.
    pub fn new(quantum: SimDuration) -> Self {
        Self::with_decay(quantum, SimDuration::from_secs(4), 0.9)
    }

    /// Creates a policy with explicit decay parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum or tick, or a decay outside `(0, 1]`.
    pub fn with_decay(quantum: SimDuration, tick: SimDuration, decay: f64) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        assert!(!tick.is_zero(), "tick must be positive");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        Self {
            users: Vec::new(),
            threads: Vec::new(),
            ready: Vec::new(),
            quantum,
            decay,
            tick,
            last_decay: SimTime::ZERO,
            arrivals: 0,
        }
    }

    /// Registers a user holding `shares` machine shares.
    pub fn create_user(&mut self, shares: u64) -> UserId {
        let id = UserId(self.users.len() as u32);
        self.users.push(User {
            shares: shares.max(1),
            usage_us: 0.0,
        });
        id
    }

    /// Changes a user's share allocation.
    pub fn set_shares(&mut self, user: UserId, shares: u64) {
        self.users[user.0 as usize].shares = shares.max(1);
    }

    /// A user's decayed usage, for tests and diagnostics.
    pub fn user_usage(&self, user: UserId) -> f64 {
        self.users[user.0 as usize].usage_us
    }

    /// The scheduling penalty: the user's decayed usage normalized by its
    /// shares. Threads of the same user are ordered by their own usage
    /// (see [`FairSharePolicy::pick`]), so the user-level share governs
    /// inter-user allocation and thread usage only divides a user's slice.
    fn penalty(&self, ts: &Ts) -> f64 {
        let user = self.users[ts.user];
        user.usage_us / user.shares as f64
    }

    fn maybe_decay(&mut self, now: SimTime) {
        while now.saturating_since(self.last_decay) >= self.tick {
            for u in &mut self.users {
                u.usage_us *= self.decay;
            }
            for t in self.threads.iter_mut().flatten() {
                t.usage_us *= self.decay;
            }
            self.last_decay += self.tick;
        }
    }
}

impl Policy for FairSharePolicy {
    /// The user the thread belongs to.
    type Spec = UserId;

    fn on_spawn(&mut self, tid: ThreadId, user: UserId) {
        let idx = tid.index() as usize;
        if self.threads.len() <= idx {
            self.threads.resize(idx + 1, None);
        }
        assert!(
            (user.0 as usize) < self.users.len(),
            "unknown user {user:?}"
        );
        self.threads[idx] = Some(Ts {
            user: user.0 as usize,
            usage_us: 0.0,
            queued: false,
            arrival: 0,
        });
    }

    fn on_exit(&mut self, tid: ThreadId) {
        self.ready.retain(|&t| t != tid);
        self.threads[tid.index() as usize] = None;
    }

    fn enqueue(&mut self, tid: ThreadId, _now: SimTime) {
        let arrivals = {
            self.arrivals += 1;
            self.arrivals
        };
        let ts = self.threads[tid.index() as usize]
            .as_mut()
            .expect("enqueue of unregistered thread");
        debug_assert!(!ts.queued, "double enqueue of {tid}");
        ts.queued = true;
        ts.arrival = arrivals;
        self.ready.push(tid);
    }

    fn pick(&mut self, now: SimTime) -> Option<ThreadId> {
        self.maybe_decay(now);
        // Pick the minimum-penalty thread; ties break by arrival order.
        let (pos, _) = self.ready.iter().enumerate().min_by(|(_, &a), (_, &b)| {
            let ta = self.threads[a.index() as usize].expect("queued thread");
            let tb = self.threads[b.index() as usize].expect("queued thread");
            self.penalty(&ta)
                .partial_cmp(&self.penalty(&tb))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    ta.usage_us
                        .partial_cmp(&tb.usage_us)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(ta.arrival.cmp(&tb.arrival))
        })?;
        let tid = self.ready.swap_remove(pos);
        self.threads[tid.index() as usize]
            .as_mut()
            .expect("queued thread")
            .queued = false;
        Some(tid)
    }

    fn charge(&mut self, tid: ThreadId, used: SimDuration, _q: SimDuration, _why: EndReason) {
        let ts = self.threads[tid.index() as usize]
            .as_mut()
            .expect("charged thread is registered");
        ts.usage_us += used.as_us() as f64;
        self.users[ts.user].usage_us += used.as_us() as f64;
    }

    fn quantum(&self) -> SimDuration {
        self.quantum
    }

    fn ready_len(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);

    fn full(p: &mut FairSharePolicy, tid: ThreadId) {
        p.charge(
            tid,
            SimDuration::from_ms(100),
            SimDuration::from_ms(100),
            EndReason::QuantumExpired,
        );
    }

    #[test]
    fn equal_shares_alternate() {
        let mut p = FairSharePolicy::new(SimDuration::from_ms(100));
        let u0 = p.create_user(100);
        let u1 = p.create_user(100);
        p.on_spawn(T0, u0);
        p.on_spawn(T1, u1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        let mut counts = [0u32; 2];
        for _ in 0..100 {
            let t = p.pick(SimTime::ZERO).unwrap();
            full(&mut p, t);
            p.enqueue(t, SimTime::ZERO);
            counts[t.index() as usize] += 1;
        }
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }

    #[test]
    fn shares_weight_long_run_usage() {
        // 2:1 shares over many quanta -> roughly 2:1 picks.
        let mut p = FairSharePolicy::new(SimDuration::from_ms(100));
        let u0 = p.create_user(200);
        let u1 = p.create_user(100);
        p.on_spawn(T0, u0);
        p.on_spawn(T1, u1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        let mut counts = [0u32; 2];
        let mut now = SimTime::ZERO;
        for _ in 0..600 {
            let t = p.pick(now).unwrap();
            full(&mut p, t);
            now += SimDuration::from_ms(100);
            p.enqueue(t, now);
            counts[t.index() as usize] += 1;
        }
        let ratio = f64::from(counts[0]) / f64::from(counts[1]);
        assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn user_usage_is_pooled_across_threads() {
        // One user with two threads vs one user with one thread, equal
        // shares: the single thread gets ~half the machine, not a third.
        let mut p = FairSharePolicy::new(SimDuration::from_ms(100));
        let many = p.create_user(100);
        let solo = p.create_user(100);
        let t2 = ThreadId::from_index(2);
        p.on_spawn(T0, many);
        p.on_spawn(T1, many);
        p.on_spawn(t2, solo);
        for t in [T0, T1, t2] {
            p.enqueue(t, SimTime::ZERO);
        }
        let mut solo_picks = 0u32;
        let mut now = SimTime::ZERO;
        for _ in 0..300 {
            let t = p.pick(now).unwrap();
            full(&mut p, t);
            now += SimDuration::from_ms(100);
            p.enqueue(t, now);
            if t == t2 {
                solo_picks += 1;
            }
        }
        let share = f64::from(solo_picks) / 300.0;
        assert!((share - 0.5).abs() < 0.08, "solo share {share}");
    }

    #[test]
    fn decay_forgives_history() {
        let mut p =
            FairSharePolicy::with_decay(SimDuration::from_ms(100), SimDuration::from_secs(1), 0.5);
        let u = p.create_user(100);
        p.on_spawn(T0, u);
        full(&mut p, T0);
        let before = p.user_usage(u);
        p.enqueue(T0, SimTime::ZERO);
        let _ = p.pick(SimTime::from_secs(10));
        assert!(p.user_usage(u) < before / 100.0);
    }

    #[test]
    #[should_panic(expected = "unknown user")]
    fn unknown_user_rejected() {
        let mut p = FairSharePolicy::new(SimDuration::from_ms(100));
        p.on_spawn(T0, UserId(7));
    }
}
