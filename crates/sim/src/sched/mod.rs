//! Scheduling policies.
//!
//! The kernel is policy-agnostic: it owns threads, time, and IPC, and asks
//! a [`Policy`] which ready thread to dispatch next. The lottery scheduler
//! and every baseline the paper compares against implement this trait:
//!
//! * [`lottery::LotteryPolicy`] — the paper's mechanism, with currencies,
//!   compensation tickets, and RPC ticket transfers.
//! * [`timeshare::TimesharePolicy`] — a decay-usage timesharing scheduler
//!   standing in for the stock Mach policy.
//! * [`fairshare::FairSharePolicy`] — a classical two-level fair-share
//!   scheduler (Section 7's [Hen84, Kay88] comparison point).
//! * [`fixed::FixedPriorityPolicy`] — absolute priorities.
//! * [`rr::RoundRobinPolicy`] — plain FIFO round-robin.
//! * [`stride::StridePolicy`] — deterministic stride scheduling (the
//!   authors' follow-up work), used as the de-randomization ablation.

pub mod comp;
pub mod distributed;
pub mod fairshare;
pub mod fixed;
pub mod lottery;
pub mod rr;
pub mod stride;
pub mod timeshare;

use lottery_obs::ProbeBus;

use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Identifies a kernel mutex within a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(u32);

impl LockId {
    /// Builds a lock id from a raw index.
    pub const fn from_index(index: u32) -> Self {
        Self(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// Why a thread's run on the CPU ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// The quantum was fully consumed; the kernel re-enqueues the thread.
    QuantumExpired,
    /// The thread yielded voluntarily with quantum left; the kernel
    /// re-enqueues it. Lottery scheduling grants a compensation ticket.
    Yielded,
    /// The thread blocked (sleep, RPC, receive) with quantum left.
    Blocked,
    /// The thread exited.
    Exited,
}

impl EndReason {
    /// Stable wire name, used by trace exporters and `lotteryctl`.
    pub fn as_str(self) -> &'static str {
        match self {
            EndReason::QuantumExpired => "quantum-expired",
            EndReason::Yielded => "yielded",
            EndReason::Blocked => "blocked",
            EndReason::Exited => "exited",
        }
    }

    /// Parses a wire name produced by [`EndReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quantum-expired" => Some(EndReason::QuantumExpired),
            "yielded" => Some(EndReason::Yielded),
            "blocked" => Some(EndReason::Blocked),
            "exited" => Some(EndReason::Exited),
            _ => None,
        }
    }
}

/// A scheduling policy.
///
/// The kernel guarantees the calling discipline: `on_spawn` precedes any
/// other call for a thread; `enqueue` is called exactly once per
/// ready-transition; `pick` removes the returned thread from the ready set;
/// `charge` follows every run with the consumed CPU time.
pub trait Policy {
    /// Per-thread configuration supplied at spawn (ticket funding,
    /// priority, ...).
    type Spec;

    /// Registers a new thread.
    fn on_spawn(&mut self, tid: ThreadId, spec: Self::Spec);

    /// Unregisters an exited thread (after its final `charge`).
    fn on_exit(&mut self, tid: ThreadId);

    /// Adds a thread to the ready set. `now` is when it became ready.
    fn enqueue(&mut self, tid: ThreadId, now: SimTime);

    /// Chooses and removes the next thread to run, or `None` when idle.
    fn pick(&mut self, now: SimTime) -> Option<ThreadId>;

    /// Chooses the next thread for a specific CPU.
    ///
    /// Policies with per-CPU run queues (the distributed lottery) override
    /// this to hold a local lottery on the CPU's own shard; the default
    /// ignores the CPU and delegates to the shared [`Policy::pick`].
    fn pick_on(&mut self, cpu: u32, now: SimTime) -> Option<ThreadId> {
        let _ = cpu;
        self.pick(now)
    }

    /// Accounts a completed run of `used` CPU time out of `quantum`.
    ///
    /// Called once per dispatch, before any re-`enqueue`.
    fn charge(&mut self, tid: ThreadId, used: SimDuration, quantum: SimDuration, why: EndReason);

    /// The scheduling quantum.
    fn quantum(&self) -> SimDuration;

    /// Ticket transfer on RPC delivery: `from` (blocked client) lends its
    /// rights to `to` (server thread). Default: conventional schedulers
    /// have no transfer mechanism, so this is a no-op.
    fn transfer(&mut self, from: ThreadId, to: ThreadId) {
        let _ = (from, to);
    }

    /// Ends the transfer `from` → `to` on reply. Default no-op.
    fn untransfer(&mut self, from: ThreadId, to: ThreadId) {
        let _ = (from, to);
    }

    /// Number of threads currently in the ready set.
    fn ready_len(&self) -> usize;

    /// Creates a kernel mutex scheduled by this policy.
    ///
    /// The lottery policy hands out lottery-scheduled mutexes (Section
    /// 6.1); round-robin provides FIFO mutexes as a baseline.
    ///
    /// # Panics
    ///
    /// The default implementation panics: most baseline policies do not
    /// define a lock-scheduling discipline.
    fn create_lock(&mut self) -> LockId {
        unimplemented!("this policy does not support kernel mutexes")
    }

    /// Attempts to acquire `lock` for the running thread `tid`.
    ///
    /// Returns `true` on acquisition; `false` parks the thread as a
    /// waiter (the kernel blocks it until [`Policy::unlock`] names it).
    ///
    /// # Panics
    ///
    /// The default implementation panics (no lock support).
    fn lock(&mut self, tid: ThreadId, lock: LockId) -> bool {
        let _ = (tid, lock);
        unimplemented!("this policy does not support kernel mutexes")
    }

    /// Releases `lock`, held by `tid`; returns the next owner to wake, if
    /// any waiter was parked.
    ///
    /// # Panics
    ///
    /// The default implementation panics (no lock support); every policy
    /// implementing [`Policy::lock`] must implement this consistently.
    fn unlock(&mut self, tid: ThreadId, lock: LockId) -> Option<ThreadId> {
        let _ = (tid, lock);
        unimplemented!("this policy does not support kernel mutexes")
    }

    /// Removes `tid` from every lock's waiter list (its thread was
    /// killed). Default no-op for policies without lock support.
    fn cancel_lock_waits(&mut self, tid: ThreadId) {
        let _ = tid;
    }

    /// Attaches a probe bus for draw/compensation observability.
    ///
    /// Default no-op: baseline policies have nothing to report. The
    /// lottery policy forwards the bus to its ledger too.
    fn set_probe_bus(&mut self, bus: ProbeBus) {
        let _ = bus;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Policy for Nop {
        type Spec = ();
        fn on_spawn(&mut self, _: ThreadId, _: ()) {}
        fn on_exit(&mut self, _: ThreadId) {}
        fn enqueue(&mut self, _: ThreadId, _: SimTime) {}
        fn pick(&mut self, _: SimTime) -> Option<ThreadId> {
            None
        }
        fn charge(&mut self, _: ThreadId, _: SimDuration, _: SimDuration, _: EndReason) {}
        fn quantum(&self) -> SimDuration {
            SimDuration::from_ms(100)
        }
        fn ready_len(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_transfer_hooks_are_noops() {
        let mut p = Nop;
        p.transfer(ThreadId::from_index(0), ThreadId::from_index(1));
        p.untransfer(ThreadId::from_index(0), ThreadId::from_index(1));
        assert_eq!(p.pick(SimTime::ZERO), None);
    }
}
