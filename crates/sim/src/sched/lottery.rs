//! The lottery scheduling policy (Sections 2–4 of the paper).
//!
//! Each thread is a [`lottery_core`] client funded by one ticket
//! denominated in a configurable currency. Every dispatch decision holds a
//! lottery: a winning value is drawn between zero and the total base-unit
//! value of the ready threads, and the run queue is walked accumulating
//! each thread's value until the winner is found — exactly the prototype's
//! procedure (Section 4.4).
//!
//! The policy implements the full mechanism set:
//!
//! * **currencies** — spawn threads into any currency of an arbitrary
//!   acyclic funding graph (Figure 3);
//! * **compensation tickets** — a thread that blocked or yielded with
//!   quantum remaining competes with its value inflated by `q/used` until
//!   its next dispatch (Section 4.5);
//! * **ticket transfers** — RPC clients fund the server thread for the
//!   duration of the call (Section 4.6);
//! * **dynamic inflation** — [`LotteryPolicy::set_funding`] adjusts a
//!   thread's ticket in place (Section 5.2's Monte-Carlo control).

use std::collections::HashMap;
use std::time::Instant;

use lottery_core::client::ClientId;
use lottery_core::currency::CurrencyId;
use lottery_core::errors::Result;
use lottery_core::ledger::Ledger;
use lottery_core::lottery::alias::AliasLottery;
use lottery_core::lottery::index::DenseIndex;
use lottery_core::lottery::tree::TreeLottery;
use lottery_core::lottery::TicketPool;
use lottery_core::mutex::{TicketMutex, WaiterFunding};
use lottery_core::rng::{ParkMiller, SchedRng};
use lottery_core::ticket::TicketId;
use lottery_core::transfer::{lend, Transfer, TransferTarget};
use lottery_obs::{EventKind, ProbeBus};

use super::comp::CompensationHook;
use super::{EndReason, LockId, Policy};
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Ticket funding for a spawned thread.
#[derive(Debug, Clone, Copy)]
pub struct FundingSpec {
    /// The currency the thread's funding ticket is denominated in.
    pub currency: CurrencyId,
    /// The ticket amount.
    pub amount: u64,
}

impl FundingSpec {
    /// A funding of `amount` tickets in `currency`.
    pub fn new(currency: CurrencyId, amount: u64) -> Self {
        Self { currency, amount }
    }
}

/// Which winner-search structure the policy uses (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectStructure {
    /// The prototype's list walk: every pick values the whole run queue
    /// through the currency graph — always exact.
    #[default]
    List,
    /// A partial-sum tree over client values: `O(log n)` picks, "suitable
    /// as the basis of a distributed lottery scheduler".
    ///
    /// Exact: leaf weights are fed by the ledger's incremental valuation
    /// cache, and every ledger mutation queues invalidated clients on a
    /// dirty list the policy drains before each draw — so even
    /// shared-currency siblings (whose values shift when a co-holder
    /// blocks or is granted compensation) are revalued before they can
    /// influence a lottery. For a fixed seed, tree picks reproduce the
    /// list walk's winner sequence whenever client values are exactly
    /// representable.
    Tree,
    /// An order-preserving alias-cell table: O(1) expected picks at any
    /// population, patched incrementally from the same dirty-client queue
    /// the tree drains.
    ///
    /// Exact on the same terms as the tree: the table snapshots the ready
    /// queue's prefix sums and overlays slots whose compensated value
    /// drifted from the snapshot, comparing exactly the running sums the
    /// list walk compares — so for a fixed seed, alias picks reproduce
    /// the list walk's winner sequence whenever client values are exactly
    /// representable. A slot re-bucketed past a power-of-two weight
    /// boundary counts toward a stale fraction that triggers a full
    /// (amortized O(1)) rebuild.
    Alias,
}

#[derive(Debug, Clone, Copy)]
struct ThreadFunding {
    client: ClientId,
    ticket: TicketId,
    currency: CurrencyId,
}

/// The lottery scheduling policy.
pub struct LotteryPolicy {
    ledger: Ledger,
    rng: ParkMiller,
    quantum: SimDuration,
    /// Per-thread funding, indexed by thread id.
    threads: Vec<Option<ThreadFunding>>,
    /// The ready queue, in scan order. Removal swap-removes so the order
    /// always mirrors the tree lottery's leaf-slot order.
    ready: Vec<ThreadId>,
    /// Membership index: thread id -> position in `ready`, `None` when not
    /// queued. Replaces `O(n)` ready-queue scans.
    ready_pos: Vec<Option<u32>>,
    /// Reverse map from ledger clients to threads (flat, indexed by the
    /// client's arena slot), for routing the ledger's dirty-client
    /// notifications back to structure slots without hashing.
    client_threads: Vec<Option<ThreadId>>,
    /// Reusable drain buffer: no allocation per pick.
    dirty_buf: Vec<ClientId>,
    /// Reusable list-walk valuation buffer: no allocation per pick.
    list_values: Vec<f64>,
    /// Outstanding RPC transfers, keyed by (client, server).
    transfers: HashMap<(ThreadId, ThreadId), Transfer>,
    /// Shared compensation grant/revoke policy (Section 4.5).
    comp: CompensationHook,
    /// Lotteries held (for overhead accounting).
    lotteries: u64,
    structure: SelectStructure,
    /// Cached-weight mirror of the ready queue, used in tree mode. Thread
    /// ids are dense, so the slot index is a flat table, not a hash map.
    tree: TreeLottery<ThreadId, f64, DenseIndex>,
    /// Cached-weight mirror of the ready queue, used in alias mode.
    alias: AliasLottery<ThreadId, DenseIndex>,
    /// Kernel mutexes (Section 6.1), scheduled by handoff lotteries.
    locks: Vec<TicketMutex>,
    /// Probe bus for per-draw observability (disabled by default).
    bus: ProbeBus,
}

impl LotteryPolicy {
    /// Creates a lottery policy with the paper's 100 ms Mach quantum.
    pub fn new(seed: u32) -> Self {
        Self::with_quantum(seed, SimDuration::from_ms(100))
    }

    /// Creates a lottery policy with an explicit quantum.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum.
    pub fn with_quantum(seed: u32, quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        Self {
            ledger: Ledger::new(),
            rng: ParkMiller::new(seed),
            quantum,
            threads: Vec::new(),
            ready: Vec::new(),
            ready_pos: Vec::new(),
            client_threads: Vec::new(),
            dirty_buf: Vec::new(),
            list_values: Vec::new(),
            transfers: HashMap::new(),
            comp: CompensationHook::new(),
            lotteries: 0,
            structure: SelectStructure::List,
            tree: TreeLottery::with_index(1),
            alias: AliasLottery::with_index(0),
            locks: Vec::new(),
            bus: ProbeBus::disabled(),
        }
    }

    /// Selects the winner-search structure (Section 4.2).
    ///
    /// May be called at any point, even mid-run with threads queued: the
    /// mirror structure (partial-sum tree or alias table) is rebuilt from
    /// the ready queue (in queue order, so slot order and scan order stay
    /// mirrored) with exact values from the ledger's valuation cache.
    /// Emits a [`EventKind::StructureRebuild`] describing the rebuild.
    pub fn set_structure(&mut self, structure: SelectStructure) {
        let start = Instant::now();
        self.structure = structure;
        self.tree = TreeLottery::with_index(self.ready.len());
        self.alias = AliasLottery::with_index(self.ready.len());
        if structure != SelectStructure::List {
            // Every ready weight is computed fresh below; notifications
            // accumulated while the mirror was dormant are obsolete.
            let mut dirty = std::mem::take(&mut self.dirty_buf);
            self.ledger.drain_dirty_clients_into(&mut dirty);
            self.dirty_buf = dirty;
            for i in 0..self.ready.len() {
                let tid = self.ready[i];
                let client = self.funding_info(tid).client;
                let value = self.ledger.cached_client_value(client).unwrap_or(0.0);
                match structure {
                    SelectStructure::Tree => self.tree.insert(tid, value),
                    SelectStructure::Alias => self.alias.insert(tid, value),
                    SelectStructure::List => unreachable!(),
                }
            }
        }
        if structure == SelectStructure::Alias {
            // Snapshot once at the end: bulk-load rebuild churn collapses
            // into one definitive table over the final ready order.
            self.alias.rebuild();
            self.alias.take_rebuild_events();
        }
        let clients = self.ready.len() as u32;
        let rebuild_ns = start.elapsed().as_nanos() as u64;
        self.bus.emit(|| EventKind::StructureRebuild {
            structure: Self::structure_tag(structure),
            clients,
            stale: 0,
            rebuild_ns,
        });
    }

    fn structure_tag(structure: SelectStructure) -> &'static str {
        match structure {
            SelectStructure::List => "list",
            SelectStructure::Tree => "tree",
            SelectStructure::Alias => "alias",
        }
    }

    /// Forwards the alias table's accumulated rebuild reports to the
    /// probe bus (no-ops — and never allocates — when none are pending).
    fn emit_alias_rebuilds(&mut self) {
        for ev in self.alias.take_rebuild_events() {
            self.bus.emit(|| EventKind::StructureRebuild {
                structure: "alias",
                clients: ev.clients,
                stale: ev.stale,
                rebuild_ns: ev.rebuild_ns,
            });
        }
    }

    /// The active winner-search structure.
    pub fn structure(&self) -> SelectStructure {
        self.structure
    }

    /// Whether a thread is on the ready queue (`O(1)`).
    fn is_ready(&self, tid: ThreadId) -> bool {
        self.ready_pos
            .get(tid.index() as usize)
            .copied()
            .flatten()
            .is_some()
    }

    /// Appends a thread to the ready queue, indexing its position.
    fn push_ready(&mut self, tid: ThreadId) {
        let idx = tid.index() as usize;
        if self.ready_pos.len() <= idx {
            self.ready_pos.resize(idx + 1, None);
        }
        debug_assert!(self.ready_pos[idx].is_none(), "double enqueue of {tid}");
        self.ready_pos[idx] = Some(self.ready.len() as u32);
        self.ready.push(tid);
    }

    /// Removes a thread from the ready queue in `O(1)`.
    ///
    /// Swap-removes — the same motion [`TreeLottery`]'s removal applies to
    /// its leaf slots — so ready order and tree slot order stay identical
    /// and list/tree lotteries walk clients in the same order.
    fn remove_ready(&mut self, tid: ThreadId) -> bool {
        let idx = tid.index() as usize;
        let Some(pos) = self.ready_pos.get(idx).copied().flatten() else {
            return false;
        };
        let pos = pos as usize;
        self.ready.swap_remove(pos);
        self.ready_pos[idx] = None;
        if pos < self.ready.len() {
            let moved = self.ready[pos];
            self.ready_pos[moved.index() as usize] = Some(pos as u32);
        }
        true
    }

    /// Refreshes mirror-structure weights (tree leaves or alias slots)
    /// for every client the ledger reports as invalidated since the last
    /// draw.
    ///
    /// This is what makes tree and alias modes *exact*: any mutation
    /// anywhere in the currency graph — a sibling blocking, a
    /// compensation grant, an RPC transfer — queues precisely the
    /// affected clients, and their slots are revalued (incrementally,
    /// through the cache) before the draw.
    fn refresh_dirty_weights(&mut self) {
        let mut dirty = std::mem::take(&mut self.dirty_buf);
        self.ledger.drain_dirty_clients_into(&mut dirty);
        if !dirty.is_empty() {
            // One batch per dispatch decision: the whole queue is drained
            // into the reusable scratch buffer above (ascending client-id
            // order) and revalued in a single pass.
            let depth = dirty.len() as u32;
            self.bus.emit(|| EventKind::DirtyBatch { shard: 0, depth });
        }
        for &client in &dirty {
            let Some(tid) = self
                .client_threads
                .get(client.index() as usize)
                .copied()
                .flatten()
            else {
                continue;
            };
            if !self.is_ready(tid) {
                continue;
            }
            let value = self.ledger.cached_client_value(client).unwrap_or(0.0);
            match self.structure {
                SelectStructure::Tree => {
                    self.tree.set_weight(&tid, value);
                }
                SelectStructure::Alias => {
                    self.alias.set_weight(&tid, value);
                }
                SelectStructure::List => {}
            }
        }
        self.dirty_buf = dirty;
    }

    /// Disables compensation tickets — the Section 4.5 ablation, which
    /// reproduces the anomaly where an interactive thread receives far
    /// less than its entitled share.
    pub fn set_compensation_enabled(&mut self, enabled: bool) {
        self.comp.set_enabled(enabled);
    }

    /// The base currency of this policy's ledger.
    pub fn base_currency(&self) -> CurrencyId {
        self.ledger.base()
    }

    /// Creates a currency backed by `amount` base-currency tickets.
    pub fn create_currency(&mut self, name: &str, amount: u64) -> Result<CurrencyId> {
        let cur = self.ledger.create_currency(name)?;
        let backing = self.ledger.issue_root(self.ledger.base(), amount)?;
        self.ledger.fund_currency(backing, cur)?;
        Ok(cur)
    }

    /// Creates a currency backed by `amount` tickets of `parent` —
    /// building deeper Figure 3 style graphs.
    pub fn create_subcurrency(
        &mut self,
        name: &str,
        parent: CurrencyId,
        amount: u64,
    ) -> Result<CurrencyId> {
        let cur = self.ledger.create_currency(name)?;
        let backing = self.ledger.issue_root(parent, amount)?;
        self.ledger.fund_currency(backing, cur)?;
        Ok(cur)
    }

    /// Changes the face amount of a thread's funding ticket — dynamic
    /// ticket inflation/deflation (Section 3.2).
    ///
    /// Takes effect at the very next lottery.
    pub fn set_funding(&mut self, tid: ThreadId, amount: u64) -> Result<()> {
        let funding = self.funding_info(tid);
        // Affected tree weights are refreshed lazily, from the ledger's
        // dirty-client queue, at the next pick.
        self.ledger.set_amount(funding.ticket, amount)?;
        self.bus.emit(|| EventKind::WeightChange {
            client: funding.client.index(),
            tickets: amount,
            origin: "set-funding",
        });
        Ok(())
    }

    /// The face amount of a thread's funding ticket.
    pub fn funding(&self, tid: ThreadId) -> u64 {
        self.ledger
            .ticket(self.funding_info(tid).ticket)
            .map(|t| t.amount())
            .unwrap_or(0)
    }

    /// The ledger client backing a thread.
    pub fn client_of(&self, tid: ThreadId) -> ClientId {
        self.funding_info(tid).client
    }

    /// A thread's current value in base units (including compensation).
    pub fn value_of(&self, tid: ThreadId) -> f64 {
        self.ledger
            .cached_client_value(self.funding_info(tid).client)
            .unwrap_or(0.0)
    }

    /// Read access to the underlying ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Write access to the underlying ledger, for experiments that
    /// manipulate the currency graph directly.
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Number of lotteries held so far.
    pub fn lotteries_held(&self) -> u64 {
        self.lotteries
    }

    /// The Park–Miller state the next draw will consume — the replay
    /// checkpoint. Passing this value as the seed of a fresh policy
    /// reproduces the remaining draw stream exactly (seeds in
    /// `[1, 2^31 - 2]` are taken verbatim).
    pub fn rng_state(&self) -> u32 {
        self.rng.state()
    }

    /// Whether compensation tickets are enabled (replay stamps capture
    /// this switch).
    pub fn compensation_enabled(&self) -> bool {
        self.comp.enabled()
    }

    fn funding_info(&self, tid: ThreadId) -> ThreadFunding {
        self.threads
            .get(tid.index() as usize)
            .copied()
            .flatten()
            .expect("thread not registered with the lottery policy")
    }
}

impl Policy for LotteryPolicy {
    type Spec = FundingSpec;

    /// Registers a thread.
    ///
    /// # Panics
    ///
    /// Panics when the spec names a stale currency or a zero amount —
    /// both are harness configuration bugs.
    fn on_spawn(&mut self, tid: ThreadId, spec: FundingSpec) {
        let client = self.ledger.create_client(format!("{tid}"));
        let ticket = self
            .ledger
            .issue_root(spec.currency, spec.amount)
            .expect("invalid funding spec");
        self.ledger
            .fund_client(ticket, client)
            .expect("fresh client and ticket");
        let idx = tid.index() as usize;
        if self.threads.len() <= idx {
            self.threads.resize(idx + 1, None);
        }
        self.threads[idx] = Some(ThreadFunding {
            client,
            ticket,
            currency: spec.currency,
        });
        let slot = client.index() as usize;
        if self.client_threads.len() <= slot {
            self.client_threads.resize(slot + 1, None);
        }
        self.client_threads[slot] = Some(tid);
        self.bus.emit(|| EventKind::WeightChange {
            client: client.index(),
            tickets: spec.amount,
            origin: "spawn",
        });
    }

    fn on_exit(&mut self, tid: ThreadId) {
        let funding = self.funding_info(tid);
        self.remove_ready(tid);
        self.tree.remove(&tid);
        self.alias.remove(&tid);
        self.client_threads[funding.client.index() as usize] = None;
        self.ledger
            .deactivate_client(funding.client)
            .expect("client liveness");
        self.ledger
            .destroy_client_and_funding(funding.client)
            .expect("client liveness");
        self.threads[tid.index() as usize] = None;
    }

    fn enqueue(&mut self, tid: ThreadId, _now: SimTime) {
        let funding = self.funding_info(tid);
        self.ledger
            .activate_client(funding.client)
            .expect("client liveness");
        self.push_ready(tid);
        if self.structure != SelectStructure::List {
            // Exact: activation just invalidated the client (and any
            // shared-currency siblings, refreshed at the next pick), so
            // this read revalues precisely the changed subgraph.
            let value = self
                .ledger
                .cached_client_value(funding.client)
                .unwrap_or(0.0);
            match self.structure {
                SelectStructure::Tree => self.tree.insert(tid, value),
                SelectStructure::Alias => self.alias.insert(tid, value),
                SelectStructure::List => unreachable!(),
            }
        }
    }

    fn pick(&mut self, _now: SimTime) -> Option<ThreadId> {
        if self.ready.is_empty() {
            return None;
        }
        self.lotteries += 1;
        let entries = self.ready.len() as u32;
        let tid = match self.structure {
            SelectStructure::Tree => {
                // Settle pending invalidations, then an O(log n) descent
                // over the partial-sum tree; degenerate to FIFO when every
                // weight is zero. Spelled out (rather than `tree.draw`) so
                // the draw can be observed; the RNG stream is
                // bit-identical — a winning value is consumed exactly when
                // `draw` would consume one.
                self.refresh_dirty_weights();
                let total = self.tree.total();
                let (tid, winning) = if self.tree.is_empty() || total <= 0.0 {
                    (self.ready[0], -1.0)
                } else {
                    let winning = self.rng.next_f64() * total;
                    let tid = match self.tree.select(winning) {
                        Some(&tid) => tid,
                        None => self.ready[0],
                    };
                    (tid, winning)
                };
                let levels = self.tree.depth();
                let winner = tid.index();
                self.bus.emit(|| EventKind::LotteryDraw {
                    structure: "tree",
                    entries,
                    levels,
                    total,
                    winning,
                    winner,
                });
                self.tree.remove(&tid);
                self.remove_ready(tid);
                tid
            }
            SelectStructure::Alias => {
                // Same RNG discipline as the tree branch, with an O(1)
                // expected cell lookup in place of the log-depth descent.
                self.refresh_dirty_weights();
                let total = self.alias.total();
                let (tid, winning) = if self.alias.is_empty() || total <= 0.0 {
                    (self.ready[0], -1.0)
                } else {
                    let winning = self.rng.next_f64() * total;
                    let tid = match self.alias.select(winning) {
                        Some(&tid) => tid,
                        None => self.ready[0],
                    };
                    (tid, winning)
                };
                // For the alias table, "levels" is the search effort of
                // this draw: overlay probes plus guide-cell scan steps.
                let levels = self.alias.last_probes();
                let winner = tid.index();
                self.bus.emit(|| EventKind::LotteryDraw {
                    structure: "alias",
                    entries,
                    levels,
                    total,
                    winning,
                    winner,
                });
                self.alias.remove(&tid);
                self.remove_ready(tid);
                self.emit_alias_rebuilds();
                tid
            }
            SelectStructure::List => {
                // Value every ready client via the incremental cache: a
                // warm read per client, plus revalidation of whatever the
                // ledger invalidated since the last pick. The valuation
                // buffer is policy-owned scratch — no per-pick allocation.
                let mut values = std::mem::take(&mut self.list_values);
                values.clear();
                values.extend(self.ready.iter().map(|&t| {
                    let client = self.threads[t.index() as usize]
                        .expect("ready thread is registered")
                        .client;
                    self.ledger.cached_client_value(client).unwrap_or(0.0)
                }));
                let total: f64 = values.iter().sum();

                let (index, winning) = if total <= 0.0 {
                    // Every ready client is worthless (e.g. an unfunded
                    // currency). Degenerate to FIFO so the machine still
                    // makes progress.
                    (0, -1.0)
                } else {
                    // Figure 1: draw a winning value, walk the run queue
                    // summing client values in base units until the sum
                    // exceeds it.
                    let winning = self.rng.next_f64() * total;
                    let mut sum = 0.0;
                    let mut chosen = self.ready.len() - 1;
                    for (i, &v) in values.iter().enumerate() {
                        sum += v;
                        if winning < sum {
                            chosen = i;
                            break;
                        }
                    }
                    (chosen, winning)
                };
                self.list_values = values;

                let tid = self.ready[index];
                let winner = tid.index();
                // For the list walk, "levels" is the entries scanned
                // before the winner was found.
                let levels = index as u32 + 1;
                self.bus.emit(|| EventKind::LotteryDraw {
                    structure: "list",
                    entries,
                    levels,
                    total,
                    winning,
                    winner,
                });
                self.remove_ready(tid);
                tid
            }
        };
        let funding = self.funding_info(tid);
        // The winner starts its quantum: revoke any compensation ticket
        // through the shared hook (which emits the revocation event).
        self.comp
            .on_dispatch(&mut self.ledger, &self.bus, tid, funding.client);
        Some(tid)
    }

    fn charge(&mut self, tid: ThreadId, used: SimDuration, quantum: SimDuration, why: EndReason) {
        // The shared hook grants a partial-quantum compensation factor and
        // deactivates a blocked client's tickets so shared-currency values
        // redistribute (Section 4.4).
        let client = self.funding_info(tid).client;
        self.comp
            .on_charge(&mut self.ledger, &self.bus, tid, client, used, quantum, why);
    }

    fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// Lends the blocked client's ticket value to the server thread
    /// (Section 4.6: "creating a new ticket denominated in the client's
    /// currency" to fund the server).
    fn transfer(&mut self, from: ThreadId, to: ThreadId) {
        let from_funding = self.funding_info(from);
        let to_funding = self.funding_info(to);
        let amount = self
            .ledger
            .ticket(from_funding.ticket)
            .map(|t| t.amount())
            .unwrap_or(0);
        if amount == 0 {
            return;
        }
        let transfer = lend(
            &mut self.ledger,
            from_funding.currency,
            amount,
            TransferTarget::Client(to_funding.client),
        )
        .expect("transfer endpoints are live");
        if let Some(stale) = self.transfers.insert((from, to), transfer) {
            // A client cannot have two outstanding calls to one server,
            // but unwind defensively rather than leak funding.
            let _ = stale.repay(&mut self.ledger);
        }
        // The server's gained funding reaches its tree leaf through the
        // ledger's dirty-client queue at the next pick.
    }

    /// Destroys the transfer ticket on reply.
    fn untransfer(&mut self, from: ThreadId, to: ThreadId) {
        if let Some(transfer) = self.transfers.remove(&(from, to)) {
            transfer
                .repay(&mut self.ledger)
                .expect("transfer ticket is live");
        }
    }

    fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Stores the bus and forwards a clone to the ledger, so draw events
    /// and cache/mutation events share one pipeline.
    fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.ledger.set_probe_bus(bus.clone());
        self.bus = bus;
    }

    /// Creates a lottery-scheduled kernel mutex: a mutex currency plus an
    /// inheritance ticket (Section 6.1, Figure 10).
    fn create_lock(&mut self) -> LockId {
        let id = LockId::from_index(self.locks.len() as u32);
        let mutex = TicketMutex::new(&mut self.ledger, &format!("kernel-lock{}", id.index()))
            .expect("fresh mutex currency");
        self.locks.push(mutex);
        id
    }

    /// Acquires, or parks the thread as a waiter funding the mutex
    /// currency with a transfer denominated in its own funding currency.
    fn lock(&mut self, tid: ThreadId, lock: LockId) -> bool {
        let funding = self.funding_info(tid);
        let amount = self
            .ledger
            .ticket(funding.ticket)
            .map(|t| t.amount())
            .unwrap_or(1)
            .max(1);
        let waiter = WaiterFunding {
            currency: funding.currency,
            amount,
        };
        self.locks[lock.index() as usize]
            .acquire(&mut self.ledger, funding.client, waiter)
            .expect("lock endpoints are live")
    }

    /// Cancels the killed thread's lock waits, repaying its transfers.
    fn cancel_lock_waits(&mut self, tid: ThreadId) {
        let client = self.funding_info(tid).client;
        for lock in &mut self.locks {
            let _ = lock.cancel(&mut self.ledger, client);
        }
    }

    /// Releases and holds the handoff lottery among the waiters, weighted
    /// by their transferred funding; the winner's transfer is repaid and
    /// it inherits the mutex's inheritance ticket.
    fn unlock(&mut self, tid: ThreadId, lock: LockId) -> Option<ThreadId> {
        let client = self.funding_info(tid).client;
        let winner = self.locks[lock.index() as usize]
            .release(&mut self.ledger, client, &mut self.rng)
            .expect("release by the holder");
        winner.map(|w| {
            // Map the winning client back to its thread id.
            self.threads
                .iter()
                .position(|f| f.map(|f| f.client) == Some(w))
                .map(|i| ThreadId::from_index(i as u32))
                .expect("winner is a registered thread")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);
    const T2: ThreadId = ThreadId::from_index(2);

    fn base_spec(policy: &LotteryPolicy, amount: u64) -> FundingSpec {
        FundingSpec::new(policy.base_currency(), amount)
    }

    #[test]
    fn picks_proportionally() {
        let mut p = LotteryPolicy::new(42);
        let s0 = base_spec(&p, 300);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        let mut wins = [0u32; 2];
        let n = 20_000;
        for _ in 0..n {
            p.enqueue(T0, SimTime::ZERO);
            p.enqueue(T1, SimTime::ZERO);
            let w = p.pick(SimTime::ZERO).unwrap();
            wins[w.index() as usize] += 1;
            // Reset the queue for the next independent lottery.
            let other = p.pick(SimTime::ZERO).unwrap();
            assert_ne!(w, other);
        }
        let share = f64::from(wins[0]) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
        assert_eq!(p.lotteries_held(), 2 * n as u64);
    }

    #[test]
    fn currencies_isolate_value() {
        // Figure 3's flavor: two currencies funded 1:1 from base, with a
        // different number of tickets issued inside each.
        let mut p = LotteryPolicy::new(7);
        let a = p.create_currency("A", 1000).unwrap();
        let b = p.create_currency("B", 1000).unwrap();
        p.on_spawn(T0, FundingSpec::new(a, 100));
        p.on_spawn(T1, FundingSpec::new(b, 100));
        p.on_spawn(T2, FundingSpec::new(b, 100));
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.enqueue(T2, SimTime::ZERO);
        // A's single thread owns all of A: worth 1000. B's two threads
        // split B: 500 each.
        assert_eq!(p.value_of(T0), 1000.0);
        assert_eq!(p.value_of(T1), 500.0);
        assert_eq!(p.value_of(T2), 500.0);
    }

    #[test]
    fn compensation_inflates_until_next_pick() {
        let mut p = LotteryPolicy::new(5);
        let s0 = base_spec(&p, 400);
        p.on_spawn(T0, s0);
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        // Used 20 ms of the 100 ms quantum, then blocked.
        p.charge(
            T0,
            SimDuration::from_ms(20),
            SimDuration::from_ms(100),
            EndReason::Blocked,
        );
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.value_of(T0), 2000.0, "Section 4.5's 5x example");
        // Winning the next lottery revokes the compensation ticket.
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.value_of(T0), 400.0);
    }

    #[test]
    fn compensation_can_be_disabled() {
        let mut p = LotteryPolicy::new(5);
        let s0 = base_spec(&p, 400);
        p.on_spawn(T0, s0);
        p.set_compensation_enabled(false);
        p.enqueue(T0, SimTime::ZERO);
        let _ = p.pick(SimTime::ZERO);
        p.charge(
            T0,
            SimDuration::from_ms(20),
            SimDuration::from_ms(100),
            EndReason::Blocked,
        );
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.value_of(T0), 400.0);
    }

    #[test]
    fn transfer_funds_server_and_repays() {
        let mut p = LotteryPolicy::new(5);
        let s_client = base_spec(&p, 300);
        let s_server = base_spec(&p, 100);
        p.on_spawn(T0, s_client);
        p.on_spawn(T1, s_server);
        p.enqueue(T1, SimTime::ZERO);
        // Client (blocked, inactive) transfers to the server.
        p.transfer(T0, T1);
        assert_eq!(p.value_of(T1), 400.0);
        p.untransfer(T0, T1);
        assert_eq!(p.value_of(T1), 100.0);
        // Untransfer without a matching transfer is a no-op.
        p.untransfer(T0, T1);
        assert_eq!(p.value_of(T1), 100.0);
    }

    #[test]
    fn set_funding_takes_effect_immediately() {
        let mut p = LotteryPolicy::new(5);
        let s0 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.funding(T0), 100);
        p.set_funding(T0, 900).unwrap();
        assert_eq!(p.funding(T0), 900);
        assert_eq!(p.value_of(T0), 900.0);
    }

    #[test]
    fn zero_value_pool_degenerates_to_fifo() {
        let mut p = LotteryPolicy::new(5);
        // A currency with no backing: its tickets are worth nothing.
        let empty = p.ledger_mut().create_currency("empty").unwrap();
        p.on_spawn(T0, FundingSpec::new(empty, 10));
        p.on_spawn(T1, FundingSpec::new(empty, 10));
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
        assert_eq!(p.pick(SimTime::ZERO), None);
    }

    #[test]
    fn exit_cleans_up_ledger() {
        let mut p = LotteryPolicy::new(5);
        let s0 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.enqueue(T0, SimTime::ZERO);
        let clients_before = p.ledger().clients().count();
        assert_eq!(clients_before, 1);
        p.on_exit(T0);
        assert_eq!(p.ledger().clients().count(), 0);
        assert_eq!(p.ledger().tickets().count(), 0);
        assert_eq!(p.ready_len(), 0);
    }

    #[test]
    fn tree_structure_picks_proportionally() {
        let mut p = LotteryPolicy::new(42);
        p.set_structure(SelectStructure::Tree);
        assert_eq!(p.structure(), SelectStructure::Tree);
        let s0 = base_spec(&p, 300);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        let mut wins = [0u32; 2];
        let n = 20_000;
        for _ in 0..n {
            p.enqueue(T0, SimTime::ZERO);
            p.enqueue(T1, SimTime::ZERO);
            let w = p.pick(SimTime::ZERO).unwrap();
            wins[w.index() as usize] += 1;
            let other = p.pick(SimTime::ZERO).unwrap();
            assert_ne!(w, other);
        }
        let share = f64::from(wins[0]) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn tree_structure_tracks_dynamic_funding() {
        let mut p = LotteryPolicy::new(11);
        p.set_structure(SelectStructure::Tree);
        let s0 = base_spec(&p, 100);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.set_funding(T0, 900).unwrap();
        let mut wins0 = 0u32;
        let n = 10_000;
        for _ in 0..n {
            let w = p.pick(SimTime::ZERO).unwrap();
            let other = p.pick(SimTime::ZERO).unwrap();
            if w == T0 {
                wins0 += 1;
            }
            p.enqueue(w, SimTime::ZERO);
            p.enqueue(other, SimTime::ZERO);
        }
        let share = f64::from(wins0) / f64::from(n);
        assert!((share - 0.9).abs() < 0.02, "share {share}");
    }

    #[test]
    fn tree_structure_exit_cleans_mirror() {
        let mut p = LotteryPolicy::new(11);
        p.set_structure(SelectStructure::Tree);
        let s0 = base_spec(&p, 100);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.on_exit(T0);
        assert_eq!(p.ready_len(), 1);
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
        assert_eq!(p.pick(SimTime::ZERO), None);
    }

    #[test]
    fn structure_switch_mid_run_rebuilds_tree() {
        let mut p = LotteryPolicy::new(1);
        let s0 = base_spec(&p, 300);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        // A few list-mode lotteries first, then switch with threads queued.
        for _ in 0..10 {
            let w = p.pick(SimTime::ZERO).unwrap();
            p.enqueue(w, SimTime::ZERO);
        }
        p.set_structure(SelectStructure::Tree);
        let mut wins = [0u32; 2];
        let n = 20_000;
        for _ in 0..n {
            let w = p.pick(SimTime::ZERO).unwrap();
            wins[w.index() as usize] += 1;
            p.enqueue(w, SimTime::ZERO);
        }
        let share = f64::from(wins[0]) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
        // And back: the list walk picks up where the tree left off.
        p.set_structure(SelectStructure::List);
        assert!(p.pick(SimTime::ZERO).is_some());
    }

    /// With every client value exactly representable, tree mode must
    /// reproduce the list walk's winner sequence draw for draw — the
    /// partial-sum descent is just a faster search over the same
    /// intervals, fed by the same valuation cache.
    ///
    /// The workload shares one currency among all threads and mixes full
    /// quanta with blocking (deactivation + compensation), so sibling
    /// values shift constantly — exactly the case where the tree's cached
    /// weights used to go stale.
    #[test]
    fn tree_matches_list_winner_sequence_exactly() {
        // Backing 252000 = lcm(1000, 900, 800, 700, 600): every reachable
        // active amount divides it, keeping all client values integral.
        let run = |structure: SelectStructure| -> Vec<ThreadId> {
            let mut p = LotteryPolicy::new(20_260_806);
            p.set_structure(structure);
            let shared = p.create_currency("shared", 252_000).unwrap();
            let amounts = [100u64, 200, 300, 400];
            for (i, &amount) in amounts.iter().enumerate() {
                let tid = ThreadId::from_index(i as u32);
                p.on_spawn(tid, FundingSpec::new(shared, amount));
                p.enqueue(tid, SimTime::ZERO);
            }
            let mut winners = Vec::new();
            let mut blocked: Option<ThreadId> = None;
            for step in 0..400 {
                let w = p.pick(SimTime::ZERO).unwrap();
                winners.push(w);
                if step % 2 == 0 {
                    // Full quantum: back on the queue immediately.
                    p.charge(
                        w,
                        SimDuration::from_ms(100),
                        SimDuration::from_ms(100),
                        EndReason::QuantumExpired,
                    );
                    p.enqueue(w, SimTime::ZERO);
                } else {
                    // Block halfway: deactivates the winner's tickets
                    // (shifting every sibling's share) and grants a 2x
                    // compensation factor for its return.
                    p.charge(
                        w,
                        SimDuration::from_ms(50),
                        SimDuration::from_ms(100),
                        EndReason::Blocked,
                    );
                    if let Some(b) = blocked.replace(w) {
                        p.enqueue(b, SimTime::ZERO);
                    }
                }
            }
            winners
        };
        let list = run(SelectStructure::List);
        let tree = run(SelectStructure::Tree);
        let alias = run(SelectStructure::Alias);
        assert_eq!(list, tree);
        assert_eq!(list, alias);
        // Sanity: the workload actually rotates winners.
        assert!(list.iter().any(|&t| t != list[0]));
    }

    #[test]
    fn alias_structure_picks_proportionally() {
        let mut p = LotteryPolicy::new(42);
        p.set_structure(SelectStructure::Alias);
        assert_eq!(p.structure(), SelectStructure::Alias);
        let s0 = base_spec(&p, 300);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        let mut wins = [0u32; 2];
        let n = 20_000;
        for _ in 0..n {
            p.enqueue(T0, SimTime::ZERO);
            p.enqueue(T1, SimTime::ZERO);
            let w = p.pick(SimTime::ZERO).unwrap();
            wins[w.index() as usize] += 1;
            let other = p.pick(SimTime::ZERO).unwrap();
            assert_ne!(w, other);
        }
        let share = f64::from(wins[0]) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn alias_structure_tracks_dynamic_funding() {
        let mut p = LotteryPolicy::new(11);
        p.set_structure(SelectStructure::Alias);
        let s0 = base_spec(&p, 100);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.set_funding(T0, 900).unwrap();
        let mut wins0 = 0u32;
        let n = 10_000;
        for _ in 0..n {
            let w = p.pick(SimTime::ZERO).unwrap();
            let other = p.pick(SimTime::ZERO).unwrap();
            if w == T0 {
                wins0 += 1;
            }
            p.enqueue(w, SimTime::ZERO);
            p.enqueue(other, SimTime::ZERO);
        }
        let share = f64::from(wins0) / f64::from(n);
        assert!((share - 0.9).abs() < 0.02, "share {share}");
    }

    #[test]
    fn alias_zero_value_degenerates_to_fifo() {
        let mut p = LotteryPolicy::new(5);
        p.set_structure(SelectStructure::Alias);
        let empty = p.ledger_mut().create_currency("empty").unwrap();
        p.on_spawn(T0, FundingSpec::new(empty, 10));
        p.on_spawn(T1, FundingSpec::new(empty, 10));
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
    }

    #[test]
    fn alias_structure_exit_cleans_mirror() {
        let mut p = LotteryPolicy::new(11);
        p.set_structure(SelectStructure::Alias);
        let s0 = base_spec(&p, 100);
        let s1 = base_spec(&p, 100);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.on_exit(T0);
        assert_eq!(p.ready_len(), 1);
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
        assert_eq!(p.pick(SimTime::ZERO), None);
    }

    #[test]
    fn tree_mode_is_exact_for_shared_currencies() {
        // Two threads share a currency; a third holds base tickets. When
        // the shared pair's sibling blocks, the survivor's value doubles
        // — the tree must see that before the next draw, or the base
        // thread would be over-selected.
        let mut p = LotteryPolicy::new(3);
        p.set_structure(SelectStructure::Tree);
        let shared = p.create_currency("shared", 1000).unwrap();
        p.on_spawn(T0, FundingSpec::new(shared, 100));
        p.on_spawn(T1, FundingSpec::new(shared, 100));
        let base = base_spec(&p, 1000);
        p.on_spawn(T2, base);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.enqueue(T2, SimTime::ZERO);
        assert_eq!(p.value_of(T0), 500.0);
        // T1 wins nothing for a while: block it indefinitely.
        let mut removed = false;
        let mut wins = [0u32; 3];
        let n = 30_000;
        for _ in 0..n {
            let w = p.pick(SimTime::ZERO).unwrap();
            if w == T1 && !removed {
                removed = true;
                p.charge(
                    T1,
                    SimDuration::from_ms(100),
                    SimDuration::from_ms(100),
                    EndReason::Blocked,
                );
                continue;
            }
            wins[w.index() as usize] += 1;
            p.charge(
                w,
                SimDuration::from_ms(100),
                SimDuration::from_ms(100),
                EndReason::QuantumExpired,
            );
            p.enqueue(w, SimTime::ZERO);
        }
        // After T1 blocks, T0 owns all of `shared`: 1000 vs 1000 base.
        let share = f64::from(wins[0]) / f64::from(wins[0] + wins[2]);
        assert!((share - 0.5).abs() < 0.01, "share {share}");
    }

    #[test]
    fn tree_zero_value_degenerates_to_fifo() {
        let mut p = LotteryPolicy::new(5);
        p.set_structure(SelectStructure::Tree);
        let empty = p.ledger_mut().create_currency("empty").unwrap();
        p.on_spawn(T0, FundingSpec::new(empty, 10));
        p.on_spawn(T1, FundingSpec::new(empty, 10));
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
    }

    #[test]
    fn starvation_free_small_share() {
        // A 1-of-101 client must still win within a few hundred draws
        // (geometric distribution, E = 101).
        let mut p = LotteryPolicy::new(99);
        let s0 = base_spec(&p, 100);
        let s1 = base_spec(&p, 1);
        p.on_spawn(T0, s0);
        p.on_spawn(T1, s1);
        let mut first_win = None;
        for i in 0..2000 {
            p.enqueue(T0, SimTime::ZERO);
            p.enqueue(T1, SimTime::ZERO);
            let w = p.pick(SimTime::ZERO).unwrap();
            let _ = p.pick(SimTime::ZERO).unwrap();
            if w == T1 {
                first_win = Some(i);
                break;
            }
        }
        assert!(first_win.is_some(), "tiny share starved for 2000 draws");
    }
}
