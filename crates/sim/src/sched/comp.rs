//! The shared compensation policy hook (Section 4.5).
//!
//! Compensation used to be duplicated per policy: [`super::lottery::LotteryPolicy`]
//! and [`super::distributed::DistributedLottery`] each carried their own
//! enable flag and copy-pasted the grant/clear dance around
//! [`lottery_core::compensation`]. This hook is the single owner of that
//! policy decision; schedulers delegate both the quantum-end charge side
//! and the dispatch-time revoke side to it, so the Section 4.5 ablation
//! drives every policy through one switch and the probe events carry the
//! granting shard uniformly.
//!
//! Ordering matters on the charge side: the grant happens *before* a
//! blocked client is deactivated, so the ledger's [`CompensationLedger`]
//! snapshots the implicit ticket's base-unit worth while the funding is
//! still active (a deactivated client funds nothing and would snapshot
//! zero).
//!
//! [`CompensationLedger`]: lottery_core::ledger::CompensationLedger

use lottery_core::client::ClientId;
use lottery_core::compensation;
use lottery_core::ledger::Ledger;
use lottery_obs::{EventKind, ProbeBus};

use super::EndReason;
use crate::thread::ThreadId;
use crate::time::SimDuration;

/// Grant/revoke policy for compensation tickets, shared by all schedulers.
#[derive(Debug, Clone, Copy)]
pub struct CompensationHook {
    enabled: bool,
}

impl Default for CompensationHook {
    fn default() -> Self {
        Self::new()
    }
}

impl CompensationHook {
    /// Creates the hook with compensation enabled (the paper's default).
    pub fn new() -> Self {
        Self { enabled: true }
    }

    /// Whether partial-quantum yields and blocks grant compensation.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables compensation grants (the Section 4.5 ablation
    /// switch). Already-granted factors still clear at the next dispatch.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Dispatch side: the winner starts its quantum, so any compensation
    /// ticket it held is revoked (emitting [`EventKind::CompensationRevoked`]
    /// against the shard that was carrying the weight).
    ///
    /// The client's tickets stay *active* while it runs — it is using
    /// them — which keeps mutex-handoff valuations live; they deactivate
    /// only when the thread blocks (Section 4.4).
    pub fn on_dispatch(
        &self,
        ledger: &mut Ledger,
        bus: &ProbeBus,
        tid: ThreadId,
        client: ClientId,
    ) {
        if ledger.compensation_factor(client) > 1.0 {
            let thread = tid.index();
            let shard = ledger.dirty_shard_of(client);
            bus.emit(|| EventKind::CompensationRevoked { thread, shard });
        }
        compensation::clear(ledger, client).expect("client liveness");
    }

    /// Charge side: a thread that yielded or blocked with quantum
    /// remaining is granted a `q/used` compensation factor (while its
    /// funding is still active, so the compensated weight is captured),
    /// then a blocked client's tickets are deactivated so shared-currency
    /// values redistribute (Section 4.4).
    #[allow(clippy::too_many_arguments)]
    pub fn on_charge(
        &self,
        ledger: &mut Ledger,
        bus: &ProbeBus,
        tid: ThreadId,
        client: ClientId,
        used: SimDuration,
        quantum: SimDuration,
        why: EndReason,
    ) {
        let grants = self.enabled
            && matches!(why, EndReason::Yielded | EndReason::Blocked)
            && used < quantum;
        if grants {
            compensation::grant(ledger, client, used.as_us().max(1), quantum.as_us())
                .expect("client liveness");
            let thread = tid.index();
            let factor = quantum.as_us() as f64 / used.as_us().max(1) as f64;
            let shard = ledger.dirty_shard_of(client);
            bus.emit(|| EventKind::Compensation {
                thread,
                factor,
                shard,
            });
        }
        if why == EndReason::Blocked {
            ledger.deactivate_client(client).expect("client liveness");
        }
    }
}
