//! Fixed-priority scheduling.
//!
//! The absolute-priority baseline the paper argues against (Section 7): a
//! higher-priority thread always preempts service to lower ones, resource
//! rights do not vary smoothly, and starvation is built in. Mach keeps a
//! few such threads (e.g. the Ethernet driver) even under the lottery
//! prototype (Section 4).

use std::collections::VecDeque;

use super::{EndReason, Policy};
use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Number of priority levels (0 is most urgent, 31 least).
pub const LEVELS: usize = 32;

/// Strict-priority policy with round-robin within each level.
#[derive(Debug)]
pub struct FixedPriorityPolicy {
    queues: Vec<VecDeque<ThreadId>>,
    priority: Vec<u8>,
    quantum: SimDuration,
    ready: usize,
}

impl FixedPriorityPolicy {
    /// Creates a fixed-priority policy with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum.
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        Self {
            queues: (0..LEVELS).map(|_| VecDeque::new()).collect(),
            priority: Vec::new(),
            quantum,
            ready: 0,
        }
    }

    fn priority_of(&self, tid: ThreadId) -> usize {
        usize::from(self.priority[tid.index() as usize])
    }
}

impl Policy for FixedPriorityPolicy {
    /// The thread's priority level, clamped to `LEVELS - 1`.
    type Spec = u8;

    fn on_spawn(&mut self, tid: ThreadId, priority: u8) {
        let idx = tid.index() as usize;
        if self.priority.len() <= idx {
            self.priority.resize(idx + 1, LEVELS as u8 - 1);
        }
        self.priority[idx] = priority.min(LEVELS as u8 - 1);
    }

    fn on_exit(&mut self, tid: ThreadId) {
        for q in &mut self.queues {
            let before = q.len();
            q.retain(|&t| t != tid);
            self.ready -= before - q.len();
        }
    }

    fn enqueue(&mut self, tid: ThreadId, _now: SimTime) {
        let level = self.priority_of(tid);
        self.queues[level].push_back(tid);
        self.ready += 1;
    }

    fn pick(&mut self, _now: SimTime) -> Option<ThreadId> {
        for q in &mut self.queues {
            if let Some(tid) = q.pop_front() {
                self.ready -= 1;
                return Some(tid);
            }
        }
        None
    }

    fn charge(&mut self, _tid: ThreadId, _used: SimDuration, _q: SimDuration, _why: EndReason) {}

    fn quantum(&self) -> SimDuration {
        self.quantum
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);
    const T2: ThreadId = ThreadId::from_index(2);

    #[test]
    fn higher_priority_always_first() {
        let mut p = FixedPriorityPolicy::new(SimDuration::from_ms(10));
        p.on_spawn(T0, 5);
        p.on_spawn(T1, 1);
        p.on_spawn(T2, 5);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        p.enqueue(T2, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
        assert_eq!(p.pick(SimTime::ZERO), Some(T2));
    }

    #[test]
    fn starvation_is_real() {
        // The defining pathology: as long as T1 (high priority) is ready,
        // T0 never runs.
        let mut p = FixedPriorityPolicy::new(SimDuration::from_ms(10));
        p.on_spawn(T0, 9);
        p.on_spawn(T1, 0);
        for _ in 0..100 {
            p.enqueue(T1, SimTime::ZERO);
            p.enqueue(T0, SimTime::ZERO);
            assert_eq!(p.pick(SimTime::ZERO), Some(T1));
            assert_eq!(p.pick(SimTime::ZERO), Some(T0));
            // (popped both to reset for the next round)
        }
    }

    #[test]
    fn priority_clamped_to_levels() {
        let mut p = FixedPriorityPolicy::new(SimDuration::from_ms(10));
        p.on_spawn(T0, 200);
        p.enqueue(T0, SimTime::ZERO);
        assert_eq!(p.pick(SimTime::ZERO), Some(T0));
    }

    #[test]
    fn exit_maintains_ready_count() {
        let mut p = FixedPriorityPolicy::new(SimDuration::from_ms(10));
        p.on_spawn(T0, 3);
        p.on_spawn(T1, 3);
        p.enqueue(T0, SimTime::ZERO);
        p.enqueue(T1, SimTime::ZERO);
        assert_eq!(p.ready_len(), 2);
        p.on_exit(T0);
        assert_eq!(p.ready_len(), 1);
        assert_eq!(p.pick(SimTime::ZERO), Some(T1));
    }
}
