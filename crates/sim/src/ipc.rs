//! Synchronous RPC ports (the `mach_msg` analogue of Section 4.6).
//!
//! A [`Port`] is a rendezvous point between client threads issuing
//! [`crate::workload::Burst::Request`]s and server threads blocking in
//! [`crate::workload::Burst::Receive`]. The kernel pairs them up:
//!
//! * If a server thread is already waiting when a request arrives, the
//!   request is delivered immediately and the client's ticket transfer
//!   funds that thread directly.
//! * Otherwise the request queues; the transfer is attached to the message
//!   and claimed by whichever server thread receives it next.
//!
//! Replies destroy the transfer and wake the client.

use std::collections::VecDeque;

use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Identifies a port within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(u32);

impl PortId {
    /// Builds a port id from a raw index (used by the kernel and tests).
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// A queued or in-service request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The blocked client that sent the request.
    pub client: ThreadId,
    /// CPU time the server must spend before replying.
    pub service: SimDuration,
    /// When the request was issued (for response-time accounting).
    pub sent_at: SimTime,
}

/// A rendezvous port.
#[derive(Debug, Default)]
pub struct Port {
    name: String,
    /// Requests waiting for a server thread.
    messages: VecDeque<Message>,
    /// Server threads blocked in receive.
    receivers: VecDeque<ThreadId>,
}

impl Port {
    /// Creates an empty port.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            messages: VecDeque::new(),
            receivers: VecDeque::new(),
        }
    }

    /// The port's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Queued requests not yet delivered to a server thread.
    pub fn backlog(&self) -> usize {
        self.messages.len()
    }

    /// Server threads currently blocked waiting for a request.
    pub fn idle_receivers(&self) -> usize {
        self.receivers.len()
    }

    /// Offers a request: returns the receiver to deliver it to, if one is
    /// waiting; otherwise queues the message.
    pub fn offer(&mut self, message: Message) -> Option<ThreadId> {
        if let Some(receiver) = self.receivers.pop_front() {
            Some(receiver)
        } else {
            self.messages.push_back(message);
            None
        }
    }

    /// Registers a receiver: returns the message to deliver, if one is
    /// queued; otherwise parks the receiver.
    pub fn receive(&mut self, receiver: ThreadId) -> Option<Message> {
        if let Some(message) = self.messages.pop_front() {
            Some(message)
        } else {
            self.receivers.push_back(receiver);
            None
        }
    }

    /// Removes a parked receiver (e.g. its thread exited).
    pub fn remove_receiver(&mut self, receiver: ThreadId) {
        self.receivers.retain(|&r| r != receiver);
    }

    /// Removes every undelivered request from `client` (its thread was
    /// killed before a server picked the message up).
    pub fn remove_messages_from(&mut self, client: ThreadId) {
        self.messages.retain(|m| m.client != client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::ThreadId;

    fn tid(i: u32) -> ThreadId {
        ThreadId::from_index(i)
    }

    fn msg(client: u32) -> Message {
        Message {
            client: tid(client),
            service: SimDuration::from_ms(5),
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn offer_with_waiting_receiver_delivers() {
        let mut port = Port::new("db");
        assert_eq!(port.receive(tid(1)), None);
        assert_eq!(port.idle_receivers(), 1);
        assert_eq!(port.offer(msg(9)), Some(tid(1)));
        assert_eq!(port.idle_receivers(), 0);
        assert_eq!(port.backlog(), 0);
    }

    #[test]
    fn offer_without_receiver_queues() {
        let mut port = Port::new("db");
        assert_eq!(port.offer(msg(9)), None);
        assert_eq!(port.backlog(), 1);
        let delivered = port.receive(tid(1)).unwrap();
        assert_eq!(delivered.client, tid(9));
        assert_eq!(port.backlog(), 0);
    }

    #[test]
    fn fifo_ordering() {
        let mut port = Port::new("db");
        port.offer(msg(1));
        port.offer(msg(2));
        assert_eq!(port.receive(tid(8)).unwrap().client, tid(1));
        assert_eq!(port.receive(tid(8)).unwrap().client, tid(2));

        assert_eq!(port.receive(tid(10)), None);
        assert_eq!(port.receive(tid(11)), None);
        assert_eq!(port.offer(msg(3)), Some(tid(10)));
        assert_eq!(port.offer(msg(4)), Some(tid(11)));
    }

    #[test]
    fn remove_receiver() {
        let mut port = Port::new("db");
        port.receive(tid(1));
        port.receive(tid(2));
        port.remove_receiver(tid(1));
        assert_eq!(port.idle_receivers(), 1);
        assert_eq!(port.offer(msg(5)), Some(tid(2)));
    }
}
