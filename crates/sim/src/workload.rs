//! Workload models: what simulated threads do with the CPU.
//!
//! A [`Workload`] is a small state machine the kernel consults whenever a
//! thread needs its next action. Returning [`Burst::Run`] consumes CPU
//! (possibly across several quanta), [`Burst::Sleep`] models I/O or timer
//! waits, [`Burst::Request`]/[`Burst::Receive`]/[`Burst::Reply`] drive the
//! synchronous RPC machinery of Section 4.6, and [`Burst::Yield`] gives up
//! the processor while remaining runnable.

use crate::ipc::PortId;
use crate::sched::LockId;
use crate::time::{SimDuration, SimTime};

/// The next action a thread takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Burst {
    /// Execute on the CPU for the given duration.
    Run(SimDuration),
    /// Block (off the run queue) for the given duration, then wake.
    Sleep(SimDuration),
    /// Give up the remainder of the quantum but stay runnable.
    Yield,
    /// Issue a synchronous RPC: enqueue a request needing `service` CPU
    /// time on `port` and block until the reply.
    Request {
        /// The server port.
        port: PortId,
        /// CPU time the server must spend on this request.
        service: SimDuration,
    },
    /// Block until a request arrives on `port` (server side).
    Receive {
        /// The port to receive on.
        port: PortId,
    },
    /// Complete the current request: send the reply and wake the client.
    ///
    /// Must follow a [`Burst::Receive`] (and typically a [`Burst::Run`] for
    /// the service time); the kernel panics otherwise, as that is a
    /// workload authoring bug.
    Reply,
    /// Acquire a kernel mutex, blocking until it is granted.
    Lock {
        /// The mutex to acquire.
        lock: LockId,
    },
    /// Release a kernel mutex held by this thread.
    Unlock {
        /// The mutex to release.
        lock: LockId,
    },
    /// Terminate the thread.
    Exit,
}

/// Read-only context handed to a workload when it must choose its next
/// action.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCtx {
    /// The current simulated time.
    pub now: SimTime,
    /// Total CPU time this thread has consumed so far.
    pub cpu_time: SimDuration,
    /// Service time of the request the thread just received, when the
    /// previous burst was a [`Burst::Receive`] that completed.
    pub current_request_service: Option<SimDuration>,
}

/// A thread's behaviour, consulted by the kernel between bursts.
pub trait Workload {
    /// Chooses the thread's next action.
    fn next(&mut self, ctx: &WorkloadCtx) -> Burst;
}

impl<F: FnMut(&WorkloadCtx) -> Burst> Workload for F {
    fn next(&mut self, ctx: &WorkloadCtx) -> Burst {
        self(ctx)
    }
}

/// Runs forever, never yielding: the paper's Dhrystone tasks.
///
/// Emits maximal-length run bursts; the kernel slices them into quanta.
#[derive(Debug, Clone, Default)]
pub struct ComputeBound;

impl Workload for ComputeBound {
    fn next(&mut self, _ctx: &WorkloadCtx) -> Burst {
        // One simulated hour per burst: effectively unbounded, re-issued
        // when consumed.
        Burst::Run(SimDuration::from_secs(3600))
    }
}

/// Runs for a fixed total CPU budget, then exits.
#[derive(Debug, Clone)]
pub struct FiniteJob {
    remaining: SimDuration,
}

impl FiniteJob {
    /// A job needing `total` CPU time.
    pub fn new(total: SimDuration) -> Self {
        Self { remaining: total }
    }
}

impl Workload for FiniteJob {
    fn next(&mut self, ctx: &WorkloadCtx) -> Burst {
        // `ctx.cpu_time` counts all CPU consumed; rely on our own ledger
        // instead so the job composes with other phases.
        let _ = ctx;
        if self.remaining.is_zero() {
            return Burst::Exit;
        }
        let chunk = self.remaining;
        self.remaining = SimDuration::ZERO;
        Burst::Run(chunk)
    }
}

/// Uses a fixed fraction of each quantum, then yields: Section 4.5's
/// interactive thread that consumes `1/k` of its quantum.
#[derive(Debug, Clone)]
pub struct FractionalQuantum {
    run: SimDuration,
    ran: bool,
}

impl FractionalQuantum {
    /// A thread that runs `run` CPU time per dispatch, then yields.
    pub fn new(run: SimDuration) -> Self {
        Self { run, ran: false }
    }
}

impl Workload for FractionalQuantum {
    fn next(&mut self, _ctx: &WorkloadCtx) -> Burst {
        self.ran = !self.ran;
        if self.ran {
            Burst::Run(self.run)
        } else {
            Burst::Yield
        }
    }
}

/// Alternates short CPU bursts with sleeps: an I/O-bound thread.
#[derive(Debug, Clone)]
pub struct IoBound {
    run: SimDuration,
    sleep: SimDuration,
    running: bool,
}

impl IoBound {
    /// A thread that computes for `run`, then waits `sleep` for I/O,
    /// forever.
    pub fn new(run: SimDuration, sleep: SimDuration) -> Self {
        Self {
            run,
            sleep,
            running: false,
        }
    }
}

impl Workload for IoBound {
    fn next(&mut self, _ctx: &WorkloadCtx) -> Burst {
        self.running = !self.running;
        if self.running {
            Burst::Run(self.run)
        } else {
            Burst::Sleep(self.sleep)
        }
    }
}

/// Issues closed-loop RPCs: think for a while, then call a server and wait.
#[derive(Debug, Clone)]
pub struct RpcClient {
    port: PortId,
    think: SimDuration,
    service: SimDuration,
    requests: Option<u64>,
    thinking: bool,
}

impl RpcClient {
    /// A client of `port` that alternates `think` CPU time with requests
    /// costing `service` at the server, issuing `requests` calls in total
    /// (`None` for unbounded).
    pub fn new(
        port: PortId,
        think: SimDuration,
        service: SimDuration,
        requests: Option<u64>,
    ) -> Self {
        Self {
            port,
            think,
            service,
            requests,
            thinking: true,
        }
    }
}

impl Workload for RpcClient {
    fn next(&mut self, _ctx: &WorkloadCtx) -> Burst {
        if self.requests == Some(0) {
            return Burst::Exit;
        }
        if self.thinking {
            self.thinking = false;
            if self.think.is_zero() {
                // Fall through to issuing the request immediately.
            } else {
                return Burst::Run(self.think);
            }
        }
        self.thinking = true;
        match &mut self.requests {
            Some(0) => Burst::Exit,
            Some(n) => {
                *n -= 1;
                Burst::Request {
                    port: self.port,
                    service: self.service,
                }
            }
            None => Burst::Request {
                port: self.port,
                service: self.service,
            },
        }
    }
}

/// Serves a port forever: receive, run the request's service time, reply.
#[derive(Debug, Clone)]
pub struct RpcServer {
    port: PortId,
    state: ServerState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    Receiving,
    Serving,
    Replying,
}

impl RpcServer {
    /// A worker thread serving `port`.
    pub fn new(port: PortId) -> Self {
        Self {
            port,
            state: ServerState::Receiving,
        }
    }
}

impl Workload for RpcServer {
    fn next(&mut self, ctx: &WorkloadCtx) -> Burst {
        match self.state {
            ServerState::Receiving => {
                self.state = ServerState::Serving;
                Burst::Receive { port: self.port }
            }
            ServerState::Serving => {
                self.state = ServerState::Replying;
                let service = ctx
                    .current_request_service
                    .expect("server scheduled without a delivered request");
                if service.is_zero() {
                    // Zero-cost request: reply immediately.
                    self.state = ServerState::Receiving;
                    return Burst::Reply;
                }
                Burst::Run(service)
            }
            ServerState::Replying => {
                self.state = ServerState::Receiving;
                Burst::Reply
            }
        }
    }
}

/// The Section 6.1 lock workload: repeatedly acquire a mutex, hold it
/// for `hold` CPU time, release it, and compute for `compute`.
#[derive(Debug, Clone)]
pub struct MutexWorker {
    lock: LockId,
    hold: SimDuration,
    compute: SimDuration,
    phase: u8,
}

impl MutexWorker {
    /// A worker on `lock` with the given hold and compute times (the
    /// paper uses 50 ms each).
    pub fn new(lock: LockId, hold: SimDuration, compute: SimDuration) -> Self {
        Self {
            lock,
            hold,
            compute,
            phase: 0,
        }
    }
}

impl Workload for MutexWorker {
    fn next(&mut self, _ctx: &WorkloadCtx) -> Burst {
        let burst = match self.phase {
            0 => Burst::Lock { lock: self.lock },
            1 => Burst::Run(self.hold),
            2 => Burst::Unlock { lock: self.lock },
            _ => Burst::Run(self.compute),
        };
        self.phase = (self.phase + 1) % 4;
        burst
    }
}

/// Repeats a fixed script of bursts, then exits (or loops).
///
/// Useful for tests that need precisely shaped behaviour.
#[derive(Debug, Clone)]
pub struct Scripted {
    script: Vec<Burst>,
    next: usize,
    looping: bool,
}

impl Scripted {
    /// Plays `script` once, then exits.
    pub fn once(script: Vec<Burst>) -> Self {
        Self {
            script,
            next: 0,
            looping: false,
        }
    }

    /// Plays `script` forever.
    pub fn repeat(script: Vec<Burst>) -> Self {
        Self {
            script,
            next: 0,
            looping: true,
        }
    }
}

impl Workload for Scripted {
    fn next(&mut self, _ctx: &WorkloadCtx) -> Burst {
        if self.next >= self.script.len() {
            if self.looping && !self.script.is_empty() {
                self.next = 0;
            } else {
                return Burst::Exit;
            }
        }
        let burst = self.script[self.next];
        self.next += 1;
        burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> WorkloadCtx {
        WorkloadCtx {
            now: SimTime::ZERO,
            cpu_time: SimDuration::ZERO,
            current_request_service: None,
        }
    }

    #[test]
    fn compute_bound_never_stops() {
        let mut w = ComputeBound;
        for _ in 0..3 {
            assert!(matches!(w.next(&ctx()), Burst::Run(_)));
        }
    }

    #[test]
    fn finite_job_exits_after_budget() {
        let mut w = FiniteJob::new(SimDuration::from_ms(50));
        assert_eq!(w.next(&ctx()), Burst::Run(SimDuration::from_ms(50)));
        assert_eq!(w.next(&ctx()), Burst::Exit);
    }

    #[test]
    fn io_bound_alternates() {
        let mut w = IoBound::new(SimDuration::from_ms(1), SimDuration::from_ms(9));
        assert_eq!(w.next(&ctx()), Burst::Run(SimDuration::from_ms(1)));
        assert_eq!(w.next(&ctx()), Burst::Sleep(SimDuration::from_ms(9)));
        assert_eq!(w.next(&ctx()), Burst::Run(SimDuration::from_ms(1)));
    }

    #[test]
    fn rpc_client_counts_requests() {
        let port = PortId::new(0);
        let mut w = RpcClient::new(
            port,
            SimDuration::from_ms(1),
            SimDuration::from_ms(2),
            Some(2),
        );
        assert!(matches!(w.next(&ctx()), Burst::Run(_)));
        assert!(matches!(w.next(&ctx()), Burst::Request { .. }));
        assert!(matches!(w.next(&ctx()), Burst::Run(_)));
        assert!(matches!(w.next(&ctx()), Burst::Request { .. }));
        // No trailing think: the client exits as soon as its last reply
        // arrives, like the paper's 20-query clients.
        assert_eq!(w.next(&ctx()), Burst::Exit);
    }

    #[test]
    fn rpc_client_zero_think_requests_immediately() {
        let port = PortId::new(0);
        let mut w = RpcClient::new(port, SimDuration::ZERO, SimDuration::from_ms(2), Some(1));
        assert!(matches!(w.next(&ctx()), Burst::Request { .. }));
        assert_eq!(w.next(&ctx()), Burst::Exit);
    }

    #[test]
    fn rpc_server_cycle() {
        let port = PortId::new(3);
        let mut w = RpcServer::new(port);
        assert_eq!(w.next(&ctx()), Burst::Receive { port });
        let served = WorkloadCtx {
            current_request_service: Some(SimDuration::from_ms(7)),
            ..ctx()
        };
        assert_eq!(w.next(&served), Burst::Run(SimDuration::from_ms(7)));
        assert_eq!(w.next(&ctx()), Burst::Reply);
        assert_eq!(w.next(&ctx()), Burst::Receive { port });
    }

    #[test]
    fn rpc_server_zero_service_replies_immediately() {
        let port = PortId::new(3);
        let mut w = RpcServer::new(port);
        let _ = w.next(&ctx());
        let served = WorkloadCtx {
            current_request_service: Some(SimDuration::ZERO),
            ..ctx()
        };
        assert_eq!(w.next(&served), Burst::Reply);
        assert_eq!(w.next(&ctx()), Burst::Receive { port });
    }

    #[test]
    fn scripted_once_and_repeat() {
        let script = vec![Burst::Yield, Burst::Run(SimDuration::from_ms(1))];
        let mut once = Scripted::once(script.clone());
        assert_eq!(once.next(&ctx()), Burst::Yield);
        assert!(matches!(once.next(&ctx()), Burst::Run(_)));
        assert_eq!(once.next(&ctx()), Burst::Exit);

        let mut rep = Scripted::repeat(script);
        for _ in 0..3 {
            assert_eq!(rep.next(&ctx()), Burst::Yield);
            assert!(matches!(rep.next(&ctx()), Burst::Run(_)));
        }
    }

    #[test]
    fn closures_are_workloads() {
        let mut calls = 0;
        {
            let mut w = |_: &WorkloadCtx| {
                calls += 1;
                Burst::Exit
            };
            let _ = Workload::next(&mut w, &ctx());
        }
        assert_eq!(calls, 1);
    }
}
