//! Deterministic record/replay of simulated scheduling windows.
//!
//! A capture is a [`ReplayLog`]: a [`ReplayHeader`] stamping everything the
//! scheduler's behaviour depends on — the Park–Miller state the first draw
//! will consume, the draw counter, the [`SelectStructure`], the shard count,
//! the compensation switch, the quantum — plus the [`TraceSpec`] workload and
//! the probe-bus event stream the run emitted. Because every source of
//! nondeterminism is either stamped in the header or absent from the
//! simulator, re-running the same driver procedure from the header
//! ([`drive`]) must reproduce the recorded stream bit for bit; any
//! difference is a real behavioural change, surfaced by
//! [`first_divergence`] as the first index where the streams disagree.
//!
//! Two exemptions cover host-side cost telemetry that is not scheduling
//! behaviour: [`lottery_obs::EventKind::StructureRebuild`]'s `rebuild_ns`
//! field measures host wall-clock time, so divergence comparison
//! canonicalises it to zero (see [`lottery_obs::replay::canonical`]); and
//! [`lottery_obs::EventKind::DirtyBatch`] probes (the once-per-dispatch
//! dirty-queue drains) are filtered out of [`drive`]'s stream entirely —
//! they describe how the drain was batched, not which clients were
//! revalued, and captures recorded before batching existed carry none.
//!
//! [`record`] captures a fresh window; [`Replayer`] re-executes one and
//! diffs. [`run_fcfs`] drives the same trace through a run-to-completion
//! round-robin baseline so experiments can compare lottery scheduling
//! against FCFS-style admission on response time and stretch
//! ([`job_outcomes`]).

use std::collections::HashMap;

use lottery_core::rng::ParkMiller;
use lottery_obs::replay::canonical;
use lottery_obs::{
    first_divergence, Divergence, Event, EventKind, FlightRecorder, ProbeBus, ReplayHeader,
    ReplayLog, Shared, TraceJob, TraceSpec,
};

use crate::kernel::Kernel;
use crate::sched::distributed::DistributedLottery;
use crate::sched::lottery::{FundingSpec, LotteryPolicy, SelectStructure};
use crate::sched::rr::RoundRobinPolicy;
use crate::smp::SmpKernel;
use crate::time::{SimDuration, SimTime};
use crate::workload::{Burst, Scripted};

/// Ring capacity used for captures and replays alike.
///
/// Both sides must use the same capacity: the ring drops oldest events on
/// overflow, so differing capacities would diff different windows.
pub const RING_CAPACITY: usize = 1 << 20;

/// The scheduler configuration a capture stamps into its header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Park–Miller seed (normalised to the generator's state range).
    pub seed: u32,
    /// Lottery selection structure.
    pub structure: SelectStructure,
    /// `0` runs the uniprocessor [`Kernel`]; `n >= 1` runs an
    /// [`SmpKernel`] over a [`DistributedLottery`] with `n` shards.
    pub shards: u32,
    /// Whether compensation tickets are granted (Section 3.4).
    pub compensation: bool,
    /// Scheduling quantum in microseconds; `0` keeps the policy default.
    pub quantum_us: u64,
    /// Simulated time the capture window ends at.
    pub until_us: u64,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            structure: SelectStructure::List,
            shards: 0,
            compensation: true,
            quantum_us: 0,
            until_us: SimTime::from_secs(1).as_us(),
        }
    }
}

/// Wire name of a [`SelectStructure`], as stored in replay headers.
pub fn structure_name(structure: SelectStructure) -> &'static str {
    match structure {
        SelectStructure::List => "list",
        SelectStructure::Tree => "tree",
        SelectStructure::Alias => "alias",
    }
}

/// Parses a replay-header structure name back to a [`SelectStructure`].
pub fn parse_structure(name: &str) -> Option<SelectStructure> {
    match name {
        "list" => Some(SelectStructure::List),
        "tree" => Some(SelectStructure::Tree),
        "alias" => Some(SelectStructure::Alias),
        _ => None,
    }
}

/// The burst script a [`TraceJob`] runs: its service demand, split around
/// one sleep when the job models an I/O phase. [`Scripted::once`] exits the
/// thread when the script is exhausted.
fn job_script(job: &TraceJob) -> Vec<Burst> {
    if job.service_us == 0 {
        return Vec::new();
    }
    if job.sleep_us == 0 {
        return vec![Burst::Run(SimDuration::from_us(job.service_us))];
    }
    let first = job.service_us / 2;
    let rest = job.service_us - first;
    let mut script = Vec::new();
    if first > 0 {
        script.push(Burst::Run(SimDuration::from_us(first)));
    }
    script.push(Burst::Sleep(SimDuration::from_us(job.sleep_us)));
    if rest > 0 {
        script.push(Burst::Run(SimDuration::from_us(rest)));
    }
    script
}

/// Jobs in deterministic spawn order: by arrival time, ties by spec index.
fn spawn_order(spec: &TraceSpec) -> Vec<(usize, &TraceJob)> {
    let mut jobs: Vec<(usize, &TraceJob)> = spec.jobs.iter().enumerate().collect();
    jobs.sort_by_key(|&(i, job)| (job.arrival_us, i));
    jobs
}

/// Re-executes the driver procedure a header describes and returns the
/// probe-bus event stream it emits.
///
/// This is the single definition of "what a capture did": [`record`] calls
/// it to produce the recorded stream and [`Replayer::run`] calls it again
/// to produce the replayed one, so the two can only differ if the
/// scheduler itself behaved differently.
///
/// # Errors
///
/// Returns a message when the header names an unknown structure, a
/// currency cannot be created (e.g. duplicate names), or an SMP run hits
/// an unsupported burst.
pub fn drive(header: &ReplayHeader) -> Result<Vec<Event>, String> {
    let structure = parse_structure(&header.structure)
        .ok_or_else(|| format!("unknown select structure {:?}", header.structure))?;
    let jobs = spawn_order(&header.spec);
    let quantum = SimDuration::from_us(header.quantum_us);

    let flight = Shared::new(FlightRecorder::new(RING_CAPACITY));
    let bus = ProbeBus::enabled();
    bus.attach(flight.clone());

    if header.shards == 0 {
        let mut policy = if header.quantum_us > 0 {
            LotteryPolicy::with_quantum(header.seed, quantum)
        } else {
            LotteryPolicy::new(header.seed)
        };
        policy.set_structure(structure);
        policy.set_compensation_enabled(header.compensation);
        let base = policy.base_currency();
        let mut currencies = HashMap::new();
        for cur in &header.spec.currencies {
            let id = policy
                .create_currency(&cur.name, cur.amount)
                .map_err(|e| format!("currency {:?}: {e}", cur.name))?;
            currencies.insert(cur.name.clone(), id);
        }
        let mut kernel = Kernel::new(policy);
        kernel.set_probe_bus(bus);
        for &(i, job) in &jobs {
            // The completing variant preserves the historical boundary
            // semantics (in-flight quanta finish past an arrival), so
            // captures recorded before the event rebase replay bit-exact.
            kernel.run_until_completing(SimTime::from_us(job.arrival_us));
            let cur = currencies.get(job.tenant.as_str()).copied().unwrap_or(base);
            kernel.spawn(
                format!("job{i}"),
                Box::new(Scripted::once(job_script(job))),
                FundingSpec::new(cur, job.tickets.max(1)),
            );
        }
        kernel.run_until_completing(SimTime::from_us(header.until_us));
    } else {
        let shards = header.shards as usize;
        let mut policy = if header.quantum_us > 0 {
            DistributedLottery::with_quantum(header.seed, shards, quantum)
        } else {
            DistributedLottery::new(header.seed, shards)
        };
        policy.set_structure(structure);
        policy.set_compensation_enabled(header.compensation);
        let base = policy.base_currency();
        let mut currencies = HashMap::new();
        for cur in &header.spec.currencies {
            let id = policy
                .create_currency(&cur.name, cur.amount)
                .map_err(|e| format!("currency {:?}: {e}", cur.name))?;
            currencies.insert(cur.name.clone(), id);
        }
        let mut kernel = SmpKernel::new(policy, shards);
        kernel.set_probe_bus(bus);
        for &(i, job) in &jobs {
            kernel
                .run_until(SimTime::from_us(job.arrival_us))
                .map_err(|e| format!("smp run: {e:?}"))?;
            let cur = currencies.get(job.tenant.as_str()).copied().unwrap_or(base);
            kernel.spawn(
                format!("job{i}"),
                Box::new(Scripted::once(job_script(job))),
                FundingSpec::new(cur, job.tickets.max(1)),
            );
        }
        kernel
            .run_until(SimTime::from_us(header.until_us))
            .map_err(|e| format!("smp run: {e:?}"))?;
    }

    // `DirtyBatch` is excluded from capture streams (like `rebuild_ns`,
    // it reflects the host-side cost model, not scheduling behaviour):
    // batched drains were introduced after the first capture corpus was
    // recorded, and filtering keeps those captures bit-exact.
    Ok(flight.with(|f| {
        f.events()
            .filter(|e| !matches!(e.kind, lottery_obs::EventKind::DirtyBatch { .. }))
            .cloned()
            .collect()
    }))
}

/// Captures a fresh window: runs `spec` under `config` and returns the
/// header-stamped log.
///
/// # Errors
///
/// Propagates [`drive`] failures.
pub fn record(spec: TraceSpec, config: &CaptureConfig) -> Result<ReplayLog, String> {
    let header = ReplayHeader {
        // `ParkMiller::new` normalises fixed-point seeds; stamping the
        // normalised state means replay re-seeds with the exact value the
        // first draw consumed.
        seed: ParkMiller::new(config.seed).state(),
        draws: 0,
        structure: structure_name(config.structure).to_string(),
        shards: config.shards,
        compensation: config.compensation,
        quantum_us: config.quantum_us,
        until_us: config.until_us,
        spec,
    };
    let events = drive(&header)?;
    Ok(ReplayLog { header, events })
}

/// Loads a [`TraceSpec`] corpus from a JSONL trace file on disk (the
/// [`TraceSpec::to_jsonl`] format: a `{"trace":1,...}` header line, one
/// job per line).
///
/// # Errors
///
/// Reports I/O failures with the path, and parse failures with their
/// line number.
pub fn load_trace(path: &str) -> Result<TraceSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    TraceSpec::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Captures a window driven by an external trace file: [`load_trace`]
/// then [`record`]. External tools can generate workload corpora and
/// have them stamped into replayable captures without touching Rust.
///
/// # Errors
///
/// Propagates [`load_trace`] and [`record`] failures.
pub fn record_trace_file(path: &str, config: &CaptureConfig) -> Result<ReplayLog, String> {
    record(load_trace(path)?, config)
}

/// The result of replaying a recorded window.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The event stream the replay produced.
    pub replayed: Vec<Event>,
    /// The first point where replay disagreed with the recording, if any.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Whether the replay reproduced the recording bit for bit (modulo
    /// the wall-clock `rebuild_ns` exemption).
    pub fn bit_exact(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Re-runs a recorded window from its header and diffs the streams.
#[derive(Debug, Clone)]
pub struct Replayer {
    log: ReplayLog,
}

impl Replayer {
    /// A replayer for `log`.
    pub fn new(log: ReplayLog) -> Self {
        Self { log }
    }

    /// The recording being replayed.
    pub fn log(&self) -> &ReplayLog {
        &self.log
    }

    /// Re-executes the capture and reports the first divergence, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`drive`] failures (corrupt or hand-edited headers).
    pub fn run(&self) -> Result<ReplayReport, String> {
        let replayed = drive(&self.log.header)?;
        let divergence = first_divergence(&self.log.events, &replayed);
        Ok(ReplayReport {
            replayed,
            divergence,
        })
    }
}

/// Per-job timing derived from a run's event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Index of the job in its [`TraceSpec`].
    pub job: usize,
    /// Thread id the job ran as.
    pub thread: u32,
    /// The job's spec arrival time. The spawn itself may happen later —
    /// `run_until_completing` lets in-flight quanta finish — and that delay is
    /// queueing the response time must count.
    pub arrival_us: u64,
    /// Simulated time the job exited.
    pub exit_us: u64,
    /// Response time: exit minus arrival.
    pub response_us: u64,
    /// Stretch: response time over service demand.
    pub stretch: f64,
}

/// Derives completed-job response times and stretches from an event
/// stream.
///
/// Jobs are matched to threads positionally: [`drive`] (and [`run_fcfs`])
/// spawn jobs in [`spawn_order`], so the `k`-th
/// [`EventKind::ThreadSpawn`] in the stream is the `k`-th job in that
/// order. Jobs still running when the stream ends are omitted.
pub fn job_outcomes(spec: &TraceSpec, events: &[Event]) -> Vec<JobOutcome> {
    let order = spawn_order(spec);
    let mut by_thread: HashMap<u32, usize> = HashMap::new();
    let mut spawned = 0usize;
    let mut out = Vec::new();
    for event in events {
        match event.kind {
            EventKind::ThreadSpawn { thread } => {
                if let Some(&(job, _)) = order.get(spawned) {
                    by_thread.insert(thread, job);
                }
                spawned += 1;
            }
            EventKind::ThreadExit { thread } => {
                if let Some(job) = by_thread.remove(&thread) {
                    let arrival_us = spec.jobs[job].arrival_us;
                    let response_us = event.time_us.saturating_sub(arrival_us);
                    let service = spec.jobs[job].service_us.max(1);
                    out.push(JobOutcome {
                        job,
                        thread,
                        arrival_us,
                        exit_us: event.time_us,
                        response_us,
                        stretch: response_us as f64 / service as f64,
                    });
                }
            }
            _ => {}
        }
    }
    out.sort_by_key(|o| o.job);
    out
}

/// Drives `spec` through a run-to-completion round-robin baseline:
/// FCFS-style admission, blind to tenants and tickets.
///
/// The quantum is one simulated day, so each job runs to completion (or
/// its sleep) in arrival order — the baseline lottery scheduling is
/// compared against in the `traces` experiment.
pub fn run_fcfs(spec: &TraceSpec, until_us: u64) -> Vec<Event> {
    let policy = RoundRobinPolicy::new(SimDuration::from_secs(86_400));
    let mut kernel = Kernel::new(policy);
    let flight = Shared::new(FlightRecorder::new(RING_CAPACITY));
    let bus = ProbeBus::enabled();
    bus.attach(flight.clone());
    kernel.set_probe_bus(bus);
    for &(i, job) in &spawn_order(spec) {
        kernel.run_until_completing(SimTime::from_us(job.arrival_us));
        kernel.spawn(
            format!("job{i}"),
            Box::new(Scripted::once(job_script(job))),
            (),
        );
    }
    kernel.run_until_completing(SimTime::from_us(until_us));
    flight.with(|f| f.events().cloned().collect())
}

/// Canonicalises a stream for comparison outside [`first_divergence`]
/// (e.g. hashing) — zeroes wall-clock fields.
pub fn canonical_stream(events: &[Event]) -> Vec<Event> {
    events.iter().cloned().map(canonical).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_obs::CurrencySnapshot;

    fn demo_spec() -> TraceSpec {
        TraceSpec {
            currencies: vec![
                CurrencySnapshot {
                    name: "alice".into(),
                    amount: 200,
                },
                CurrencySnapshot {
                    name: "bob".into(),
                    amount: 100,
                },
            ],
            jobs: vec![
                TraceJob {
                    arrival_us: 0,
                    service_us: 30_000,
                    sleep_us: 0,
                    tenant: "alice".into(),
                    tickets: 100,
                },
                TraceJob {
                    arrival_us: 5_000,
                    service_us: 20_000,
                    sleep_us: 4_000,
                    tenant: "bob".into(),
                    tickets: 100,
                },
                TraceJob {
                    arrival_us: 1_000,
                    service_us: 10_000,
                    sleep_us: 0,
                    tenant: "alice".into(),
                    tickets: 50,
                },
            ],
        }
    }

    fn demo_config(structure: SelectStructure, shards: u32) -> CaptureConfig {
        CaptureConfig {
            seed: 42,
            structure,
            shards,
            compensation: true,
            quantum_us: 0,
            until_us: 200_000,
        }
    }

    #[test]
    fn record_then_replay_is_bit_exact_uniprocessor() {
        for structure in [
            SelectStructure::List,
            SelectStructure::Tree,
            SelectStructure::Alias,
        ] {
            let log = record(demo_spec(), &demo_config(structure, 0)).unwrap();
            assert!(!log.events.is_empty());
            let report = Replayer::new(log).run().unwrap();
            assert!(
                report.bit_exact(),
                "{structure:?} diverged: {:?}",
                report.divergence
            );
        }
    }

    #[test]
    fn record_then_replay_is_bit_exact_distributed() {
        let log = record(demo_spec(), &demo_config(SelectStructure::Tree, 2)).unwrap();
        assert!(!log.events.is_empty());
        let report = Replayer::new(log).run().unwrap();
        assert!(report.bit_exact(), "diverged: {:?}", report.divergence);
    }

    #[test]
    fn trace_file_drives_a_capture() {
        let spec = demo_spec();
        let path = std::env::temp_dir().join("lottery-sim-trace-corpus.jsonl");
        std::fs::write(&path, spec.to_jsonl()).unwrap();
        let config = demo_config(SelectStructure::Tree, 0);
        let from_file = record_trace_file(path.to_str().unwrap(), &config).unwrap();
        // The file path is a pure input channel: the capture is identical
        // to recording the in-memory spec.
        let direct = record(spec, &config).unwrap();
        assert_eq!(from_file, direct);
        assert!(Replayer::new(from_file).run().unwrap().bit_exact());
    }

    #[test]
    fn trace_file_errors_carry_the_path() {
        let err = load_trace("/nonexistent/trace.jsonl").unwrap_err();
        assert!(err.contains("/nonexistent/trace.jsonl"), "{err}");
    }

    #[test]
    fn replay_round_trips_through_jsonl() {
        let log = record(demo_spec(), &demo_config(SelectStructure::List, 0)).unwrap();
        let parsed = ReplayLog::from_jsonl(&log.to_jsonl()).unwrap();
        let report = Replayer::new(parsed).run().unwrap();
        assert!(report.bit_exact());
    }

    #[test]
    fn mutated_recording_reports_first_divergence() {
        let mut log = record(demo_spec(), &demo_config(SelectStructure::List, 0)).unwrap();
        let target = log.events.len() / 2;
        log.events[target].time_us += 1;
        let report = Replayer::new(log).run().unwrap();
        let div = report.divergence.expect("mutation must surface");
        assert_eq!(div.index, target);
        assert!(div.recorded.is_some() && div.replayed.is_some());
    }

    #[test]
    fn different_seed_diverges() {
        let log = record(demo_spec(), &demo_config(SelectStructure::List, 0)).unwrap();
        let mut other = log.clone();
        other.header.seed = ParkMiller::new(log.header.seed + 1).state();
        let report = Replayer::new(other).run().unwrap();
        assert!(report.divergence.is_some());
    }

    #[test]
    fn outcomes_cover_all_finished_jobs() {
        let spec = demo_spec();
        let log = record(spec.clone(), &demo_config(SelectStructure::List, 0)).unwrap();
        let outcomes = job_outcomes(&spec, &log.events);
        assert_eq!(outcomes.len(), spec.jobs.len());
        for o in &outcomes {
            assert_eq!(o.arrival_us, spec.jobs[o.job].arrival_us);
            assert!(o.exit_us >= o.arrival_us + spec.jobs[o.job].service_us);
            assert!(o.stretch >= 1.0);
        }
    }

    #[test]
    fn fcfs_runs_jobs_in_arrival_order() {
        let spec = TraceSpec {
            currencies: Vec::new(),
            jobs: vec![
                TraceJob {
                    arrival_us: 0,
                    service_us: 10_000,
                    sleep_us: 0,
                    tenant: String::new(),
                    tickets: 1,
                },
                TraceJob {
                    arrival_us: 1_000,
                    service_us: 10_000,
                    sleep_us: 0,
                    tenant: String::new(),
                    tickets: 1_000,
                },
            ],
        };
        let events = run_fcfs(&spec, 100_000);
        let outcomes = job_outcomes(&spec, &events);
        assert_eq!(outcomes.len(), 2);
        // Tickets are ignored: the earlier arrival finishes first, and the
        // later one waits out the full first job.
        assert!(outcomes[0].exit_us <= outcomes[1].exit_us);
        assert!(outcomes[1].response_us >= 19_000);
    }

    #[test]
    fn structure_names_round_trip() {
        for s in [
            SelectStructure::List,
            SelectStructure::Tree,
            SelectStructure::Alias,
        ] {
            assert_eq!(parse_structure(structure_name(s)), Some(s));
        }
        assert_eq!(parse_structure("mtf"), None);
    }
}
