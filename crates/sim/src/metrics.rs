//! Kernel and per-thread measurements.
//!
//! The paper's evaluation reports iteration counts over time windows
//! (Figure 5), cumulative progress (Figures 6, 8, 9), query throughput and
//! response times (Figure 7), and scheduling overhead (Section 5.6). The
//! kernel feeds every dispatch into [`Metrics`]; the experiment harness
//! reads these out.

use std::collections::HashMap;

use lottery_stats::{ProgressSeries, Summary};

use crate::thread::ThreadId;
use crate::time::{SimDuration, SimTime};

/// Per-thread accounting.
#[derive(Debug, Default)]
pub struct ThreadMetrics {
    /// Times this thread was dispatched.
    pub dispatches: u64,
    /// Cumulative CPU time, sampled after every run segment:
    /// `(time_us, cpu_us)`.
    pub cpu_series: ProgressSeries,
    /// Ready-queue wait before each dispatch, in microseconds.
    pub wait_us: Summary,
    /// Ready-queue wait for dispatches that followed a preemption
    /// (quantum expiry or yield), in microseconds. A preempted thread
    /// was never asleep, so this is pure scheduling latency.
    pub preempt_wait_us: Summary,
    /// Ready-queue wait for dispatches that followed a true wake (spawn
    /// or sleep end), in microseconds.
    pub wake_wait_us: Summary,
    /// Completed synchronous RPCs: `(time_us, count)`.
    pub rpc_series: ProgressSeries,
    /// RPC response times, in microseconds (request sent to reply
    /// received).
    pub response_us: Summary,
    /// Every completed RPC: `(completion time_us, response time_us)`.
    pub responses: Vec<(u64, f64)>,
    /// Per-segment run lengths, in microseconds (how much CPU each
    /// dispatch actually consumed).
    pub run_us: Summary,
    /// Kernel-mutex waiting times, in microseconds (block to handoff).
    pub lock_wait_us: Summary,
    /// Times the thread blocked.
    pub blocks: u64,
    /// Times the thread yielded with quantum remaining.
    pub yields: u64,
}

impl ThreadMetrics {
    /// Completed RPC count.
    pub fn rpcs_completed(&self) -> u64 {
        self.rpc_series.final_value() as u64
    }

    /// Final cumulative CPU time in microseconds.
    pub fn cpu_us(&self) -> u64 {
        self.cpu_series.final_value() as u64
    }
}

/// Whole-kernel accounting.
#[derive(Debug, Default)]
pub struct Metrics {
    threads: HashMap<ThreadId, ThreadMetrics>,
    /// Scheduling decisions made (one per dispatch).
    pub decisions: u64,
    /// Dispatches that switched to a different thread than last time.
    pub context_switches: u64,
    /// Total time the CPU sat idle.
    pub idle: SimDuration,
    /// Total time spent on context-switch overhead.
    pub switch_overhead: SimDuration,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounting for one thread (creating it on first touch).
    pub(crate) fn thread_mut(&mut self, tid: ThreadId) -> &mut ThreadMetrics {
        self.threads.entry(tid).or_default()
    }

    /// Read-only per-thread metrics; `None` if the thread never ran.
    pub fn thread(&self, tid: ThreadId) -> Option<&ThreadMetrics> {
        self.threads.get(&tid)
    }

    /// Records a run segment: `tid` consumed `ran` ending at `now`, with
    /// `cpu_total` being its lifetime CPU after the segment.
    pub(crate) fn record_run(
        &mut self,
        tid: ThreadId,
        now: SimTime,
        ran: SimDuration,
        cpu_total: SimDuration,
    ) {
        let t = self.thread_mut(tid);
        t.run_us.record(ran.as_us() as f64);
        t.cpu_series.record(now.as_us(), cpu_total.as_us() as f64);
    }

    /// Records a dispatch and its ready-queue wait.
    pub(crate) fn record_dispatch(&mut self, tid: ThreadId, waited: SimDuration, switched: bool) {
        self.decisions += 1;
        if switched {
            self.context_switches += 1;
        }
        let t = self.thread_mut(tid);
        t.dispatches += 1;
        t.wait_us.record(waited.as_us() as f64);
    }

    /// Classifies a dispatch's ready-queue wait: preemption requeue
    /// (quantum expiry / yield) versus true wake (spawn or sleep end).
    pub(crate) fn record_wait_kind(&mut self, tid: ThreadId, waited: SimDuration, preempted: bool) {
        let t = self.thread_mut(tid);
        if preempted {
            t.preempt_wait_us.record(waited.as_us() as f64);
        } else {
            t.wake_wait_us.record(waited.as_us() as f64);
        }
    }

    /// Records a completed RPC for the client.
    pub(crate) fn record_rpc(&mut self, client: ThreadId, now: SimTime, response: SimDuration) {
        let t = self.thread_mut(client);
        let count = t.rpc_series.final_value() + 1.0;
        t.rpc_series.record(now.as_us(), count);
        t.response_us.record(response.as_us() as f64);
        t.responses.push((now.as_us(), response.as_us() as f64));
    }

    /// CPU time consumed by `tid` in microseconds (zero if unknown).
    pub fn cpu_us(&self, tid: ThreadId) -> u64 {
        self.thread(tid).map_or(0, ThreadMetrics::cpu_us)
    }

    /// The ratio of two threads' CPU consumption (`a / b`).
    ///
    /// Returns `None` when `b` has consumed nothing.
    pub fn cpu_ratio(&self, a: ThreadId, b: ThreadId) -> Option<f64> {
        let b_us = self.cpu_us(b);
        (b_us > 0).then(|| self.cpu_us(a) as f64 / b_us as f64)
    }

    /// Per-window CPU rates for a thread (fraction of each window spent on
    /// CPU), as Figure 5 plots.
    pub fn cpu_window_shares(&self, tid: ThreadId, window: SimDuration, end: SimTime) -> Vec<f64> {
        match self.thread(tid) {
            Some(t) => t.cpu_series.window_rates(window.as_us(), end.as_us()),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);

    #[test]
    fn run_segments_accumulate() {
        let mut m = Metrics::new();
        m.record_run(
            T0,
            SimTime::from_ms(100),
            SimDuration::from_ms(100),
            SimDuration::from_ms(100),
        );
        m.record_run(
            T0,
            SimTime::from_ms(300),
            SimDuration::from_ms(100),
            SimDuration::from_ms(200),
        );
        assert_eq!(m.cpu_us(T0), 200_000);
        assert_eq!(m.cpu_us(T1), 0);
        let t = m.thread(T0).unwrap();
        assert_eq!(t.run_us.count(), 2);
        assert_eq!(t.run_us.mean(), 100_000.0);
        assert_eq!(t.run_us.sum(), 200_000.0);
    }

    #[test]
    fn cpu_ratio() {
        let mut m = Metrics::new();
        m.record_run(
            T0,
            SimTime::from_ms(10),
            SimDuration::from_ms(10),
            SimDuration::from_ms(10),
        );
        m.record_run(
            T1,
            SimTime::from_ms(20),
            SimDuration::from_ms(5),
            SimDuration::from_ms(5),
        );
        assert_eq!(m.cpu_ratio(T0, T1), Some(2.0));
        let empty = Metrics::new();
        assert_eq!(empty.cpu_ratio(T0, T1), None);
    }

    #[test]
    fn dispatch_accounting() {
        let mut m = Metrics::new();
        m.record_dispatch(T0, SimDuration::from_ms(3), true);
        m.record_dispatch(T0, SimDuration::ZERO, false);
        assert_eq!(m.decisions, 2);
        assert_eq!(m.context_switches, 1);
        let t = m.thread(T0).unwrap();
        assert_eq!(t.dispatches, 2);
        assert_eq!(t.wait_us.mean(), 1_500.0);
    }

    #[test]
    fn rpc_accounting() {
        let mut m = Metrics::new();
        m.record_rpc(T0, SimTime::from_secs(1), SimDuration::from_ms(250));
        m.record_rpc(T0, SimTime::from_secs(2), SimDuration::from_ms(750));
        let t = m.thread(T0).unwrap();
        assert_eq!(t.rpcs_completed(), 2);
        assert_eq!(t.response_us.mean(), 500_000.0);
    }

    #[test]
    fn window_shares() {
        let mut m = Metrics::new();
        // 50% duty cycle: 50 ms CPU per 100 ms window.
        for i in 1..=10u64 {
            m.record_run(
                T0,
                SimTime::from_ms(i * 100),
                SimDuration::from_ms(50),
                SimDuration::from_ms(i * 50),
            );
        }
        let shares = m.cpu_window_shares(T0, SimDuration::from_ms(100), SimTime::from_ms(1000));
        assert_eq!(shares.len(), 10);
        for s in &shares[1..] {
            assert!((s - 0.5).abs() < 1e-12, "{shares:?}");
        }
        assert!(m
            .cpu_window_shares(T1, SimDuration::from_ms(100), SimTime::from_ms(1000))
            .is_empty());
    }
}
