//! The simulated kernel: dispatch loop, timers, and synchronous RPC.
//!
//! [`Kernel`] is a discrete-event simulator of a uniprocessor scheduler. It
//! owns the thread table, the clock, the wake-event queue, and the RPC
//! ports, and delegates every "who runs next?" decision to a
//! [`crate::sched::Policy`]. The structure mirrors how the paper's
//! prototype hooks into Mach: the policy sees spawns, enqueues, dispatch
//! picks, quantum charges, and RPC ticket transfers, and nothing else.
//!
//! # Dispatch model
//!
//! The kernel is event-driven: all future work — timer wakes and
//! scheduled spawns — lives in one [`EventQueue`], and time advances only
//! while a thread runs or the clock *jumps* to the next due event.
//! Sleeping and blocked threads cost zero scheduling decisions; lotteries
//! are dispatched only over the runnable set. A dispatched thread
//! executes until its quantum expires, it yields, it blocks, or it exits;
//! wake events that fire mid-quantum are processed when the quantum ends
//! (as on a real kernel, where the dispatcher notices wakeups at the next
//! scheduling point).
//!
//! [`Kernel::run_until`] is deadline-exact: a quantum that straddles the
//! deadline is split there, the clock and `metrics().idle` are exact at
//! the boundary, and the remainder of the quantum resumes on the next
//! call. [`Kernel::run_until_completing`] keeps the historical semantics
//! — the in-flight quantum completes, overshooting by at most one
//! quantum — which the capture/replay pipeline relies on for bit-exact
//! compatibility with recordings made before the event rebase.

use lottery_obs::{EventKind, ProbeBus, Shared};

use crate::event::{EventQueue, TimeMode};
use crate::ipc::{Message, Port, PortId};
use crate::metrics::Metrics;
use crate::sched::{EndReason, Policy};
use crate::thread::{BlockReason, Thread, ThreadId, ThreadState};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use crate::workload::{Burst, Workload, WorkloadCtx};

/// Future work owned by the kernel's event queue.
enum KernelEvent<S> {
    /// A sleeping thread's timer expires.
    Wake(ThreadId),
    /// A scheduled spawn (the trace-arrival path) comes due.
    Spawn {
        name: String,
        workload: Box<dyn Workload>,
        spec: S,
    },
}

/// A quantum split at a deadline-exact `run_until` boundary: the thread
/// stays `Running` and resumes with this much quantum budget left.
struct Inflight {
    tid: ThreadId,
    remaining: SimDuration,
}

/// A discrete-event uniprocessor kernel parameterized by its scheduling
/// policy.
pub struct Kernel<P: Policy> {
    clock: SimTime,
    threads: Vec<Thread>,
    policy: P,
    ports: Vec<Port>,
    /// All future work: timer wakes and scheduled spawns, ordered by
    /// `(when, seq)`.
    events: EventQueue<KernelEvent<P::Spec>>,
    /// A quantum split at a deadline boundary, resumed by the next run.
    inflight: Option<Inflight>,
    /// How the run loop discovers due events and passes idle time.
    time_mode: TimeMode,
    metrics: Metrics,
    /// Fixed cost charged (as wall time, not to any thread) whenever the
    /// dispatched thread differs from the previous one.
    context_switch_cost: SimDuration,
    /// Fixed cost charged on *every* dispatch decision, modelling the
    /// scheduler's selection work (Section 5.6's overhead accounting).
    dispatch_cost: SimDuration,
    last_dispatched: Option<ThreadId>,
    /// Structured probe pipeline; disabled by default. The kernel stamps
    /// its clock onto the bus before each emit so every layer's events
    /// carry coherent simulated timestamps.
    bus: ProbeBus,
    /// The scheduling-event trace, kept as one recorder on the bus (the
    /// pre-bus `Trace` API is preserved on top of it).
    trace: Option<Shared<Trace>>,
}

impl<P: Policy> Kernel<P> {
    /// Creates a kernel with the given policy and no context-switch cost.
    pub fn new(policy: P) -> Self {
        Self {
            clock: SimTime::ZERO,
            threads: Vec::new(),
            policy,
            ports: Vec::new(),
            events: EventQueue::new(),
            inflight: None,
            time_mode: TimeMode::Event,
            metrics: Metrics::new(),
            context_switch_cost: SimDuration::ZERO,
            dispatch_cost: SimDuration::ZERO,
            last_dispatched: None,
            bus: ProbeBus::disabled(),
            trace: None,
        }
    }

    /// Attaches a probe bus to the kernel and its policy. Events from the
    /// dispatch loop, the policy's lotteries, and the ledger's cache all
    /// flow through this one pipeline.
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.policy.set_probe_bus(bus.clone());
        self.bus = bus;
    }

    /// The kernel's probe bus (cheap to clone; clones share state).
    pub fn probe_bus(&self) -> &ProbeBus {
        &self.bus
    }

    /// Enables the scheduling-event flight recorder, keeping the most
    /// recent `capacity` events.
    ///
    /// Implemented as a [`Trace`] recorder attached to the probe bus; if
    /// no bus is attached yet, an enabled one is installed.
    pub fn enable_trace(&mut self, capacity: usize) {
        if !self.bus.is_enabled() {
            self.set_probe_bus(ProbeBus::enabled());
        }
        let shared = Shared::new(Trace::new(capacity));
        self.bus.attach(shared.clone());
        self.trace = Some(shared);
    }

    /// A snapshot of the recorded trace, if enabled.
    pub fn trace(&self) -> Option<Trace> {
        self.trace.as_ref().map(|t| t.with(|t| t.clone()))
    }

    /// Stamps the clock and emits onto the bus (payload built only when
    /// the bus is enabled).
    fn probe(&self, build: impl FnOnce() -> EventKind) {
        if self.bus.is_enabled() {
            self.bus.set_time_us(self.clock.as_us());
            self.bus.emit(build);
        }
    }

    /// Sets the time charged for switching between different threads.
    pub fn set_context_switch_cost(&mut self, cost: SimDuration) {
        self.context_switch_cost = cost;
    }

    /// Sets the time charged for every scheduling decision.
    pub fn set_dispatch_cost(&mut self, cost: SimDuration) {
        self.dispatch_cost = cost;
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Selects how the run loop discovers due events. In production
    /// builds the only [`TimeMode`] is `Event` (jump-to-next-event); the
    /// legacy stepping cost model survives in test builds solely for the
    /// stream-equivalence proof. Winner streams are identical in both.
    pub fn set_time_mode(&mut self, mode: TimeMode) {
        self.time_mode = mode;
    }

    /// The active time mode.
    pub fn time_mode(&self) -> TimeMode {
        self.time_mode
    }

    /// Pending future events (timer wakes and scheduled spawns).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// When the earliest pending event is due, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.events.peek_at()
    }

    /// The scheduling policy (for reading state).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The scheduling policy (for dynamic control, e.g. ticket inflation
    /// between [`Kernel::run_until`] slices).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Accumulated measurements.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The thread table entry for `tid`.
    ///
    /// # Panics
    ///
    /// Panics on an id not returned by [`Kernel::spawn`]; thread ids are
    /// kernel-issued, so this is a harness bug.
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.index() as usize]
    }

    /// Number of threads that have not exited.
    pub fn live_threads(&self) -> usize {
        self.threads.iter().filter(|t| !t.is_exited()).count()
    }

    /// Creates a new RPC port.
    pub fn create_port(&mut self, name: impl Into<String>) -> PortId {
        let id = PortId::new(self.ports.len() as u32);
        self.ports.push(Port::new(name));
        id
    }

    /// The port table entry for `port`.
    pub fn port(&self, port: PortId) -> &Port {
        &self.ports[port.index() as usize]
    }

    /// Spawns a ready thread with the given workload and policy spec.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        workload: Box<dyn Workload>,
        spec: P::Spec,
    ) -> ThreadId {
        let tid = ThreadId::from_index(self.threads.len() as u32);
        let mut thread = Thread::new(name, workload);
        thread.ready_since = Some(self.clock);
        self.threads.push(thread);
        self.policy.on_spawn(tid, spec);
        self.policy.enqueue(tid, self.clock);
        self.probe(|| EventKind::ThreadSpawn {
            thread: tid.index(),
        });
        tid
    }

    /// Spawns a thread that starts asleep, waking at `wake_at`.
    ///
    /// The thread is registered with the policy (it holds tickets and
    /// ledger state) but is *not* enqueued: until its timer fires it
    /// costs zero scheduling decisions — one pending queue entry, not a
    /// per-quantum poll. This is how large mostly-idle populations are
    /// set up cheaply.
    pub fn spawn_sleeping(
        &mut self,
        name: impl Into<String>,
        workload: Box<dyn Workload>,
        spec: P::Spec,
        wake_at: SimTime,
    ) -> ThreadId {
        let tid = ThreadId::from_index(self.threads.len() as u32);
        let mut thread = Thread::new(name, workload);
        thread.set_state(ThreadState::Blocked(BlockReason::Timer));
        thread.blocked_since = Some(self.clock);
        self.threads.push(thread);
        self.policy.on_spawn(tid, spec);
        self.events.push(wake_at, KernelEvent::Wake(tid));
        self.probe(|| EventKind::ThreadSpawn {
            thread: tid.index(),
        });
        tid
    }

    /// Schedules a spawn for a future instant via the event queue (the
    /// trace-arrival path): the thread does not exist — and costs
    /// nothing — until the arrival comes due.
    pub fn schedule_spawn_at(
        &mut self,
        at: SimTime,
        name: impl Into<String>,
        workload: Box<dyn Workload>,
        spec: P::Spec,
    ) {
        self.events.push(
            at,
            KernelEvent::Spawn {
                name: name.into(),
                workload,
                spec,
            },
        );
    }

    /// Terminates a thread from outside (the `thread_terminate` analogue).
    ///
    /// Call between [`Kernel::run_until`] slices. The thread's pending
    /// state is unwound: it leaves the run queue, its lock waits are
    /// cancelled (transfers repaid), a pending receive is deregistered,
    /// and an in-flight RPC it issued is answered into the void (the
    /// server completes normally; the reply finds no one). Idempotent.
    ///
    /// A kernel mutex *held* by the killed thread stays held forever —
    /// exactly the real-world hazard of killing lock holders; release
    /// before killing.
    pub fn kill(&mut self, tid: ThreadId) {
        let state = self.threads[tid.index() as usize].state();
        match state {
            ThreadState::Exited => return,
            ThreadState::Running => {
                // A deadline-exact run_until can return with a quantum
                // split in flight; killing that thread cancels the rest
                // of its quantum (the partial slice stays charged to its
                // cpu time, like a real kernel reaping a running victim).
                let inflight = self
                    .inflight
                    .take()
                    .expect("running thread outside run_until with no split in flight");
                debug_assert_eq!(
                    inflight.tid, tid,
                    "in-flight split tracks the running thread"
                );
            }
            ThreadState::Ready | ThreadState::Blocked(_) => {}
        }
        match state {
            ThreadState::Blocked(BlockReason::Receiving { port }) => {
                self.ports[port.index() as usize].remove_receiver(tid);
            }
            ThreadState::Blocked(BlockReason::AwaitingReply { port }) => {
                // An undelivered request dies with its sender; a request
                // already being served completes and its reply is dropped.
                self.ports[port.index() as usize].remove_messages_from(tid);
            }
            _ => {}
        }
        self.policy.cancel_lock_waits(tid);
        self.threads[tid.index() as usize].set_state(ThreadState::Exited);
        // `on_exit` drops the thread from the ready set and releases its
        // policy state (for the lottery policy: client and tickets).
        self.policy.on_exit(tid);
        self.probe(|| EventKind::QuantumEnd {
            thread: tid.index(),
            cpu: 0,
            reason: EndReason::Exited.as_str(),
            used_us: 0,
        });
        self.probe(|| EventKind::ThreadExit {
            thread: tid.index(),
        });
    }

    /// Runs the simulation until the clock reaches `deadline`, exactly.
    ///
    /// A quantum that straddles the deadline is split there: the clock
    /// and `metrics().idle` are exact at the boundary, the thread stays
    /// `Running`, and the remainder of its quantum resumes on the next
    /// call (one dispatch decision, one eventual charge — the split is
    /// invisible to the policy).
    ///
    /// The clock always reaches `deadline`, even when no runnable or
    /// sleeping threads remain — idle time passes, as on the SMP kernel —
    /// so threads spawned after a `run_until` enter at the deadline, not
    /// at whatever instant the last thread exited.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_until_inner(deadline, true);
    }

    /// Runs until `deadline` with the historical boundary semantics: any
    /// in-flight quantum *completes*, so the clock may overshoot by at
    /// most one quantum.
    ///
    /// The capture/replay pipeline drives the kernel through this method
    /// so recordings made before the event rebase replay bit-exactly.
    pub fn run_until_completing(&mut self, deadline: SimTime) {
        self.run_until_inner(deadline, false);
    }

    fn run_until_inner(&mut self, deadline: SimTime, exact: bool) {
        let limit = if exact { Some(deadline) } else { None };
        // Resume a quantum split at an earlier boundary before making any
        // new decision: the running thread continues first, as it would
        // on a real CPU.
        if let Some(inflight) = self.inflight.take() {
            if self.clock >= deadline {
                self.inflight = Some(inflight);
                return;
            }
            let quantum = self.policy.quantum();
            self.execute(inflight.tid, quantum, inflight.remaining, limit);
        }
        while self.clock < deadline {
            self.deliver_due_events();
            let Some(tid) = self.policy.pick(self.clock) else {
                // CPU idle: jump to the next pending event, or idle out
                // the remainder of the window if there is none. Stepping
                // mode instead ticks forward at most one quantum at a
                // time, as a tick-driven idle loop would.
                let Some(when) = self.next_event_due() else {
                    self.metrics.idle += deadline.since(self.clock);
                    self.clock = deadline;
                    return;
                };
                let target = when.min(deadline).max(self.clock);
                let next = match self.time_mode {
                    TimeMode::Event => target,
                    #[cfg(test)]
                    TimeMode::Stepping => {
                        let step = self.policy.quantum();
                        if step.is_zero() {
                            target
                        } else {
                            (self.clock + step).min(target)
                        }
                    }
                };
                self.metrics.idle += next.since(self.clock);
                self.clock = next;
                if when > deadline && self.clock >= deadline {
                    return;
                }
                continue;
            };
            self.dispatch(tid, limit);
        }
    }

    /// Runs for `span` more simulated time (deadline-exact).
    pub fn run_for(&mut self, span: SimDuration) {
        self.run_until(self.clock + span);
    }

    /// When the earliest pending event is due. In stepping mode this is
    /// a deliberate linear scan — the per-scheduling-point callout-list
    /// walk whose cost the event rebase removed.
    fn next_event_due(&self) -> Option<SimTime> {
        match self.time_mode {
            TimeMode::Event => self.events.peek_at(),
            #[cfg(test)]
            TimeMode::Stepping => self.events.scan().map(|s| s.at).min(),
        }
    }

    /// Delivers every event due at or before the clock, in `(when, seq)`
    /// order: wakes move threads onto the run queue; due arrivals spawn.
    fn deliver_due_events(&mut self) {
        while self.next_event_due().is_some_and(|at| at <= self.clock) {
            let sched = self.events.pop().expect("a due event is pending");
            match sched.event {
                KernelEvent::Wake(tid) => {
                    // A woken thread may have exited in the meantime (kill
                    // leaves its pending wake behind; it must fall on the
                    // floor, not resurrect the thread).
                    if self.threads[tid.index() as usize].is_exited() {
                        continue;
                    }
                    self.make_ready(tid, sched.at);
                }
                KernelEvent::Spawn {
                    name,
                    workload,
                    spec,
                } => {
                    self.spawn(name, workload, spec);
                }
            }
        }
    }

    /// Transitions a blocked thread to ready and informs the policy.
    fn make_ready(&mut self, tid: ThreadId, when: SimTime) {
        let thread = &mut self.threads[tid.index() as usize];
        debug_assert!(
            matches!(thread.state(), ThreadState::Blocked(_)),
            "make_ready on non-blocked {tid}: {:?}",
            thread.state()
        );
        if let (ThreadState::Blocked(BlockReason::External), Some(since)) =
            (thread.state(), thread.blocked_since)
        {
            let waited = when.saturating_since(since);
            self.metrics
                .thread_mut(tid)
                .lock_wait_us
                .record(waited.as_us() as f64);
        }
        let thread = &mut self.threads[tid.index() as usize];
        thread.blocked_since = None;
        thread.set_state(ThreadState::Ready);
        thread.ready_since = Some(when);
        self.policy.enqueue(tid, when);
        self.probe(|| EventKind::Wake {
            thread: tid.index(),
        });
    }

    /// Runs one dispatched thread until quantum expiry, yield, block,
    /// exit — or, with a `limit`, until the clock reaches the deadline,
    /// at which point the quantum is suspended in flight.
    fn dispatch(&mut self, tid: ThreadId, limit: Option<SimTime>) {
        let quantum = self.policy.quantum();
        let switched = self.last_dispatched != Some(tid);
        self.clock += self.dispatch_cost;
        self.metrics.switch_overhead += self.dispatch_cost;
        if switched && self.last_dispatched.is_some() {
            self.clock += self.context_switch_cost;
            self.metrics.switch_overhead += self.context_switch_cost;
        }
        self.last_dispatched = Some(tid);

        let waited = {
            let thread = &mut self.threads[tid.index() as usize];
            let since = thread.ready_since.take().unwrap_or(self.clock);
            thread.set_state(ThreadState::Running);
            thread.quantum_used = SimDuration::ZERO;
            self.clock.saturating_since(since)
        };
        self.metrics.record_dispatch(tid, waited, switched);
        let queue_depth = self.policy.ready_len() as u32;
        self.probe(|| EventKind::Dispatch {
            thread: tid.index(),
            cpu: 0,
            wait_us: waited.as_us(),
            queue_depth,
        });

        self.execute(tid, quantum, quantum, limit);
    }

    /// Executes `tid`'s quantum with `remaining` budget left, clipping at
    /// `limit`. A clipped quantum is suspended (thread stays `Running`,
    /// no charge) and resumed by the next run; the split is one dispatch
    /// decision and one eventual charge from the policy's point of view.
    fn execute(
        &mut self,
        tid: ThreadId,
        quantum: SimDuration,
        mut remaining: SimDuration,
        limit: Option<SimTime>,
    ) {
        loop {
            // Suspend at the deadline with quantum budget still unspent.
            if let Some(limit) = limit {
                if self.clock >= limit {
                    self.inflight = Some(Inflight { tid, remaining });
                    return;
                }
            }

            // Refill the burst from the workload when exhausted.
            if self.threads[tid.index() as usize].burst_remaining.is_zero() {
                match self.next_burst(tid) {
                    BurstOutcome::Continue => continue,
                    BurstOutcome::EndQuantum(reason) => {
                        self.end_quantum(tid, quantum, reason);
                        return;
                    }
                }
            }

            // Run the burst for as long as the quantum (and the deadline)
            // allows.
            let to_limit = limit.map(|l| l.since(self.clock));
            let thread = &mut self.threads[tid.index() as usize];
            let mut slice = thread.burst_remaining.min(remaining);
            if let Some(to_limit) = to_limit {
                slice = slice.min(to_limit);
            }
            debug_assert!(!slice.is_zero());
            thread.burst_remaining -= slice;
            thread.cpu_time += slice;
            thread.quantum_used += slice;
            self.clock += slice;
            remaining -= slice;
            let cpu_total = thread.cpu_time;
            self.metrics.record_run(tid, self.clock, slice, cpu_total);

            if remaining.is_zero() {
                self.end_quantum(tid, quantum, EndReason::QuantumExpired);
                return;
            }
        }
    }

    /// Asks the workload for its next action and applies it.
    fn next_burst(&mut self, tid: ThreadId) -> BurstOutcome {
        let burst = {
            let thread = &mut self.threads[tid.index() as usize];
            let ctx = WorkloadCtx {
                now: self.clock,
                cpu_time: thread.cpu_time,
                current_request_service: thread.current_request.map(|m| m.service),
            };
            thread.workload_mut().next(&ctx)
        };
        match burst {
            Burst::Run(d) => {
                if d.is_zero() {
                    // Zero-length runs are treated as yields to guarantee
                    // forward progress.
                    return BurstOutcome::EndQuantum(EndReason::Yielded);
                }
                self.threads[tid.index() as usize].burst_remaining = d;
                BurstOutcome::Continue
            }
            Burst::Yield => BurstOutcome::EndQuantum(EndReason::Yielded),
            Burst::Sleep(d) => {
                self.block(tid, BlockReason::Timer);
                self.schedule_wake(tid, self.clock + d);
                BurstOutcome::EndQuantum(EndReason::Blocked)
            }
            Burst::Request { port, service } => {
                self.block(tid, BlockReason::AwaitingReply { port });
                let message = Message {
                    client: tid,
                    service,
                    sent_at: self.clock,
                };
                if let Some(server) = self.ports[port.index() as usize].offer(message) {
                    self.deliver(message, server);
                }
                BurstOutcome::EndQuantum(EndReason::Blocked)
            }
            Burst::Receive { port } => {
                match self.ports[port.index() as usize].receive(tid) {
                    Some(message) => {
                        // A request was already queued: take it and keep
                        // running within this quantum.
                        self.threads[tid.index() as usize].current_request = Some(message);
                        self.policy.transfer(message.client, tid);
                        self.probe(|| EventKind::RpcDeliver {
                            client: message.client.index(),
                            server: tid.index(),
                        });
                        BurstOutcome::Continue
                    }
                    None => {
                        self.block(tid, BlockReason::Receiving { port });
                        BurstOutcome::EndQuantum(EndReason::Blocked)
                    }
                }
            }
            Burst::Reply => {
                let message = self.threads[tid.index() as usize]
                    .current_request
                    .take()
                    .expect("Burst::Reply with no request in service");
                self.probe(|| EventKind::RpcReply {
                    client: message.client.index(),
                    server: tid.index(),
                });
                self.policy.untransfer(message.client, tid);
                // The client may have been killed while waiting; its
                // reply then falls on the floor, as in real kernels.
                if !self.threads[message.client.index() as usize].is_exited() {
                    let response = self.clock.since(message.sent_at);
                    self.metrics
                        .record_rpc(message.client, self.clock, response);
                    self.make_ready(message.client, self.clock);
                }
                BurstOutcome::Continue
            }
            Burst::Lock { lock } => {
                if self.policy.lock(tid, lock) {
                    BurstOutcome::Continue
                } else {
                    self.block(tid, BlockReason::External);
                    BurstOutcome::EndQuantum(EndReason::Blocked)
                }
            }
            Burst::Unlock { lock } => {
                if let Some(next) = self.policy.unlock(tid, lock) {
                    self.make_ready(next, self.clock);
                }
                BurstOutcome::Continue
            }
            Burst::Exit => {
                let thread = &mut self.threads[tid.index() as usize];
                thread.set_state(ThreadState::Exited);
                BurstOutcome::EndQuantum(EndReason::Exited)
            }
        }
    }

    /// Finishes a dispatch: charges the policy and re-enqueues a still
    /// runnable thread.
    fn end_quantum(&mut self, tid: ThreadId, quantum: SimDuration, reason: EndReason) {
        let used = self.threads[tid.index() as usize].quantum_used;
        self.probe(|| EventKind::QuantumEnd {
            thread: tid.index(),
            cpu: 0,
            reason: reason.as_str(),
            used_us: used.as_us(),
        });
        if used.is_zero() && reason == EndReason::Yielded {
            // A thread that yields without consuming CPU would otherwise
            // let the clock stand still forever; bill one microsecond of
            // dispatch overhead, as a real kernel's trap cost would.
            self.clock += SimDuration::from_us(1);
        }
        self.policy.charge(tid, used, quantum, reason);
        match reason {
            EndReason::QuantumExpired | EndReason::Yielded => {
                if reason == EndReason::Yielded {
                    self.metrics.thread_mut(tid).yields += 1;
                }
                let thread = &mut self.threads[tid.index() as usize];
                thread.set_state(ThreadState::Ready);
                thread.ready_since = Some(self.clock);
                self.policy.enqueue(tid, self.clock);
            }
            EndReason::Blocked => {
                self.metrics.thread_mut(tid).blocks += 1;
            }
            EndReason::Exited => {
                self.policy.on_exit(tid);
                self.probe(|| EventKind::ThreadExit {
                    thread: tid.index(),
                });
            }
        }
    }

    /// Marks a running thread blocked.
    fn block(&mut self, tid: ThreadId, reason: BlockReason) {
        let thread = &mut self.threads[tid.index() as usize];
        debug_assert_eq!(thread.state(), ThreadState::Running);
        thread.blocked_since = Some(self.clock);
        thread.set_state(ThreadState::Blocked(reason));
    }

    /// Delivers `message` to a server thread that was blocked in receive.
    fn deliver(&mut self, message: Message, server: ThreadId) {
        let thread = &mut self.threads[server.index() as usize];
        debug_assert!(
            matches!(
                thread.state(),
                ThreadState::Blocked(BlockReason::Receiving { .. })
            ),
            "delivery to non-receiving thread"
        );
        thread.current_request = Some(message);
        self.policy.transfer(message.client, server);
        self.probe(|| EventKind::RpcDeliver {
            client: message.client.index(),
            server: server.index(),
        });
        self.make_ready(server, self.clock);
    }

    /// Schedules a timer wake for `tid` at `when`.
    fn schedule_wake(&mut self, tid: ThreadId, when: SimTime) {
        self.events.push(when, KernelEvent::Wake(tid));
    }
}

/// The kernel is itself an event source: due *now* while any thread is
/// runnable (the CPU has immediate work), otherwise at its earliest
/// pending event (timer wake, scheduled arrival), and idle only when
/// both are exhausted. A shared loop can thus compose the CPU with
/// device models (disk, switch) and periodic controllers (cluster
/// reconciliation) and jump the common clock straight to the earliest
/// tick across all of them.
impl<P: Policy> crate::event::EventSource for Kernel<P> {
    fn next_due(&self) -> Option<SimTime> {
        let runnable = self
            .threads
            .iter()
            .any(|t| matches!(t.state(), ThreadState::Ready | ThreadState::Running));
        if runnable {
            return Some(self.clock);
        }
        self.next_event_at()
    }
}

enum BurstOutcome {
    /// Keep executing within the current quantum.
    Continue,
    /// The dispatch is over for the given reason.
    EndQuantum(EndReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::rr::RoundRobinPolicy;
    use crate::workload::{ComputeBound, FiniteJob, IoBound, RpcClient, RpcServer, Scripted};

    fn rr_kernel(quantum_ms: u64) -> Kernel<RoundRobinPolicy> {
        Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(quantum_ms)))
    }

    #[test]
    fn single_compute_thread_uses_all_cpu() {
        let mut k = rr_kernel(100);
        let t = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(1));
        assert_eq!(k.metrics().cpu_us(t), 1_000_000);
        assert_eq!(k.now(), SimTime::from_secs(1));
    }

    #[test]
    fn round_robin_splits_cpu_evenly() {
        let mut k = rr_kernel(100);
        let a = k.spawn("a", Box::new(ComputeBound), ());
        let b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(10));
        let ra = k.metrics().cpu_us(a) as f64;
        let rb = k.metrics().cpu_us(b) as f64;
        assert!((ra / rb - 1.0).abs() < 0.02, "{ra} vs {rb}");
    }

    #[test]
    fn finite_job_exits() {
        let mut k = rr_kernel(100);
        let t = k.spawn(
            "job",
            Box::new(FiniteJob::new(SimDuration::from_ms(250))),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        assert!(k.thread(t).is_exited());
        assert_eq!(k.metrics().cpu_us(t), 250_000);
        assert_eq!(k.live_threads(), 0);
        // Idle time passes after the last exit: the clock still reaches
        // the deadline (matching the SMP kernel), with the remainder
        // accounted as idle.
        assert_eq!(k.now(), SimTime::from_secs(1));
        assert_eq!(k.metrics().idle, SimDuration::from_ms(750));
    }

    #[test]
    fn sleeping_thread_wakes_and_idle_time_counted() {
        let mut k = rr_kernel(100);
        let t = k.spawn(
            "io",
            Box::new(IoBound::new(
                SimDuration::from_ms(10),
                SimDuration::from_ms(90),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        // 10 ms CPU per 100 ms period.
        let cpu = k.metrics().cpu_us(t);
        assert_eq!(cpu, 100_000, "10% duty cycle over 1s");
        assert_eq!(k.metrics().idle, SimDuration::from_ms(900));
    }

    #[test]
    fn run_until_is_resumable() {
        let mut k = rr_kernel(100);
        let t = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_ms(300));
        let early = k.metrics().cpu_us(t);
        k.run_until(SimTime::from_ms(600));
        assert_eq!(k.metrics().cpu_us(t) - early, 300_000);
    }

    #[test]
    fn rpc_round_trip() {
        let mut k = rr_kernel(100);
        let port = k.create_port("db");
        let server = k.spawn("server", Box::new(RpcServer::new(port)), ());
        let client = k.spawn(
            "client",
            Box::new(RpcClient::new(
                port,
                SimDuration::from_ms(10),
                SimDuration::from_ms(30),
                Some(5),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(5));
        let m = k.metrics().thread(client).unwrap();
        assert_eq!(m.rpcs_completed(), 5);
        // Client thinks 10 ms per request; server burns 30 ms per request.
        assert_eq!(k.metrics().cpu_us(client), 5 * 10_000);
        assert_eq!(k.metrics().cpu_us(server), 5 * 30_000);
        assert!(k.thread(client).is_exited());
        // The server ends up parked in receive.
        assert_eq!(k.port(port).idle_receivers(), 1);
        assert_eq!(k.port(port).backlog(), 0);
        // Response time ≈ service time (no contention).
        assert!(m.response_us.mean() >= 30_000.0);
    }

    #[test]
    fn rpc_queues_when_server_busy() {
        let mut k = rr_kernel(100);
        let port = k.create_port("db");
        let _server = k.spawn("server", Box::new(RpcServer::new(port)), ());
        let c1 = k.spawn(
            "c1",
            Box::new(RpcClient::new(
                port,
                SimDuration::ZERO,
                SimDuration::from_ms(40),
                Some(3),
            )),
            (),
        );
        let c2 = k.spawn(
            "c2",
            Box::new(RpcClient::new(
                port,
                SimDuration::ZERO,
                SimDuration::from_ms(40),
                Some(3),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(5));
        assert_eq!(k.metrics().thread(c1).unwrap().rpcs_completed(), 3);
        assert_eq!(k.metrics().thread(c2).unwrap().rpcs_completed(), 3);
    }

    #[test]
    fn context_switch_cost_accumulates() {
        let mut k = rr_kernel(100);
        k.set_context_switch_cost(SimDuration::from_us(100));
        let _a = k.spawn("a", Box::new(ComputeBound), ());
        let _b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(1));
        assert!(k.metrics().switch_overhead > SimDuration::ZERO);
        assert!(k.metrics().context_switches > 5);
    }

    #[test]
    fn yield_keeps_thread_runnable() {
        let mut k = rr_kernel(100);
        let t = k.spawn(
            "yielder",
            Box::new(Scripted::repeat(vec![
                Burst::Run(SimDuration::from_ms(10)),
                Burst::Yield,
            ])),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        let m = k.metrics().thread(t).unwrap();
        assert!(m.yields > 50, "yields: {}", m.yields);
        assert_eq!(k.metrics().cpu_us(t), 1_000_000);
    }

    #[test]
    fn zero_length_run_does_not_hang() {
        let mut k = rr_kernel(100);
        let _t = k.spawn(
            "degenerate",
            Box::new(Scripted::repeat(vec![Burst::Run(SimDuration::ZERO)])),
            (),
        );
        k.run_until(SimTime::from_ms(100));
        // Termination is the assertion: zero-length bursts become yields.
    }

    #[test]
    fn idle_kernel_passes_time() {
        let mut k = rr_kernel(100);
        k.run_until(SimTime::from_secs(5));
        // An empty machine idles to the deadline so later spawns enter at
        // the time the caller asked for, not at zero.
        assert_eq!(k.now(), SimTime::from_secs(5));
        assert_eq!(k.metrics().idle, SimDuration::from_secs(5));
    }

    #[test]
    fn run_until_splits_quantum_at_deadline() {
        let mut k = rr_kernel(100);
        let t = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_ms(150));
        // The second quantum straddles 150 ms: the clock and the cpu
        // charge stop exactly at the boundary, with the thread still
        // running its split quantum.
        assert_eq!(k.now(), SimTime::from_ms(150));
        assert_eq!(k.metrics().cpu_us(t), 150_000);
        assert_eq!(k.thread(t).state(), ThreadState::Running);
        k.run_until(SimTime::from_ms(400));
        assert_eq!(k.now(), SimTime::from_ms(400));
        assert_eq!(k.metrics().cpu_us(t), 400_000);
    }

    #[test]
    fn split_quantum_is_one_decision() {
        let mut k = rr_kernel(100);
        let _t = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_ms(150));
        let mid = k.metrics().decisions;
        k.run_until(SimTime::from_ms(200));
        // Resuming the split does not re-dispatch: quanta 0-100 and
        // 100-200 are exactly two decisions however the window is cut.
        assert_eq!(k.metrics().decisions, mid);
        assert_eq!(k.metrics().decisions, 2);
    }

    #[test]
    fn run_until_completing_keeps_overshoot_semantics() {
        let mut k = rr_kernel(100);
        let t = k.spawn("cpu", Box::new(ComputeBound), ());
        // Compat: the historical boundary lets the in-flight quantum
        // finish, overshooting 150 ms to the 200 ms quantum edge.
        k.run_until_completing(SimTime::from_ms(150));
        assert_eq!(k.now(), SimTime::from_ms(200));
        assert_eq!(k.metrics().cpu_us(t), 200_000);
    }

    #[test]
    fn idle_is_exact_at_deadline() {
        let mut k = rr_kernel(100);
        let _t = k.spawn(
            "sleeper",
            Box::new(Scripted::once(vec![Burst::Sleep(SimDuration::from_secs(
                10,
            ))])),
            (),
        );
        k.run_until(SimTime::from_ms(4_500));
        assert_eq!(k.now(), SimTime::from_ms(4_500));
        assert_eq!(k.metrics().idle, SimDuration::from_ms(4_500));
    }

    #[test]
    fn spawn_sleeping_costs_nothing_until_wake() {
        let mut k = rr_kernel(100);
        let t = k.spawn_sleeping(
            "late",
            Box::new(FiniteJob::new(SimDuration::from_ms(50))),
            (),
            SimTime::from_secs(1),
        );
        assert_eq!(k.pending_events(), 1);
        k.run_until(SimTime::from_ms(500));
        assert_eq!(k.metrics().cpu_us(t), 0);
        assert_eq!(k.metrics().decisions, 0);
        assert_eq!(k.next_event_at(), Some(SimTime::from_secs(1)));
        k.run_until(SimTime::from_secs(2));
        assert_eq!(k.metrics().cpu_us(t), 50_000);
        assert!(k.thread(t).is_exited());
    }

    #[test]
    fn scheduled_spawn_arrives_on_time() {
        let mut k = rr_kernel(100);
        k.schedule_spawn_at(
            SimTime::from_ms(250),
            "arrival",
            Box::new(FiniteJob::new(SimDuration::from_ms(100))),
            (),
        );
        assert_eq!(k.pending_events(), 1);
        k.run_until(SimTime::from_secs(1));
        assert_eq!(k.live_threads(), 0);
        assert_eq!(k.metrics().idle, SimDuration::from_ms(900));
    }

    #[test]
    fn stepping_mode_matches_event_mode() {
        let run = |mode: TimeMode| {
            let mut k = rr_kernel(100);
            k.set_time_mode(mode);
            k.enable_trace(4096);
            let _io = k.spawn(
                "io",
                Box::new(IoBound::new(
                    SimDuration::from_ms(30),
                    SimDuration::from_ms(170),
                )),
                (),
            );
            let _job = k.spawn(
                "job",
                Box::new(FiniteJob::new(SimDuration::from_ms(400))),
                (),
            );
            k.run_until(SimTime::from_secs(3));
            let trace: Vec<_> = k.trace().unwrap().events().copied().collect();
            (k.now(), k.metrics().idle, trace)
        };
        // Stepping mode pays a linear callout scan per scheduling point
        // and quantum-granular idle, but delivers the same events in the
        // same order: the observable streams are identical.
        assert_eq!(run(TimeMode::Event), run(TimeMode::Stepping));
    }

    #[test]
    fn kill_cancels_split_quantum() {
        let mut k = rr_kernel(100);
        let a = k.spawn("a", Box::new(ComputeBound), ());
        let b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_ms(150));
        // One of the two is mid-quantum at the split; killing it must
        // cancel the in-flight remainder and leave the survivor whole.
        let (victim, survivor) = if k.thread(a).state() == ThreadState::Running {
            (a, b)
        } else {
            (b, a)
        };
        k.kill(victim);
        let before = k.metrics().cpu_us(survivor);
        k.run_until(SimTime::from_ms(1_150));
        assert_eq!(k.metrics().cpu_us(survivor) - before, 1_000_000);
        assert!(k.thread(victim).is_exited());
    }

    #[test]
    fn wake_past_deadline_stops_at_deadline() {
        let mut k = rr_kernel(100);
        let _t = k.spawn(
            "sleeper",
            Box::new(Scripted::once(vec![Burst::Sleep(SimDuration::from_secs(
                10,
            ))])),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        assert_eq!(k.now(), SimTime::from_secs(1));
        k.run_until(SimTime::from_secs(20));
        assert!(k.now() >= SimTime::from_secs(10));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::sched::rr::RoundRobinPolicy;
    use crate::trace::TraceEvent;
    use crate::workload::{RpcClient, RpcServer, Scripted};

    #[test]
    fn trace_captures_rpc_sequence() {
        let mut k = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
        k.enable_trace(64);
        let port = k.create_port("svc");
        let server = k.spawn("server", Box::new(RpcServer::new(port)), ());
        let client = k.spawn(
            "client",
            Box::new(RpcClient::new(
                port,
                SimDuration::from_ms(5),
                SimDuration::from_ms(10),
                Some(1),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        let trace = k.trace().unwrap();
        let kinds: Vec<TraceEvent> = trace.events().map(|&(_, e)| e).collect();
        assert!(kinds.contains(&TraceEvent::Spawn(server)));
        assert!(kinds.contains(&TraceEvent::Spawn(client)));
        assert!(kinds.contains(&TraceEvent::Deliver { client, server }));
        assert!(kinds.contains(&TraceEvent::Reply { client, server }));
        // The delivery precedes the reply.
        let deliver = kinds
            .iter()
            .position(|&e| e == TraceEvent::Deliver { client, server })
            .unwrap();
        let reply = kinds
            .iter()
            .position(|&e| e == TraceEvent::Reply { client, server })
            .unwrap();
        assert!(deliver < reply);
        assert!(trace.for_thread(client).len() >= 4);
    }

    #[test]
    fn trace_records_yields_and_wakes() {
        let mut k = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
        k.enable_trace(16);
        let t = k.spawn(
            "sleeper",
            Box::new(Scripted::once(vec![
                Burst::Run(SimDuration::from_ms(10)),
                Burst::Sleep(SimDuration::from_ms(20)),
                Burst::Run(SimDuration::from_ms(10)),
            ])),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        let kinds: Vec<TraceEvent> = k.trace().unwrap().events().map(|&(_, e)| e).collect();
        assert!(kinds.contains(&TraceEvent::QuantumEnd(t, EndReason::Blocked)));
        assert!(kinds.contains(&TraceEvent::Wake(t)));
        assert!(kinds.contains(&TraceEvent::QuantumEnd(t, EndReason::Exited)));
    }

    #[test]
    fn disabled_trace_is_none() {
        let k = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
        assert!(k.trace().is_none());
    }
}
