//! The simulated kernel: dispatch loop, timers, and synchronous RPC.
//!
//! [`Kernel`] is a discrete-event simulator of a uniprocessor scheduler. It
//! owns the thread table, the clock, the wake-event queue, and the RPC
//! ports, and delegates every "who runs next?" decision to a
//! [`crate::sched::Policy`]. The structure mirrors how the paper's
//! prototype hooks into Mach: the policy sees spawns, enqueues, dispatch
//! picks, quantum charges, and RPC ticket transfers, and nothing else.
//!
//! # Dispatch model
//!
//! Time advances only while a thread runs or the CPU idles to the next
//! timer. A dispatched thread executes until its quantum expires, it
//! yields, it blocks, or it exits; wake events that fire mid-quantum are
//! processed when the quantum ends (as on a real tick-driven kernel, where
//! the dispatcher notices wakeups at the next scheduling point). Calling
//! [`Kernel::run_until`] completes any in-flight quantum that straddles the
//! deadline, so the clock may overshoot by at most one quantum.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lottery_obs::{EventKind, ProbeBus, Shared};

use crate::ipc::{Message, Port, PortId};
use crate::metrics::Metrics;
use crate::sched::{EndReason, Policy};
use crate::thread::{BlockReason, Thread, ThreadId, ThreadState};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use crate::workload::{Burst, Workload, WorkloadCtx};

/// A discrete-event uniprocessor kernel parameterized by its scheduling
/// policy.
pub struct Kernel<P: Policy> {
    clock: SimTime,
    threads: Vec<Thread>,
    policy: P,
    ports: Vec<Port>,
    /// Pending timer wakes: `(when, sequence, thread)`.
    wakes: BinaryHeap<Reverse<(SimTime, u64, ThreadId)>>,
    seq: u64,
    metrics: Metrics,
    /// Fixed cost charged (as wall time, not to any thread) whenever the
    /// dispatched thread differs from the previous one.
    context_switch_cost: SimDuration,
    /// Fixed cost charged on *every* dispatch decision, modelling the
    /// scheduler's selection work (Section 5.6's overhead accounting).
    dispatch_cost: SimDuration,
    last_dispatched: Option<ThreadId>,
    /// Structured probe pipeline; disabled by default. The kernel stamps
    /// its clock onto the bus before each emit so every layer's events
    /// carry coherent simulated timestamps.
    bus: ProbeBus,
    /// The scheduling-event trace, kept as one recorder on the bus (the
    /// pre-bus `Trace` API is preserved on top of it).
    trace: Option<Shared<Trace>>,
}

impl<P: Policy> Kernel<P> {
    /// Creates a kernel with the given policy and no context-switch cost.
    pub fn new(policy: P) -> Self {
        Self {
            clock: SimTime::ZERO,
            threads: Vec::new(),
            policy,
            ports: Vec::new(),
            wakes: BinaryHeap::new(),
            seq: 0,
            metrics: Metrics::new(),
            context_switch_cost: SimDuration::ZERO,
            dispatch_cost: SimDuration::ZERO,
            last_dispatched: None,
            bus: ProbeBus::disabled(),
            trace: None,
        }
    }

    /// Attaches a probe bus to the kernel and its policy. Events from the
    /// dispatch loop, the policy's lotteries, and the ledger's cache all
    /// flow through this one pipeline.
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.policy.set_probe_bus(bus.clone());
        self.bus = bus;
    }

    /// The kernel's probe bus (cheap to clone; clones share state).
    pub fn probe_bus(&self) -> &ProbeBus {
        &self.bus
    }

    /// Enables the scheduling-event flight recorder, keeping the most
    /// recent `capacity` events.
    ///
    /// Implemented as a [`Trace`] recorder attached to the probe bus; if
    /// no bus is attached yet, an enabled one is installed.
    pub fn enable_trace(&mut self, capacity: usize) {
        if !self.bus.is_enabled() {
            self.set_probe_bus(ProbeBus::enabled());
        }
        let shared = Shared::new(Trace::new(capacity));
        self.bus.attach(shared.clone());
        self.trace = Some(shared);
    }

    /// A snapshot of the recorded trace, if enabled.
    pub fn trace(&self) -> Option<Trace> {
        self.trace.as_ref().map(|t| t.with(|t| t.clone()))
    }

    /// Stamps the clock and emits onto the bus (payload built only when
    /// the bus is enabled).
    fn probe(&self, build: impl FnOnce() -> EventKind) {
        if self.bus.is_enabled() {
            self.bus.set_time_us(self.clock.as_us());
            self.bus.emit(build);
        }
    }

    /// Sets the time charged for switching between different threads.
    pub fn set_context_switch_cost(&mut self, cost: SimDuration) {
        self.context_switch_cost = cost;
    }

    /// Sets the time charged for every scheduling decision.
    pub fn set_dispatch_cost(&mut self, cost: SimDuration) {
        self.dispatch_cost = cost;
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The scheduling policy (for reading state).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The scheduling policy (for dynamic control, e.g. ticket inflation
    /// between [`Kernel::run_until`] slices).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Accumulated measurements.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The thread table entry for `tid`.
    ///
    /// # Panics
    ///
    /// Panics on an id not returned by [`Kernel::spawn`]; thread ids are
    /// kernel-issued, so this is a harness bug.
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.index() as usize]
    }

    /// Number of threads that have not exited.
    pub fn live_threads(&self) -> usize {
        self.threads.iter().filter(|t| !t.is_exited()).count()
    }

    /// Creates a new RPC port.
    pub fn create_port(&mut self, name: impl Into<String>) -> PortId {
        let id = PortId::new(self.ports.len() as u32);
        self.ports.push(Port::new(name));
        id
    }

    /// The port table entry for `port`.
    pub fn port(&self, port: PortId) -> &Port {
        &self.ports[port.index() as usize]
    }

    /// Spawns a ready thread with the given workload and policy spec.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        workload: Box<dyn Workload>,
        spec: P::Spec,
    ) -> ThreadId {
        let tid = ThreadId::from_index(self.threads.len() as u32);
        let mut thread = Thread::new(name, workload);
        thread.ready_since = Some(self.clock);
        self.threads.push(thread);
        self.policy.on_spawn(tid, spec);
        self.policy.enqueue(tid, self.clock);
        self.probe(|| EventKind::ThreadSpawn {
            thread: tid.index(),
        });
        tid
    }

    /// Terminates a thread from outside (the `thread_terminate` analogue).
    ///
    /// Call between [`Kernel::run_until`] slices. The thread's pending
    /// state is unwound: it leaves the run queue, its lock waits are
    /// cancelled (transfers repaid), a pending receive is deregistered,
    /// and an in-flight RPC it issued is answered into the void (the
    /// server completes normally; the reply finds no one). Idempotent.
    ///
    /// A kernel mutex *held* by the killed thread stays held forever —
    /// exactly the real-world hazard of killing lock holders; release
    /// before killing.
    pub fn kill(&mut self, tid: ThreadId) {
        let state = self.threads[tid.index() as usize].state();
        match state {
            ThreadState::Exited => return,
            ThreadState::Running => {
                // run_until never returns with a thread mid-dispatch.
                unreachable!("kill during dispatch")
            }
            ThreadState::Ready | ThreadState::Blocked(_) => {}
        }
        match state {
            ThreadState::Blocked(BlockReason::Receiving { port }) => {
                self.ports[port.index() as usize].remove_receiver(tid);
            }
            ThreadState::Blocked(BlockReason::AwaitingReply { port }) => {
                // An undelivered request dies with its sender; a request
                // already being served completes and its reply is dropped.
                self.ports[port.index() as usize].remove_messages_from(tid);
            }
            _ => {}
        }
        self.policy.cancel_lock_waits(tid);
        self.threads[tid.index() as usize].set_state(ThreadState::Exited);
        // `on_exit` drops the thread from the ready set and releases its
        // policy state (for the lottery policy: client and tickets).
        self.policy.on_exit(tid);
        self.probe(|| EventKind::QuantumEnd {
            thread: tid.index(),
            cpu: 0,
            reason: EndReason::Exited.as_str(),
            used_us: 0,
        });
        self.probe(|| EventKind::ThreadExit {
            thread: tid.index(),
        });
    }

    /// Runs the simulation until the clock reaches `deadline` (plus any
    /// quantum in flight).
    ///
    /// The clock always reaches `deadline`, even when no runnable or
    /// sleeping threads remain — idle time passes, as on the SMP kernel —
    /// so threads spawned after a `run_until` enter at the deadline, not
    /// at whatever instant the last thread exited.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.clock < deadline {
            self.deliver_due_wakes();
            let Some(tid) = self.policy.pick(self.clock) else {
                // CPU idle: jump to the next timer wake, or idle out the
                // remainder of the window if there is none.
                match self.wakes.peek() {
                    Some(&Reverse((when, _, _))) => {
                        let next = when.min(deadline).max(self.clock);
                        self.metrics.idle += next.since(self.clock);
                        self.clock = next;
                        if when > deadline {
                            return;
                        }
                        continue;
                    }
                    None => {
                        self.metrics.idle += deadline.since(self.clock);
                        self.clock = deadline;
                        return;
                    }
                }
            };
            self.dispatch(tid);
        }
    }

    /// Runs for `span` more simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        self.run_until(self.clock + span);
    }

    /// Moves every wake event due at or before the clock onto the run
    /// queue, in timestamp order.
    fn deliver_due_wakes(&mut self) {
        while let Some(&Reverse((when, _, tid))) = self.wakes.peek() {
            if when > self.clock {
                break;
            }
            self.wakes.pop();
            // A woken thread may have exited in the meantime (it cannot in
            // the current burst model, but the invariant is cheap to keep).
            if self.threads[tid.index() as usize].is_exited() {
                continue;
            }
            self.make_ready(tid, when);
        }
    }

    /// Transitions a blocked thread to ready and informs the policy.
    fn make_ready(&mut self, tid: ThreadId, when: SimTime) {
        let thread = &mut self.threads[tid.index() as usize];
        debug_assert!(
            matches!(thread.state(), ThreadState::Blocked(_)),
            "make_ready on non-blocked {tid}: {:?}",
            thread.state()
        );
        if let (ThreadState::Blocked(BlockReason::External), Some(since)) =
            (thread.state(), thread.blocked_since)
        {
            let waited = when.saturating_since(since);
            self.metrics
                .thread_mut(tid)
                .lock_wait_us
                .record(waited.as_us() as f64);
        }
        let thread = &mut self.threads[tid.index() as usize];
        thread.blocked_since = None;
        thread.set_state(ThreadState::Ready);
        thread.ready_since = Some(when);
        self.policy.enqueue(tid, when);
        self.probe(|| EventKind::Wake {
            thread: tid.index(),
        });
    }

    /// Runs one dispatched thread until quantum expiry, yield, block, or
    /// exit.
    fn dispatch(&mut self, tid: ThreadId) {
        let quantum = self.policy.quantum();
        let switched = self.last_dispatched != Some(tid);
        self.clock += self.dispatch_cost;
        self.metrics.switch_overhead += self.dispatch_cost;
        if switched && self.last_dispatched.is_some() {
            self.clock += self.context_switch_cost;
            self.metrics.switch_overhead += self.context_switch_cost;
        }
        self.last_dispatched = Some(tid);

        let waited = {
            let thread = &mut self.threads[tid.index() as usize];
            let since = thread.ready_since.take().unwrap_or(self.clock);
            thread.set_state(ThreadState::Running);
            thread.quantum_used = SimDuration::ZERO;
            self.clock.saturating_since(since)
        };
        self.metrics.record_dispatch(tid, waited, switched);
        let queue_depth = self.policy.ready_len() as u32;
        self.probe(|| EventKind::Dispatch {
            thread: tid.index(),
            cpu: 0,
            wait_us: waited.as_us(),
            queue_depth,
        });

        let mut remaining = quantum;
        loop {
            // Refill the burst from the workload when exhausted.
            if self.threads[tid.index() as usize].burst_remaining.is_zero() {
                match self.next_burst(tid) {
                    BurstOutcome::Continue => continue,
                    BurstOutcome::EndQuantum(reason) => {
                        self.end_quantum(tid, quantum, reason);
                        return;
                    }
                }
            }

            // Run the burst for as long as the quantum allows.
            let thread = &mut self.threads[tid.index() as usize];
            let slice = thread.burst_remaining.min(remaining);
            debug_assert!(!slice.is_zero());
            thread.burst_remaining -= slice;
            thread.cpu_time += slice;
            thread.quantum_used += slice;
            self.clock += slice;
            remaining -= slice;
            let cpu_total = thread.cpu_time;
            self.metrics.record_run(tid, self.clock, slice, cpu_total);

            if remaining.is_zero() {
                self.end_quantum(tid, quantum, EndReason::QuantumExpired);
                return;
            }
        }
    }

    /// Asks the workload for its next action and applies it.
    fn next_burst(&mut self, tid: ThreadId) -> BurstOutcome {
        let burst = {
            let thread = &mut self.threads[tid.index() as usize];
            let ctx = WorkloadCtx {
                now: self.clock,
                cpu_time: thread.cpu_time,
                current_request_service: thread.current_request.map(|m| m.service),
            };
            thread.workload_mut().next(&ctx)
        };
        match burst {
            Burst::Run(d) => {
                if d.is_zero() {
                    // Zero-length runs are treated as yields to guarantee
                    // forward progress.
                    return BurstOutcome::EndQuantum(EndReason::Yielded);
                }
                self.threads[tid.index() as usize].burst_remaining = d;
                BurstOutcome::Continue
            }
            Burst::Yield => BurstOutcome::EndQuantum(EndReason::Yielded),
            Burst::Sleep(d) => {
                self.block(tid, BlockReason::Timer);
                self.schedule_wake(tid, self.clock + d);
                BurstOutcome::EndQuantum(EndReason::Blocked)
            }
            Burst::Request { port, service } => {
                self.block(tid, BlockReason::AwaitingReply { port });
                let message = Message {
                    client: tid,
                    service,
                    sent_at: self.clock,
                };
                if let Some(server) = self.ports[port.index() as usize].offer(message) {
                    self.deliver(message, server);
                }
                BurstOutcome::EndQuantum(EndReason::Blocked)
            }
            Burst::Receive { port } => {
                match self.ports[port.index() as usize].receive(tid) {
                    Some(message) => {
                        // A request was already queued: take it and keep
                        // running within this quantum.
                        self.threads[tid.index() as usize].current_request = Some(message);
                        self.policy.transfer(message.client, tid);
                        self.probe(|| EventKind::RpcDeliver {
                            client: message.client.index(),
                            server: tid.index(),
                        });
                        BurstOutcome::Continue
                    }
                    None => {
                        self.block(tid, BlockReason::Receiving { port });
                        BurstOutcome::EndQuantum(EndReason::Blocked)
                    }
                }
            }
            Burst::Reply => {
                let message = self.threads[tid.index() as usize]
                    .current_request
                    .take()
                    .expect("Burst::Reply with no request in service");
                self.probe(|| EventKind::RpcReply {
                    client: message.client.index(),
                    server: tid.index(),
                });
                self.policy.untransfer(message.client, tid);
                // The client may have been killed while waiting; its
                // reply then falls on the floor, as in real kernels.
                if !self.threads[message.client.index() as usize].is_exited() {
                    let response = self.clock.since(message.sent_at);
                    self.metrics
                        .record_rpc(message.client, self.clock, response);
                    self.make_ready(message.client, self.clock);
                }
                BurstOutcome::Continue
            }
            Burst::Lock { lock } => {
                if self.policy.lock(tid, lock) {
                    BurstOutcome::Continue
                } else {
                    self.block(tid, BlockReason::External);
                    BurstOutcome::EndQuantum(EndReason::Blocked)
                }
            }
            Burst::Unlock { lock } => {
                if let Some(next) = self.policy.unlock(tid, lock) {
                    self.make_ready(next, self.clock);
                }
                BurstOutcome::Continue
            }
            Burst::Exit => {
                let thread = &mut self.threads[tid.index() as usize];
                thread.set_state(ThreadState::Exited);
                BurstOutcome::EndQuantum(EndReason::Exited)
            }
        }
    }

    /// Finishes a dispatch: charges the policy and re-enqueues a still
    /// runnable thread.
    fn end_quantum(&mut self, tid: ThreadId, quantum: SimDuration, reason: EndReason) {
        let used = self.threads[tid.index() as usize].quantum_used;
        self.probe(|| EventKind::QuantumEnd {
            thread: tid.index(),
            cpu: 0,
            reason: reason.as_str(),
            used_us: used.as_us(),
        });
        if used.is_zero() && reason == EndReason::Yielded {
            // A thread that yields without consuming CPU would otherwise
            // let the clock stand still forever; bill one microsecond of
            // dispatch overhead, as a real kernel's trap cost would.
            self.clock += SimDuration::from_us(1);
        }
        self.policy.charge(tid, used, quantum, reason);
        match reason {
            EndReason::QuantumExpired | EndReason::Yielded => {
                if reason == EndReason::Yielded {
                    self.metrics.thread_mut(tid).yields += 1;
                }
                let thread = &mut self.threads[tid.index() as usize];
                thread.set_state(ThreadState::Ready);
                thread.ready_since = Some(self.clock);
                self.policy.enqueue(tid, self.clock);
            }
            EndReason::Blocked => {
                self.metrics.thread_mut(tid).blocks += 1;
            }
            EndReason::Exited => {
                self.policy.on_exit(tid);
                self.probe(|| EventKind::ThreadExit {
                    thread: tid.index(),
                });
            }
        }
    }

    /// Marks a running thread blocked.
    fn block(&mut self, tid: ThreadId, reason: BlockReason) {
        let thread = &mut self.threads[tid.index() as usize];
        debug_assert_eq!(thread.state(), ThreadState::Running);
        thread.blocked_since = Some(self.clock);
        thread.set_state(ThreadState::Blocked(reason));
    }

    /// Delivers `message` to a server thread that was blocked in receive.
    fn deliver(&mut self, message: Message, server: ThreadId) {
        let thread = &mut self.threads[server.index() as usize];
        debug_assert!(
            matches!(
                thread.state(),
                ThreadState::Blocked(BlockReason::Receiving { .. })
            ),
            "delivery to non-receiving thread"
        );
        thread.current_request = Some(message);
        self.policy.transfer(message.client, server);
        self.probe(|| EventKind::RpcDeliver {
            client: message.client.index(),
            server: server.index(),
        });
        self.make_ready(server, self.clock);
    }

    /// Schedules a timer wake for `tid` at `when`.
    fn schedule_wake(&mut self, tid: ThreadId, when: SimTime) {
        self.seq += 1;
        self.wakes.push(Reverse((when, self.seq, tid)));
    }
}

enum BurstOutcome {
    /// Keep executing within the current quantum.
    Continue,
    /// The dispatch is over for the given reason.
    EndQuantum(EndReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::rr::RoundRobinPolicy;
    use crate::workload::{ComputeBound, FiniteJob, IoBound, RpcClient, RpcServer, Scripted};

    fn rr_kernel(quantum_ms: u64) -> Kernel<RoundRobinPolicy> {
        Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(quantum_ms)))
    }

    #[test]
    fn single_compute_thread_uses_all_cpu() {
        let mut k = rr_kernel(100);
        let t = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(1));
        assert_eq!(k.metrics().cpu_us(t), 1_000_000);
        assert_eq!(k.now(), SimTime::from_secs(1));
    }

    #[test]
    fn round_robin_splits_cpu_evenly() {
        let mut k = rr_kernel(100);
        let a = k.spawn("a", Box::new(ComputeBound), ());
        let b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(10));
        let ra = k.metrics().cpu_us(a) as f64;
        let rb = k.metrics().cpu_us(b) as f64;
        assert!((ra / rb - 1.0).abs() < 0.02, "{ra} vs {rb}");
    }

    #[test]
    fn finite_job_exits() {
        let mut k = rr_kernel(100);
        let t = k.spawn(
            "job",
            Box::new(FiniteJob::new(SimDuration::from_ms(250))),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        assert!(k.thread(t).is_exited());
        assert_eq!(k.metrics().cpu_us(t), 250_000);
        assert_eq!(k.live_threads(), 0);
        // Idle time passes after the last exit: the clock still reaches
        // the deadline (matching the SMP kernel), with the remainder
        // accounted as idle.
        assert_eq!(k.now(), SimTime::from_secs(1));
        assert_eq!(k.metrics().idle, SimDuration::from_ms(750));
    }

    #[test]
    fn sleeping_thread_wakes_and_idle_time_counted() {
        let mut k = rr_kernel(100);
        let t = k.spawn(
            "io",
            Box::new(IoBound::new(
                SimDuration::from_ms(10),
                SimDuration::from_ms(90),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        // 10 ms CPU per 100 ms period.
        let cpu = k.metrics().cpu_us(t);
        assert_eq!(cpu, 100_000, "10% duty cycle over 1s");
        assert_eq!(k.metrics().idle, SimDuration::from_ms(900));
    }

    #[test]
    fn run_until_is_resumable() {
        let mut k = rr_kernel(100);
        let t = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_ms(300));
        let early = k.metrics().cpu_us(t);
        k.run_until(SimTime::from_ms(600));
        assert_eq!(k.metrics().cpu_us(t) - early, 300_000);
    }

    #[test]
    fn rpc_round_trip() {
        let mut k = rr_kernel(100);
        let port = k.create_port("db");
        let server = k.spawn("server", Box::new(RpcServer::new(port)), ());
        let client = k.spawn(
            "client",
            Box::new(RpcClient::new(
                port,
                SimDuration::from_ms(10),
                SimDuration::from_ms(30),
                Some(5),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(5));
        let m = k.metrics().thread(client).unwrap();
        assert_eq!(m.rpcs_completed(), 5);
        // Client thinks 10 ms per request; server burns 30 ms per request.
        assert_eq!(k.metrics().cpu_us(client), 5 * 10_000);
        assert_eq!(k.metrics().cpu_us(server), 5 * 30_000);
        assert!(k.thread(client).is_exited());
        // The server ends up parked in receive.
        assert_eq!(k.port(port).idle_receivers(), 1);
        assert_eq!(k.port(port).backlog(), 0);
        // Response time ≈ service time (no contention).
        assert!(m.response_us.mean() >= 30_000.0);
    }

    #[test]
    fn rpc_queues_when_server_busy() {
        let mut k = rr_kernel(100);
        let port = k.create_port("db");
        let _server = k.spawn("server", Box::new(RpcServer::new(port)), ());
        let c1 = k.spawn(
            "c1",
            Box::new(RpcClient::new(
                port,
                SimDuration::ZERO,
                SimDuration::from_ms(40),
                Some(3),
            )),
            (),
        );
        let c2 = k.spawn(
            "c2",
            Box::new(RpcClient::new(
                port,
                SimDuration::ZERO,
                SimDuration::from_ms(40),
                Some(3),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(5));
        assert_eq!(k.metrics().thread(c1).unwrap().rpcs_completed(), 3);
        assert_eq!(k.metrics().thread(c2).unwrap().rpcs_completed(), 3);
    }

    #[test]
    fn context_switch_cost_accumulates() {
        let mut k = rr_kernel(100);
        k.set_context_switch_cost(SimDuration::from_us(100));
        let _a = k.spawn("a", Box::new(ComputeBound), ());
        let _b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(1));
        assert!(k.metrics().switch_overhead > SimDuration::ZERO);
        assert!(k.metrics().context_switches > 5);
    }

    #[test]
    fn yield_keeps_thread_runnable() {
        let mut k = rr_kernel(100);
        let t = k.spawn(
            "yielder",
            Box::new(Scripted::repeat(vec![
                Burst::Run(SimDuration::from_ms(10)),
                Burst::Yield,
            ])),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        let m = k.metrics().thread(t).unwrap();
        assert!(m.yields > 50, "yields: {}", m.yields);
        assert_eq!(k.metrics().cpu_us(t), 1_000_000);
    }

    #[test]
    fn zero_length_run_does_not_hang() {
        let mut k = rr_kernel(100);
        let _t = k.spawn(
            "degenerate",
            Box::new(Scripted::repeat(vec![Burst::Run(SimDuration::ZERO)])),
            (),
        );
        k.run_until(SimTime::from_ms(100));
        // Termination is the assertion: zero-length bursts become yields.
    }

    #[test]
    fn idle_kernel_passes_time() {
        let mut k = rr_kernel(100);
        k.run_until(SimTime::from_secs(5));
        // An empty machine idles to the deadline so later spawns enter at
        // the time the caller asked for, not at zero.
        assert_eq!(k.now(), SimTime::from_secs(5));
        assert_eq!(k.metrics().idle, SimDuration::from_secs(5));
    }

    #[test]
    fn wake_past_deadline_stops_at_deadline() {
        let mut k = rr_kernel(100);
        let _t = k.spawn(
            "sleeper",
            Box::new(Scripted::once(vec![Burst::Sleep(SimDuration::from_secs(
                10,
            ))])),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        assert_eq!(k.now(), SimTime::from_secs(1));
        k.run_until(SimTime::from_secs(20));
        assert!(k.now() >= SimTime::from_secs(10));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::sched::rr::RoundRobinPolicy;
    use crate::trace::TraceEvent;
    use crate::workload::{RpcClient, RpcServer, Scripted};

    #[test]
    fn trace_captures_rpc_sequence() {
        let mut k = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
        k.enable_trace(64);
        let port = k.create_port("svc");
        let server = k.spawn("server", Box::new(RpcServer::new(port)), ());
        let client = k.spawn(
            "client",
            Box::new(RpcClient::new(
                port,
                SimDuration::from_ms(5),
                SimDuration::from_ms(10),
                Some(1),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        let trace = k.trace().unwrap();
        let kinds: Vec<TraceEvent> = trace.events().map(|&(_, e)| e).collect();
        assert!(kinds.contains(&TraceEvent::Spawn(server)));
        assert!(kinds.contains(&TraceEvent::Spawn(client)));
        assert!(kinds.contains(&TraceEvent::Deliver { client, server }));
        assert!(kinds.contains(&TraceEvent::Reply { client, server }));
        // The delivery precedes the reply.
        let deliver = kinds
            .iter()
            .position(|&e| e == TraceEvent::Deliver { client, server })
            .unwrap();
        let reply = kinds
            .iter()
            .position(|&e| e == TraceEvent::Reply { client, server })
            .unwrap();
        assert!(deliver < reply);
        assert!(trace.for_thread(client).len() >= 4);
    }

    #[test]
    fn trace_records_yields_and_wakes() {
        let mut k = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
        k.enable_trace(16);
        let t = k.spawn(
            "sleeper",
            Box::new(Scripted::once(vec![
                Burst::Run(SimDuration::from_ms(10)),
                Burst::Sleep(SimDuration::from_ms(20)),
                Burst::Run(SimDuration::from_ms(10)),
            ])),
            (),
        );
        k.run_until(SimTime::from_secs(1));
        let kinds: Vec<TraceEvent> = k.trace().unwrap().events().map(|&(_, e)| e).collect();
        assert!(kinds.contains(&TraceEvent::QuantumEnd(t, EndReason::Blocked)));
        assert!(kinds.contains(&TraceEvent::Wake(t)));
        assert!(kinds.contains(&TraceEvent::QuantumEnd(t, EndReason::Exited)));
    }

    #[test]
    fn disabled_trace_is_none() {
        let k = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
        assert!(k.trace().is_none());
    }
}
