//! A multiprocessor lottery kernel.
//!
//! Section 4.2 notes that the partial-sum tree "can also be used as the
//! basis of a distributed lottery scheduler". [`SmpKernel`] explores that
//! direction: `c` CPUs share one [`crate::sched::Policy`] run queue; each
//! time a CPU finishes a quantum it holds the next lottery. Proportional
//! sharing then applies to the *machine* — a client holding `t` of `T`
//! tickets converges to `c · t/T` CPUs' worth of time, capped at one full
//! CPU (a thread cannot run on two processors at once).
//!
//! Supported workload actions are [`Burst::Run`], [`Burst::Sleep`],
//! [`Burst::Yield`], and [`Burst::Exit`]; the RPC and mutex verbs are a
//! uniprocessor-kernel feature (see [`crate::kernel::Kernel`]) and
//! surface as [`SmpError::UnsupportedBurst`] here.
//!
//! Policies with per-CPU run queues (the
//! [`crate::sched::distributed::DistributedLottery`]) get the picking
//! CPU's index through [`crate::sched::Policy::pick_on`], so each CPU
//! holds lotteries on its own shard.

use std::error::Error;
use std::fmt;

use lottery_obs::{EventKind, ProbeBus};

use crate::event::{EventQueue, TimeMode};
use crate::metrics::Metrics;
use crate::sched::{EndReason, Policy};
use crate::thread::{BlockReason, Thread, ThreadId, ThreadState};
use crate::time::{SimDuration, SimTime};
use crate::workload::{Burst, Workload, WorkloadCtx};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A CPU finished its dispatch and needs a new thread.
    CpuFree { cpu: u32 },
    /// A sleeping thread wakes.
    Wake { tid: ThreadId },
    /// A preempted thread (quantum expiry / yield) rejoins the ready
    /// queue. Distinct from [`Event::Wake`] so dispatch-latency metrics
    /// can tell scheduling delay from sleep time.
    Requeue { tid: ThreadId },
}

/// A typed SMP-kernel failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpError {
    /// A workload issued a burst the SMP kernel does not implement (RPC
    /// or mutex verbs). The offending thread is exited and the rest of
    /// the machine keeps running; re-calling
    /// [`SmpKernel::run_until`] resumes the simulation.
    UnsupportedBurst {
        /// The thread whose workload issued the burst.
        thread: ThreadId,
        /// The burst's name, e.g. `"request"` or `"lock"`.
        burst: &'static str,
    },
}

impl fmt::Display for SmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmpError::UnsupportedBurst { thread, burst } => write!(
                f,
                "{thread} issued a `{burst}` burst, which the SMP kernel does not support"
            ),
        }
    }
}

impl Error for SmpError {}

/// A shared-run-queue multiprocessor kernel.
pub struct SmpKernel<P: Policy> {
    clock: SimTime,
    threads: Vec<Thread>,
    policy: P,
    cpus: usize,
    idle_cpus: Vec<u32>,
    /// All future work — CPU frees, wakes, requeues — ordered by
    /// `(when, seq)`. The payload never participates in ordering, so two
    /// events due at the same instant pop in scheduling order.
    events: EventQueue<Event>,
    /// How the run loop discovers due events.
    time_mode: TimeMode,
    metrics: Metrics,
    /// Per-CPU busy time, for utilization accounting.
    busy: Vec<SimDuration>,
    /// Whether a thread's pending readiness came from a preemption
    /// requeue (true) or a true wake (false), indexed by thread id.
    requeued: Vec<bool>,
    /// Structured probe pipeline; disabled by default.
    bus: ProbeBus,
}

impl<P: Policy> SmpKernel<P> {
    /// Creates a kernel with `cpus` processors sharing `policy`.
    ///
    /// # Panics
    ///
    /// Panics on zero CPUs.
    pub fn new(policy: P, cpus: usize) -> Self {
        assert!(cpus > 0, "a machine needs at least one CPU");
        Self {
            clock: SimTime::ZERO,
            threads: Vec::new(),
            policy,
            cpus,
            idle_cpus: (0..cpus as u32).collect(),
            events: EventQueue::new(),
            time_mode: TimeMode::Event,
            metrics: Metrics::new(),
            busy: vec![SimDuration::ZERO; cpus],
            requeued: Vec::new(),
            bus: ProbeBus::disabled(),
        }
    }

    /// Attaches a probe bus to the kernel and its policy (one pipeline for
    /// dispatch, draw, and ledger events).
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.policy.set_probe_bus(bus.clone());
        self.bus = bus;
    }

    /// The kernel's probe bus.
    pub fn probe_bus(&self) -> &ProbeBus {
        &self.bus
    }

    /// Stamps the clock and emits onto the bus.
    fn probe(&self, at: SimTime, build: impl FnOnce() -> EventKind) {
        if self.bus.is_enabled() {
            self.bus.set_time_us(at.as_us());
            self.bus.emit(build);
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Selects how the run loop discovers due events. In production
    /// builds the only [`TimeMode`] is `Event`; the legacy stepping cost
    /// model survives in test builds solely for the stream-equivalence
    /// proof. Both modes deliver identical streams.
    pub fn set_time_mode(&mut self, mode: TimeMode) {
        self.time_mode = mode;
    }

    /// The active time mode.
    pub fn time_mode(&self) -> TimeMode {
        self.time_mode
    }

    /// Pending future events (CPU frees, wakes, requeues).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// When the earliest pending event is due, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.events.peek_at()
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// The scheduling policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The scheduling policy, mutably.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Accumulated measurements.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Busy time of one CPU.
    pub fn busy(&self, cpu: usize) -> SimDuration {
        self.busy[cpu]
    }

    /// Machine utilization so far (busy CPU-time over capacity).
    pub fn utilization(&self) -> f64 {
        if self.clock == SimTime::ZERO {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().map(|d| d.as_us()).sum();
        busy as f64 / (self.clock.as_us() as f64 * self.cpus as f64)
    }

    /// Spawns a ready thread.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        workload: Box<dyn Workload>,
        spec: P::Spec,
    ) -> ThreadId {
        let tid = ThreadId::from_index(self.threads.len() as u32);
        let mut thread = Thread::new(name, workload);
        thread.ready_since = Some(self.clock);
        self.threads.push(thread);
        self.requeued.push(false);
        self.policy.on_spawn(tid, spec);
        self.policy.enqueue(tid, self.clock);
        self.probe(self.clock, || EventKind::ThreadSpawn {
            thread: tid.index(),
        });
        self.kick_idle_cpus();
        tid
    }

    /// Wakes every idle CPU to try a dispatch at the current time.
    fn kick_idle_cpus(&mut self) {
        while let Some(cpu) = self.idle_cpus.pop() {
            self.events.push(self.clock, Event::CpuFree { cpu });
        }
    }

    /// When the earliest pending event is due. In stepping mode this is
    /// the legacy linear callout scan; in event mode a heap peek.
    fn next_event_due(&self) -> Option<SimTime> {
        match self.time_mode {
            TimeMode::Event => self.events.peek_at(),
            #[cfg(test)]
            TimeMode::Stepping => self.events.scan().map(|s| s.at).min(),
        }
    }

    /// Runs until the clock reaches `deadline` (in-flight quanta may
    /// overshoot) or no thread is runnable or sleeping.
    ///
    /// # Errors
    ///
    /// Returns [`SmpError::UnsupportedBurst`] when a workload issues an
    /// RPC or mutex burst. The offending thread is exited; calling
    /// `run_until` again resumes the rest of the machine.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SmpError> {
        while let Some(when) = self.next_event_due() {
            // Stop *at* the deadline: a dispatch beginning exactly there
            // belongs to the next run_until slice (mirrors the
            // uniprocessor kernel's `clock < deadline` loop condition).
            if when >= deadline {
                self.clock = deadline.max(self.clock);
                return Ok(());
            }
            let event = self.events.pop().expect("a pending event was peeked").event;
            self.clock = self.clock.max(when);
            match event {
                Event::Wake { tid } => {
                    if self.threads[tid.index() as usize].is_exited() {
                        continue;
                    }
                    let thread = &mut self.threads[tid.index() as usize];
                    thread.set_state(ThreadState::Ready);
                    thread.ready_since = Some(self.clock);
                    self.requeued[tid.index() as usize] = false;
                    self.policy.enqueue(tid, self.clock);
                    self.probe(self.clock, || EventKind::Wake {
                        thread: tid.index(),
                    });
                    self.kick_idle_cpus();
                }
                Event::Requeue { tid } => {
                    if self.threads[tid.index() as usize].is_exited() {
                        continue;
                    }
                    // A preemption requeue is not a wake: no Wake probe,
                    // and the wait it starts is pure scheduling latency.
                    let thread = &mut self.threads[tid.index() as usize];
                    thread.set_state(ThreadState::Ready);
                    thread.ready_since = Some(self.clock);
                    self.requeued[tid.index() as usize] = true;
                    self.policy.enqueue(tid, self.clock);
                    self.kick_idle_cpus();
                }
                Event::CpuFree { cpu } => match self.policy.pick_on(cpu, self.clock) {
                    Some(tid) => self.dispatch(cpu, tid)?,
                    None => self.idle_cpus.push(cpu),
                },
            }
        }
        self.clock = deadline.max(self.clock);
        Ok(())
    }

    /// Runs one quantum of `tid` on `cpu`, computing the entire dispatch
    /// synchronously and scheduling the CPU's next free event.
    ///
    /// # Errors
    ///
    /// Returns [`SmpError::UnsupportedBurst`] on an RPC or mutex burst,
    /// after exiting the offending thread and freeing the CPU.
    fn dispatch(&mut self, cpu: u32, tid: ThreadId) -> Result<(), SmpError> {
        let quantum = self.policy.quantum();
        let start = self.clock;
        let waited = {
            let thread = &mut self.threads[tid.index() as usize];
            let since = thread.ready_since.take().unwrap_or(start);
            thread.set_state(ThreadState::Running);
            thread.quantum_used = SimDuration::ZERO;
            start.saturating_since(since)
        };
        let preempted = std::mem::replace(&mut self.requeued[tid.index() as usize], false);
        self.metrics.record_dispatch(tid, waited, true);
        self.metrics.record_wait_kind(tid, waited, preempted);
        let queue_depth = self.policy.ready_len() as u32;
        self.probe(start, || EventKind::Dispatch {
            thread: tid.index(),
            cpu,
            wait_us: waited.as_us(),
            queue_depth,
        });
        self.probe(start, || EventKind::QueueDepth {
            cpu,
            depth: queue_depth,
        });

        let mut elapsed = SimDuration::ZERO;
        let mut remaining = quantum;
        let mut error = None;
        let reason = loop {
            if self.threads[tid.index() as usize].burst_remaining.is_zero() {
                let burst = {
                    let thread = &mut self.threads[tid.index() as usize];
                    let ctx = WorkloadCtx {
                        now: start + elapsed,
                        cpu_time: thread.cpu_time,
                        current_request_service: None,
                    };
                    thread.workload_mut().next(&ctx)
                };
                match burst {
                    Burst::Run(d) if !d.is_zero() => {
                        self.threads[tid.index() as usize].burst_remaining = d;
                        continue;
                    }
                    Burst::Run(_) | Burst::Yield => break EndReason::Yielded,
                    Burst::Sleep(d) => {
                        let thread = &mut self.threads[tid.index() as usize];
                        thread.set_state(ThreadState::Blocked(BlockReason::Timer));
                        self.events.push(start + elapsed + d, Event::Wake { tid });
                        break EndReason::Blocked;
                    }
                    Burst::Exit => {
                        self.threads[tid.index() as usize].set_state(ThreadState::Exited);
                        break EndReason::Exited;
                    }
                    Burst::Request { .. }
                    | Burst::Receive { .. }
                    | Burst::Reply
                    | Burst::Lock { .. }
                    | Burst::Unlock { .. } => {
                        // Graceful degradation: exit the offending thread
                        // (its accounting below stays truthful) and report
                        // the burst instead of aborting the simulation.
                        error = Some(SmpError::UnsupportedBurst {
                            thread: tid,
                            burst: match burst {
                                Burst::Request { .. } => "request",
                                Burst::Receive { .. } => "receive",
                                Burst::Reply => "reply",
                                Burst::Lock { .. } => "lock",
                                _ => "unlock",
                            },
                        });
                        self.threads[tid.index() as usize].set_state(ThreadState::Exited);
                        break EndReason::Exited;
                    }
                }
            }
            let thread = &mut self.threads[tid.index() as usize];
            let slice = thread.burst_remaining.min(remaining);
            thread.burst_remaining -= slice;
            thread.cpu_time += slice;
            thread.quantum_used += slice;
            elapsed += slice;
            remaining -= slice;
            if remaining.is_zero() {
                break EndReason::QuantumExpired;
            }
        };

        let end = start + elapsed.max(SimDuration::from_us(1));
        self.busy[cpu as usize] += elapsed;
        let cpu_total = self.threads[tid.index() as usize].cpu_time;
        self.metrics.record_run(tid, end, elapsed, cpu_total);
        let used = self.threads[tid.index() as usize].quantum_used;
        self.probe(end, || EventKind::QuantumEnd {
            thread: tid.index(),
            cpu,
            reason: reason.as_str(),
            used_us: used.as_us(),
        });
        self.policy.charge(tid, used, quantum, reason);
        match reason {
            EndReason::QuantumExpired | EndReason::Yielded => {
                // The thread occupies this CPU until `end`; re-enqueue it
                // *then*, via an event, or another CPU could dispatch the
                // same thread concurrently. The requeue event is pushed
                // before the CpuFree event so this CPU can win it back.
                self.events.push(end, Event::Requeue { tid });
            }
            EndReason::Blocked => {
                self.metrics.thread_mut(tid).blocks += 1;
            }
            EndReason::Exited => {
                self.policy.on_exit(tid);
                self.probe(end, || EventKind::ThreadExit {
                    thread: tid.index(),
                });
            }
        }
        self.events.push(end, Event::CpuFree { cpu });
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::distributed::DistributedLottery;
    use crate::sched::lottery::{FundingSpec, LotteryPolicy};
    use crate::sched::rr::RoundRobinPolicy;
    use crate::workload::{ComputeBound, FiniteJob, IoBound};

    #[test]
    fn two_cpus_run_two_threads_in_parallel() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let a = k.spawn("a", Box::new(ComputeBound), ());
        let b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(10)).unwrap();
        assert_eq!(k.metrics().cpu_us(a), 10_000_000);
        assert_eq!(k.metrics().cpu_us(b), 10_000_000);
        assert!((k.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn four_threads_on_two_cpus_split_evenly() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let tids: Vec<ThreadId> = (0..4)
            .map(|i| k.spawn(format!("t{i}"), Box::new(ComputeBound), ()))
            .collect();
        k.run_until(SimTime::from_secs(10)).unwrap();
        for &t in &tids {
            let cpu = k.metrics().cpu_us(t);
            assert!(
                (cpu as i64 - 5_000_000).unsigned_abs() < 300_000,
                "thread got {cpu}"
            );
        }
    }

    #[test]
    fn lottery_shares_scale_to_machine_capacity() {
        let policy = LotteryPolicy::new(7);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, 2);
        // Tickets 1:1:1:1 over 2 CPUs -> each thread gets half a CPU.
        let tids: Vec<ThreadId> = (0..4)
            .map(|i| {
                k.spawn(
                    format!("t{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 100),
                )
            })
            .collect();
        k.run_until(SimTime::from_secs(120)).unwrap();
        for &t in &tids {
            let share = k.metrics().cpu_us(t) as f64 / 120e6;
            assert!((share - 0.5).abs() < 0.05, "share {share}");
        }
    }

    #[test]
    fn dominant_client_caps_at_one_cpu() {
        let policy = LotteryPolicy::new(7);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, 2);
        let big = k.spawn(
            "big",
            Box::new(ComputeBound),
            FundingSpec::new(base, 10_000),
        );
        let s1 = k.spawn("s1", Box::new(ComputeBound), FundingSpec::new(base, 100));
        let s2 = k.spawn("s2", Box::new(ComputeBound), FundingSpec::new(base, 100));
        k.run_until(SimTime::from_secs(60)).unwrap();
        // `big` cannot exceed one CPU; the small clients share the other.
        let big_share = k.metrics().cpu_us(big) as f64 / 60e6;
        assert!((big_share - 1.0).abs() < 0.02, "big {big_share}");
        let s1_share = k.metrics().cpu_us(s1) as f64 / 60e6;
        let s2_share = k.metrics().cpu_us(s2) as f64 / 60e6;
        assert!(
            (s1_share + s2_share - 1.0).abs() < 0.02,
            "{s1_share}+{s2_share}"
        );
    }

    #[test]
    fn sleepers_free_their_cpu() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let io = k.spawn(
            "io",
            Box::new(IoBound::new(
                SimDuration::from_ms(10),
                SimDuration::from_ms(90),
            )),
            (),
        );
        let cpu = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(10)).unwrap();
        assert_eq!(k.metrics().cpu_us(io), 1_000_000, "10% duty");
        assert_eq!(k.metrics().cpu_us(cpu), 10_000_000, "own CPU throughout");
    }

    #[test]
    fn exit_frees_capacity() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let short = k.spawn(
            "short",
            Box::new(FiniteJob::new(SimDuration::from_secs(1))),
            (),
        );
        let t1 = k.spawn("t1", Box::new(ComputeBound), ());
        let t2 = k.spawn("t2", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(11)).unwrap();
        assert!(k.threads[short.index() as usize].is_exited());
        // Capacity: 22 CPU-seconds; short used 1; the rest split ~evenly.
        let total = k.metrics().cpu_us(t1) + k.metrics().cpu_us(t2);
        assert!(
            (total as i64 - 21_000_000).abs() < 400_000,
            "t1+t2 = {total}"
        );
    }

    #[test]
    fn idle_machine_stops() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 4);
        k.run_until(SimTime::from_secs(5)).unwrap();
        assert_eq!(k.utilization(), 0.0);
        assert_eq!(k.cpus(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let _ = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 0);
    }

    #[test]
    fn unsupported_burst_is_a_typed_error_not_a_panic() {
        use crate::ipc::PortId;
        use crate::workload::WorkloadCtx;
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let rpc = k.spawn(
            "rpc",
            Box::new(|_: &WorkloadCtx| Burst::Request {
                port: PortId::new(0),
                service: SimDuration::from_ms(10),
            }),
            (),
        );
        let worker = k.spawn("worker", Box::new(ComputeBound), ());
        let err = k.run_until(SimTime::from_secs(10)).unwrap_err();
        assert_eq!(
            err,
            SmpError::UnsupportedBurst {
                thread: rpc,
                burst: "request"
            }
        );
        assert!(err.to_string().contains("request"));
        // Graceful degradation: the offender exited, the machine resumes.
        assert!(k.threads[rpc.index() as usize].is_exited());
        k.run_until(SimTime::from_secs(10)).unwrap();
        assert_eq!(k.metrics().cpu_us(worker), 10_000_000);
    }

    #[test]
    fn requeue_wait_is_not_counted_as_wake_wait() {
        // One CPU, two compute-bound threads: after the first dispatches,
        // every later dispatch follows a preemption requeue with a full
        // quantum's wait. No thread ever sleeps.
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 1);
        let a = k.spawn("a", Box::new(ComputeBound), ());
        let b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(10)).unwrap();
        for &t in &[a, b] {
            let m = k.metrics().thread(t).unwrap();
            // The spawn-time dispatch is a wake; the rest are requeues.
            assert_eq!(m.wake_wait_us.count(), 1, "only the spawn wake");
            assert_eq!(
                m.preempt_wait_us.count() + 1,
                m.wait_us.count(),
                "every non-spawn dispatch followed a requeue"
            );
            // The requeue path must not zero the wait: the other thread's
            // 100 ms quantum is real scheduling latency.
            assert_eq!(m.preempt_wait_us.mean(), 100_000.0);
        }
        // A true sleeper's waits land in the wake bucket.
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 1);
        let io = k.spawn(
            "io",
            Box::new(IoBound::new(
                SimDuration::from_ms(10),
                SimDuration::from_ms(90),
            )),
            (),
        );
        k.run_until(SimTime::from_secs(10)).unwrap();
        let m = k.metrics().thread(io).unwrap();
        assert_eq!(m.preempt_wait_us.count(), 0);
        assert!(m.wake_wait_us.count() > 50);
    }

    #[test]
    fn distributed_lottery_runs_the_machine_per_shard() {
        let policy = DistributedLottery::new(7, 2);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, 2);
        let tids: Vec<ThreadId> = (0..4)
            .map(|i| {
                k.spawn(
                    format!("t{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 100),
                )
            })
            .collect();
        k.run_until(SimTime::from_secs(120)).unwrap();
        // Equal tickets over 2 CPUs: half a CPU each, machine-wide.
        for &t in &tids {
            let share = k.metrics().cpu_us(t) as f64 / 120e6;
            assert!((share - 0.5).abs() < 0.05, "share {share}");
        }
        assert!((k.utilization() - 1.0).abs() < 1e-9);
        // Both shards actually held lotteries.
        let p = k.policy_mut();
        assert!(p.shard_stats(0).picks > 0);
        assert!(p.shard_stats(1).picks > 0);
    }

    #[test]
    fn distributed_ratios_hold_machine_wide() {
        // Figure 2's 2:1 experiment, machine-wide on 4 CPUs: big threads
        // hold 200 tickets, small ones 100 — shares must track 2:1 even
        // though every lottery is shard-local.
        let policy = DistributedLottery::new(13, 4);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, 4);
        // Spawn the bigs first: the least-loaded home assignment then
        // lands one big and one small on every shard (300 tickets each),
        // the balance the rebalancer maintains thereafter.
        let big: Vec<ThreadId> = (0..4)
            .map(|i| {
                k.spawn(
                    format!("big{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 200),
                )
            })
            .collect();
        let small: Vec<ThreadId> = (0..4)
            .map(|i| {
                k.spawn(
                    format!("small{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 100),
                )
            })
            .collect();
        k.run_until(SimTime::from_secs(240)).unwrap();
        let sum = |v: &[ThreadId]| v.iter().map(|&t| k.metrics().cpu_us(t)).sum::<u64>() as f64;
        let ratio = sum(&big) / sum(&small);
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }
}
