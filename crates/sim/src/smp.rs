//! A multiprocessor lottery kernel.
//!
//! Section 4.2 notes that the partial-sum tree "can also be used as the
//! basis of a distributed lottery scheduler". [`SmpKernel`] explores that
//! direction: `c` CPUs share one [`crate::sched::Policy`] run queue; each
//! time a CPU finishes a quantum it holds the next lottery. Proportional
//! sharing then applies to the *machine* — a client holding `t` of `T`
//! tickets converges to `c · t/T` CPUs' worth of time, capped at one full
//! CPU (a thread cannot run on two processors at once).
//!
//! Supported workload actions are [`Burst::Run`], [`Burst::Sleep`],
//! [`Burst::Yield`], and [`Burst::Exit`]; the RPC verbs are a
//! uniprocessor-kernel feature (see [`crate::kernel::Kernel`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lottery_obs::{EventKind, ProbeBus};

use crate::metrics::Metrics;
use crate::sched::{EndReason, Policy};
use crate::thread::{BlockReason, Thread, ThreadId, ThreadState};
use crate::time::{SimDuration, SimTime};
use crate::workload::{Burst, Workload, WorkloadCtx};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A CPU finished its dispatch and needs a new thread.
    CpuFree { cpu: u32 },
    /// A sleeping thread wakes.
    Wake { tid: ThreadId },
}

/// A shared-run-queue multiprocessor kernel.
pub struct SmpKernel<P: Policy> {
    clock: SimTime,
    threads: Vec<Thread>,
    policy: P,
    cpus: usize,
    idle_cpus: Vec<u32>,
    events: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: u64,
    metrics: Metrics,
    /// Per-CPU busy time, for utilization accounting.
    busy: Vec<SimDuration>,
    /// Structured probe pipeline; disabled by default.
    bus: ProbeBus,
}

impl<P: Policy> SmpKernel<P> {
    /// Creates a kernel with `cpus` processors sharing `policy`.
    ///
    /// # Panics
    ///
    /// Panics on zero CPUs.
    pub fn new(policy: P, cpus: usize) -> Self {
        assert!(cpus > 0, "a machine needs at least one CPU");
        Self {
            clock: SimTime::ZERO,
            threads: Vec::new(),
            policy,
            cpus,
            idle_cpus: (0..cpus as u32).collect(),
            events: BinaryHeap::new(),
            seq: 0,
            metrics: Metrics::new(),
            busy: vec![SimDuration::ZERO; cpus],
            bus: ProbeBus::disabled(),
        }
    }

    /// Attaches a probe bus to the kernel and its policy (one pipeline for
    /// dispatch, draw, and ledger events).
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.policy.set_probe_bus(bus.clone());
        self.bus = bus;
    }

    /// The kernel's probe bus.
    pub fn probe_bus(&self) -> &ProbeBus {
        &self.bus
    }

    /// Stamps the clock and emits onto the bus.
    fn probe(&self, at: SimTime, build: impl FnOnce() -> EventKind) {
        if self.bus.is_enabled() {
            self.bus.set_time_us(at.as_us());
            self.bus.emit(build);
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// The scheduling policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The scheduling policy, mutably.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Accumulated measurements.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Busy time of one CPU.
    pub fn busy(&self, cpu: usize) -> SimDuration {
        self.busy[cpu]
    }

    /// Machine utilization so far (busy CPU-time over capacity).
    pub fn utilization(&self) -> f64 {
        if self.clock == SimTime::ZERO {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().map(|d| d.as_us()).sum();
        busy as f64 / (self.clock.as_us() as f64 * self.cpus as f64)
    }

    /// Spawns a ready thread.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        workload: Box<dyn Workload>,
        spec: P::Spec,
    ) -> ThreadId {
        let tid = ThreadId::from_index(self.threads.len() as u32);
        let mut thread = Thread::new(name, workload);
        thread.ready_since = Some(self.clock);
        self.threads.push(thread);
        self.policy.on_spawn(tid, spec);
        self.policy.enqueue(tid, self.clock);
        self.probe(self.clock, || EventKind::ThreadSpawn {
            thread: tid.index(),
        });
        self.kick_idle_cpus();
        tid
    }

    /// Wakes every idle CPU to try a dispatch at the current time.
    fn kick_idle_cpus(&mut self) {
        while let Some(cpu) = self.idle_cpus.pop() {
            self.seq += 1;
            self.events
                .push(Reverse((self.clock, self.seq, Event::CpuFree { cpu })));
        }
    }

    /// Runs until the clock reaches `deadline` (in-flight quanta may
    /// overshoot) or no thread is runnable or sleeping.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(&Reverse((when, _, event))) = self.events.peek() {
            // Stop *at* the deadline: a dispatch beginning exactly there
            // belongs to the next run_until slice (mirrors the
            // uniprocessor kernel's `clock < deadline` loop condition).
            if when >= deadline {
                self.clock = deadline.max(self.clock);
                return;
            }
            self.events.pop();
            self.clock = self.clock.max(when);
            match event {
                Event::Wake { tid } => {
                    if self.threads[tid.index() as usize].is_exited() {
                        continue;
                    }
                    let thread = &mut self.threads[tid.index() as usize];
                    thread.set_state(ThreadState::Ready);
                    thread.ready_since = Some(self.clock);
                    self.policy.enqueue(tid, self.clock);
                    self.probe(self.clock, || EventKind::Wake {
                        thread: tid.index(),
                    });
                    self.kick_idle_cpus();
                }
                Event::CpuFree { cpu } => match self.policy.pick(self.clock) {
                    Some(tid) => self.dispatch(cpu, tid),
                    None => self.idle_cpus.push(cpu),
                },
            }
        }
        self.clock = deadline.max(self.clock);
    }

    /// Runs one quantum of `tid` on `cpu`, computing the entire dispatch
    /// synchronously and scheduling the CPU's next free event.
    fn dispatch(&mut self, cpu: u32, tid: ThreadId) {
        let quantum = self.policy.quantum();
        let start = self.clock;
        let waited = {
            let thread = &mut self.threads[tid.index() as usize];
            let since = thread.ready_since.take().unwrap_or(start);
            thread.set_state(ThreadState::Running);
            thread.quantum_used = SimDuration::ZERO;
            start.saturating_since(since)
        };
        self.metrics.record_dispatch(tid, waited, true);
        let queue_depth = self.policy.ready_len() as u32;
        self.probe(start, || EventKind::Dispatch {
            thread: tid.index(),
            cpu,
            wait_us: waited.as_us(),
            queue_depth,
        });
        self.probe(start, || EventKind::QueueDepth {
            cpu,
            depth: queue_depth,
        });

        let mut elapsed = SimDuration::ZERO;
        let mut remaining = quantum;
        let reason = loop {
            if self.threads[tid.index() as usize].burst_remaining.is_zero() {
                let burst = {
                    let thread = &mut self.threads[tid.index() as usize];
                    let ctx = WorkloadCtx {
                        now: start + elapsed,
                        cpu_time: thread.cpu_time,
                        current_request_service: None,
                    };
                    thread.workload_mut().next(&ctx)
                };
                match burst {
                    Burst::Run(d) if !d.is_zero() => {
                        self.threads[tid.index() as usize].burst_remaining = d;
                        continue;
                    }
                    Burst::Run(_) | Burst::Yield => break EndReason::Yielded,
                    Burst::Sleep(d) => {
                        let thread = &mut self.threads[tid.index() as usize];
                        thread.set_state(ThreadState::Blocked(BlockReason::Timer));
                        self.seq += 1;
                        self.events.push(Reverse((
                            start + elapsed + d,
                            self.seq,
                            Event::Wake { tid },
                        )));
                        break EndReason::Blocked;
                    }
                    Burst::Exit => {
                        self.threads[tid.index() as usize].set_state(ThreadState::Exited);
                        break EndReason::Exited;
                    }
                    Burst::Request { .. }
                    | Burst::Receive { .. }
                    | Burst::Reply
                    | Burst::Lock { .. }
                    | Burst::Unlock { .. } => {
                        panic!("RPC and mutex bursts are not supported on the SMP kernel")
                    }
                }
            }
            let thread = &mut self.threads[tid.index() as usize];
            let slice = thread.burst_remaining.min(remaining);
            thread.burst_remaining -= slice;
            thread.cpu_time += slice;
            thread.quantum_used += slice;
            elapsed += slice;
            remaining -= slice;
            if remaining.is_zero() {
                break EndReason::QuantumExpired;
            }
        };

        let end = start + elapsed.max(SimDuration::from_us(1));
        self.busy[cpu as usize] += elapsed;
        let cpu_total = self.threads[tid.index() as usize].cpu_time;
        self.metrics.record_run(tid, end, elapsed, cpu_total);
        let used = self.threads[tid.index() as usize].quantum_used;
        self.probe(end, || EventKind::QuantumEnd {
            thread: tid.index(),
            cpu,
            reason: reason.as_str(),
            used_us: used.as_us(),
        });
        self.policy.charge(tid, used, quantum, reason);
        match reason {
            EndReason::QuantumExpired | EndReason::Yielded => {
                // The thread occupies this CPU until `end`; re-enqueue it
                // *then*, via an event, or another CPU could dispatch the
                // same thread concurrently. The requeue event is pushed
                // before the CpuFree event so this CPU can win it back.
                self.seq += 1;
                self.events
                    .push(Reverse((end, self.seq, Event::Wake { tid })));
            }
            EndReason::Blocked => {
                self.metrics.thread_mut(tid).blocks += 1;
            }
            EndReason::Exited => self.policy.on_exit(tid),
        }
        self.seq += 1;
        self.events
            .push(Reverse((end, self.seq, Event::CpuFree { cpu })));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::lottery::{FundingSpec, LotteryPolicy};
    use crate::sched::rr::RoundRobinPolicy;
    use crate::workload::{ComputeBound, FiniteJob, IoBound};

    #[test]
    fn two_cpus_run_two_threads_in_parallel() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let a = k.spawn("a", Box::new(ComputeBound), ());
        let b = k.spawn("b", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(10));
        assert_eq!(k.metrics().cpu_us(a), 10_000_000);
        assert_eq!(k.metrics().cpu_us(b), 10_000_000);
        assert!((k.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn four_threads_on_two_cpus_split_evenly() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let tids: Vec<ThreadId> = (0..4)
            .map(|i| k.spawn(format!("t{i}"), Box::new(ComputeBound), ()))
            .collect();
        k.run_until(SimTime::from_secs(10));
        for &t in &tids {
            let cpu = k.metrics().cpu_us(t);
            assert!(
                (cpu as i64 - 5_000_000).unsigned_abs() < 300_000,
                "thread got {cpu}"
            );
        }
    }

    #[test]
    fn lottery_shares_scale_to_machine_capacity() {
        let policy = LotteryPolicy::new(7);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, 2);
        // Tickets 1:1:1:1 over 2 CPUs -> each thread gets half a CPU.
        let tids: Vec<ThreadId> = (0..4)
            .map(|i| {
                k.spawn(
                    format!("t{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 100),
                )
            })
            .collect();
        k.run_until(SimTime::from_secs(120));
        for &t in &tids {
            let share = k.metrics().cpu_us(t) as f64 / 120e6;
            assert!((share - 0.5).abs() < 0.05, "share {share}");
        }
    }

    #[test]
    fn dominant_client_caps_at_one_cpu() {
        let policy = LotteryPolicy::new(7);
        let base = policy.base_currency();
        let mut k = SmpKernel::new(policy, 2);
        let big = k.spawn(
            "big",
            Box::new(ComputeBound),
            FundingSpec::new(base, 10_000),
        );
        let s1 = k.spawn("s1", Box::new(ComputeBound), FundingSpec::new(base, 100));
        let s2 = k.spawn("s2", Box::new(ComputeBound), FundingSpec::new(base, 100));
        k.run_until(SimTime::from_secs(60));
        // `big` cannot exceed one CPU; the small clients share the other.
        let big_share = k.metrics().cpu_us(big) as f64 / 60e6;
        assert!((big_share - 1.0).abs() < 0.02, "big {big_share}");
        let s1_share = k.metrics().cpu_us(s1) as f64 / 60e6;
        let s2_share = k.metrics().cpu_us(s2) as f64 / 60e6;
        assert!(
            (s1_share + s2_share - 1.0).abs() < 0.02,
            "{s1_share}+{s2_share}"
        );
    }

    #[test]
    fn sleepers_free_their_cpu() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let io = k.spawn(
            "io",
            Box::new(IoBound::new(
                SimDuration::from_ms(10),
                SimDuration::from_ms(90),
            )),
            (),
        );
        let cpu = k.spawn("cpu", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(10));
        assert_eq!(k.metrics().cpu_us(io), 1_000_000, "10% duty");
        assert_eq!(k.metrics().cpu_us(cpu), 10_000_000, "own CPU throughout");
    }

    #[test]
    fn exit_frees_capacity() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 2);
        let short = k.spawn(
            "short",
            Box::new(FiniteJob::new(SimDuration::from_secs(1))),
            (),
        );
        let t1 = k.spawn("t1", Box::new(ComputeBound), ());
        let t2 = k.spawn("t2", Box::new(ComputeBound), ());
        k.run_until(SimTime::from_secs(11));
        assert!(k.threads[short.index() as usize].is_exited());
        // Capacity: 22 CPU-seconds; short used 1; the rest split ~evenly.
        let total = k.metrics().cpu_us(t1) + k.metrics().cpu_us(t2);
        assert!(
            (total as i64 - 21_000_000).abs() < 400_000,
            "t1+t2 = {total}"
        );
    }

    #[test]
    fn idle_machine_stops() {
        let mut k = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 4);
        k.run_until(SimTime::from_secs(5));
        assert_eq!(k.utilization(), 0.0);
        assert_eq!(k.cpus(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let _ = SmpKernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)), 0);
    }
}
