//! The discrete-event queue at the heart of the simulation core.
//!
//! Every piece of *future* work — timer wakes, trace arrivals, quantum
//! expiries, disk completions, net forwards, cluster reconciliation
//! rounds — lives in one [`EventQueue`]: a min-heap of
//! `(SimTime, seq, E)` entries. The kernel's run loop pops the earliest
//! entry and *jumps* the clock to it, so simulated time between events
//! costs nothing: a million sleeping tenants are a million pending
//! entries, not a million per-quantum no-op decisions.
//!
//! Determinism: the queue is totally ordered by `(when, seq)`, where
//! `seq` is a monotonically increasing push counter. Two events due at
//! the same instant therefore pop in exactly the order they were
//! scheduled, independent of the payload type and of heap internals —
//! the property every winner-stream and replay guarantee rests on. No
//! `Ord` bound is needed on the payload: `seq` is unique, so the
//! `(when, seq)` key alone is already a total order.
//!
//! [`EventSource`] is the adapter shape for pull-driven device models
//! (the disk arm, the cell switch, the cluster's reconciliation clock):
//! a source exposes *when* its next unit of work is due and the shared
//! loop jumps there, exactly the `next_tick()` discipline of
//! discrete-event co-simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// How a kernel's run loop discovers due work and passes idle time.
///
/// Since the event rebase there is one production mode: jump-to-next-
/// event. The legacy quantum-stepping cost model is retired from the
/// public API; it survives only inside this crate's test builds, where
/// the stepping-equivalence property proves both modes deliver the same
/// events in the same `(when, seq)` order — so winner streams and
/// captures stay bit-identical to the pre-refactor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeMode {
    /// Jump-to-next-event: `O(log n)` heap peek/pop per scheduling point;
    /// idle jumps straight to the next due instant.
    #[default]
    Event,
    /// Legacy tick-kernel cost model: a linear callout-list scan per
    /// scheduling point (see [`EventQueue::scan`]) and quantum-granular
    /// idle, as a 4.3BSD-style `timeout()` wheel-less kernel would pay.
    /// Test-only: kept to prove stream equivalence, not to run.
    #[cfg(test)]
    Stepping,
}

/// One scheduled entry: the payload plus its position in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event is due.
    pub at: SimTime,
    /// Scheduling sequence number — the tiebreak for equal times.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// Max-heap adapter: reverses the `(at, seq)` order so the earliest
/// entry surfaces first. The payload never participates in ordering.
#[derive(Debug, Clone)]
struct Entry<E>(Scheduled<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A keyed min-heap of future work, ordered by `(when, seq)`.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// An empty queue with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` at `at`; returns the sequence number assigned.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry(Scheduled { at, seq, event }));
        seq
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| e.0)
    }

    /// When the earliest entry is due, without removing it.
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no work is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending entry (the push counter keeps advancing, so
    /// later pushes still order after earlier ones).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// How far ahead of `now` the next entry is; zero when one is
    /// already due or none is pending.
    pub fn horizon(&self, now: SimTime) -> SimDuration {
        self.peek_at()
            .map_or(SimDuration::ZERO, |at| at.saturating_since(now))
    }

    /// Visits every pending entry in no particular order — the linear
    /// callout-list scan a tick-based kernel pays per step, exposed so
    /// the legacy stepping mode can model exactly that cost.
    pub fn scan(&self) -> impl Iterator<Item = &Scheduled<E>> {
        self.heap.iter().map(|e| &e.0)
    }
}

/// A pull-driven component that knows when its next unit of work is due.
///
/// Device models (the disk scheduler, the cell switch) and periodic
/// controllers (cluster reconciliation) implement this so a shared
/// event loop can jump the clock straight to the earliest pending
/// tick across every component instead of polling each one.
pub trait EventSource {
    /// When this source next has work, or `None` when idle.
    fn next_due(&self) -> Option<SimTime>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(30), "c");
        q.push(SimTime::from_us(10), "a");
        q.push(SimTime::from_us(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_keep_seq_tiebreak() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(7);
        q.push(t, "first");
        q.push(SimTime::from_us(1), "early");
        q.push(t, "second");
        assert_eq!(q.pop().unwrap().event, "early");
        assert_eq!(q.pop().unwrap().event, "first");
        assert_eq!(q.pop().unwrap().event, "second");
    }

    #[test]
    fn horizon_measures_gap_to_next() {
        let mut q = EventQueue::new();
        assert_eq!(q.horizon(SimTime::ZERO), SimDuration::ZERO);
        q.push(SimTime::from_ms(5), ());
        assert_eq!(q.horizon(SimTime::from_ms(2)), SimDuration::from_ms(3));
        assert_eq!(q.horizon(SimTime::from_ms(9)), SimDuration::ZERO);
    }

    #[test]
    fn clear_keeps_counter_monotone() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        let b = q.push(SimTime::ZERO, ());
        assert!(b > a, "{b} must order after {a}");
    }

    #[test]
    fn scan_visits_everything() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime::from_us(i), i);
        }
        let mut seen: Vec<u64> = q.scan().map(|s| s.event).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(q.len(), 10);
    }
}
