//! Scheduling event traces.
//!
//! A bounded ring of timestamped scheduler events, recorded by the kernel
//! when enabled. Tests use traces to assert *sequences* of decisions
//! (dispatch → block → wake → dispatch) rather than just aggregate
//! counters, and experiment debugging uses them as a flight recorder.
//!
//! Since the probe-bus rework, `Trace` is an [`lottery_obs::Recorder`]:
//! the kernel publishes events once, onto its [`lottery_obs::ProbeBus`],
//! and a trace attached to the bus folds the scheduler-shaped subset into
//! this typed ring — one event pipeline instead of two.

use std::collections::VecDeque;

use lottery_obs::{Event, EventKind};

use crate::sched::EndReason;
use crate::thread::ThreadId;
use crate::time::SimTime;

/// One scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread was created.
    Spawn(ThreadId),
    /// A thread was dispatched onto the CPU.
    Dispatch(ThreadId),
    /// A dispatch ended for the given reason.
    QuantumEnd(ThreadId, EndReason),
    /// A blocked thread became ready.
    Wake(ThreadId),
    /// A synchronous request was delivered to a server thread.
    Deliver {
        /// The blocked client.
        client: ThreadId,
        /// The server thread now working on its behalf.
        server: ThreadId,
    },
    /// A reply completed an RPC.
    Reply {
        /// The client being woken.
        client: ThreadId,
        /// The server that served it.
        server: ThreadId,
    },
}

/// A bounded trace ring.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    ring: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((at, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events concerning one thread, oldest first.
    pub fn for_thread(&self, tid: ThreadId) -> Vec<(SimTime, TraceEvent)> {
        self.ring
            .iter()
            .filter(|(_, e)| match *e {
                TraceEvent::Spawn(t)
                | TraceEvent::Dispatch(t)
                | TraceEvent::QuantumEnd(t, _)
                | TraceEvent::Wake(t) => t == tid,
                TraceEvent::Deliver { client, server } | TraceEvent::Reply { client, server } => {
                    client == tid || server == tid
                }
            })
            .copied()
            .collect()
    }
}

impl lottery_obs::Recorder for Trace {
    /// Folds the scheduler-shaped subset of the probe-bus stream into the
    /// typed ring; ledger/cache events are not scheduler decisions and are
    /// skipped.
    fn record(&mut self, event: &Event) {
        let at = SimTime::from_us(event.time_us);
        let mapped = match event.kind {
            EventKind::ThreadSpawn { thread } => {
                Some(TraceEvent::Spawn(ThreadId::from_index(thread)))
            }
            EventKind::Dispatch { thread, .. } => {
                Some(TraceEvent::Dispatch(ThreadId::from_index(thread)))
            }
            EventKind::QuantumEnd { thread, reason, .. } => EndReason::parse(reason)
                .map(|why| TraceEvent::QuantumEnd(ThreadId::from_index(thread), why)),
            EventKind::Wake { thread } => Some(TraceEvent::Wake(ThreadId::from_index(thread))),
            EventKind::RpcDeliver { client, server } => Some(TraceEvent::Deliver {
                client: ThreadId::from_index(client),
                server: ThreadId::from_index(server),
            }),
            EventKind::RpcReply { client, server } => Some(TraceEvent::Reply {
                client: ThreadId::from_index(client),
                server: ThreadId::from_index(server),
            }),
            _ => None,
        };
        if let Some(e) = mapped {
            self.record(at, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId::from_index(0);
    const T1: ThreadId = ThreadId::from_index(1);

    #[test]
    fn ring_evicts_oldest() {
        let mut trace = Trace::new(2);
        trace.record(SimTime::from_ms(1), TraceEvent::Spawn(T0));
        trace.record(SimTime::from_ms(2), TraceEvent::Dispatch(T0));
        trace.record(SimTime::from_ms(3), TraceEvent::Wake(T1));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 1);
        let first = trace.events().next().unwrap();
        assert_eq!(first.1, TraceEvent::Dispatch(T0));
    }

    #[test]
    fn for_thread_filters() {
        let mut trace = Trace::new(8);
        trace.record(SimTime::from_ms(1), TraceEvent::Dispatch(T0));
        trace.record(SimTime::from_ms(2), TraceEvent::Dispatch(T1));
        trace.record(
            SimTime::from_ms(3),
            TraceEvent::Deliver {
                client: T0,
                server: T1,
            },
        );
        assert_eq!(trace.for_thread(T0).len(), 2);
        assert_eq!(trace.for_thread(T1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::new(0);
    }
}
