//! Thread control blocks.
//!
//! A simulated thread owns a [`crate::workload::Workload`], a scheduling
//! state, and accounting fields. Scheduling *policy* state (tickets,
//! priorities, strides) lives in the policy, keyed by [`ThreadId`].

use core::fmt;

use crate::ipc::{Message, PortId};
use crate::time::{SimDuration, SimTime};
use crate::workload::Workload;

/// Identifies a thread within a kernel.
///
/// Thread ids are dense indices (threads are never removed from the
/// kernel's table, merely marked exited), so policies may use them to index
/// side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Builds a thread id from a raw index.
    pub const fn from_index(index: u32) -> Self {
        Self(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Thread ids are dense arena indices, so lottery pools can mirror them
/// with a dense slot table instead of a hash map.
impl lottery_core::lottery::index::SlotKey for ThreadId {
    fn slot_key(&self) -> usize {
        self.0 as usize
    }
}

/// Why a thread is off the run queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Sleeping until a timer fires (I/O completion and the like).
    Timer,
    /// Waiting for the reply to a synchronous RPC.
    AwaitingReply {
        /// The port the request was sent to.
        port: PortId,
    },
    /// A server thread waiting for a request.
    Receiving {
        /// The port being received on.
        port: PortId,
    },
    /// Blocked by an external synchronization object (e.g. a lottery
    /// mutex built on top of the simulator).
    External,
}

/// A thread's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// On the run queue, eligible for dispatch.
    Ready,
    /// Currently executing.
    Running,
    /// Off the run queue.
    Blocked(BlockReason),
    /// Terminated; never scheduled again.
    Exited,
}

/// A thread control block.
pub struct Thread {
    name: String,
    state: ThreadState,
    workload: Box<dyn Workload>,
    /// CPU time left in the burst the workload last issued.
    pub(crate) burst_remaining: SimDuration,
    /// The request currently being served (server threads).
    pub(crate) current_request: Option<Message>,
    /// Total CPU time consumed.
    pub(crate) cpu_time: SimDuration,
    /// When the thread last became ready (for wait-time accounting).
    pub(crate) ready_since: Option<SimTime>,
    /// When the thread last blocked (for lock-wait accounting).
    pub(crate) blocked_since: Option<SimTime>,
    /// CPU consumed in the current quantum, for compensation accounting.
    pub(crate) quantum_used: SimDuration,
}

impl Thread {
    /// Creates a ready thread running `workload`.
    pub fn new(name: impl Into<String>, workload: Box<dyn Workload>) -> Self {
        Self {
            name: name.into(),
            state: ThreadState::Ready,
            workload,
            burst_remaining: SimDuration::ZERO,
            current_request: None,
            cpu_time: SimDuration::ZERO,
            ready_since: None,
            blocked_since: None,
            quantum_used: SimDuration::ZERO,
        }
    }

    /// The thread's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The thread's current scheduling state.
    pub fn state(&self) -> ThreadState {
        self.state
    }

    /// Total CPU time consumed so far.
    pub fn cpu_time(&self) -> SimDuration {
        self.cpu_time
    }

    /// Whether the thread has exited.
    pub fn is_exited(&self) -> bool {
        self.state == ThreadState::Exited
    }

    pub(crate) fn set_state(&mut self, state: ThreadState) {
        debug_assert!(
            self.state != ThreadState::Exited || state == ThreadState::Exited,
            "exited threads stay exited"
        );
        self.state = state;
    }

    pub(crate) fn workload_mut(&mut self) -> &mut dyn Workload {
        self.workload.as_mut()
    }
}

impl fmt::Debug for Thread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Thread")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("cpu_time", &self.cpu_time)
            .field("burst_remaining", &self.burst_remaining)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ComputeBound;

    #[test]
    fn new_thread_is_ready() {
        let t = Thread::new("worker", Box::new(ComputeBound));
        assert_eq!(t.state(), ThreadState::Ready);
        assert_eq!(t.cpu_time(), SimDuration::ZERO);
        assert!(!t.is_exited());
        assert_eq!(t.name(), "worker");
    }

    #[test]
    fn state_transitions() {
        let mut t = Thread::new("w", Box::new(ComputeBound));
        t.set_state(ThreadState::Running);
        assert_eq!(t.state(), ThreadState::Running);
        t.set_state(ThreadState::Blocked(BlockReason::Timer));
        assert!(matches!(
            t.state(),
            ThreadState::Blocked(BlockReason::Timer)
        ));
        t.set_state(ThreadState::Exited);
        assert!(t.is_exited());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exited threads stay exited")]
    fn exited_is_terminal() {
        let mut t = Thread::new("w", Box::new(ComputeBound));
        t.set_state(ThreadState::Exited);
        t.set_state(ThreadState::Ready);
    }

    #[test]
    fn debug_impl_shows_name() {
        let t = Thread::new("dbg", Box::new(ComputeBound));
        assert!(format!("{t:?}").contains("dbg"));
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId::from_index(4).to_string(), "t4");
        assert_eq!(ThreadId::from_index(4).index(), 4);
    }
}
