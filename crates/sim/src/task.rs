//! Tasks: groups of threads funded through a shared currency.
//!
//! In the paper's prototype (Figure 3) every Mach task has a currency
//! funded from its user's currency, and each of its threads is funded by a
//! ticket denominated in the task currency. [`TaskBuilder`] packages that
//! pattern for [`crate::sched::lottery::LotteryPolicy`] kernels: create a
//! task, give it backing, spawn member threads with intra-task ticket
//! splits, and the inter-task shares stay insulated no matter how many
//! threads each task runs.

use lottery_core::currency::CurrencyId;
use lottery_core::errors::Result;

use crate::kernel::Kernel;
use crate::sched::lottery::{FundingSpec, LotteryPolicy};
use crate::thread::ThreadId;
use crate::workload::Workload;

/// A task: a currency plus its member threads.
#[derive(Debug, Clone)]
pub struct Task {
    name: String,
    currency: CurrencyId,
    members: Vec<ThreadId>,
}

impl Task {
    /// The task's currency.
    pub fn currency(&self) -> CurrencyId {
        self.currency
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Member threads, in spawn order.
    pub fn members(&self) -> &[ThreadId] {
        &self.members
    }
}

/// Builder for tasks on a lottery-scheduled kernel.
pub struct TaskBuilder<'a> {
    kernel: &'a mut Kernel<LotteryPolicy>,
}

impl<'a> TaskBuilder<'a> {
    /// Wraps a kernel for task construction.
    pub fn new(kernel: &'a mut Kernel<LotteryPolicy>) -> Self {
        Self { kernel }
    }

    /// Creates a task whose currency is backed by `funding` tickets of
    /// `parent` (use [`LotteryPolicy::base_currency`] for top-level
    /// tasks).
    pub fn task(&mut self, name: &str, parent: CurrencyId, funding: u64) -> Result<Task> {
        let currency = self
            .kernel
            .policy_mut()
            .create_subcurrency(name, parent, funding)?;
        Ok(Task {
            name: name.to_string(),
            currency,
            members: Vec::new(),
        })
    }

    /// Spawns a thread inside `task`, holding `tickets` of the task
    /// currency.
    pub fn thread(
        &mut self,
        task: &mut Task,
        name: &str,
        workload: Box<dyn Workload>,
        tickets: u64,
    ) -> ThreadId {
        let tid = self.kernel.spawn(
            format!("{}:{}", task.name, name),
            workload,
            FundingSpec::new(task.currency, tickets),
        );
        task.members.push(tid);
        tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::workload::ComputeBound;

    /// Figure 3's property: tasks split by their funding regardless of
    /// how many threads each runs.
    #[test]
    fn thread_count_does_not_leak_between_tasks() {
        let policy = LotteryPolicy::new(3);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let mut b = TaskBuilder::new(&mut kernel);
        let mut one = b.task("one", base, 1000).unwrap();
        let mut many = b.task("many", base, 1000).unwrap();
        let solo = b.thread(&mut one, "solo", Box::new(ComputeBound), 100);
        let mut crowd = Vec::new();
        for i in 0..5 {
            crowd.push(b.thread(&mut many, &format!("w{i}"), Box::new(ComputeBound), 100));
        }
        kernel.run_until(SimTime::from_secs(200));
        let solo_cpu = kernel.metrics().cpu_us(solo) as f64;
        let crowd_cpu: u64 = crowd.iter().map(|&t| kernel.metrics().cpu_us(t)).sum();
        // Equal task funding -> equal aggregate CPU, despite 1 vs 5
        // threads.
        let ratio = solo_cpu / crowd_cpu as f64;
        assert!((ratio - 1.0).abs() < 0.1, "task ratio {ratio}");
        // Within the crowd, equal intra-task tickets -> equal split.
        for &t in &crowd {
            let share = kernel.metrics().cpu_us(t) as f64 / crowd_cpu as f64;
            assert!((share - 0.2).abs() < 0.05, "member share {share}");
        }
        assert_eq!(one.members().len(), 1);
        assert_eq!(many.members().len(), 5);
        assert_eq!(one.name(), "one");
    }

    #[test]
    fn nested_tasks_compose() {
        // user -> project -> two tasks, Figure 3 style depth.
        let policy = LotteryPolicy::new(9);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let mut b = TaskBuilder::new(&mut kernel);
        let user = b.task("user", base, 900).unwrap();
        let mut proj_a = b.task("proj-a", user.currency(), 200).unwrap();
        let mut proj_b = b.task("proj-b", user.currency(), 100).unwrap();
        let ta = b.thread(&mut proj_a, "t", Box::new(ComputeBound), 10);
        let tb = b.thread(&mut proj_b, "t", Box::new(ComputeBound), 10);
        kernel.run_until(SimTime::from_secs(120));
        let ratio = kernel.metrics().cpu_ratio(ta, tb).unwrap();
        assert!((ratio - 2.0).abs() < 0.25, "{ratio}");
    }
}
