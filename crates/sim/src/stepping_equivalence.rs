//! The stepping-equivalence proof, kept where the retired mode lives.
//!
//! [`TimeMode::Stepping`] is no longer public API — the event rebase made
//! jump-to-next-event the only production mode — but the *property* that
//! justified the rebase still needs standing evidence: both modes deliver
//! the same events in the same `(when, seq)` order, so winner streams and
//! captures are bit-identical. The variant is `#[cfg(test)]`-gated, and
//! this module (compiled only under test) drives random workloads through
//! both modes across the full structure × shard matrix and requires
//! identical probe streams.

use std::collections::HashMap;

use lottery_obs::{CurrencySnapshot, Event, FlightRecorder, ProbeBus, Shared, TraceJob, TraceSpec};
use proptest::prelude::*;

use crate::event::TimeMode;
use crate::kernel::Kernel;
use crate::replay::{canonical_stream, structure_name, CaptureConfig};
use crate::sched::distributed::DistributedLottery;
use crate::sched::lottery::{FundingSpec, LotteryPolicy, SelectStructure};
use crate::smp::SmpKernel;
use crate::time::{SimDuration, SimTime};
use crate::workload::{Burst, Scripted};

/// The structure × shard matrix the original acceptance criteria named.
const MATRIX: &[(SelectStructure, u32)] = &[
    (SelectStructure::List, 0),
    (SelectStructure::Tree, 0),
    (SelectStructure::Alias, 0),
    (SelectStructure::List, 2),
    (SelectStructure::Tree, 2),
    (SelectStructure::Alias, 2),
    (SelectStructure::List, 4),
    (SelectStructure::Tree, 4),
    (SelectStructure::Alias, 4),
];

/// The burst script a [`TraceJob`] runs — the same split the capture
/// corpus uses: half the service, the sleep, the rest.
fn job_script(job: &TraceJob) -> Vec<Burst> {
    if job.service_us == 0 {
        return Vec::new();
    }
    if job.sleep_us == 0 {
        return vec![Burst::Run(SimDuration::from_us(job.service_us))];
    }
    let first = job.service_us / 2;
    let rest = job.service_us - first;
    let mut script = Vec::new();
    if first > 0 {
        script.push(Burst::Run(SimDuration::from_us(first)));
    }
    script.push(Burst::Sleep(SimDuration::from_us(job.sleep_us)));
    if rest > 0 {
        script.push(Burst::Run(SimDuration::from_us(rest)));
    }
    script
}

/// Jobs in deterministic spawn order: by arrival time, ties by index.
fn spawn_order(spec: &TraceSpec) -> Vec<(usize, &TraceJob)> {
    let mut jobs: Vec<(usize, &TraceJob)> = spec.jobs.iter().enumerate().collect();
    jobs.sort_by_key(|&(i, job)| (job.arrival_us, i));
    jobs
}

/// Runs `spec` under `config` with the kernel pinned to `mode`, returning
/// the probe-bus stream. The equivalence proof below holds exactly when
/// the stream is invariant under the mode.
fn drive_mode(spec: &TraceSpec, config: &CaptureConfig, mode: TimeMode) -> Vec<Event> {
    let quantum = SimDuration::from_us(config.quantum_us);
    let flight = Shared::new(FlightRecorder::new(1 << 16));
    let bus = ProbeBus::enabled();
    bus.attach(flight.clone());
    let jobs = spawn_order(spec);

    if config.shards == 0 {
        let mut policy = LotteryPolicy::with_quantum(config.seed, quantum);
        policy.set_structure(config.structure);
        policy.set_compensation_enabled(config.compensation);
        let base = policy.base_currency();
        let mut currencies = HashMap::new();
        for cur in &spec.currencies {
            let id = policy.create_currency(&cur.name, cur.amount).unwrap();
            currencies.insert(cur.name.clone(), id);
        }
        let mut kernel = Kernel::new(policy);
        kernel.set_time_mode(mode);
        kernel.set_probe_bus(bus);
        for &(i, job) in &jobs {
            kernel.run_until_completing(SimTime::from_us(job.arrival_us));
            let cur = currencies.get(job.tenant.as_str()).copied().unwrap_or(base);
            kernel.spawn(
                format!("job{i}"),
                Box::new(Scripted::once(job_script(job))),
                FundingSpec::new(cur, job.tickets.max(1)),
            );
        }
        kernel.run_until_completing(SimTime::from_us(config.until_us));
    } else {
        let shards = config.shards as usize;
        let mut policy = DistributedLottery::with_quantum(config.seed, shards, quantum);
        policy.set_structure(config.structure);
        policy.set_compensation_enabled(config.compensation);
        let base = policy.base_currency();
        let mut currencies = HashMap::new();
        for cur in &spec.currencies {
            let id = policy.create_currency(&cur.name, cur.amount).unwrap();
            currencies.insert(cur.name.clone(), id);
        }
        let mut kernel = SmpKernel::new(policy, shards);
        kernel.set_time_mode(mode);
        kernel.set_probe_bus(bus);
        for &(i, job) in &jobs {
            kernel.run_until(SimTime::from_us(job.arrival_us)).unwrap();
            let cur = currencies.get(job.tenant.as_str()).copied().unwrap_or(base);
            kernel.spawn(
                format!("job{i}"),
                Box::new(Scripted::once(job_script(job))),
                FundingSpec::new(cur, job.tickets.max(1)),
            );
        }
        kernel.run_until(SimTime::from_us(config.until_us)).unwrap();
    }

    flight.with(|f| f.events().cloned().collect())
}

/// Random workloads over the three-tenant currency set: staggered
/// arrivals, mixed service demands, optional sleeps (compensation).
fn spec_strategy() -> impl Strategy<Value = TraceSpec> {
    let job = (
        0..60_000u64,
        500..30_000u64,
        prop_oneof![Just(0u64), 500..6_000u64],
        0..3usize,
        1..400u64,
    )
        .prop_map(
            |(arrival_us, service_us, sleep_us, tenant, tickets)| TraceJob {
                arrival_us,
                service_us,
                sleep_us,
                tenant: ["gold", "silver", "bronze"][tenant].into(),
                tickets,
            },
        );
    prop::collection::vec(job, 1..7).prop_map(|jobs| TraceSpec {
        currencies: vec![
            CurrencySnapshot {
                name: "gold".into(),
                amount: 400,
            },
            CurrencySnapshot {
                name: "silver".into(),
                amount: 200,
            },
            CurrencySnapshot {
                name: "bronze".into(),
                amount: 100,
            },
        ],
        jobs,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Jump-to-next-event and legacy quantum stepping produce
    /// bit-identical streams (winner sequence, probe payloads,
    /// timestamps) across every structure and shard count.
    #[test]
    fn event_and_stepping_streams_are_bit_identical(
        spec in spec_strategy(),
        seed in 1u32..10_000,
        quantum_us in 400..2_500u64,
    ) {
        for &(structure, shards) in MATRIX {
            let config = CaptureConfig {
                seed,
                structure,
                shards,
                compensation: true,
                quantum_us,
                until_us: 90_000,
            };
            let event = drive_mode(&spec, &config, TimeMode::Event);
            let stepping = drive_mode(&spec, &config, TimeMode::Stepping);
            // Canonicalise wall-clock rebuild costs; everything else must
            // match bit for bit, element for element.
            prop_assert_eq!(
                canonical_stream(&event),
                canonical_stream(&stepping),
                "{} shards={} diverged between time modes",
                structure_name(structure),
                shards
            );
        }
    }
}
