//! # lottery-sim
//!
//! A discrete-event uniprocessor scheduler simulator: the substrate this
//! repository uses in place of the paper's modified Mach 3.0 kernel.
//!
//! The [`kernel::Kernel`] owns threads, simulated time, timers, and
//! synchronous RPC ports, and delegates dispatch decisions to a pluggable
//! [`sched::Policy`]. The [`sched::lottery::LotteryPolicy`] implements the
//! paper's mechanism in full (currencies, compensation tickets, ticket
//! transfers, dynamic inflation); decay-usage timesharing, fixed-priority,
//! round-robin, and stride policies provide the baselines and ablations.
//!
//! ## Example: a 2:1 processor split
//!
//! ```
//! use lottery_sim::prelude::*;
//!
//! let mut policy = LotteryPolicy::new(1);
//! let base = policy.base_currency();
//! let mut kernel = Kernel::new(policy);
//! let a = kernel.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 200));
//! let b = kernel.spawn("b", Box::new(ComputeBound), FundingSpec::new(base, 100));
//! kernel.run_until(SimTime::from_secs(60));
//! let ratio = kernel.metrics().cpu_ratio(a, b).unwrap();
//! assert!((ratio - 2.0).abs() < 0.2, "observed {ratio}");
//! ```

pub mod event;
pub mod ipc;
pub mod kernel;
pub mod metrics;
pub mod replay;
pub mod sched;
pub mod smp;
#[cfg(test)]
mod stepping_equivalence;
pub mod task;
pub mod thread;
pub mod time;
pub mod trace;
pub mod workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use lottery_obs::{
        first_divergence, Aggregator, CurrencySnapshot, Divergence, DominantShareMonitor,
        FairnessMonitor, FlightRecorder, ProbeBus, Recorder, ReplayHeader, ReplayLog, Shared,
        TraceJob, TraceSpec,
    };

    pub use crate::event::{EventQueue, EventSource, Scheduled, TimeMode};
    pub use crate::ipc::PortId;
    pub use crate::kernel::Kernel;
    pub use crate::metrics::Metrics;
    pub use crate::replay::{
        job_outcomes, record, run_fcfs, CaptureConfig, JobOutcome, ReplayReport, Replayer,
    };
    pub use crate::sched::comp::CompensationHook;
    pub use crate::sched::distributed::{DistributedLottery, ShardStats};
    pub use crate::sched::fairshare::{FairSharePolicy, UserId};
    pub use crate::sched::fixed::FixedPriorityPolicy;
    pub use crate::sched::lottery::{FundingSpec, LotteryPolicy, SelectStructure};
    pub use crate::sched::rr::RoundRobinPolicy;
    pub use crate::sched::stride::StridePolicy;
    pub use crate::sched::timeshare::TimesharePolicy;
    pub use crate::sched::{EndReason, Policy};
    pub use crate::smp::{SmpError, SmpKernel};
    pub use crate::task::{Task, TaskBuilder};
    pub use crate::thread::{ThreadId, ThreadState};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceEvent};
    pub use crate::workload::{
        Burst, ComputeBound, FiniteJob, FractionalQuantum, IoBound, MutexWorker, RpcClient,
        RpcServer, Scripted, Workload, WorkloadCtx,
    };
}
