//! Properties of the cluster market.
//!
//! Two invariants keep the market honest:
//!
//! * **grant conservation** — the coordinator's allocation matrix is the
//!   cluster's ledger: whatever sequence of reconciliation rounds,
//!   demand-following rebalances, message drops, node kills, partitions,
//!   and heals a run goes through, every tenant's per-node allocations
//!   always sum to exactly its cluster grant. Rebalancing and recovery
//!   move value between nodes; they never mint or leak it.
//! * **1-node transparency** — a single-node cluster is the standalone
//!   broker stack: the market's whole protocol (reports up, grant syncs
//!   down, demand-following retargeting) must reduce to no-ops, leaving
//!   per-round usage and grants bit-identical to a directly driven
//!   [`Node`]. Scaling out changed where funding decisions live, not the
//!   mechanism.

use lottery_cluster::{BudgetPolicy, ClusterMarket, Node};
use proptest::prelude::*;

/// One scripted cluster event, applied between reconciliation rounds.
#[derive(Debug, Clone)]
enum Step {
    /// Queue work for `tenant % tenants` on `node % nodes`.
    Offer {
        node: u32,
        tenant: usize,
        disk: u64,
        cells: u64,
    },
    /// Kill `node % nodes` outright.
    Kill { node: u32 },
    /// Cut `node % nodes`'s link.
    Partition { node: u32 },
    /// Restore `node % nodes`'s link.
    Heal { node: u32 },
    /// Run one reconciliation round of `services` slots per scheduler.
    Round { services: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..8u32, 0..4usize, 0..6u64, 0..6u64)
            .prop_map(|(node, tenant, disk, cells)| Step::Offer { node, tenant, disk, cells }),
        1 => (0..8u32).prop_map(|node| Step::Kill { node }),
        1 => (0..8u32).prop_map(|node| Step::Partition { node }),
        1 => (0..8u32).prop_map(|node| Step::Heal { node }),
        5 => (1..6u64).prop_map(|services| Step::Round { services }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cluster-wide grant value is conserved across reconciliation
    /// rounds, node loss, partitions, heals, and lossy links: no ticket
    /// value is minted or leaked by the coordinator, ever.
    #[test]
    fn grant_value_conserved_under_chaos(
        seed in 1..u32::MAX,
        nodes in 1..6u32,
        grants in proptest::collection::vec(1..4000u64, 1..4),
        drop_per_mille in 0..400u32,
        script in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let names = ["a", "b", "c", "d"];
        let tenants: Vec<(&str, u64)> = grants
            .iter()
            .enumerate()
            .map(|(i, &g)| (names[i], g))
            .collect();
        let mut m = ClusterMarket::new(nodes, seed, BudgetPolicy::DemandFollowing, &tenants)
            .unwrap();
        m.net_mut().set_drop_per_mille(drop_per_mille);
        prop_assert!(m.conserved());
        for step in &script {
            match *step {
                Step::Offer { node, tenant, disk, cells } => {
                    m.offer(node % nodes, tenant % tenants.len(), disk, cells);
                }
                Step::Kill { node } => m.kill(node % nodes),
                Step::Partition { node } => m.partition(node % nodes),
                Step::Heal { node } => m.heal(node % nodes),
                Step::Round { services } => {
                    m.round(services).unwrap();
                    prop_assert!(
                        m.conserved(),
                        "allocation rows no longer sum to cluster grants at round {}",
                        m.round_count()
                    );
                }
            }
        }
        // Drain a few more rounds so in-flight reclaims and resyncs land,
        // then re-check.
        for _ in 0..4 {
            m.round(2).unwrap();
            prop_assert!(m.conserved());
        }
    }

    /// A 1-node cluster is bit-identical to the standalone broker node:
    /// the market protocol must not perturb scheduling, usage, or grants
    /// when there is nowhere for funding to move.
    #[test]
    fn one_node_cluster_matches_standalone_node(
        seed in 1..u32::MAX,
        grants in proptest::collection::vec(1..3000u64, 1..4),
        drop_per_mille in 0..500u32,
        rounds in 1..25usize,
        services in 1..5u64,
    ) {
        let names = ["a", "b", "c", "d"];
        let tenants: Vec<(&str, u64)> = grants
            .iter()
            .enumerate()
            .map(|(i, &g)| (names[i], g))
            .collect();
        let mut m = ClusterMarket::new(1, seed, BudgetPolicy::DemandFollowing, &tenants)
            .unwrap();
        m.net_mut().set_drop_per_mille(drop_per_mille);
        let spec: Vec<(String, u64)> = tenants
            .iter()
            .map(|(n, g)| (n.to_string(), *g))
            .collect();
        let mut solo = Node::new(0, seed, &spec).unwrap();
        for round in 0..rounds {
            for t in 0..tenants.len() {
                let disk = ((round + t) % 5) as u64;
                let cells = ((round * (t + 1)) % 4) as u64;
                m.offer(0, t, disk, cells);
                solo.offer(t, disk, cells);
            }
            m.round(services).unwrap();
            solo.step(services).unwrap();
            for t in 0..tenants.len() {
                prop_assert_eq!(
                    m.node(0).usage(t),
                    solo.usage(t),
                    "usage diverged for tenant {} at round {}",
                    t,
                    round
                );
                prop_assert_eq!(m.node(0).grant(t), solo.grant(t));
                prop_assert_eq!(m.node(0).backlog(t), solo.backlog(t));
            }
        }
        prop_assert!(m.conserved());
    }
}
