//! The cluster market coordinator: budget policies, async
//! reconciliation, and partition/node-loss recovery.
//!
//! A [`ClusterMarket`] owns N [`Node`]s and the [`SimNet`] joining them.
//! Each tenant holds ONE cluster-level grant; the coordinator's
//! [`BudgetPolicy`] splits it into per-node base-currency grants, and the
//! only thing keeping those splits honest is the reconciliation loop:
//! nodes periodically send [`Message::Report`]s (backlog + cumulative
//! usage per tenant) over the simulated network, the coordinator
//! re-targets allocations toward the nodes where each tenant's demand
//! actually is, and pushes [`Message::Grant`] updates back down. Nothing
//! is shared — a grant update takes a link latency to land, a partition
//! silently eats traffic in both directions, and a node that stops
//! reporting is indistinguishable from a dead one, which is exactly how
//! the coordinator treats it.
//!
//! **Recovery.** When a node misses [`LOSS_TIMEOUT_ROUNDS`] consecutive
//! reconciliation rounds the coordinator declares it lost and reclaims
//! its allocations. Redistribution runs through the paper's inverse
//! lottery ([`lottery_core::inverse::draw_loser`]): each reclaimed
//! quantum goes to the survivor the inverse lottery picks — the fewer
//! tickets a node already holds of that tenant's grant, the more likely
//! it is to receive the next quantum, so recovery fills the poorest nodes
//! first with randomized tie-breaking instead of deterministically
//! dog-piling one survivor. If the node later reports again (a partition,
//! not a death), the coordinator emits [`EventKind::PartitionHeal`] and
//! the normal demand-following loop pulls funding back.
//!
//! **Conservation.** The coordinator's allocation matrix is the
//! authoritative ledger of the cluster grant: every rebalance and every
//! reclaim moves value between columns of a row, never creating or
//! destroying it, so each tenant's row always sums to its cluster grant
//! — the invariant the cluster proptests pin down. (Node-local views can
//! lag while updates are in flight or a partition holds stale grants —
//! split-brain over-subscription is real and intentional — but the
//! coordinator re-syncs every reachable node every round, so the
//! node-side total reconverges within a link latency of quiescence.)

use lottery_core::errors::Result;
use lottery_core::inverse::{draw_loser, draw_loser_uniform};
use lottery_core::rng::ParkMiller;
use lottery_obs::{DominantShareMonitor, DominantShareReport, EventKind, ProbeBus};

use crate::net::{Message, SimNet, TenantReport};
use crate::node::Node;

/// Reconciliation rounds a node may miss before the coordinator declares
/// it lost and reclaims its allocations.
pub const LOSS_TIMEOUT_ROUNDS: u32 = 3;

/// Quanta a reclaimed allocation is redistributed in (each quantum is
/// assigned by its own inverse lottery).
const RECLAIM_QUANTA: u64 = 4;

/// How the coordinator splits each tenant's cluster grant across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Split once at launch (evenly), then never move funding again — the
    /// ablation. Demand moves, allocations don't, and dead nodes keep
    /// their grants forever.
    StaticSplit,
    /// Re-target each tenant's allocation every round, proportional to
    /// the per-node demand signal (reported backlog + work completed
    /// since the last report), and reclaim lost nodes' allocations.
    DemandFollowing,
}

impl BudgetPolicy {
    /// The policy's wire/report tag.
    pub fn name(self) -> &'static str {
        match self {
            BudgetPolicy::StaticSplit => "static",
            BudgetPolicy::DemandFollowing => "demand-following",
        }
    }
}

#[derive(Debug)]
struct ClusterTenant {
    name: String,
    grant: u64,
}

#[derive(Debug, Clone, Copy)]
struct NodeView {
    /// Round of the last report delivered from the node (0 = never).
    last_heard: u32,
    /// Round the coordinator declared the node unreachable, if it has.
    unreachable_since: Option<u32>,
    /// Link drop count when the node was declared unreachable.
    dropped_at_mark: u64,
}

/// One `(tenant, node)` allocation row of a [`ClusterReport`].
#[derive(Debug, Clone)]
pub struct ClusterAllocRow {
    /// Cluster tenant index.
    pub tenant: u32,
    /// Node index.
    pub node: u32,
    /// The coordinator's intended allocation.
    pub alloc: u64,
    /// The grant the node actually holds (lags by link latency; stale
    /// under partition).
    pub node_grant: u64,
    /// The node's last reported backlog for the tenant.
    pub backlog: u64,
}

/// Per-tenant cluster-wide summary of a [`ClusterReport`].
#[derive(Debug, Clone)]
pub struct ClusterTenantRow {
    /// Cluster tenant index.
    pub tenant: u32,
    /// Tenant name.
    pub name: String,
    /// The cluster-level grant.
    pub grant: u64,
    /// Grant-proportional entitled share.
    pub entitled_share: f64,
    /// Cumulative serviced units per resource, summed over nodes.
    pub usage: [u64; 4],
}

/// A coordinator-eye snapshot of the whole market.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Reconciliation rounds run.
    pub round: u32,
    /// The budget policy's tag.
    pub policy: &'static str,
    /// Nodes in the market.
    pub nodes: u32,
    /// Nodes the coordinator currently believes reachable.
    pub reachable: u32,
    /// Whether every tenant's allocation row sums to its cluster grant.
    pub conserved: bool,
    /// Grant moves performed (rebalances + reclaims).
    pub moves: u64,
    /// Partition heals observed.
    pub heals: u64,
    /// Messages the network dropped or discarded.
    pub dropped: u64,
    /// Per-tenant summaries.
    pub tenants: Vec<ClusterTenantRow>,
    /// Per-(tenant, node) allocation rows, tenant-major.
    pub allocs: Vec<ClusterAllocRow>,
    /// The cluster-wide dominant-share report.
    pub shares: DominantShareReport,
}

/// N brokered nodes, one coordinator, and a lossy network in between.
#[derive(Debug)]
pub struct ClusterMarket {
    nodes: Vec<Node>,
    net: SimNet,
    policy: BudgetPolicy,
    tenants: Vec<ClusterTenant>,
    /// `alloc[tenant][node]`: the coordinator's authoritative split.
    alloc: Vec<Vec<u64>>,
    /// `demand[tenant][node]`: last demand signal per node.
    demand: Vec<Vec<u64>>,
    /// `seen_usage[tenant][node]`: cumulative usage last reported, for
    /// delta-feeding the monitor (cumulative reports make lost messages
    /// harmless).
    seen_usage: Vec<Vec<[u64; 4]>>,
    views: Vec<NodeView>,
    monitor: DominantShareMonitor,
    round: u32,
    /// Simulated microseconds between reconciliation rounds, for event-
    /// driven composition (see the `EventSource` impl).
    round_period_us: u64,
    rng: ParkMiller,
    bus: ProbeBus,
    moves: u64,
    heals: u64,
}

impl ClusterMarket {
    /// Builds a market of `node_count` nodes and the given tenants, each
    /// `(name, cluster_grant)` split evenly across nodes to start.
    pub fn new(
        node_count: u32,
        seed: u32,
        policy: BudgetPolicy,
        tenants: &[(&str, u64)],
    ) -> Result<ClusterMarket> {
        assert!(node_count > 0, "a market needs at least one node");
        let n = node_count as usize;
        let mut alloc = Vec::with_capacity(tenants.len());
        for (_, grant) in tenants {
            let base = grant / n as u64;
            let mut row = vec![base; n];
            let mut rest = grant - base * n as u64;
            for slot in row.iter_mut() {
                if rest == 0 {
                    break;
                }
                *slot += 1;
                rest -= 1;
            }
            alloc.push(row);
        }
        let mut nodes = Vec::with_capacity(n);
        // `alloc` is tenant-major, so iterating node ids and indexing
        // `alloc[t][id]` is the natural shape here.
        #[allow(clippy::needless_range_loop)]
        for id in 0..n {
            let spec: Vec<(String, u64)> = tenants
                .iter()
                .enumerate()
                .map(|(t, (name, _))| (name.to_string(), alloc[t][id]))
                .collect();
            nodes.push(Node::new(
                id as u32,
                seed.wrapping_add(id as u32 * 7919),
                &spec,
            )?);
        }
        let mut monitor = DominantShareMonitor::new();
        for (t, (_, grant)) in tenants.iter().enumerate() {
            monitor.set_entitlement(t as u32, *grant as f64);
        }
        Ok(ClusterMarket {
            nodes,
            net: SimNet::new(n, seed ^ 0x5ca1ab1e),
            policy,
            tenants: tenants
                .iter()
                .map(|(name, grant)| ClusterTenant {
                    name: name.to_string(),
                    grant: *grant,
                })
                .collect(),
            alloc,
            demand: vec![vec![0; n]; tenants.len()],
            seen_usage: vec![vec![[0; 4]; n]; tenants.len()],
            views: vec![
                NodeView {
                    last_heard: 0,
                    unreachable_since: None,
                    dropped_at_mark: 0,
                };
                n
            ],
            monitor,
            round: 0,
            round_period_us: 10_000,
            rng: ParkMiller::new(seed ^ 0x0ddba11),
            bus: ProbeBus::disabled(),
            moves: 0,
            heals: 0,
        })
    }

    /// Attaches a probe bus; reconciliation emits
    /// [`EventKind::NodeReport`], [`EventKind::GrantMove`], and
    /// [`EventKind::PartitionHeal`] through it.
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.bus = bus;
    }

    /// The simulated network (latency/drop/partition knobs).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// Switches the budget policy mid-run. Dropping to
    /// [`BudgetPolicy::StaticSplit`] freezes every allocation wherever
    /// the last rebalance left it — a reconciliation outage, and the
    /// cluster experiment's drift ablation.
    pub fn set_policy(&mut self, policy: BudgetPolicy) {
        self.policy = policy;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A tenant's cluster-level grant.
    pub fn cluster_grant(&self, tenant: usize) -> u64 {
        self.tenants[tenant].grant
    }

    /// A tenant's name.
    pub fn tenant_name(&self, tenant: usize) -> &str {
        &self.tenants[tenant].name
    }

    /// Looks a tenant up by name.
    pub fn find_tenant(&self, name: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t.name == name)
    }

    /// The coordinator's intended allocation for a tenant on a node.
    pub fn alloc(&self, tenant: usize, node: u32) -> u64 {
        self.alloc[tenant][node as usize]
    }

    /// Read access to a node (tests and reports; the protocol itself
    /// only talks to nodes through the network).
    pub fn node(&self, node: u32) -> &Node {
        &self.nodes[node as usize]
    }

    /// Reconciliation rounds run.
    pub fn round_count(&self) -> u32 {
        self.round
    }

    /// Sets the reconciliation cadence: simulated microseconds between
    /// rounds (used by the `EventSource` impl; the default is 10 ms).
    ///
    /// # Panics
    ///
    /// Panics on a zero period — a zero cadence would pin an event loop.
    pub fn set_round_period_us(&mut self, period_us: u64) {
        assert!(period_us > 0, "round period must be positive");
        self.round_period_us = period_us;
    }

    /// The reconciliation cadence, in simulated microseconds per round.
    pub fn round_period_us(&self) -> u64 {
        self.round_period_us
    }

    /// Grant moves performed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Cumulative serviced units for a tenant, summed across nodes
    /// (direct measurement for experiments; the monitor's view is
    /// report-fed and lags by a link latency).
    pub fn usage(&self, tenant: usize) -> [u64; 4] {
        let mut total = [0u64; 4];
        for node in &self.nodes {
            let u = node.usage(tenant);
            for (acc, v) in total.iter_mut().zip(u) {
                *acc += v;
            }
        }
        total
    }

    /// Queues work for a tenant on one node (no-op on dead nodes).
    pub fn offer(&mut self, node: u32, tenant: usize, disk_requests: u64, cells: u64) {
        self.nodes[node as usize].offer(tenant, disk_requests, cells);
    }

    /// Kills a node outright: it stops servicing and reporting. The
    /// coordinator finds out the only way it can — missed reports.
    pub fn kill(&mut self, node: u32) {
        self.nodes[node as usize].kill();
    }

    /// Cuts a node's network link (the node keeps running, isolated).
    pub fn partition(&mut self, node: u32) {
        self.net.set_partitioned(node, true);
    }

    /// Restores a node's network link.
    pub fn heal(&mut self, node: u32) {
        self.net.set_partitioned(node, false);
    }

    /// Whether the coordinator currently counts the node reachable.
    pub fn is_reachable(&self, node: u32) -> bool {
        self.views[node as usize].unreachable_since.is_none()
    }

    /// The cluster-wide dominant-share monitor (report-fed).
    pub fn monitor(&self) -> &DominantShareMonitor {
        &self.monitor
    }

    /// Runs one reconciliation round: nodes step their schedulers for
    /// `services` slots and report; the coordinator folds delivered
    /// reports, detects losses, re-targets allocations, and pushes grant
    /// updates; nodes apply whatever updates arrive.
    pub fn round(&mut self, services: u64) -> Result<()> {
        self.round += 1;
        let round = self.round;
        self.bus.set_time_us(round as u64 * 1_000);

        // 1. Nodes run and report. A dead node does neither; a
        //    partitioned node's report dies on the link.
        for id in 0..self.nodes.len() {
            self.nodes[id].step(services)?;
            if self.nodes[id].is_alive() {
                let rows = self.nodes[id].report_rows();
                self.net.send_up(
                    round,
                    id as u32,
                    Message::Report {
                        node: id as u32,
                        sent_round: round,
                        rows,
                    },
                );
            }
        }

        // 2. Fold whatever reports arrived.
        for (node, msg) in self.net.deliver_up(round) {
            let Message::Report { rows, .. } = msg else {
                continue;
            };
            self.fold_report(node, round, &rows);
        }

        // 3. Declare nodes that went quiet lost and (under
        //    demand-following) reclaim their allocations.
        self.detect_losses(round);

        // 4. Re-target allocations toward demand.
        if self.policy == BudgetPolicy::DemandFollowing {
            self.rebalance_allocations();
        }

        // 5. Push the full allocation down to every node the coordinator
        //    believes reachable. Idempotent full-sync: a dropped update
        //    is repaired next round, a healed node re-converges without
        //    a special path.
        for node in 0..self.nodes.len() as u32 {
            if self.views[node as usize].unreachable_since.is_some() {
                continue;
            }
            for tenant in 0..self.tenants.len() {
                self.net.send_down(
                    round,
                    node,
                    Message::Grant {
                        tenant: tenant as u32,
                        grant: self.alloc[tenant][node as usize],
                    },
                );
            }
        }

        // 6. Nodes apply whatever grant updates arrived.
        for (node, msg) in self.net.deliver_down(round) {
            let Message::Grant { tenant, grant } = msg else {
                continue;
            };
            self.nodes[node as usize].set_grant(tenant as usize, grant)?;
        }
        Ok(())
    }

    fn fold_report(&mut self, node: u32, round: u32, rows: &[TenantReport]) {
        let view = &mut self.views[node as usize];
        let was_unreachable = view.unreachable_since;
        view.last_heard = round;
        if let Some(since) = was_unreachable {
            let dropped = self.net.dropped(node) - view.dropped_at_mark;
            view.unreachable_since = None;
            self.heals += 1;
            self.bus.emit(|| EventKind::PartitionHeal {
                node,
                rounds: round - since,
                dropped,
            });
        }
        for row in rows {
            let t = row.tenant as usize;
            if t >= self.tenants.len() {
                continue;
            }
            // Demand signal: queued work plus work completed since the
            // last delivered report (cumulative-minus-seen, so drops
            // never lose usage).
            let seen = &mut self.seen_usage[t][node as usize];
            let mut delta_total = 0u64;
            for (r, (&now, last)) in row.usage.iter().zip(seen.iter_mut()).enumerate() {
                let delta = now.saturating_sub(*last);
                if delta > 0 {
                    static RESOURCES: [&str; 4] = ["cpu", "disk", "mem", "net"];
                    self.monitor
                        .record_units(row.tenant, RESOURCES[r], delta as f64);
                }
                delta_total += delta;
                *last = now;
            }
            self.demand[t][node as usize] = row.backlog + delta_total;
            self.bus.emit(|| EventKind::NodeReport {
                node,
                tenant: row.tenant,
                backlog: row.backlog,
                round,
            });
        }
    }

    fn detect_losses(&mut self, round: u32) {
        for node in 0..self.nodes.len() as u32 {
            let view = self.views[node as usize];
            if view.unreachable_since.is_some() {
                continue;
            }
            let silent_for = round.saturating_sub(view.last_heard);
            if silent_for <= LOSS_TIMEOUT_ROUNDS {
                continue;
            }
            self.views[node as usize].unreachable_since = Some(round);
            self.views[node as usize].dropped_at_mark = self.net.dropped(node);
            // A lost node's demand cannot be trusted any more.
            for t in 0..self.tenants.len() {
                self.demand[t][node as usize] = 0;
            }
            if self.policy == BudgetPolicy::DemandFollowing {
                self.reclaim(node);
            }
        }
    }

    /// Reclaims a lost node's allocations, redistributing each tenant's
    /// stake to the survivors by inverse lottery — quantum by quantum,
    /// poorest-favored (Section 6.2's loser-picking, here picking who
    /// *receives*: the fewer tickets a survivor holds, the more likely it
    /// draws the next quantum).
    fn reclaim(&mut self, lost: u32) {
        let survivors: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&n| n != lost && self.views[n as usize].unreachable_since.is_none())
            .collect();
        if survivors.is_empty() {
            return;
        }
        for tenant in 0..self.tenants.len() {
            let mut remaining = self.alloc[tenant][lost as usize];
            if remaining == 0 {
                continue;
            }
            self.alloc[tenant][lost as usize] = 0;
            let quantum = (remaining / RECLAIM_QUANTA).max(1);
            while remaining > 0 {
                let take = quantum.min(remaining);
                let to = if survivors.len() == 1 {
                    survivors[0]
                } else {
                    let entries: Vec<(u32, u64)> = survivors
                        .iter()
                        .map(|&n| (n, self.alloc[tenant][n as usize]))
                        .collect();
                    let i = draw_loser(&entries, &mut self.rng)
                        .or_else(|_| draw_loser_uniform(&entries, &mut self.rng))
                        .expect("two or more survivors");
                    survivors[i]
                };
                self.alloc[tenant][to as usize] += take;
                remaining -= take;
                self.moves += 1;
                self.bus.emit(|| EventKind::GrantMove {
                    tenant: tenant as u32,
                    from_node: lost,
                    to_node: to,
                    amount: take,
                });
            }
        }
    }

    /// Re-targets each tenant's allocation proportional to its demand
    /// signal over reachable nodes, then emits one [`EventKind::GrantMove`]
    /// per (source, sink) pair actually moved. Conservation is by
    /// construction: targets are an exact partition of the grant.
    fn rebalance_allocations(&mut self) {
        let reachable: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.views[n].unreachable_since.is_none())
            .collect();
        if reachable.is_empty() {
            return;
        }
        for tenant in 0..self.tenants.len() {
            let grant = self.tenants[tenant].grant;
            let stranded: u64 = (0..self.nodes.len())
                .filter(|n| !reachable.contains(n))
                .map(|n| self.alloc[tenant][n])
                .sum();
            // Only the reachable portion is re-targetable (static never
            // gets here; under demand-following stranded value is zero
            // except in the all-partitioned edge).
            let movable = grant - stranded;
            let signal: Vec<u64> = reachable.iter().map(|&n| self.demand[tenant][n]).collect();
            let total_signal: u64 = signal.iter().sum();
            if total_signal == 0 {
                continue;
            }
            // Integer-exact proportional targets; remainder to the
            // highest-signal node (first on tie).
            let mut targets: Vec<u64> = signal
                .iter()
                .map(|&s| ((movable as u128 * s as u128) / total_signal as u128) as u64)
                .collect();
            let assigned: u64 = targets.iter().sum();
            if let Some(max_at) =
                (0..signal.len()).max_by_key(|&i| (signal[i], std::cmp::Reverse(i)))
            {
                targets[max_at] += movable - assigned;
            }
            // Translate current → target into explicit moves.
            let mut sources: Vec<(usize, u64)> = Vec::new();
            let mut sinks: Vec<(usize, u64)> = Vec::new();
            for (i, &n) in reachable.iter().enumerate() {
                let current = self.alloc[tenant][n];
                match current.cmp(&targets[i]) {
                    std::cmp::Ordering::Greater => sources.push((n, current - targets[i])),
                    std::cmp::Ordering::Less => sinks.push((n, targets[i] - current)),
                    std::cmp::Ordering::Equal => {}
                }
            }
            let mut si = 0;
            for (from, mut surplus) in sources {
                while surplus > 0 && si < sinks.len() {
                    let (to, need) = &mut sinks[si];
                    let take = surplus.min(*need);
                    self.alloc[tenant][from] -= take;
                    self.alloc[tenant][*to] += take;
                    surplus -= take;
                    *need -= take;
                    self.moves += 1;
                    let (tenant_u, from_u, to_u) = (tenant as u32, from as u32, *to as u32);
                    self.bus.emit(|| EventKind::GrantMove {
                        tenant: tenant_u,
                        from_node: from_u,
                        to_node: to_u,
                        amount: take,
                    });
                    if *need == 0 {
                        si += 1;
                    }
                }
            }
        }
    }

    /// Whether every tenant's allocation row sums to its cluster grant.
    pub fn conserved(&self) -> bool {
        self.tenants
            .iter()
            .enumerate()
            .all(|(t, tenant)| self.alloc[t].iter().sum::<u64>() == tenant.grant)
    }

    /// Snapshots the coordinator's view of the whole market.
    pub fn report(&self) -> ClusterReport {
        let total_grant: u64 = self.tenants.iter().map(|t| t.grant).sum();
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, tenant)| ClusterTenantRow {
                tenant: t as u32,
                name: tenant.name.clone(),
                grant: tenant.grant,
                entitled_share: if total_grant > 0 {
                    tenant.grant as f64 / total_grant as f64
                } else {
                    0.0
                },
                usage: self.usage(t),
            })
            .collect();
        let mut allocs = Vec::new();
        for t in 0..self.tenants.len() {
            for n in 0..self.nodes.len() {
                allocs.push(ClusterAllocRow {
                    tenant: t as u32,
                    node: n as u32,
                    alloc: self.alloc[t][n],
                    node_grant: self.nodes[n].grant(t),
                    backlog: self.demand[t][n],
                });
            }
        }
        ClusterReport {
            round: self.round,
            policy: self.policy.name(),
            nodes: self.nodes.len() as u32,
            reachable: (0..self.nodes.len())
                .filter(|&n| self.views[n].unreachable_since.is_none())
                .count() as u32,
            conserved: self.conserved(),
            moves: self.moves,
            heals: self.heals,
            dropped: self.net.dropped_total(),
            tenants,
            allocs,
            shares: self.monitor.report(),
        }
    }
}

/// Reconciliation is a periodic controller: round `r+1` is due one
/// cadence after round `r`'s nominal instant, unconditionally — the
/// coordinator re-syncs even an idle cluster (that is what detects
/// partitions and node loss). A shared event loop jumps straight to it.
impl lottery_sim::event::EventSource for ClusterMarket {
    fn next_due(&self) -> Option<lottery_sim::time::SimTime> {
        Some(lottery_sim::time::SimTime::from_us(
            (u64::from(self.round) + 1) * self.round_period_us,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market(policy: BudgetPolicy) -> ClusterMarket {
        ClusterMarket::new(4, 42, policy, &[("gold", 2000), ("silver", 1000)]).unwrap()
    }

    fn saturate(m: &mut ClusterMarket) {
        for node in 0..4 {
            m.offer(node, 0, 6, 6);
            m.offer(node, 1, 3, 3);
        }
    }

    #[test]
    fn initial_split_is_even_and_conserved() {
        let m = market(BudgetPolicy::DemandFollowing);
        for n in 0..4 {
            assert_eq!(m.alloc(0, n), 500);
            assert_eq!(m.alloc(1, n), 250);
            assert_eq!(m.node(n).grant(0), 500);
            assert_eq!(m.node(n).grant(1), 250);
        }
        assert!(m.conserved());
    }

    #[test]
    fn uneven_grant_remainder_stays_conserved() {
        let m = ClusterMarket::new(3, 1, BudgetPolicy::DemandFollowing, &[("t", 1000)]).unwrap();
        assert_eq!(m.alloc(0, 0) + m.alloc(0, 1) + m.alloc(0, 2), 1000);
        assert!(m.conserved());
    }

    #[test]
    fn demand_following_moves_funding_to_the_backlog() {
        let mut m = market(BudgetPolicy::DemandFollowing);
        // Gold's work all lands on node 0; silver's on node 3.
        for _ in 0..8 {
            m.offer(0, 0, 8, 8);
            m.offer(3, 1, 8, 8);
            m.round(4).unwrap();
        }
        assert!(m.conserved());
        assert!(
            m.alloc(0, 0) > 1500,
            "gold concentrated on node 0: {:?}",
            (0..4).map(|n| m.alloc(0, n)).collect::<Vec<_>>()
        );
        assert!(m.alloc(1, 3) > 750, "silver concentrated on node 3");
        // And the node-side grants follow within link latency.
        assert!(m.node(0).grant(0) > 1500);
    }

    #[test]
    fn static_split_never_moves() {
        let mut m = market(BudgetPolicy::StaticSplit);
        for _ in 0..8 {
            m.offer(0, 0, 8, 8);
            m.offer(3, 1, 8, 8);
            m.round(4).unwrap();
        }
        for n in 0..4 {
            assert_eq!(m.alloc(0, n), 500);
            assert_eq!(m.alloc(1, n), 250);
        }
        assert_eq!(m.moves(), 0);
    }

    #[test]
    fn policy_switch_freezes_allocations_where_they_are() {
        let mut m = market(BudgetPolicy::DemandFollowing);
        for _ in 0..8 {
            m.offer(0, 0, 8, 8);
            m.offer(3, 1, 8, 8);
            m.round(4).unwrap();
        }
        let concentrated: Vec<u64> = (0..4).map(|n| m.alloc(0, n)).collect();
        assert!(concentrated[0] > 1500);
        m.set_policy(BudgetPolicy::StaticSplit);
        for _ in 0..6 {
            saturate(&mut m);
            m.round(4).unwrap();
        }
        let frozen: Vec<u64> = (0..4).map(|n| m.alloc(0, n)).collect();
        assert_eq!(concentrated, frozen);
        assert!(m.conserved());
    }

    #[test]
    fn node_loss_reclaims_within_timeout_and_conserves() {
        let mut m = market(BudgetPolicy::DemandFollowing);
        for _ in 0..4 {
            saturate(&mut m);
            m.round(4).unwrap();
        }
        m.kill(2);
        for _ in 0..(LOSS_TIMEOUT_ROUNDS + 2) {
            saturate(&mut m);
            m.round(4).unwrap();
        }
        assert!(!m.is_reachable(2));
        assert_eq!(m.alloc(0, 2), 0);
        assert_eq!(m.alloc(1, 2), 0);
        assert!(m.conserved());
        assert!(m.moves() > 0);
    }

    #[test]
    fn partition_heals_and_emits() {
        use lottery_obs::{Aggregator, Shared};
        let mut m = market(BudgetPolicy::DemandFollowing);
        let agg = Shared::new(Aggregator::new());
        let bus = ProbeBus::enabled();
        bus.attach(agg.clone());
        m.set_probe_bus(bus);
        for _ in 0..3 {
            saturate(&mut m);
            m.round(4).unwrap();
        }
        m.partition(1);
        for _ in 0..(LOSS_TIMEOUT_ROUNDS + 2) {
            saturate(&mut m);
            m.round(4).unwrap();
        }
        assert!(!m.is_reachable(1));
        m.heal(1);
        for _ in 0..3 {
            saturate(&mut m);
            m.round(4).unwrap();
        }
        assert!(m.is_reachable(1));
        assert!(m.conserved());
        assert_eq!(agg.with(|a| a.partition_heals), 1);
        assert!(agg.with(|a| a.node_reports) > 0);
        assert!(agg.with(|a| a.grant_moves) > 0);
        let report = m.report();
        assert_eq!(report.heals, 1);
        assert!(report.conserved);
    }

    #[test]
    fn report_shapes() {
        let mut m = market(BudgetPolicy::DemandFollowing);
        saturate(&mut m);
        m.round(4).unwrap();
        let r = m.report();
        assert_eq!(r.nodes, 4);
        assert_eq!(r.reachable, 4);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.allocs.len(), 8);
        assert!(r.conserved);
        assert!((r.tenants[0].entitled_share - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.policy, "demand-following");
    }
}
