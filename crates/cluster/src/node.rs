//! One cluster node: a ledger, a broker, and schedulers of its own.
//!
//! A [`Node`] is the standalone multi-resource broker stack shrunk to a
//! unit the market can replicate: its own [`ResourceBroker`] (and thus
//! its own [`lottery_core::ledger::Ledger`]), a lottery
//! [`DiskScheduler`], and a lottery [`Switch`], wired together by a
//! node-local probe bus with a [`DemandTap`] deriving broker demand from
//! the schedulers' own draw/completion events. Nothing inside a node
//! knows the cluster exists — funding arrives only through
//! [`Node::set_grant`], and state leaves only through
//! [`Node::report_rows`] — which is what makes a 1-node cluster
//! behaviourally identical to the standalone broker.

use lottery_broker::{DemandTap, Resource, ResourceBroker, SplitPolicy, TenantId};
use lottery_core::errors::{LotteryError, Result};
use lottery_core::rng::ParkMiller;
use lottery_io::{DiskClientId, DiskPolicy, DiskScheduler};
use lottery_net::{CircuitId, Switch};
use lottery_obs::{ProbeBus, Shared};

use crate::net::TenantReport;

/// Disk request length every offered request uses, in sectors.
pub const DISK_REQUEST_SECTORS: u64 = 8;

/// One node of the cluster market.
#[derive(Debug)]
pub struct Node {
    id: u32,
    broker: ResourceBroker,
    disk: DiskScheduler,
    switch: Switch,
    tap: Shared<DemandTap>,
    tenants: Vec<TenantId>,
    disk_clients: Vec<DiskClientId>,
    circuits: Vec<CircuitId>,
    rng: ParkMiller,
    alive: bool,
    /// Monotone cell id feeding the switch (also the deterministic disk
    /// sector cursor).
    work_seq: u64,
}

impl Node {
    /// Builds a node with one broker tenant per `(name, grant)` pair.
    ///
    /// A zero initial grant registers the tenant with a placeholder grant
    /// and immediately unfunds it, so later [`Node::set_grant`] calls can
    /// bring the tenant up without re-registering.
    pub fn new(id: u32, seed: u32, tenants: &[(String, u64)]) -> Result<Node> {
        let bus = ProbeBus::enabled();
        let tap = Shared::new(DemandTap::new());
        bus.attach(tap.clone());
        let mut broker = ResourceBroker::new();
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let mut switch = Switch::new();
        disk.set_probe_bus(bus.clone());
        switch.set_probe_bus(bus.clone());
        let mut ids = Vec::with_capacity(tenants.len());
        let mut disk_clients = Vec::with_capacity(tenants.len());
        let mut circuits = Vec::with_capacity(tenants.len());
        for (name, grant) in tenants {
            let tenant =
                broker.register_tenant(name.clone(), (*grant).max(1), SplitPolicy::even())?;
            if *grant == 0 {
                broker.set_grant(tenant, 0)?;
            }
            let dc = disk.register(name.clone(), 1);
            let vc = switch.open_circuit(name.clone(), 1);
            tap.with(|t| {
                t.bind(Resource::Disk, dc.index(), tenant);
                t.bind(Resource::Net, vc.index(), tenant);
            });
            ids.push(tenant);
            disk_clients.push(dc);
            circuits.push(vc);
        }
        let mut node = Node {
            id,
            broker,
            disk,
            switch,
            tap,
            tenants: ids,
            disk_clients,
            circuits,
            rng: ParkMiller::new(seed),
            alive: true,
            work_seq: 0,
        };
        node.apply_weights();
        Ok(node)
    }

    /// The node's index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Whether the node is still running.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Kills the node: it stops servicing, reporting, and applying grant
    /// updates. Its ledger state is frozen as-is.
    pub fn kill(&mut self) {
        self.alive = false;
    }

    /// The node-local broker (read-only view for reports and tests).
    pub fn broker(&self) -> &ResourceBroker {
        &self.broker
    }

    /// Number of tenants registered on the node.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A tenant's node-local base-currency grant.
    pub fn grant(&self, tenant: usize) -> u64 {
        self.broker.grant(self.tenants[tenant])
    }

    /// Applies a coordinator grant update. Dead nodes ignore it.
    pub fn set_grant(&mut self, tenant: usize, grant: u64) -> Result<()> {
        if !self.alive {
            return Ok(());
        }
        if self.broker.grant(self.tenants[tenant]) != grant {
            self.broker.set_grant(self.tenants[tenant], grant)?;
        }
        Ok(())
    }

    /// Queues work for a tenant: `disk_requests` random-ish 8-sector
    /// reads and `cells` switch cells. Deterministic for a given call
    /// sequence.
    pub fn offer(&mut self, tenant: usize, disk_requests: u64, cells: u64) {
        if !self.alive {
            return;
        }
        for _ in 0..disk_requests {
            let sector = (self.work_seq * 64) % 1_000_000;
            self.disk
                .submit(self.disk_clients[tenant], sector, DISK_REQUEST_SECTORS);
            self.work_seq += 1;
        }
        for _ in 0..cells {
            self.switch.enqueue(self.circuits[tenant], self.work_seq);
            self.work_seq += 1;
        }
    }

    /// A tenant's queued work: pending disk requests plus queued cells.
    pub fn backlog(&self, tenant: usize) -> u64 {
        self.disk.backlog(self.disk_clients[tenant]) as u64
            + self.switch.backlog(self.circuits[tenant]) as u64
    }

    /// Cumulative serviced units per resource, canonical order.
    pub fn usage(&self, tenant: usize) -> [u64; 4] {
        [
            0,
            self.disk.sectors_served(self.disk_clients[tenant]),
            0,
            self.switch.forwarded(self.circuits[tenant]),
        ]
    }

    /// One node step: fold derived demand into the broker, top up with
    /// the backlog override, rebalance, re-price the schedulers, then run
    /// up to `services` disk slots and `services` switch slots.
    pub fn step(&mut self, services: u64) -> Result<()> {
        if !self.alive {
            return Ok(());
        }
        self.broker.absorb_demand(&self.tap);
        for (i, &tenant) in self.tenants.iter().enumerate() {
            let disk_backlog = self.disk.backlog(self.disk_clients[i]) as u64;
            if disk_backlog > 0 {
                self.broker
                    .record_demand(tenant, Resource::Disk, disk_backlog);
            }
            let net_backlog = self.switch.backlog(self.circuits[i]) as u64;
            if net_backlog > 0 {
                self.broker
                    .record_demand(tenant, Resource::Net, net_backlog);
            }
        }
        self.broker.rebalance()?;
        self.apply_weights();
        for _ in 0..services {
            let busy = self.disk_clients.iter().any(|&c| self.disk.backlog(c) > 0);
            if !busy {
                break;
            }
            // A backlogged tenant whose funding all moved to other nodes
            // holds zero tickets; the slot idles rather than erroring.
            match self.disk.service_next(&mut self.rng) {
                Ok(served) => {
                    let tenant = self
                        .disk_clients
                        .iter()
                        .position(|&c| c == served)
                        .expect("served client is registered");
                    self.broker.record_usage(
                        self.tenants[tenant],
                        Resource::Disk,
                        DISK_REQUEST_SECTORS,
                    );
                }
                Err(LotteryError::EmptyLottery) => break,
                Err(e) => return Err(e),
            }
        }
        for _ in 0..services {
            let busy = self.circuits.iter().any(|&c| self.switch.backlog(c) > 0);
            if !busy {
                break;
            }
            match self.switch.forward(&mut self.rng) {
                Ok((vc, _cell)) => {
                    let tenant = self
                        .circuits
                        .iter()
                        .position(|&c| c == vc)
                        .expect("forwarded circuit is registered");
                    self.broker
                        .record_usage(self.tenants[tenant], Resource::Net, 1);
                }
                Err(LotteryError::EmptyLottery) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Snapshots the per-tenant report rows the node sends upstream.
    pub fn report_rows(&self) -> Vec<TenantReport> {
        (0..self.tenants.len())
            .map(|i| TenantReport {
                tenant: i as u32,
                backlog: self.backlog(i),
                usage: self.usage(i),
            })
            .collect()
    }

    fn apply_weights(&mut self) {
        let disk_bind: Vec<(TenantId, DiskClientId)> = self
            .tenants
            .iter()
            .copied()
            .zip(self.disk_clients.iter().copied())
            .collect();
        self.broker.apply_disk(&mut self.disk, &disk_bind);
        let net_bind: Vec<(TenantId, CircuitId)> = self
            .tenants
            .iter()
            .copied()
            .zip(self.circuits.iter().copied())
            .collect();
        self.broker.apply_net(&mut self.switch, &net_bind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants() -> Vec<(String, u64)> {
        vec![("gold".into(), 2000), ("silver".into(), 1000)]
    }

    #[test]
    fn node_serves_proportionally_to_grants() {
        let mut node = Node::new(0, 11, &tenants()).unwrap();
        for _ in 0..400 {
            node.offer(0, 4, 4);
            node.offer(1, 4, 4);
            node.step(4).unwrap();
        }
        let gold = node.usage(0);
        let silver = node.usage(1);
        let disk_ratio = gold[1] as f64 / silver[1] as f64;
        let net_ratio = gold[3] as f64 / silver[3] as f64;
        assert!((disk_ratio - 2.0).abs() < 0.3, "disk {disk_ratio}");
        assert!((net_ratio - 2.0).abs() < 0.3, "net {net_ratio}");
    }

    #[test]
    fn grant_updates_reprice_service() {
        let mut node = Node::new(0, 5, &tenants()).unwrap();
        // Flip the grants: silver now holds 2x gold.
        node.set_grant(0, 1000).unwrap();
        node.set_grant(1, 2000).unwrap();
        for _ in 0..400 {
            node.offer(0, 4, 0);
            node.offer(1, 4, 0);
            node.step(4).unwrap();
        }
        let ratio = node.usage(1)[1] as f64 / node.usage(0)[1] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn dead_node_freezes() {
        let mut node = Node::new(0, 5, &tenants()).unwrap();
        node.offer(0, 4, 4);
        node.step(2).unwrap();
        let before = node.usage(0);
        node.kill();
        node.offer(0, 4, 4);
        node.step(8).unwrap();
        node.set_grant(0, 9999).unwrap();
        assert_eq!(node.usage(0), before);
        assert_eq!(node.grant(0), 2000);
    }

    #[test]
    fn zero_grant_registration_starts_unfunded() {
        let mut node = Node::new(0, 5, &[("idle".into(), 0), ("busy".into(), 300)]).unwrap();
        assert_eq!(node.grant(0), 0);
        assert_eq!(node.grant(1), 300);
        node.set_grant(0, 600).unwrap();
        assert_eq!(node.grant(0), 600);
    }

    #[test]
    fn report_rows_carry_backlog_and_usage() {
        let mut node = Node::new(0, 5, &tenants()).unwrap();
        node.offer(0, 3, 2);
        let rows = node.report_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backlog, 5);
        assert_eq!(rows[1].backlog, 0);
        node.step(1).unwrap();
        let rows = node.report_rows();
        assert_eq!(rows[0].usage[1], DISK_REQUEST_SECTORS);
        assert_eq!(rows[0].usage[3], 1);
        assert_eq!(rows[0].backlog, 3);
    }
}
