//! The simulated cluster network: typed messages, per-link latency,
//! drops, and partitions.
//!
//! The market's reconciliation loop is *asynchronous by construction*:
//! nodes and the coordinator exchange [`Message`]s through this network
//! and nothing else — no shared ledger, no shared memory. Every link is a
//! star spoke (node ⇄ coordinator) with an integer latency measured in
//! reconciliation rounds, a deterministic drop lottery, and a partition
//! switch that silently discards traffic in both directions. Determinism
//! matters here the same way it does in the schedulers: a Park–Miller
//! stream decides drops, and delivery order is fixed by (due round,
//! send sequence), so a cluster run replays bit-for-bit from its seed.

use std::collections::VecDeque;

use lottery_core::rng::{ParkMiller, SchedRng};

/// One tenant's slice of a node report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Cluster-wide tenant index.
    pub tenant: u32,
    /// Queued work on the node (disk requests + switch cells + pending
    /// broker demand), the signal demand-following budgets chase.
    pub backlog: u64,
    /// Cumulative serviced units per resource in canonical order. Sent
    /// cumulative rather than as deltas so reports lost to drops or
    /// partitions never lose usage: the coordinator differences against
    /// the last value it saw.
    pub usage: [u64; 4],
}

/// Everything that flows over the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Node → coordinator: periodic state report.
    Report {
        /// Reporting node.
        node: u32,
        /// The round the node sent it (delivery may be later).
        sent_round: u32,
        /// Per-tenant backlog and usage.
        rows: Vec<TenantReport>,
    },
    /// Coordinator → node: set one tenant's node-local grant.
    Grant {
        /// Cluster-wide tenant index.
        tenant: u32,
        /// The node's new base-currency grant for the tenant.
        grant: u64,
    },
}

#[derive(Debug)]
struct InFlight {
    due: u32,
    seq: u64,
    node: u32,
    msg: Message,
}

#[derive(Debug, Clone)]
struct Link {
    latency: u32,
    partitioned: bool,
    /// Messages discarded on this link (drops + partition discards).
    dropped: u64,
}

/// The star network joining every node to the market coordinator.
#[derive(Debug)]
pub struct SimNet {
    links: Vec<Link>,
    up: VecDeque<InFlight>,
    down: VecDeque<InFlight>,
    rng: ParkMiller,
    /// Random per-message drop probability in permille (0 = lossless).
    drop_per_mille: u32,
    seq: u64,
}

impl SimNet {
    /// A lossless network with one-round latency on every link.
    pub fn new(nodes: usize, seed: u32) -> Self {
        Self {
            links: vec![
                Link {
                    latency: 1,
                    partitioned: false,
                    dropped: 0,
                };
                nodes
            ],
            up: VecDeque::new(),
            down: VecDeque::new(),
            rng: ParkMiller::new(seed),
            drop_per_mille: 0,
            seq: 0,
        }
    }

    /// Sets one link's latency, in reconciliation rounds.
    pub fn set_latency(&mut self, node: u32, rounds: u32) {
        self.links[node as usize].latency = rounds;
    }

    /// Sets the random drop probability for every link, in permille.
    pub fn set_drop_per_mille(&mut self, per_mille: u32) {
        self.drop_per_mille = per_mille.min(1000);
    }

    /// Cuts (or restores) one node's link in both directions.
    pub fn set_partitioned(&mut self, node: u32, partitioned: bool) {
        self.links[node as usize].partitioned = partitioned;
    }

    /// Whether a node's link is currently cut.
    pub fn is_partitioned(&self, node: u32) -> bool {
        self.links[node as usize].partitioned
    }

    /// Messages discarded on a node's link so far.
    pub fn dropped(&self, node: u32) -> u64 {
        self.links[node as usize].dropped
    }

    /// Total messages discarded across every link.
    pub fn dropped_total(&self) -> u64 {
        self.links.iter().map(|l| l.dropped).sum()
    }

    fn admit(&mut self, node: u32) -> bool {
        let link = &mut self.links[node as usize];
        if link.partitioned {
            link.dropped += 1;
            return false;
        }
        // Consume one draw per candidate message even at 0% so turning
        // loss on or off never shifts the rest of the random stream.
        let roll = self.rng.below(1000);
        if self.drop_per_mille > 0 && roll < self.drop_per_mille as u64 {
            self.links[node as usize].dropped += 1;
            return false;
        }
        true
    }

    fn enqueue(queue: &mut VecDeque<InFlight>, flight: InFlight) {
        // Keep (due, seq) order so delivery is deterministic regardless of
        // per-link latency spread.
        let at = queue
            .iter()
            .position(|m| (m.due, m.seq) > (flight.due, flight.seq))
            .unwrap_or(queue.len());
        queue.insert(at, flight);
    }

    /// Sends a node's message toward the coordinator at `round`.
    pub fn send_up(&mut self, round: u32, node: u32, msg: Message) {
        if !self.admit(node) {
            return;
        }
        let due = round + self.links[node as usize].latency;
        let seq = self.seq;
        self.seq += 1;
        Self::enqueue(
            &mut self.up,
            InFlight {
                due,
                seq,
                node,
                msg,
            },
        );
    }

    /// Sends a coordinator message toward a node at `round`.
    pub fn send_down(&mut self, round: u32, node: u32, msg: Message) {
        if !self.admit(node) {
            return;
        }
        let due = round + self.links[node as usize].latency;
        let seq = self.seq;
        self.seq += 1;
        Self::enqueue(
            &mut self.down,
            InFlight {
                due,
                seq,
                node,
                msg,
            },
        );
    }

    fn deliver(
        queue: &mut VecDeque<InFlight>,
        links: &mut [Link],
        round: u32,
    ) -> Vec<(u32, Message)> {
        let mut out = Vec::new();
        while let Some(head) = queue.front() {
            if head.due > round {
                break;
            }
            let flight = queue.pop_front().expect("checked front");
            // A partition that falls while a message is in flight eats it.
            if links[flight.node as usize].partitioned {
                links[flight.node as usize].dropped += 1;
                continue;
            }
            out.push((flight.node, flight.msg));
        }
        out
    }

    /// Delivers every coordinator-bound message due by `round`.
    pub fn deliver_up(&mut self, round: u32) -> Vec<(u32, Message)> {
        Self::deliver(&mut self.up, &mut self.links, round)
    }

    /// Delivers every node-bound message due by `round`.
    pub fn deliver_down(&mut self, round: u32) -> Vec<(u32, Message)> {
        Self::deliver(&mut self.down, &mut self.links, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: u32, round: u32) -> Message {
        Message::Report {
            node,
            sent_round: round,
            rows: Vec::new(),
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let mut net = SimNet::new(2, 1);
        net.set_latency(1, 3);
        net.send_up(10, 0, report(0, 10));
        net.send_up(10, 1, report(1, 10));
        let at_11 = net.deliver_up(11);
        assert_eq!(at_11.len(), 1);
        assert_eq!(at_11[0].0, 0);
        assert!(net.deliver_up(12).is_empty());
        let at_13 = net.deliver_up(13);
        assert_eq!(at_13.len(), 1);
        assert_eq!(at_13[0].0, 1);
    }

    #[test]
    fn partition_discards_both_directions_and_counts() {
        let mut net = SimNet::new(2, 1);
        net.set_partitioned(1, true);
        net.send_up(0, 1, report(1, 0));
        net.send_down(
            0,
            1,
            Message::Grant {
                tenant: 0,
                grant: 5,
            },
        );
        net.send_up(0, 0, report(0, 0));
        assert_eq!(net.deliver_up(1).len(), 1);
        assert!(net.deliver_down(1).is_empty());
        assert_eq!(net.dropped(1), 2);
        assert_eq!(net.dropped(0), 0);
        // In-flight traffic is eaten if the partition falls before due.
        net.set_partitioned(1, false);
        net.send_up(1, 1, report(1, 1));
        net.set_partitioned(1, true);
        assert!(net.deliver_up(2).is_empty());
        assert_eq!(net.dropped(1), 3);
    }

    #[test]
    fn drop_lottery_is_deterministic() {
        let run = |seed| {
            let mut net = SimNet::new(1, seed);
            net.set_drop_per_mille(500);
            let mut delivered = 0;
            for round in 0..200 {
                net.send_up(round, 0, report(0, round));
                delivered += net.deliver_up(round + 1).len();
            }
            delivered
        };
        assert_eq!(run(7), run(7));
        // Half loss, statistically.
        let d = run(7);
        assert!((60..140).contains(&d), "delivered {d}");
    }

    #[test]
    fn delivery_order_is_send_order_at_equal_due() {
        let mut net = SimNet::new(3, 1);
        for node in [2u32, 0, 1] {
            net.send_up(0, node, report(node, 0));
        }
        let order: Vec<u32> = net.deliver_up(1).into_iter().map(|(n, _)| n).collect();
        assert_eq!(order, vec![2, 0, 1]);
    }
}
