//! Cluster market: multi-node brokered lotteries with asynchronous
//! reconciliation and partition recovery.
//!
//! This crate scales the single-node funding graph (base → tenant
//! currency → per-resource sub-currencies, `lottery-broker`) out to a
//! cluster. Each [`Node`] owns a complete broker stack — its own ledger,
//! its own lottery disk scheduler and switch, its own probe-bus demand
//! tap — and the only coupling between nodes is the [`ClusterMarket`]
//! coordinator talking to them over a simulated, lossy, latency-bearing
//! network ([`SimNet`]). A tenant holds one cluster-level grant; a
//! [`BudgetPolicy`] decides how that grant is split into per-node grants,
//! and an asynchronous reconciliation loop keeps the split chasing the
//! tenant's actual per-node demand while conserving total grant value —
//! no tickets are minted or leaked by rebalancing, node loss, or
//! partition healing.
//!
//! The interesting failure modes are first-class: kill a node and the
//! coordinator notices only through missed reports, then reclaims the
//! dead node's funding with the paper's inverse lotteries; cut a link and
//! the isolated node keeps scheduling on stale grants until the heal,
//! when a full-state resync repairs it.

pub mod market;
pub mod net;
pub mod node;

pub use market::{
    BudgetPolicy, ClusterAllocRow, ClusterMarket, ClusterReport, ClusterTenantRow,
    LOSS_TIMEOUT_ROUNDS,
};
pub use net::{Message, SimNet, TenantReport};
pub use node::{Node, DISK_REQUEST_SECTORS};
