//! Cross-worker stealing under real concurrency.
//!
//! Multi-worker runs are nondeterministic by nature — the OS interleaves
//! the workers — so these tests assert the invariants that must hold
//! under *every* interleaving: ticket value is conserved, the thread
//! ownership partition holds (each thread resident on or exited from
//! exactly one worker), and steal accounting balances (every donation has
//! exactly one acceptance).

use std::time::Duration;

use lottery_par::{ParKernel, WorkSpec};
use lottery_sim::prelude::{FundingSpec, SimDuration, SimTime};

/// A dry worker must acquire work by migration, not sit idle.
///
/// Funding shapes the spawn placement: the big finite job claims worker 0
/// alone, so every compute thread lands on worker 1. The finite job exits
/// 5 virtual ms in; worker 0 runs dry and steals from worker 1, which is
/// held in its window by the wall-clock pace.
#[test]
fn dry_worker_steals_from_its_peer() {
    let mut kernel = ParKernel::with_quantum(17, 2, SimDuration::from_ms(10));
    kernel.set_pace(Some(Duration::from_millis(1)));
    let base = kernel.base_currency();
    let mut spawned = Vec::new();
    spawned.push(kernel.spawn(
        WorkSpec::Finite(SimDuration::from_ms(5)),
        FundingSpec {
            currency: base,
            amount: 1_000,
        },
    ));
    for _ in 0..4 {
        spawned.push(kernel.spawn(
            WorkSpec::Compute,
            FundingSpec {
                currency: base,
                amount: 100,
            },
        ));
    }
    let report = kernel.run(SimTime::ZERO + SimDuration::from_ms(500));
    report.assert_partition(&spawned);
    assert!(
        report.steals() >= 1,
        "worker 0 ran dry and must have stolen; reports: {:?}",
        report
            .workers
            .iter()
            .map(|w| (w.id, w.decisions, w.steals_in, w.steals_out))
            .collect::<Vec<_>>()
    );
    let donated: u64 = report.workers.iter().map(|w| w.steals_out).sum();
    assert_eq!(report.steals(), donated, "every donation accepted once");
    // The finite job's client is destroyed; the four compute clients keep
    // their 100 base tickets each, wherever they ended up.
    assert!((report.client_value_total() - 400.0).abs() < 1e-9);
    // The thief actually scheduled what it stole.
    assert!(report.workers.iter().all(|w| w.decisions > 0));
}

/// Many seeds, four workers, mixed workloads: value conservation and the
/// ownership partition survive arbitrary steal races.
#[test]
fn seeded_stress_conserves_value_and_partition() {
    for seed in 1..=6u32 {
        let mut kernel = ParKernel::with_quantum(seed, 4, SimDuration::from_ms(5));
        let base = kernel.base_currency();
        let mut spawned = Vec::new();
        let mut amounts = Vec::new();
        for i in 0..16u64 {
            let amount = 20 + 30 * (i % 5);
            let work = match i % 4 {
                0 => WorkSpec::Compute,
                1 => WorkSpec::Finite(SimDuration::from_ms(10 + 7 * i)),
                2 => WorkSpec::Io {
                    run: SimDuration::from_ms(1 + i % 3),
                    sleep: SimDuration::from_ms(4),
                },
                _ => WorkSpec::YieldEvery(SimDuration::from_ms(2)),
            };
            amounts.push(amount);
            spawned.push(kernel.spawn(
                work,
                FundingSpec {
                    currency: base,
                    amount,
                },
            ));
        }
        let report = kernel.run(SimTime::ZERO + SimDuration::from_ms(300));
        report.assert_partition(&spawned);
        let donated: u64 = report.workers.iter().map(|w| w.steals_out).sum();
        assert_eq!(report.steals(), donated, "seed {seed}: steal accounting");
        // Conservation, normalized for legitimate valuation dynamics: a
        // cached value is face × compensation factor, and a blocked
        // (deactivated) client's tickets are worth 0. So every surviving
        // client's compensation-normalized value must be *exactly* its
        // funded amount or exactly 0 — never a fraction leaked or gained
        // by a steal race — and only blockable (Io) threads may read 0.
        for (id, client) in report.ledger.clients() {
            let i: usize = client.name()[1..].parse().expect("clients named t<idx>");
            let face = report.ledger.cached_client_value(id).unwrap_or(0.0)
                / report.ledger.compensation_factor(id);
            let amount = amounts[i] as f64;
            if i % 4 == 2 {
                assert!(
                    face.abs() < 1e-6 || (face - amount).abs() < 1e-6,
                    "seed {seed}: io client t{i} worth {face}, want 0 or {amount}"
                );
            } else {
                assert!(
                    (face - amount).abs() < 1e-6,
                    "seed {seed}: client t{i} worth {face}, want {amount}"
                );
            }
        }
        assert!(report.decisions() > 0, "seed {seed}: machine made progress");
    }
}

/// Stealing disabled: dry workers stop instead of migrating, and the
/// partition still holds (threads stay home).
#[test]
fn steal_opt_out_keeps_threads_home() {
    let mut kernel = ParKernel::with_quantum(5, 2, SimDuration::from_ms(10));
    kernel.set_steal(false);
    let base = kernel.base_currency();
    let mut spawned = Vec::new();
    spawned.push(kernel.spawn(
        WorkSpec::Finite(SimDuration::from_ms(5)),
        FundingSpec {
            currency: base,
            amount: 1_000,
        },
    ));
    for _ in 0..3 {
        spawned.push(kernel.spawn(
            WorkSpec::Compute,
            FundingSpec {
                currency: base,
                amount: 100,
            },
        ));
    }
    let report = kernel.run(SimTime::ZERO + SimDuration::from_ms(200));
    report.assert_partition(&spawned);
    assert_eq!(report.steals(), 0);
    assert_eq!(report.workers[0].exited.len(), 1);
    assert_eq!(report.workers[1].resident.len(), 3);
}
