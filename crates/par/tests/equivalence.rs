//! The 1-worker bit-equivalence guarantee.
//!
//! A `ParKernel` with one worker must schedule **bit-identically** to the
//! simulated pair it ports: an [`SmpKernel`] with one CPU driving a
//! one-shard [`DistributedLottery`] from the same seed. Same ledger
//! operations in the same order, same RNG discipline, same event-queue
//! tie-breaks — so the winner stream `(dispatch time µs, thread)` matches
//! exactly, across arbitrary workload mixes, funding shapes, quanta, and
//! horizons. This is the property that makes the real-thread backend a
//! *backend* rather than a reimplementation: every fairness theorem the
//! simulator validates transfers verbatim.

use lottery_obs::{EventKind, FlightRecorder, Shared};
use lottery_par::{ParKernel, WorkSpec};
use lottery_sim::prelude::{
    DistributedLottery, FundingSpec, ProbeBus, SimDuration, SimTime, SmpKernel,
};
use proptest::prelude::*;

/// A thread to spawn on both kernels: its work shape, its funding
/// amount, and whether it is funded from the shared sub-currency.
#[derive(Debug, Clone, Copy)]
struct SpawnCase {
    work: WorkSpec,
    amount: u64,
    in_shared_currency: bool,
}

fn work_strategy() -> impl Strategy<Value = WorkSpec> {
    prop_oneof![
        Just(WorkSpec::Compute),
        (1u64..400).prop_map(|ms| WorkSpec::Finite(SimDuration::from_ms(ms))),
        ((1u64..80), (1u64..120)).prop_map(|(run, sleep)| WorkSpec::Io {
            run: SimDuration::from_ms(run),
            sleep: SimDuration::from_ms(sleep),
        }),
        (1u64..60).prop_map(|ms| WorkSpec::YieldEvery(SimDuration::from_ms(ms))),
    ]
}

fn case_strategy() -> impl Strategy<Value = SpawnCase> {
    (work_strategy(), 1u64..500, any::<bool>()).prop_map(|(work, amount, in_shared_currency)| {
        SpawnCase {
            work,
            amount,
            in_shared_currency,
        }
    })
}

/// The real-thread side: one worker, seeded, winners as `(start µs, tid)`.
fn par_winners(
    seed: u32,
    quantum: SimDuration,
    cases: &[SpawnCase],
    until: SimTime,
) -> Vec<(u64, u32)> {
    let mut kernel = ParKernel::with_quantum(seed, 1, quantum);
    let shared = kernel
        .create_currency("shared", 1_000)
        .expect("fresh currency");
    let base = kernel.base_currency();
    for case in cases {
        let currency = if case.in_shared_currency {
            shared
        } else {
            base
        };
        kernel.spawn(
            case.work,
            FundingSpec {
                currency,
                amount: case.amount,
            },
        );
    }
    let report = kernel.run(until);
    report.workers[0].winners.clone()
}

/// The simulated side: same seed, same ledger ops, winners read back from
/// the flight record's dispatch probes.
fn sim_winners(
    seed: u32,
    quantum: SimDuration,
    cases: &[SpawnCase],
    until: SimTime,
) -> Vec<(u64, u32)> {
    let mut policy = DistributedLottery::with_quantum(seed, 1, quantum);
    let shared = policy
        .create_currency("shared", 1_000)
        .expect("fresh currency");
    let base = policy.base_currency();
    let mut kernel = SmpKernel::new(policy, 1);
    let recorder = Shared::new(FlightRecorder::new(1 << 16));
    let bus = ProbeBus::enabled();
    bus.attach(recorder.clone());
    kernel.set_probe_bus(bus);
    for (i, case) in cases.iter().enumerate() {
        let currency = if case.in_shared_currency {
            shared
        } else {
            base
        };
        kernel.spawn(
            format!("t{i}"),
            case.work.to_workload(),
            FundingSpec {
                currency,
                amount: case.amount,
            },
        );
    }
    kernel.run_until(until).expect("supported bursts only");
    recorder.with(|r| {
        assert_eq!(r.dropped(), 0, "flight capacity must hold the whole run");
        r.events()
            .filter_map(|e| match e.kind {
                EventKind::Dispatch { thread, .. } => Some((e.time_us, thread)),
                _ => None,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One worker, any mix: the winner streams are bit-identical.
    #[test]
    fn one_worker_matches_simulated_smp_tree(
        seed in 1u32..0x7fff_fffe,
        quantum_ms in 5u64..40,
        horizon_ms in 100u64..800,
        cases in prop::collection::vec(case_strategy(), 1..10),
    ) {
        let quantum = SimDuration::from_ms(quantum_ms);
        let until = SimTime::ZERO + SimDuration::from_ms(horizon_ms);
        let par = par_winners(seed, quantum, &cases, until);
        let sim = sim_winners(seed, quantum, &cases, until);
        prop_assert!(!sim.is_empty(), "harness must schedule something");
        prop_assert_eq!(par, sim);
    }
}

/// The fixed-shape anchor for the acceptance criterion: a deliberately
/// heterogeneous mix, checked exactly (not via proptest shrinking).
#[test]
fn canonical_mix_is_bit_identical() {
    let cases = [
        SpawnCase {
            work: WorkSpec::Compute,
            amount: 300,
            in_shared_currency: false,
        },
        SpawnCase {
            work: WorkSpec::Io {
                run: SimDuration::from_ms(7),
                sleep: SimDuration::from_ms(23),
            },
            amount: 100,
            in_shared_currency: true,
        },
        SpawnCase {
            work: WorkSpec::YieldEvery(SimDuration::from_ms(13)),
            amount: 200,
            in_shared_currency: true,
        },
        SpawnCase {
            work: WorkSpec::Finite(SimDuration::from_ms(90)),
            amount: 50,
            in_shared_currency: false,
        },
    ];
    let quantum = SimDuration::from_ms(20);
    let until = SimTime::ZERO + SimDuration::from_secs(2);
    for seed in [1, 42, 0x0bad_cafe] {
        let par = par_winners(seed, quantum, &cases, until);
        let sim = sim_winners(seed, quantum, &cases, until);
        assert!(par.len() > 50, "the mix keeps the CPU busy");
        assert_eq!(par, sim, "seed {seed}");
    }
}
