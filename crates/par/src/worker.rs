//! The per-shard worker engine.
//!
//! One OS thread per shard. Each worker privately owns its shard's ready
//! queue, partial-sum tree mirror, and event queue; the only shared
//! mutable state is the ticket [`Ledger`] behind one
//! [`lottery_sync::Mutex`] (the ledger's valuation cache is `Send` but
//! not `Sync`). Cross-worker traffic — steal requests and thread
//! migration — travels over bounded MPSC channels
//! ([`lottery_sync::channel`]); thread *state* moves by message, never by
//! shared memory, so a thread is owned by exactly one worker at every
//! instant.
//!
//! The engine is a deliberate port of [`lottery_sim::smp::SmpKernel`]
//! driving [`DistributedLottery`]: the same `(when, seq)` event queue,
//! the same dispatch burst loop, the same ledger-operation order, and the
//! same RNG discipline (one `next_f64` per non-degenerate draw). With one
//! worker there is no cross-thread traffic at all, and the winner stream
//! is bit-identical to the simulated pair — the property
//! `tests/equivalence.rs` proves. With several workers, virtual clocks
//! advance independently (as real CPUs' quantum streams do), so the
//! guarantees weaken by design from bit-equality to conservation: value
//! never leaks, every thread has exactly one owner.
//!
//! [`DistributedLottery`]: lottery_sim::sched::distributed::DistributedLottery

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lottery_core::client::ClientId;
use lottery_core::ledger::Ledger;
use lottery_core::lottery::index::DenseIndex;
use lottery_core::lottery::tree::TreeLottery;
use lottery_core::lottery::TicketPool;
use lottery_core::rng::ParkMiller;
use lottery_core::rng::SchedRng;
use lottery_obs::{EventKind, ProbeBus};
use lottery_sim::prelude::{
    CompensationHook, EndReason, EventQueue, SimDuration, SimTime, ThreadId,
};
use lottery_sync::channel::{Receiver, RecvTimeoutError, Sender};
use lottery_sync::Mutex;

use crate::work::{Step, WorkState};

/// How long a dry worker waits on one victim before moving on.
const STEAL_WAIT: Duration = Duration::from_millis(50);
/// Poll granularity inside steal waits and the quiesce serve loop.
const POLL: Duration = Duration::from_millis(1);

/// State shared by every worker: the one ledger, plus quiesce tracking.
pub(crate) struct Shared {
    /// The single ticket ledger. Workers take the lock for short, bounded
    /// critical sections: a dirty-batch settle, a compensation
    /// grant/revoke, an (de)activation, an exit teardown.
    pub ledger: Mutex<Ledger>,
    /// Workers that have finished their window (deadline reached or ran
    /// dry). Incremented exactly once per worker, release-ordered after
    /// its last ledger mutation.
    pub done: AtomicU32,
    /// Total worker count — `done == workers` is quiesce.
    pub workers: u32,
}

/// A thread's complete migratable state. Only *ready* threads are stolen,
/// so no pending wake event ever needs to travel with one.
pub(crate) struct ParThread {
    pub tid: ThreadId,
    pub client: ClientId,
    pub work: WorkState,
    /// Unconsumed remainder of the current run burst.
    pub burst_remaining: SimDuration,
    /// Total CPU time consumed.
    pub cpu_time: SimDuration,
    /// CPU time within the current quantum.
    pub quantum_used: SimDuration,
    /// When the thread last became ready (for dispatch-wait probes).
    pub ready_since: Option<SimTime>,
}

/// Cross-worker messages.
pub(crate) enum Msg {
    /// A dry worker asks for one ready thread.
    StealRequest {
        /// The asking worker, for the reply address.
        thief: u32,
    },
    /// The victim had nothing to spare (or is past its window).
    StealFail,
    /// A migrating thread: the receiver becomes its owner.
    Migrate(Box<ParThread>),
}

/// A worker's spawn-time work assignment, in spawn order.
pub(crate) struct PendingSpawn {
    pub thread: ParThread,
    /// The client's cached value at enqueue time — the weight the
    /// simulator's tree would carry until the first refresh.
    pub value: f64,
}

/// Per-worker future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WEvent {
    /// This worker's CPU finished a dispatch and needs a new thread.
    CpuFree,
    /// A sleeping thread wakes.
    Wake { tid: ThreadId },
    /// A preempted thread rejoins the ready queue.
    Requeue { tid: ThreadId },
}

/// What one worker did with its window, reported at quiesce.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker (= shard) index.
    pub id: u32,
    /// Final virtual clock (clamped to the deadline).
    pub clock: SimTime,
    /// Virtual CPU time dispatched.
    pub busy: SimDuration,
    /// Dispatch decisions made.
    pub decisions: u64,
    /// Threads received from other workers.
    pub steals_in: u64,
    /// Threads donated to other workers.
    pub steals_out: u64,
    /// The winner stream: `(virtual start µs, thread index)` per decision.
    pub winners: Vec<(u64, u32)>,
    /// Threads this worker still owns (ready or blocked).
    pub resident: Vec<ThreadId>,
    /// Threads that exited here.
    pub exited: Vec<ThreadId>,
    /// Threads on the ready queue at quiesce.
    pub ready: Vec<ThreadId>,
    /// The settled partial-sum tree total at quiesce, in base units.
    pub ready_total: f64,
}

pub(crate) struct Worker {
    id: u32,
    shared: Arc<Shared>,
    inbox: Receiver<Msg>,
    /// Send handles to every *other* worker, as `(id, sender)`.
    peers: Vec<(u32, Sender<Msg>)>,
    quantum: SimDuration,
    /// Wall-clock sleep per dispatch decision: the CPU model that turns
    /// virtual throughput into measurable wall-clock parallelism.
    pace: Option<Duration>,
    deadline: SimTime,
    steal: bool,
    clock: SimTime,
    rng: ParkMiller,
    events: EventQueue<WEvent>,
    cpu_idle: bool,
    /// Owned threads, indexed by thread id.
    threads: Vec<Option<ParThread>>,
    exited: Vec<ThreadId>,
    /// Ready queue in scan order; swap-removal mirrors the tree's slot
    /// motion, as in the distributed policy.
    ready: Vec<ThreadId>,
    ready_pos: Vec<Option<u32>>,
    /// Cached-weight mirror of `ready`.
    tree: TreeLottery<ThreadId, f64, DenseIndex>,
    /// Reverse map from ledger clients to owned threads.
    client_threads: Vec<Option<ThreadId>>,
    dirty_buf: Vec<ClientId>,
    winners: Vec<(u64, u32)>,
    comp: CompensationHook,
    bus: ProbeBus,
    busy: SimDuration,
    decisions: u64,
    steals_in: u64,
    steals_out: u64,
    /// Steal responses still owed to us.
    outstanding: u32,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u32,
        shared: Arc<Shared>,
        inbox: Receiver<Msg>,
        peers: Vec<(u32, Sender<Msg>)>,
        pending: Vec<PendingSpawn>,
        quantum: SimDuration,
        pace: Option<Duration>,
        deadline: SimTime,
        steal: bool,
        seed: u32,
        bus: ProbeBus,
    ) -> Self {
        let mut w = Self {
            id,
            shared,
            inbox,
            peers,
            quantum,
            pace,
            deadline,
            steal,
            clock: SimTime::ZERO,
            rng: ParkMiller::new(seed),
            events: EventQueue::new(),
            cpu_idle: true,
            threads: Vec::new(),
            exited: Vec::new(),
            ready: Vec::new(),
            ready_pos: Vec::new(),
            tree: TreeLottery::with_index(pending.len().max(1)),
            client_threads: Vec::new(),
            dirty_buf: Vec::new(),
            winners: Vec::new(),
            comp: CompensationHook::new(),
            bus,
            busy: SimDuration::ZERO,
            decisions: 0,
            steals_in: 0,
            steals_out: 0,
            outstanding: 0,
        };
        // Load the spawn-time assignment in spawn order: the tree carries
        // each client's enqueue-time value, exactly as the simulator's
        // shard tree does until the first pick refreshes it.
        for p in pending {
            let tid = p.thread.tid;
            let client = p.thread.client;
            w.store_thread(p.thread);
            w.map_client(client, tid);
            w.push_ready(tid);
            w.tree.insert(tid, p.value);
        }
        // The first spawn kicks the idle CPU, as `SmpKernel::spawn` does;
        // later spawns find it already kicked.
        if !w.ready.is_empty() {
            w.cpu_idle = false;
            w.events.push(SimTime::ZERO, WEvent::CpuFree);
        }
        w
    }

    /// Runs the window, then serves steal traffic until machine quiesce.
    pub(crate) fn run(mut self) -> WorkerReport {
        loop {
            self.drain_inbox();
            match self.events.peek_at() {
                // Stop *at* the deadline: a dispatch beginning exactly
                // there belongs to the next window (mirrors the SMP
                // kernel's `when >= deadline` check).
                Some(when) if when < self.deadline => self.step(),
                Some(_) => break,
                None => {
                    if !(self.steal && self.try_acquire_work()) {
                        break;
                    }
                }
            }
        }
        self.clock = self.deadline.max(self.clock);
        // Release-order the increment after our last ledger mutation so a
        // worker observing `done == workers` also observes every write.
        self.shared.done.fetch_add(1, Ordering::AcqRel);
        self.serve_until_quiesce();
        // Settle our shard's pending invalidations now that no worker can
        // mutate the ledger: the reported total is exact.
        self.refresh();
        WorkerReport {
            id: self.id,
            clock: self.clock,
            busy: self.busy,
            decisions: self.decisions,
            steals_in: self.steals_in,
            steals_out: self.steals_out,
            winners: self.winners,
            resident: self
                .threads
                .iter()
                .filter_map(|slot| slot.as_ref().map(|t| t.tid))
                .collect(),
            exited: self.exited,
            ready: self.ready,
            ready_total: self.tree.total(),
        }
    }

    fn probe(&self, at: SimTime, build: impl FnOnce() -> EventKind) {
        if self.bus.is_enabled() {
            self.bus.set_time_us(at.as_us());
            self.bus.emit(build);
        }
    }

    // ---------------------------------------------------------------
    // Event loop
    // ---------------------------------------------------------------

    fn step(&mut self) {
        let sched = self.events.pop().expect("a pending event was peeked");
        self.clock = self.clock.max(sched.at);
        match sched.event {
            WEvent::Wake { tid } => self.on_ready(tid, true),
            WEvent::Requeue { tid } => self.on_ready(tid, false),
            WEvent::CpuFree => {
                self.refresh();
                if self.ready.is_empty() {
                    self.cpu_idle = true;
                } else {
                    let tid = self.draw();
                    self.dispatch(tid);
                }
            }
        }
    }

    /// A thread becomes ready: activate its tickets, queue it, mirror its
    /// value, and kick the CPU if idle — the `enqueue` + `kick_idle_cpus`
    /// sequence of the simulated pair.
    fn on_ready(&mut self, tid: ThreadId, wake: bool) {
        let Some(thread) = self
            .threads
            .get_mut(tid.index() as usize)
            .and_then(|s| s.as_mut())
        else {
            // Exited (or stolen mid-sleep — impossible: only ready
            // threads migrate). Matches the SMP kernel's exited check.
            return;
        };
        thread.ready_since = Some(self.clock);
        let client = thread.client;
        let value = {
            let mut ledger = self.shared.ledger.lock();
            ledger.activate_client(client).expect("client liveness");
            ledger.cached_client_value(client).unwrap_or(0.0)
        };
        self.push_ready(tid);
        self.tree.insert(tid, value);
        if wake {
            self.probe(self.clock, || EventKind::Wake {
                thread: tid.index(),
            });
        }
        if self.cpu_idle {
            self.cpu_idle = false;
            self.events.push(self.clock, WEvent::CpuFree);
        }
    }

    /// One lottery over the local tree; removes and returns the winner.
    /// Same discipline as the distributed policy's `draw_from`: a winning
    /// value is consumed from the RNG precisely when the pool has
    /// positive value; a worthless pool degenerates to FIFO.
    fn draw(&mut self) -> ThreadId {
        let entries = self.ready.len() as u32;
        let total = self.tree.total();
        let (tid, winning) = if self.tree.is_empty() || total <= 0.0 {
            (self.ready[0], -1.0)
        } else {
            let winning = self.rng.next_f64() * total;
            let tid = self.tree.select(winning).copied().unwrap_or(self.ready[0]);
            (tid, winning)
        };
        let levels = self.tree.depth();
        let winner = tid.index();
        self.probe(self.clock, || EventKind::LotteryDraw {
            structure: "shard",
            entries,
            levels,
            total,
            winning,
            winner,
        });
        let (cpu, shard) = (self.id, self.id);
        self.probe(self.clock, || EventKind::ShardPick {
            cpu,
            shard,
            stolen: false,
        });
        self.tree.remove(&tid);
        self.remove_ready(tid);
        let client = self.threads[tid.index() as usize]
            .as_ref()
            .expect("drawn thread is owned")
            .client;
        {
            let mut ledger = self.shared.ledger.lock();
            self.comp.on_dispatch(&mut ledger, &self.bus, tid, client);
        }
        tid
    }

    /// Runs one quantum of `tid`: the SMP kernel's dispatch burst loop,
    /// verbatim, against the thread's [`WorkState`].
    fn dispatch(&mut self, tid: ThreadId) {
        let quantum = self.quantum;
        let start = self.clock;
        let idx = tid.index() as usize;
        let queue_depth = self.ready.len() as u32;
        let waited = {
            let thread = self.threads[idx].as_mut().expect("dispatched thread");
            let since = thread.ready_since.take().unwrap_or(start);
            thread.quantum_used = SimDuration::ZERO;
            start.saturating_since(since)
        };
        self.probe(start, || EventKind::Dispatch {
            thread: tid.index(),
            cpu: self.id,
            wait_us: waited.as_us(),
            queue_depth,
        });
        self.probe(start, || EventKind::QueueDepth {
            cpu: self.id,
            depth: queue_depth,
        });

        let mut elapsed = SimDuration::ZERO;
        let mut remaining = quantum;
        let reason = loop {
            let thread = self.threads[idx].as_mut().expect("dispatched thread");
            if thread.burst_remaining.is_zero() {
                match thread.work.next() {
                    Step::Run(d) if !d.is_zero() => {
                        thread.burst_remaining = d;
                        continue;
                    }
                    Step::Run(_) | Step::Yield => break EndReason::Yielded,
                    Step::Sleep(d) => {
                        self.events.push(start + elapsed + d, WEvent::Wake { tid });
                        break EndReason::Blocked;
                    }
                    Step::Exit => break EndReason::Exited,
                }
            }
            let slice = thread.burst_remaining.min(remaining);
            thread.burst_remaining -= slice;
            thread.cpu_time += slice;
            thread.quantum_used += slice;
            elapsed += slice;
            remaining -= slice;
            if remaining.is_zero() {
                break EndReason::QuantumExpired;
            }
        };

        let end = start + elapsed.max(SimDuration::from_us(1));
        self.busy += elapsed;
        self.decisions += 1;
        self.winners.push((start.as_us(), tid.index()));
        let (used, client) = {
            let thread = self.threads[idx].as_ref().expect("dispatched thread");
            (thread.quantum_used, thread.client)
        };
        self.probe(end, || EventKind::QuantumEnd {
            thread: tid.index(),
            cpu: self.id,
            reason: reason.as_str(),
            used_us: used.as_us(),
        });
        {
            let mut ledger = self.shared.ledger.lock();
            self.comp
                .on_charge(&mut ledger, &self.bus, tid, client, used, quantum, reason);
        }
        match reason {
            EndReason::QuantumExpired | EndReason::Yielded => {
                // The thread occupies the CPU until `end`; requeue before
                // the CpuFree so this worker can win it back — the same
                // push order as the SMP kernel.
                self.events.push(end, WEvent::Requeue { tid });
            }
            EndReason::Blocked => {}
            EndReason::Exited => {
                self.client_threads[client.index() as usize] = None;
                {
                    let mut ledger = self.shared.ledger.lock();
                    ledger.deactivate_client(client).expect("client liveness");
                    ledger
                        .destroy_client_and_funding(client)
                        .expect("client liveness");
                }
                self.threads[idx] = None;
                self.exited.push(tid);
                self.probe(end, || EventKind::ThreadExit {
                    thread: tid.index(),
                });
            }
        }
        self.events.push(end, WEvent::CpuFree);
        if let Some(pace) = self.pace {
            // The CPU model: one decision per `pace` of wall time. Paced
            // workers sleep concurrently, so machine decision throughput
            // scales with worker count on any host — including this
            // repo's single-CPU CI container (see DESIGN.md §10).
            std::thread::sleep(pace);
        }
    }

    /// Settles this shard's pending valuation invalidations into the tree
    /// under one lock acquisition — the per-decision dirty batch.
    fn refresh(&mut self) {
        let mut dirty = std::mem::take(&mut self.dirty_buf);
        {
            let mut ledger = self.shared.ledger.lock();
            ledger.drain_dirty_shard_into(self.id, &mut dirty);
            if !dirty.is_empty() && self.bus.is_enabled() {
                let (shard, depth) = (self.id, dirty.len() as u32);
                self.bus.set_time_us(self.clock.as_us());
                self.bus.emit(|| EventKind::DirtyBatch { shard, depth });
            }
            for &client in &dirty {
                let Some(tid) = self
                    .client_threads
                    .get(client.index() as usize)
                    .copied()
                    .flatten()
                else {
                    continue;
                };
                if !self.is_ready(tid) {
                    continue;
                }
                let value = ledger.cached_client_value(client).unwrap_or(0.0);
                self.tree.set_weight(&tid, value);
            }
        }
        self.dirty_buf = dirty;
    }

    // ---------------------------------------------------------------
    // Ready-queue bookkeeping (same swap-remove motion as the policy)
    // ---------------------------------------------------------------

    fn is_ready(&self, tid: ThreadId) -> bool {
        self.ready_pos
            .get(tid.index() as usize)
            .copied()
            .flatten()
            .is_some()
    }

    fn push_ready(&mut self, tid: ThreadId) {
        let idx = tid.index() as usize;
        if self.ready_pos.len() <= idx {
            self.ready_pos.resize(idx + 1, None);
        }
        debug_assert!(self.ready_pos[idx].is_none(), "double enqueue of {tid}");
        self.ready_pos[idx] = Some(self.ready.len() as u32);
        self.ready.push(tid);
    }

    fn remove_ready(&mut self, tid: ThreadId) -> bool {
        let idx = tid.index() as usize;
        let Some(pos) = self.ready_pos.get(idx).copied().flatten() else {
            return false;
        };
        let pos = pos as usize;
        self.ready.swap_remove(pos);
        self.ready_pos[idx] = None;
        if pos < self.ready.len() {
            let moved = self.ready[pos];
            self.ready_pos[moved.index() as usize] = Some(pos as u32);
        }
        true
    }

    fn store_thread(&mut self, thread: ParThread) {
        let idx = thread.tid.index() as usize;
        if self.threads.len() <= idx {
            self.threads.resize_with(idx + 1, || None);
        }
        self.threads[idx] = Some(thread);
    }

    fn map_client(&mut self, client: ClientId, tid: ThreadId) {
        let slot = client.index() as usize;
        if self.client_threads.len() <= slot {
            self.client_threads.resize(slot + 1, None);
        }
        self.client_threads[slot] = Some(tid);
    }

    // ---------------------------------------------------------------
    // Cross-worker traffic
    // ---------------------------------------------------------------

    fn reply(&self, to: u32, msg: Msg) {
        if let Some((_, tx)) = self.peers.iter().find(|(id, _)| *id == to) {
            // A gone receiver means that worker already quiesced and its
            // thief-side timeout will cover the lost reply.
            let _ = tx.send(msg);
        }
    }

    fn drain_inbox(&mut self) {
        if self.peers.is_empty() {
            return;
        }
        while let Ok(msg) = self.inbox.try_recv() {
            self.handle_msg(msg);
        }
    }

    fn handle_msg(&mut self, msg: Msg) {
        match msg {
            Msg::StealRequest { thief } => {
                if self.steal && self.ready.len() > 1 {
                    self.donate(thief);
                } else {
                    self.reply(thief, Msg::StealFail);
                }
            }
            Msg::StealFail => {
                self.outstanding = self.outstanding.saturating_sub(1);
            }
            Msg::Migrate(thread) => {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.accept_migrant(*thread);
            }
        }
    }

    /// Gives the thief the tail of our ready queue. Only ready threads
    /// migrate, so ownership moves in one message with no pending events
    /// left behind.
    fn donate(&mut self, thief: u32) {
        let tid = *self.ready.last().expect("caller checked len > 1");
        self.tree.remove(&tid);
        self.remove_ready(tid);
        let mut thread = self.threads[tid.index() as usize]
            .take()
            .expect("ready thread is owned");
        thread.ready_since = None;
        let client = thread.client;
        self.client_threads[client.index() as usize] = None;
        {
            // Re-home the client's dirty notifications; invalidations
            // already queued on our shard drain here and skip the now-
            // unmapped client.
            let mut ledger = self.shared.ledger.lock();
            ledger.assign_dirty_shard(client, thief);
        }
        self.steals_out += 1;
        let from = self.id;
        self.probe(self.clock, || EventKind::ShardMigrate {
            thread: tid.index(),
            from_shard: from,
            to_shard: thief,
        });
        self.reply(thief, Msg::Migrate(Box::new(thread)));
    }

    fn accept_migrant(&mut self, mut thread: ParThread) {
        let tid = thread.tid;
        let client = thread.client;
        thread.ready_since = Some(self.clock);
        self.store_thread(thread);
        self.map_client(client, tid);
        let value = {
            let ledger = self.shared.ledger.lock();
            ledger.cached_client_value(client).unwrap_or(0.0)
        };
        self.push_ready(tid);
        self.tree.insert(tid, value);
        self.steals_in += 1;
        if self.cpu_idle {
            self.cpu_idle = false;
            self.events.push(self.clock, WEvent::CpuFree);
        }
    }

    /// Dry worker: ask each peer in turn for a thread, waiting briefly
    /// for the response. Answers incoming requests while waiting, so two
    /// dry workers probing each other both fail fast instead of
    /// deadlocking. Returns whether we now have ready work.
    fn try_acquire_work(&mut self) -> bool {
        if self.peers.is_empty() {
            return false;
        }
        for k in 0..self.peers.len() {
            // Rotate by our own id so thieves spread across victims.
            let (_, tx) = &self.peers[(self.id as usize + k) % self.peers.len()];
            if tx.send(Msg::StealRequest { thief: self.id }).is_err() {
                continue;
            }
            self.outstanding += 1;
            let began = Instant::now();
            while self.outstanding > 0 && began.elapsed() < STEAL_WAIT {
                match self.inbox.recv_timeout(POLL) {
                    Ok(msg) => self.handle_msg(msg),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            if !self.ready.is_empty() {
                return true;
            }
        }
        !self.ready.is_empty()
    }

    /// After finishing the window: answer steal traffic until every
    /// worker is done, so no thief blocks on a silent peer. Sends from us
    /// stopped at `done`, so nobody waits on *us* after this returns.
    fn serve_until_quiesce(&mut self) {
        while self.shared.done.load(Ordering::Acquire) < self.shared.workers {
            match self.inbox.recv_timeout(POLL) {
                Ok(msg) => self.handle_quiesce_msg(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Late messages posted before the last worker quiesced.
        while let Ok(msg) = self.inbox.try_recv() {
            self.handle_quiesce_msg(msg);
        }
    }

    fn handle_quiesce_msg(&mut self, msg: Msg) {
        match msg {
            // Our window is over; we donate nothing more.
            Msg::StealRequest { thief } => self.reply(thief, Msg::StealFail),
            Msg::StealFail => {
                self.outstanding = self.outstanding.saturating_sub(1);
            }
            // A response that raced our quiesce: accept ownership so the
            // thread-partition invariant holds (it just won't run again
            // this window).
            Msg::Migrate(thread) => {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.accept_migrant(*thread);
            }
        }
    }
}
