//! Real-thread SMP backend: the lottery scheduler on OS threads.
//!
//! Everything else in this workspace *simulates* multiprocessor lottery
//! scheduling — [`lottery_sim::smp::SmpKernel`] interleaves virtual CPUs
//! on one host thread. This crate runs the same scheduler on **real OS
//! threads**: a [`ParKernel`] spawns one worker thread per shard, each
//! privately owning its shard's ready queue and partial-sum tree, with
//! the ticket [`Ledger`] as the only shared structure (behind one
//! [`lottery_sync::Mutex`]). Threads migrate between workers by message
//! passing over bounded channels — never by shared memory — so every
//! scheduled thread has exactly one owner at every instant.
//!
//! # Guarantees, by worker count
//!
//! * **One worker** — the engine is a step-for-step port of
//!   [`SmpKernel`] driving
//!   [`DistributedLottery`](lottery_sim::sched::distributed::DistributedLottery)
//!   with one shard: the same event order, the same ledger-operation
//!   order, the same RNG discipline. The winner stream is **bit
//!   identical** to the simulated pair (proved by
//!   `tests/equivalence.rs`).
//! * **Many workers** — per-worker virtual clocks advance independently
//!   (as real CPUs do), so cross-worker interleaving is nondeterministic
//!   by nature. The invariants that hold regardless: ticket value is
//!   conserved (no client leaks or double-counts), the thread partition
//!   holds (each thread resident on or exited from exactly one worker),
//!   and each worker's *own* decision stream remains seeded by its own
//!   [`ParkMiller`] lane.
//!
//! # The pace CPU model
//!
//! Schedulers are CPU-bound bookkeeping; on a single-CPU host, N spinning
//! workers time-slice and show no wall-clock speedup. [`ParKernel::set_pace`]
//! installs an explicit CPU model instead: each dispatch decision costs
//! `pace` of wall time (a sleep), during which the worker's OS thread
//! yields the processor. Paced workers overlap their decision costs, so
//! machine decision throughput scales with worker count on *any* host —
//! which is precisely the claim a parallel runtime must demonstrate, and
//! one a serialized runtime (a global lock held across decisions) would
//! fail. See `DESIGN.md` §10.
//!
//! [`SmpKernel`]: lottery_sim::smp::SmpKernel

pub mod work;
mod worker;

use std::sync::atomic::AtomicU32;
use std::sync::Arc;
use std::time::Duration;

use lottery_core::currency::CurrencyId;
use lottery_core::errors::Result;
use lottery_core::ledger::Ledger;
use lottery_core::rng::SplitMix64;
use lottery_obs::{EventKind, PerThreadFlight, ProbeBus};
use lottery_sim::prelude::{FundingSpec, SimDuration, SimTime, ThreadId};
use lottery_sync::channel::{bounded, Sender};
use lottery_sync::Mutex;

pub use work::WorkSpec;
pub use worker::WorkerReport;

use worker::{Msg, ParThread, PendingSpawn, Shared, Worker};

/// A multiprocessor lottery scheduler running on real OS threads.
///
/// Configure and [`spawn`](Self::spawn) on the calling thread, then
/// [`run`](Self::run) to launch one worker per shard and block until the
/// virtual deadline; the returned [`ParReport`] carries every worker's
/// winner stream and the settled ledger.
pub struct ParKernel {
    seed: u32,
    workers: u32,
    quantum: SimDuration,
    pace: Option<Duration>,
    steal: bool,
    ledger: Ledger,
    /// Enqueue-time value per shard — the same stale totals the
    /// simulated policy's spawn-time `least_loaded_shard` sees.
    shard_totals: Vec<f64>,
    pending: Vec<Vec<PendingSpawn>>,
    next_tid: u32,
    buses: Vec<ProbeBus>,
}

impl ParKernel {
    /// Creates a kernel with `workers` shards and the paper's 100 ms
    /// quantum.
    ///
    /// # Panics
    ///
    /// Panics on zero workers.
    pub fn new(seed: u32, workers: u32) -> Self {
        Self::with_quantum(seed, workers, SimDuration::from_ms(100))
    }

    /// Creates a kernel with an explicit quantum.
    ///
    /// # Panics
    ///
    /// Panics on zero workers or a zero quantum.
    pub fn with_quantum(seed: u32, workers: u32, quantum: SimDuration) -> Self {
        assert!(workers > 0, "a parallel kernel needs at least one worker");
        assert!(!quantum.is_zero(), "quantum must be positive");
        let mut ledger = Ledger::new();
        ledger.set_dirty_shards(workers as usize);
        Self {
            seed,
            workers,
            quantum,
            pace: None,
            steal: true,
            ledger,
            shard_totals: vec![0.0; workers as usize],
            pending: (0..workers).map(|_| Vec::new()).collect(),
            next_tid: 0,
            buses: (0..workers).map(|_| ProbeBus::disabled()).collect(),
        }
    }

    /// Worker (= shard) count.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Installs the wall-clock CPU model: each dispatch decision costs
    /// `pace` of wall time on its worker's OS thread (see the crate docs).
    pub fn set_pace(&mut self, pace: Option<Duration>) {
        self.pace = pace;
    }

    /// Enables or disables work stealing between dry workers (on by
    /// default; moot with one worker).
    pub fn set_steal(&mut self, steal: bool) {
        self.steal = steal;
    }

    /// The base currency backing all others.
    pub fn base_currency(&self) -> CurrencyId {
        self.ledger.base()
    }

    /// Creates a currency backed by `amount` base-currency tickets —
    /// the same three ledger operations as the simulated policies.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors (duplicate name, zero amount).
    pub fn create_currency(&mut self, name: &str, amount: u64) -> Result<CurrencyId> {
        let cur = self.ledger.create_currency(name)?;
        let backing = self.ledger.issue_root(self.ledger.base(), amount)?;
        self.ledger.fund_currency(backing, cur)?;
        Ok(cur)
    }

    /// Attaches per-worker flight lanes: worker `i` probes into
    /// `flight.recorder(i)`, and [`PerThreadFlight::merged`] yields the
    /// deterministic machine-wide stream at quiesce.
    ///
    /// # Panics
    ///
    /// Panics unless the flight has exactly one lane per worker.
    pub fn attach_flight(&mut self, flight: &PerThreadFlight) {
        assert_eq!(
            flight.lanes(),
            self.workers as usize,
            "flight needs one lane per worker"
        );
        self.buses = (0..self.workers as usize)
            .map(|lane| {
                let bus = ProbeBus::enabled();
                bus.attach(flight.recorder(lane));
                bus
            })
            .collect();
    }

    /// Registers a thread: funds a fresh client from `spec`, homes it on
    /// the least-loaded shard, and queues it ready at time zero. The
    /// ledger-operation order is exactly the simulated policy's
    /// `on_spawn` + `enqueue` sequence — the root of the 1-worker
    /// bit-equivalence guarantee.
    ///
    /// # Panics
    ///
    /// Panics when the spec names a stale currency or a zero amount —
    /// both are harness configuration bugs (as in the simulator).
    pub fn spawn(&mut self, work: WorkSpec, spec: FundingSpec) -> ThreadId {
        let tid = ThreadId::from_index(self.next_tid);
        self.next_tid += 1;
        let client = self.ledger.create_client(format!("{tid}"));
        let ticket = self
            .ledger
            .issue_root(spec.currency, spec.amount)
            .expect("invalid funding spec");
        self.ledger
            .fund_client(ticket, client)
            .expect("fresh client and ticket");
        let home = self.least_loaded_shard();
        self.ledger.assign_dirty_shard(client, home);
        let bus = &self.buses[home as usize];
        if bus.is_enabled() {
            bus.set_time_us(0);
            bus.emit(|| EventKind::WeightChange {
                client: client.index(),
                tickets: spec.amount,
                origin: "spawn",
            });
        }
        self.ledger
            .activate_client(client)
            .expect("client liveness");
        let value = self.ledger.cached_client_value(client).unwrap_or(0.0);
        self.shard_totals[home as usize] += value;
        if bus.is_enabled() {
            bus.emit(|| EventKind::ThreadSpawn {
                thread: tid.index(),
            });
        }
        self.pending[home as usize].push(PendingSpawn {
            thread: ParThread {
                tid,
                client,
                work: work.into_state(),
                burst_remaining: SimDuration::ZERO,
                cpu_time: SimDuration::ZERO,
                quantum_used: SimDuration::ZERO,
                ready_since: Some(SimTime::ZERO),
            },
            value,
        });
        tid
    }

    /// Lowest accumulated enqueue-time value, ties to the lowest index —
    /// the spawn-phase view of the simulated policy's argmin (resting
    /// compensated weight is zero before anything has run).
    fn least_loaded_shard(&self) -> u32 {
        let mut best = 0usize;
        for (i, &total) in self.shard_totals.iter().enumerate().skip(1) {
            if total < self.shard_totals[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Launches the workers and blocks until every one reaches the
    /// virtual `deadline` (or runs dry with nothing to steal) and the
    /// machine quiesces.
    ///
    /// # Panics
    ///
    /// Propagates a worker thread's panic.
    pub fn run(self, deadline: SimTime) -> ParReport {
        let worker_count = self.workers as usize;
        let shared = Arc::new(Shared {
            ledger: Mutex::new(self.ledger),
            done: AtomicU32::new(0),
            workers: self.workers,
        });
        // Channel capacity: steal traffic is bounded (one request and one
        // response in flight per worker pair), so this never blocks a
        // sender in practice; blocking would still be correct.
        let cap = 4 * worker_count + 16;
        let mut txs: Vec<Sender<Msg>> = Vec::with_capacity(worker_count);
        let mut rxs = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (tx, rx) = bounded(cap);
            txs.push(tx);
            rxs.push(rx);
        }
        // Independent RNG lanes: worker 0 keeps the kernel seed (the
        // 1-worker equivalence hinge); the rest draw from a SplitMix64
        // stream over it.
        let mut mix = SplitMix64::new(u64::from(self.seed) ^ 0x9E37_79B9_7F4A_7C15);
        let mut handles = Vec::with_capacity(worker_count);
        let steal = self.steal && worker_count > 1;
        for (id, (rx, (pending, bus))) in rxs
            .into_iter()
            .zip(self.pending.into_iter().zip(self.buses))
            .enumerate()
        {
            let seed = if id == 0 {
                self.seed
            } else {
                (mix.next_u64() >> 33) as u32
            };
            let peers = txs
                .iter()
                .enumerate()
                .filter(|(peer, _)| *peer != id)
                .map(|(peer, tx)| (peer as u32, tx.clone()))
                .collect();
            let worker = Worker::new(
                id as u32,
                shared.clone(),
                rx,
                peers,
                pending,
                self.quantum,
                self.pace,
                deadline,
                steal,
                seed,
                bus,
            );
            let handle = std::thread::Builder::new()
                .name(format!("lottery-par-{id}"))
                .spawn(move || worker.run())
                .expect("spawn worker thread");
            handles.push(handle);
        }
        drop(txs);
        let workers: Vec<WorkerReport> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(report) => report,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        let shared = Arc::into_inner(shared).expect("all workers joined");
        ParReport {
            workers,
            ledger: shared.ledger.into_inner(),
        }
    }
}

/// What the machine did: one report per worker, plus the settled ledger.
#[derive(Debug)]
pub struct ParReport {
    /// Per-worker outcomes, in worker order.
    pub workers: Vec<WorkerReport>,
    /// The ledger at quiesce (every surviving client's funding intact).
    pub ledger: Ledger,
}

impl ParReport {
    /// Total dispatch decisions across all workers.
    pub fn decisions(&self) -> u64 {
        self.workers.iter().map(|w| w.decisions).sum()
    }

    /// Threads that migrated between workers (received side).
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_in).sum()
    }

    /// Total virtual CPU time dispatched across all workers.
    pub fn busy(&self) -> SimDuration {
        self.workers
            .iter()
            .fold(SimDuration::ZERO, |acc, w| acc + w.busy)
    }

    /// Sum of every surviving client's cached base-unit value — the
    /// conservation check: funding neither leaks nor double-counts no
    /// matter how threads migrated.
    pub fn client_value_total(&self) -> f64 {
        self.ledger
            .clients()
            .map(|(id, _)| self.ledger.cached_client_value(id).unwrap_or(0.0))
            .sum()
    }

    /// Every thread id resident on or exited from any worker — the
    /// ownership partition (sorted; each id appears exactly once iff the
    /// partition invariant holds, which `assert_partition` checks).
    pub fn owned_threads(&self) -> Vec<ThreadId> {
        let mut all: Vec<ThreadId> = self
            .workers
            .iter()
            .flat_map(|w| w.resident.iter().chain(w.exited.iter()).copied())
            .collect();
        all.sort_by_key(|t| t.index());
        all
    }

    /// Asserts that `spawned` threads are partitioned across workers:
    /// every spawned thread appears on exactly one worker, resident or
    /// exited.
    ///
    /// # Panics
    ///
    /// Panics when a thread is lost or owned twice.
    pub fn assert_partition(&self, spawned: &[ThreadId]) {
        let mut expected: Vec<ThreadId> = spawned.to_vec();
        expected.sort_by_key(|t| t.index());
        assert_eq!(
            self.owned_threads(),
            expected,
            "thread ownership partition violated"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec(kernel: &ParKernel, amount: u64) -> FundingSpec {
        FundingSpec {
            currency: kernel.base_currency(),
            amount,
        }
    }

    #[test]
    fn one_worker_compute_bound_round_count() {
        let mut k = ParKernel::with_quantum(42, 1, SimDuration::from_ms(100));
        let spec = base_spec(&k, 100);
        let mut spawned = Vec::new();
        for _ in 0..3 {
            spawned.push(k.spawn(WorkSpec::Compute, spec));
        }
        let report = k.run(SimTime::ZERO + SimDuration::from_secs(1));
        // One CPU, 100 ms quanta, compute-bound: exactly 10 decisions in
        // a 1 s window, all CPU time accounted.
        assert_eq!(report.decisions(), 10);
        assert_eq!(report.busy(), SimDuration::from_secs(1));
        assert_eq!(report.steals(), 0);
        report.assert_partition(&spawned);
    }

    #[test]
    fn proportional_share_roughly_holds() {
        let mut k = ParKernel::with_quantum(7, 1, SimDuration::from_ms(10));
        let a = k.spawn(WorkSpec::Compute, base_spec(&k, 300));
        let b = k.spawn(WorkSpec::Compute, base_spec(&k, 100));
        let report = k.run(SimTime::ZERO + SimDuration::from_secs(4));
        let wins = |tid: ThreadId| {
            report.workers[0]
                .winners
                .iter()
                .filter(|(_, w)| *w == tid.index())
                .count() as f64
        };
        let (wa, wb) = (wins(a), wins(b));
        let ratio = wa / wb;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "3:1 funding should yield ~3:1 wins, got {wa}:{wb}"
        );
    }

    #[test]
    fn finite_jobs_exit_and_destroy_their_funding() {
        let mut k = ParKernel::with_quantum(11, 2, SimDuration::from_ms(10));
        let spec = base_spec(&k, 50);
        let mut spawned = Vec::new();
        for _ in 0..4 {
            spawned.push(k.spawn(WorkSpec::Finite(SimDuration::from_ms(25)), spec));
        }
        spawned.push(k.spawn(WorkSpec::Compute, spec));
        let report = k.run(SimTime::ZERO + SimDuration::from_secs(1));
        report.assert_partition(&spawned);
        let exited: usize = report.workers.iter().map(|w| w.exited.len()).sum();
        assert_eq!(exited, 4, "every finite job exits within the window");
        // Only the compute thread's client survives: conservation says
        // the ledger holds exactly its funding.
        assert!((report.client_value_total() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn multi_worker_conserves_value_with_stealing() {
        let mut k = ParKernel::with_quantum(3, 4, SimDuration::from_ms(10));
        let cur = k.create_currency("tenant", 400).unwrap();
        let spec = FundingSpec {
            currency: cur,
            amount: 100,
        };
        let mut spawned = Vec::new();
        for _ in 0..8 {
            spawned.push(k.spawn(WorkSpec::Compute, spec));
        }
        // Uneven load: finite jobs dry two workers out, forcing steals.
        for _ in 0..4 {
            spawned.push(k.spawn(WorkSpec::Finite(SimDuration::from_ms(5)), spec));
        }
        let report = k.run(SimTime::ZERO + SimDuration::from_ms(500));
        report.assert_partition(&spawned);
        // 8 compute clients × (100/1200 of 400-backed currency)… exact
        // share math varies with exits; conservation is the invariant:
        // value never goes negative or NaN, and all compute clients
        // survive.
        let total = report.client_value_total();
        assert!(total.is_finite() && total > 0.0);
        let resident: usize = report.workers.iter().map(|w| w.resident.len()).sum();
        assert_eq!(resident, 8, "compute threads all survive");
    }

    #[test]
    fn flight_lanes_merge_deterministically() {
        let run = || {
            let mut k = ParKernel::with_quantum(9, 2, SimDuration::from_ms(20));
            let flight = PerThreadFlight::new(2, 4096);
            k.attach_flight(&flight);
            let spec = base_spec(&k, 10);
            k.spawn(WorkSpec::Compute, spec);
            k.spawn(WorkSpec::Compute, spec);
            k.set_steal(false);
            let _ = k.run(SimTime::ZERO + SimDuration::from_ms(200));
            flight.merged_jsonl()
        };
        let a = run();
        assert!(!a.is_empty());
        // No stealing and per-worker determinism: the merged stream is
        // identical across runs despite real-thread interleaving.
        assert_eq!(a, run());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParKernel::new(1, 0);
    }
}
