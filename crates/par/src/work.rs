//! Workload shapes a real-thread worker can carry across threads.
//!
//! The simulator's [`Workload`] trait is object-safe but not [`Send`]:
//! workloads are boxed closures over arbitrary captures. Stealing a
//! thread between OS workers means shipping its workload through a
//! channel, so the parallel backend restricts itself to a closed, plain-
//! data set of shapes — exactly the ones the SMP experiments use. Each
//! variant's state machine is a field-for-field port of its simulator
//! twin, which is what makes the 1-worker winner stream bit-identical to
//! [`lottery_sim::smp::SmpKernel`]: same bursts, in the same order, from
//! the same toggles.

use lottery_sim::prelude::{
    ComputeBound, FiniteJob, FractionalQuantum, IoBound, SimDuration, Workload,
};

/// What a parallel thread does with the CPU (plain data, [`Send`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkSpec {
    /// Runs forever, never yielding ([`ComputeBound`]).
    Compute,
    /// Runs for a fixed total CPU budget, then exits ([`FiniteJob`]).
    Finite(SimDuration),
    /// Alternates CPU bursts with sleeps ([`IoBound`]).
    Io {
        /// CPU time per burst.
        run: SimDuration,
        /// Sleep between bursts.
        sleep: SimDuration,
    },
    /// Uses a fixed fraction of each quantum, then yields
    /// ([`FractionalQuantum`] — Section 4.5's interactive thread).
    YieldEvery(SimDuration),
}

impl WorkSpec {
    /// The equivalent simulator workload, for driving a [`lottery_sim`]
    /// kernel with the same behaviour (equivalence tests).
    pub fn to_workload(self) -> Box<dyn Workload> {
        match self {
            WorkSpec::Compute => Box::new(ComputeBound),
            WorkSpec::Finite(total) => Box::new(FiniteJob::new(total)),
            WorkSpec::Io { run, sleep } => Box::new(IoBound::new(run, sleep)),
            WorkSpec::YieldEvery(run) => Box::new(FractionalQuantum::new(run)),
        }
    }

    /// The runnable state machine for a worker thread.
    pub(crate) fn into_state(self) -> WorkState {
        WorkState {
            spec: self,
            toggled: false,
            issued: false,
        }
    }
}

/// A thread's next action, restricted to the SMP-supported verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Execute for the given duration.
    Run(SimDuration),
    /// Block for the given duration, then wake.
    Sleep(SimDuration),
    /// Give up the quantum but stay runnable.
    Yield,
    /// Terminate.
    Exit,
}

/// The running state of a [`WorkSpec`]: the spec plus the same toggles
/// its simulator twin keeps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkState {
    spec: WorkSpec,
    /// The run/sleep (or run/yield) alternation bit; `Run` comes first,
    /// as in [`IoBound`] / [`FractionalQuantum`].
    toggled: bool,
    /// Whether a [`WorkSpec::Finite`] budget has been issued.
    issued: bool,
}

impl WorkState {
    /// The next action, consulted by the worker between bursts.
    pub(crate) fn next(&mut self) -> Step {
        match self.spec {
            WorkSpec::Compute => Step::Run(SimDuration::from_secs(3600)),
            WorkSpec::Finite(total) => {
                if self.issued || total.is_zero() {
                    Step::Exit
                } else {
                    self.issued = true;
                    Step::Run(total)
                }
            }
            WorkSpec::Io { run, sleep } => {
                self.toggled = !self.toggled;
                if self.toggled {
                    Step::Run(run)
                } else {
                    Step::Sleep(sleep)
                }
            }
            WorkSpec::YieldEvery(run) => {
                self.toggled = !self.toggled;
                if self.toggled {
                    Step::Run(run)
                } else {
                    Step::Yield
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_sim::prelude::{Burst, SimTime, WorkloadCtx};

    fn ctx() -> WorkloadCtx {
        WorkloadCtx {
            now: SimTime::ZERO,
            cpu_time: SimDuration::ZERO,
            current_request_service: None,
        }
    }

    fn as_step(burst: Burst) -> Step {
        match burst {
            Burst::Run(d) => Step::Run(d),
            Burst::Sleep(d) => Step::Sleep(d),
            Burst::Yield => Step::Yield,
            Burst::Exit => Step::Exit,
            other => panic!("simulator twin issued unsupported burst {other:?}"),
        }
    }

    /// Every spec's state machine must match its simulator twin step for
    /// step — the foundation of the 1-worker bit-equivalence guarantee.
    #[test]
    fn states_match_their_simulator_twins() {
        let specs = [
            WorkSpec::Compute,
            WorkSpec::Finite(SimDuration::from_ms(70)),
            WorkSpec::Finite(SimDuration::ZERO),
            WorkSpec::Io {
                run: SimDuration::from_ms(3),
                sleep: SimDuration::from_ms(11),
            },
            WorkSpec::YieldEvery(SimDuration::from_ms(20)),
        ];
        for spec in specs {
            let mut state = spec.into_state();
            let mut twin = spec.to_workload();
            for i in 0..12 {
                let step = state.next();
                assert_eq!(step, as_step(twin.next(&ctx())), "{spec:?} step {i}");
                if step == Step::Exit {
                    break;
                }
            }
        }
    }
}
