//! # lottery-io
//!
//! Lottery-scheduled I/O bandwidth.
//!
//! The paper's abstract lists I/O bandwidth among the diverse resources
//! lotteries can manage, and Section 5.3's footnote sketches the concrete
//! case: "A disk-based database could use lotteries to schedule disk
//! bandwidth." [`disk::DiskScheduler`] implements that — a single-spindle
//! disk queue whose next request is chosen by lottery over the ticketed
//! clients with pending work — alongside FCFS and shortest-seek-first
//! baselines that expose the isolation/throughput trade-off.

pub mod disk;

pub use disk::{DiskClientId, DiskPolicy, DiskScheduler, Request};
