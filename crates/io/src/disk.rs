//! The lottery-scheduled disk queue.

use std::collections::VecDeque;

use lottery_core::errors::{LotteryError, Result};
use lottery_core::lottery::{list::ListLottery, TicketPool};
use lottery_core::rng::SchedRng;
use lottery_obs::{EventKind, ProbeBus};
use lottery_stats::Summary;

/// Identifies a disk client within a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskClientId(u32);

impl DiskClientId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// One disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// First sector addressed.
    pub sector: u64,
    /// Number of sectors transferred.
    pub length: u64,
    /// Submission time, in microseconds of disk time.
    pub submitted_us: u64,
}

/// How the next request is chosen when the disk becomes free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskPolicy {
    /// A lottery over clients with pending requests, weighted by tickets:
    /// bandwidth divides proportionally (the paper's generalization).
    #[default]
    Lottery,
    /// First-come first-served across all clients (no isolation: one
    /// flooding client starves the rest).
    Fcfs,
    /// Shortest seek first (throughput-optimal, fairness-free baseline).
    ShortestSeek,
}

#[derive(Debug)]
struct DiskClient {
    name: String,
    tickets: u64,
    queue: VecDeque<Request>,
    sectors_served: u64,
    requests_served: u64,
    response_us: Summary,
}

/// A single-spindle disk scheduler with a linear seek-time model.
///
/// Service time of a request =
/// `seek_us_per_sector * |head - sector| + transfer_us_per_sector * length`.
/// Time is tracked internally in microseconds of simulated disk time.
///
/// # Examples
///
/// ```
/// use lottery_core::rng::ParkMiller;
/// use lottery_io::disk::{DiskPolicy, DiskScheduler};
///
/// let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
/// let a = disk.register("db", 300);
/// let b = disk.register("backup", 100);
/// let mut rng = ParkMiller::new(1);
/// for i in 0..100 {
///     disk.submit(a, i * 8, 8);
///     disk.submit(b, i * 8, 8);
/// }
/// while disk.service_next(&mut rng).is_ok() {}
/// assert_eq!(disk.sectors_served(a) + disk.sectors_served(b), 1600);
/// ```
#[derive(Debug)]
pub struct DiskScheduler {
    policy: DiskPolicy,
    clients: Vec<DiskClient>,
    head: u64,
    clock_us: u64,
    seek_us_per_sector: u64,
    transfer_us_per_sector: u64,
    /// Arrival order for FCFS: (client, position in that client's queue
    /// is always the head, so a global FIFO of client ids suffices).
    arrivals: VecDeque<DiskClientId>,
    seek_distance: u64,
    bus: ProbeBus,
}

impl DiskScheduler {
    /// Creates a scheduler with default timing (0.01 µs/sector seek,
    /// 1 µs/sector transfer — a fast modern disk's magnitudes).
    pub fn new(policy: DiskPolicy) -> Self {
        Self::with_timing(policy, 1, 100)
    }

    /// Creates a scheduler with explicit `seek` and `transfer` costs in
    /// hundredths of a microsecond per sector.
    pub fn with_timing(policy: DiskPolicy, seek: u64, transfer: u64) -> Self {
        Self {
            policy,
            clients: Vec::new(),
            head: 0,
            clock_us: 0,
            seek_us_per_sector: seek,
            transfer_us_per_sector: transfer,
            arrivals: VecDeque::new(),
            seek_distance: 0,
            bus: ProbeBus::disabled(),
        }
    }

    /// Attaches the probe bus. Grant, draw, and completion events carry
    /// the `"disk"` resource tag; the bus clock stays owned by whoever
    /// drives the simulation (this scheduler never calls `set_time_us`).
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.bus = bus;
    }

    /// Registers a client holding `tickets` bandwidth tickets.
    pub fn register(&mut self, name: impl Into<String>, tickets: u64) -> DiskClientId {
        let id = DiskClientId(self.clients.len() as u32);
        self.clients.push(DiskClient {
            name: name.into(),
            tickets,
            queue: VecDeque::new(),
            sectors_served: 0,
            requests_served: 0,
            response_us: Summary::new(),
        });
        self.bus.emit(|| EventKind::ResourceGrant {
            resource: "disk",
            client: id.0,
            tickets,
        });
        id
    }

    /// Submits a request.
    pub fn submit(&mut self, client: DiskClientId, sector: u64, length: u64) {
        let submitted_us = self.clock_us;
        self.clients[client.0 as usize].queue.push_back(Request {
            sector,
            length,
            submitted_us,
        });
        self.arrivals.push_back(client);
    }

    /// Pending requests for `client`.
    pub fn backlog(&self, client: DiskClientId) -> usize {
        self.clients[client.0 as usize].queue.len()
    }

    /// Sectors served for `client`.
    pub fn sectors_served(&self, client: DiskClientId) -> u64 {
        self.clients[client.0 as usize].sectors_served
    }

    /// Requests completed for `client`.
    pub fn requests_served(&self, client: DiskClientId) -> u64 {
        self.clients[client.0 as usize].requests_served
    }

    /// Response-time statistics for `client`, in microseconds.
    pub fn response_us(&self, client: DiskClientId) -> &Summary {
        &self.clients[client.0 as usize].response_us
    }

    /// The client's name.
    pub fn name(&self, client: DiskClientId) -> &str {
        &self.clients[client.0 as usize].name
    }

    /// Adjusts a client's tickets.
    pub fn set_tickets(&mut self, client: DiskClientId, tickets: u64) {
        self.clients[client.0 as usize].tickets = tickets;
        self.bus.emit(|| EventKind::ResourceGrant {
            resource: "disk",
            client: client.0,
            tickets,
        });
    }

    /// Total simulated disk time elapsed, in microseconds.
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Total head travel, in sectors (a throughput/fairness trade-off
    /// indicator: SSTF minimizes it, lotteries pay some of it back for
    /// isolation).
    pub fn seek_distance(&self) -> u64 {
        self.seek_distance
    }

    /// Pending requests across every client.
    pub fn pending_requests(&self) -> usize {
        self.clients.iter().map(|c| c.queue.len()).sum()
    }

    /// Picks the next request per the policy, services it, and advances
    /// the disk clock.
    ///
    /// # Errors
    ///
    /// [`LotteryError::EmptyLottery`] when no requests are pending.
    pub fn service_next<R: SchedRng + ?Sized>(&mut self, rng: &mut R) -> Result<DiskClientId> {
        let chosen = match self.policy {
            DiskPolicy::Lottery => {
                let mut pool: ListLottery<usize, u64> = ListLottery::without_move_to_front();
                for (i, c) in self.clients.iter().enumerate() {
                    if !c.queue.is_empty() && c.tickets > 0 {
                        pool.insert(i, c.tickets);
                    }
                }
                let entries = pool.len() as u32;
                let total = pool.total();
                let winner = *pool.draw(rng)?;
                self.bus.emit(|| EventKind::ResourceDraw {
                    resource: "disk",
                    client: winner as u32,
                    entries,
                    total,
                });
                winner
            }
            DiskPolicy::Fcfs => loop {
                let Some(front) = self.arrivals.pop_front() else {
                    return Err(LotteryError::EmptyLottery);
                };
                // Arrivals may reference requests a different policy run
                // already consumed; skip empties defensively.
                if !self.clients[front.0 as usize].queue.is_empty() {
                    break front.0 as usize;
                }
            },
            DiskPolicy::ShortestSeek => {
                let head = self.head;
                self.clients
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.queue.is_empty())
                    .min_by_key(|(_, c)| {
                        c.queue
                            .front()
                            .map_or(u64::MAX, |r| r.sector.abs_diff(head))
                    })
                    .map(|(i, _)| i)
                    .ok_or(LotteryError::EmptyLottery)?
            }
        };

        let request = self.clients[chosen]
            .queue
            .pop_front()
            .expect("chosen client has a request");
        let seek = self.head.abs_diff(request.sector);
        // Timing constants are in hundredths of a microsecond.
        let service =
            (seek * self.seek_us_per_sector + request.length * self.transfer_us_per_sector) / 100;
        self.clock_us += service.max(1);
        self.seek_distance += seek;
        self.head = request.sector + request.length;
        let c = &mut self.clients[chosen];
        c.sectors_served += request.length;
        c.requests_served += 1;
        let response = self.clock_us - request.submitted_us;
        c.response_us.record(response as f64);
        self.bus.emit(|| EventKind::ResourceComplete {
            resource: "disk",
            client: chosen as u32,
            units: request.length,
            wait: response,
        });
        Ok(DiskClientId(chosen as u32))
    }
}

/// The disk is work-conserving: while any request is pending, its next
/// completion can start at the current disk clock; an idle disk has no
/// future work of its own. A shared event loop therefore jumps straight
/// past idle disk time instead of polling.
impl lottery_sim::event::EventSource for DiskScheduler {
    fn next_due(&self) -> Option<lottery_sim::time::SimTime> {
        (self.pending_requests() > 0).then(|| lottery_sim::time::SimTime::from_us(self.clock_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_core::rng::ParkMiller;

    fn keep_fed(disk: &mut DiskScheduler, clients: &[DiskClientId], i: u64) {
        for (k, &c) in clients.iter().enumerate() {
            if disk.backlog(c) < 4 {
                // Interleaved extents so seeks are non-trivial.
                disk.submit(c, (i * 64 + k as u64 * 1000) % 100_000, 8);
            }
        }
    }

    #[test]
    fn empty_disk_reports() {
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let mut rng = ParkMiller::new(1);
        assert_eq!(disk.service_next(&mut rng), Err(LotteryError::EmptyLottery));
    }

    #[test]
    fn lottery_divides_bandwidth_proportionally() {
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let a = disk.register("a", 300);
        let b = disk.register("b", 100);
        let mut rng = ParkMiller::new(7);
        for i in 0..40_000u64 {
            keep_fed(&mut disk, &[a, b], i);
            disk.service_next(&mut rng).unwrap();
        }
        let ratio = disk.sectors_served(a) as f64 / disk.sectors_served(b) as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn fcfs_lets_a_flood_starve_others() {
        let mut disk = DiskScheduler::new(DiskPolicy::Fcfs);
        let flood = disk.register("flood", 100);
        let meek = disk.register("meek", 100);
        // The flooder submits 1000 requests first; the meek client's one
        // request then waits behind all of them.
        for i in 0..1000u64 {
            disk.submit(flood, i * 8, 8);
        }
        disk.submit(meek, 0, 8);
        let mut rng = ParkMiller::new(3);
        for _ in 0..1000 {
            let who = disk.service_next(&mut rng).unwrap();
            assert_eq!(who, flood);
        }
        assert_eq!(disk.service_next(&mut rng).unwrap(), meek);
    }

    #[test]
    fn lottery_isolates_against_floods() {
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let flood = disk.register("flood", 100);
        let meek = disk.register("meek", 100);
        for i in 0..1000u64 {
            disk.submit(flood, i * 8, 8);
        }
        disk.submit(meek, 0, 8);
        let mut rng = ParkMiller::new(3);
        // With equal tickets the meek request is served within a few
        // draws, not after 1000.
        let mut served_after = 0;
        loop {
            let who = disk.service_next(&mut rng).unwrap();
            served_after += 1;
            if who == meek {
                break;
            }
        }
        assert!(served_after < 20, "meek waited {served_after} services");
    }

    #[test]
    fn sstf_minimizes_seeks() {
        let run = |policy: DiskPolicy| -> u64 {
            let mut disk = DiskScheduler::new(policy);
            let a = disk.register("a", 100);
            let b = disk.register("b", 100);
            // a's extents at low sectors, b's at high: SSTF batches them.
            for i in 0..200u64 {
                disk.submit(a, i * 8, 8);
                disk.submit(b, 1_000_000 + i * 8, 8);
            }
            let mut rng = ParkMiller::new(5);
            while disk.service_next(&mut rng).is_ok() {}
            disk.seek_distance()
        };
        let sstf = run(DiskPolicy::ShortestSeek);
        let lottery = run(DiskPolicy::Lottery);
        assert!(
            sstf * 10 < lottery,
            "SSTF should seek far less: {sstf} vs {lottery}"
        );
    }

    #[test]
    fn response_times_follow_tickets() {
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let fast = disk.register("fast", 900);
        let slow = disk.register("slow", 100);
        let mut rng = ParkMiller::new(11);
        for i in 0..20_000u64 {
            keep_fed(&mut disk, &[fast, slow], i);
            disk.service_next(&mut rng).unwrap();
        }
        assert!(
            disk.response_us(slow).mean() > disk.response_us(fast).mean() * 2.0,
            "slow {} vs fast {}",
            disk.response_us(slow).mean(),
            disk.response_us(fast).mean()
        );
    }

    #[test]
    fn set_tickets_rebalances() {
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let a = disk.register("a", 100);
        let b = disk.register("b", 100);
        disk.set_tickets(a, 400);
        let mut rng = ParkMiller::new(13);
        for i in 0..20_000u64 {
            keep_fed(&mut disk, &[a, b], i);
            disk.service_next(&mut rng).unwrap();
        }
        let ratio = disk.sectors_served(a) as f64 / disk.sectors_served(b) as f64;
        assert!((ratio - 4.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn probe_bus_sees_grants_draws_and_completions() {
        use lottery_obs::{Aggregator, ProbeBus, Shared};

        let bus = ProbeBus::enabled();
        let stats = Shared::new(Aggregator::new());
        bus.attach(stats.clone());
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        disk.set_probe_bus(bus);
        let a = disk.register("a", 300);
        let b = disk.register("b", 100);
        disk.set_tickets(b, 150);
        let mut rng = ParkMiller::new(17);
        for i in 0..32u64 {
            keep_fed(&mut disk, &[a, b], i);
            disk.service_next(&mut rng).unwrap();
        }
        stats.with(|s| {
            assert_eq!(s.resource_draws.get("disk"), Some(&32));
            let units = s.resource_units.get("disk").copied().unwrap_or(0);
            assert_eq!(units, disk.sectors_served(a) + disk.sectors_served(b));
            assert!(s.resource_wait.contains_key("disk"));
        });
    }

    #[test]
    fn clock_and_accounting_advance() {
        let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
        let a = disk.register("a", 1);
        disk.submit(a, 100, 16);
        let mut rng = ParkMiller::new(1);
        disk.service_next(&mut rng).unwrap();
        assert!(disk.clock_us() > 0);
        assert_eq!(disk.sectors_served(a), 16);
        assert_eq!(disk.requests_served(a), 1);
        assert_eq!(disk.backlog(a), 0);
        assert_eq!(disk.name(a), "a");
        assert_eq!(a.index(), 0);
    }
}
