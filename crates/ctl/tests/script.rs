//! Runs the repository's example command script end to end.

use lottery_ctl::Session;

const SCRIPT: &str = include_str!("../../../examples/economy.ctl");

#[test]
fn economy_script_executes_cleanly() {
    let mut s = Session::new();
    for line in SCRIPT.lines() {
        s.eval(line)
            .unwrap_or_else(|e| panic!("script line {line:?} failed: {e}"));
    }
    // alice worth 2000 base, split 3:1 → build 1500, editor 500.
    assert_eq!(s.eval("value build").unwrap(), "1500.0");
    assert_eq!(s.eval("value editor").unwrap(), "500.0");
    // bob worth 1000 base, now split between sim and sim2.
    assert_eq!(s.eval("value sim").unwrap(), "500.0");
    assert_eq!(s.eval("value sim2").unwrap(), "500.0");
    // Conservation: 3000 base units across all four processes.
    let total: f64 = ["build", "editor", "sim", "sim2"]
        .iter()
        .map(|p| {
            s.eval(&format!("value {p}"))
                .unwrap()
                .parse::<f64>()
                .unwrap()
        })
        .sum();
    assert_eq!(total, 3000.0);
}

#[test]
fn script_is_idempotent_per_session() {
    // Replaying the script in a fresh session gives identical output; in
    // the same session every creation collides (names are taken).
    let mut s = Session::new();
    for line in SCRIPT.lines() {
        let _ = s.eval(line);
    }
    let err = s.eval("mkcur alice").unwrap_err();
    assert!(err.to_string().contains("already in use"), "{err}");
}
