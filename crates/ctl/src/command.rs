//! Command-line grammar for the Section 4.7 interface.

use core::fmt;

/// A parsed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Blank line or comment.
    Nop,
    /// Print the command reference.
    Help,
    /// `mkcur [-r] <name>` — create a currency (`-r`: only this principal
    /// may issue tickets in it).
    MkCur {
        /// Currency name.
        name: String,
        /// Restrict issuing to the session principal.
        restricted: bool,
    },
    /// `rmcur <name>` — destroy an empty currency.
    RmCur {
        /// Currency name.
        name: String,
    },
    /// `mktkt <name> <amount> <currency>` — issue a ticket.
    MkTkt {
        /// Ticket name.
        name: String,
        /// Face amount.
        amount: u64,
        /// Denomination currency name.
        currency: String,
    },
    /// `rmtkt <name>` — destroy a ticket.
    RmTkt {
        /// Ticket name.
        name: String,
    },
    /// `fund <ticket> <currency|process>` — use a ticket to fund a target.
    Fund {
        /// Ticket name.
        ticket: String,
        /// Target name.
        target: String,
    },
    /// `unfund <ticket>` — remove a ticket from whatever it funds.
    Unfund {
        /// Ticket name.
        ticket: String,
    },
    /// `mkproc <name>` — create an (inactive) process.
    MkProc {
        /// Process name.
        name: String,
    },
    /// `rmproc <name>` — destroy a process and its funding.
    RmProc {
        /// Process name.
        name: String,
    },
    /// `activate <process>` / `deactivate <process>`.
    Activate {
        /// Process name.
        name: String,
    },
    /// See [`Command::Activate`].
    Deactivate {
        /// Process name.
        name: String,
    },
    /// `fundx <amount> <currency> <name>` — launch a process with the
    /// given funding (the paper's `fundx` shell wrapper).
    FundX {
        /// Process name.
        name: String,
        /// Ticket amount.
        amount: u64,
        /// Denomination currency name.
        currency: String,
    },
    /// `lscur [--json]` — list currencies.
    LsCur {
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
    /// `lstkt [currency] [--json]` — list tickets, optionally filtered.
    LsTkt {
        /// Optional denomination filter.
        currency: Option<String>,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
    /// `lsproc` — list processes.
    LsProc,
    /// `value <name>` — base-unit value of any object.
    Value {
        /// Object name.
        name: String,
    },
    /// `dot` — render the whole ledger as Graphviz.
    Dot,
    /// `stat` — Prometheus-style snapshot of the session's probe
    /// aggregator (ledger-op counters, cache hit rates).
    Stat,
    /// `trace on|off` — toggle the session flight recorder.
    Trace {
        /// `true` for `trace on`.
        on: bool,
    },
    /// `dump` — replay the flight recorder as JSONL, one event per line.
    Dump,
    /// `compensate <process> <used> <quantum>` — grant a Section 4.5
    /// compensation factor of `quantum / used` (microseconds); equal
    /// values clear it.
    Compensate {
        /// Process name.
        name: String,
        /// Microseconds of the quantum actually used.
        used: u64,
        /// The full quantum in microseconds.
        quantum: u64,
    },
    /// `shards <n>` — partition processes across `n` dirty-notification
    /// shards; `shards [--json]` — per-shard process counts, ticket and
    /// compensation totals, queue depths, and the migration count.
    Shards {
        /// Re-partition across this many shards (`None`: just report).
        count: Option<usize>,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
    /// `broker …` — drive the session's multi-resource broker.
    Broker {
        /// The broker sub-verb.
        action: BrokerAction,
    },
    /// `replay <file> [--json]` — re-execute a recorded capture
    /// (`ReplayLog` JSONL, as written by the `replay` experiment or
    /// `FlightRecorder::to_replay_log`) and report the first divergence,
    /// if any. The file may instead be an external workload trace
    /// (`TraceSpec` JSONL, header `{"trace":1,...}`): the trace is
    /// captured under the default configuration, self-replayed, and
    /// diffed the same way.
    Replay {
        /// Path to the capture or trace file.
        path: String,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// `cluster [<nodes>] [--json]` — run the canned cluster-market
    /// scenario (demand-following budgets, saturating 2:1 tenants, one
    /// node killed mid-run) and report the coordinator's allocations,
    /// conservation check, and cluster-wide dominant shares.
    Cluster {
        /// Number of nodes (default 4).
        nodes: Option<u32>,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// `events [--json]` — run a canned event-driven kernel window
    /// (mixed runnable jobs and far-future sleepers) and report the
    /// pending-event queue: depth, next-event instant, horizon to it,
    /// and the decision count — sleepers sit in the queue at zero
    /// per-decision cost.
    Events {
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// `par [<workers>] [--json]` — run the canned real-thread scenario
    /// on that many OS worker threads (default 4): a 3:1 funded compute
    /// pair per shard plus one early-exiting job, work stealing on, and
    /// report per-worker decisions, steals, and the machine-wide
    /// dispatch ratio.
    Par {
        /// Number of OS worker threads (default 4).
        workers: Option<u32>,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// `structure [list|tree|alias] [--json]` — switch the winner-search
    /// structure the session rebuilds over its active processes (Section
    /// 4.2: list scan, partial-sum tree, or the O(1) alias sampler) and
    /// report the rebuild statistics; with no kind, just report.
    Structure {
        /// Switch to this structure (`None`: just report).
        kind: Option<StructureKind>,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
}

/// A Section 4.2 winner-search structure, as named on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// O(n) list scan.
    List,
    /// O(log n) partial-sum tree.
    Tree,
    /// O(1) alias sampler.
    Alias,
}

impl StructureKind {
    /// The command-line (and probe-event) tag.
    pub fn name(self) -> &'static str {
        match self {
            Self::List => "list",
            Self::Tree => "tree",
            Self::Alias => "alias",
        }
    }

    fn parse(tag: &str) -> Option<Self> {
        match tag {
            "list" => Some(Self::List),
            "tree" => Some(Self::Tree),
            "alias" => Some(Self::Alias),
            _ => None,
        }
    }
}

/// Sub-verbs of [`Command::Broker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerAction {
    /// `broker tenant <name> <grant> [static]` — register a tenant with a
    /// base-currency grant split across cpu/disk/mem/net (demand-refund
    /// split unless `static`).
    Tenant {
        /// Tenant name.
        name: String,
        /// Base-currency grant.
        grant: u64,
        /// Refund idle resources back to the grant on `rebalance`.
        refund: bool,
    },
    /// `broker demand <tenant> <resource> <units>` — record demand ahead
    /// of the next rebalance.
    Demand {
        /// Tenant name.
        tenant: String,
        /// Resource tag (`cpu`, `disk`, `mem`, `net`).
        resource: String,
        /// Demand units.
        units: u64,
    },
    /// `broker use <tenant> <resource> <units>` — record observed usage.
    Use {
        /// Tenant name.
        tenant: String,
        /// Resource tag (`cpu`, `disk`, `mem`, `net`).
        resource: String,
        /// Usage units.
        units: u64,
    },
    /// `broker rebalance` — refund idle resources, restore demanded ones.
    Rebalance,
    /// `broker [--json]` — per-tenant per-resource funding and
    /// observed-share report.
    Report {
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The verb is not recognized.
    UnknownVerb(String),
    /// Wrong number or shape of arguments.
    Usage(&'static str),
    /// An amount did not parse as a positive integer.
    BadAmount(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownVerb(v) => write!(f, "unknown command {v:?} (try `help`)"),
            Self::Usage(u) => write!(f, "usage: {u}"),
            Self::BadAmount(a) => write!(f, "bad amount {a:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Command {
    /// The `help` text.
    pub const HELP: &'static str = "\
commands (Section 4.7 of the paper):
  mkcur [-r] <name>                create a currency (-r: restricted issue)
  rmcur <name>                     destroy an empty currency
  mktkt <name> <amount> <currency> issue a ticket
  rmtkt <name>                     destroy a ticket
  fund <ticket> <target>           fund a currency or process
  unfund <ticket>                  withdraw a ticket
  mkproc <name>                    create an inactive process
  rmproc <name>                    destroy a process and its tickets
  activate <process>               mark a process runnable
  deactivate <process>             mark a process blocked
  compensate <proc> <used> <quantum>  grant a q/used compensation factor (us)
  fundx <amount> <currency> <name> launch a process with funding
  lscur [--json] | lstkt [currency] [--json] | lsproc  inspect objects
  value <name>                     base-unit value of any object
  dot                              render the ledger as Graphviz
  stat                             probe-counter snapshot (Prometheus text)
  trace on|off                     toggle the session flight recorder
  dump                             flight-recorder events as JSONL
  replay <file> [--json]           re-run a capture (or capture a trace file), diff the streams
  cluster [<nodes>] [--json]       canned multi-node market: allocations, conservation, shares
  shards [<n>|--json]              partition processes across n dirty shards / report
  structure [list|tree|alias] [--json]  switch the winner-search structure / report rebuild stats
  events [--json]                  event-queue snapshot: depth, next event, horizon, decisions
  par [<workers>] [--json]         canned real-thread run: per-worker decisions, steals, ratio
  broker tenant <name> <grant> [static]  register a tenant grant split over cpu/disk/mem/net
  broker demand <tenant> <resource> <units>  record demand before a rebalance
  broker use <tenant> <resource> <units>     record observed usage
  broker rebalance                 refund idle resources, restore demanded ones
  broker [--json]                  per-tenant funding and observed-share report
  help                             this text";

    /// Parses one line. Blank lines and `#` comments are [`Command::Nop`].
    pub fn parse(line: &str) -> Result<Command, ParseError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(Command::Nop);
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let amount = |s: &str| -> Result<u64, ParseError> {
            s.parse::<u64>()
                .ok()
                .filter(|&a| a > 0)
                .ok_or_else(|| ParseError::BadAmount(s.to_string()))
        };
        match tokens.as_slice() {
            ["help"] => Ok(Command::Help),
            ["mkcur", "-r", name] => Ok(Command::MkCur {
                name: name.to_string(),
                restricted: true,
            }),
            ["mkcur", name] => Ok(Command::MkCur {
                name: name.to_string(),
                restricted: false,
            }),
            ["mkcur", ..] => Err(ParseError::Usage("mkcur [-r] <name>")),
            ["rmcur", name] => Ok(Command::RmCur {
                name: name.to_string(),
            }),
            ["rmcur", ..] => Err(ParseError::Usage("rmcur <name>")),
            ["mktkt", name, amt, currency] => Ok(Command::MkTkt {
                name: name.to_string(),
                amount: amount(amt)?,
                currency: currency.to_string(),
            }),
            ["mktkt", ..] => Err(ParseError::Usage("mktkt <name> <amount> <currency>")),
            ["rmtkt", name] => Ok(Command::RmTkt {
                name: name.to_string(),
            }),
            ["rmtkt", ..] => Err(ParseError::Usage("rmtkt <name>")),
            ["fund", ticket, target] => Ok(Command::Fund {
                ticket: ticket.to_string(),
                target: target.to_string(),
            }),
            ["fund", ..] => Err(ParseError::Usage("fund <ticket> <target>")),
            ["unfund", ticket] => Ok(Command::Unfund {
                ticket: ticket.to_string(),
            }),
            ["unfund", ..] => Err(ParseError::Usage("unfund <ticket>")),
            ["mkproc", name] => Ok(Command::MkProc {
                name: name.to_string(),
            }),
            ["mkproc", ..] => Err(ParseError::Usage("mkproc <name>")),
            ["rmproc", name] => Ok(Command::RmProc {
                name: name.to_string(),
            }),
            ["rmproc", ..] => Err(ParseError::Usage("rmproc <name>")),
            ["activate", name] => Ok(Command::Activate {
                name: name.to_string(),
            }),
            ["deactivate", name] => Ok(Command::Deactivate {
                name: name.to_string(),
            }),
            ["fundx", amt, currency, name] => Ok(Command::FundX {
                name: name.to_string(),
                amount: amount(amt)?,
                currency: currency.to_string(),
            }),
            ["fundx", ..] => Err(ParseError::Usage("fundx <amount> <currency> <name>")),
            ["lscur"] => Ok(Command::LsCur { json: false }),
            ["lscur", "--json"] => Ok(Command::LsCur { json: true }),
            ["lscur", ..] => Err(ParseError::Usage("lscur [--json]")),
            ["lstkt"] => Ok(Command::LsTkt {
                currency: None,
                json: false,
            }),
            ["lstkt", "--json"] => Ok(Command::LsTkt {
                currency: None,
                json: true,
            }),
            ["lstkt", currency, "--json"] | ["lstkt", "--json", currency] => Ok(Command::LsTkt {
                currency: Some(currency.to_string()),
                json: true,
            }),
            ["lstkt", currency] => Ok(Command::LsTkt {
                currency: Some(currency.to_string()),
                json: false,
            }),
            ["lstkt", ..] => Err(ParseError::Usage("lstkt [currency] [--json]")),
            ["lsproc"] => Ok(Command::LsProc),
            ["dot"] => Ok(Command::Dot),
            ["stat"] => Ok(Command::Stat),
            ["trace", "on"] => Ok(Command::Trace { on: true }),
            ["trace", "off"] => Ok(Command::Trace { on: false }),
            ["trace", ..] => Err(ParseError::Usage("trace on|off")),
            ["dump"] => Ok(Command::Dump),
            ["replay", path] => Ok(Command::Replay {
                path: path.to_string(),
                json: false,
            }),
            ["replay", path, "--json"] | ["replay", "--json", path] => Ok(Command::Replay {
                path: path.to_string(),
                json: true,
            }),
            ["replay", ..] => Err(ParseError::Usage("replay <file> [--json]")),
            ["cluster"] => Ok(Command::Cluster {
                nodes: None,
                json: false,
            }),
            ["cluster", "--json"] => Ok(Command::Cluster {
                nodes: None,
                json: true,
            }),
            ["cluster", n] => Ok(Command::Cluster {
                nodes: Some(amount(n)? as u32),
                json: false,
            }),
            ["cluster", n, "--json"] | ["cluster", "--json", n] => Ok(Command::Cluster {
                nodes: Some(amount(n)? as u32),
                json: true,
            }),
            ["cluster", ..] => Err(ParseError::Usage("cluster [<nodes>] [--json]")),
            ["compensate", name, used, quantum] => Ok(Command::Compensate {
                name: name.to_string(),
                used: amount(used)?,
                quantum: amount(quantum)?,
            }),
            ["compensate", ..] => Err(ParseError::Usage("compensate <process> <used> <quantum>")),
            ["shards"] => Ok(Command::Shards {
                count: None,
                json: false,
            }),
            ["shards", "--json"] => Ok(Command::Shards {
                count: None,
                json: true,
            }),
            ["shards", n] => Ok(Command::Shards {
                count: Some(amount(n)? as usize),
                json: false,
            }),
            ["shards", ..] => Err(ParseError::Usage("shards [<n>|--json]")),
            ["events"] => Ok(Command::Events { json: false }),
            ["events", "--json"] => Ok(Command::Events { json: true }),
            ["events", ..] => Err(ParseError::Usage("events [--json]")),
            ["par"] => Ok(Command::Par {
                workers: None,
                json: false,
            }),
            ["par", "--json"] => Ok(Command::Par {
                workers: None,
                json: true,
            }),
            ["par", n] => Ok(Command::Par {
                workers: Some(amount(n)? as u32),
                json: false,
            }),
            ["par", n, "--json"] | ["par", "--json", n] => Ok(Command::Par {
                workers: Some(amount(n)? as u32),
                json: true,
            }),
            ["par", ..] => Err(ParseError::Usage("par [<workers>] [--json]")),
            ["structure"] => Ok(Command::Structure {
                kind: None,
                json: false,
            }),
            ["structure", "--json"] => Ok(Command::Structure {
                kind: None,
                json: true,
            }),
            ["structure", k] if StructureKind::parse(k).is_some() => Ok(Command::Structure {
                kind: StructureKind::parse(k),
                json: false,
            }),
            ["structure", k, "--json"] if StructureKind::parse(k).is_some() => {
                Ok(Command::Structure {
                    kind: StructureKind::parse(k),
                    json: true,
                })
            }
            ["structure", ..] => Err(ParseError::Usage("structure [list|tree|alias] [--json]")),
            ["broker"] => Ok(Command::Broker {
                action: BrokerAction::Report { json: false },
            }),
            ["broker", "--json"] => Ok(Command::Broker {
                action: BrokerAction::Report { json: true },
            }),
            ["broker", "tenant", name, grant] => Ok(Command::Broker {
                action: BrokerAction::Tenant {
                    name: name.to_string(),
                    grant: amount(grant)?,
                    refund: true,
                },
            }),
            ["broker", "tenant", name, grant, "static"] => Ok(Command::Broker {
                action: BrokerAction::Tenant {
                    name: name.to_string(),
                    grant: amount(grant)?,
                    refund: false,
                },
            }),
            ["broker", "demand", tenant, resource, units] => Ok(Command::Broker {
                action: BrokerAction::Demand {
                    tenant: tenant.to_string(),
                    resource: resource.to_string(),
                    units: amount(units)?,
                },
            }),
            ["broker", "use", tenant, resource, units] => Ok(Command::Broker {
                action: BrokerAction::Use {
                    tenant: tenant.to_string(),
                    resource: resource.to_string(),
                    units: amount(units)?,
                },
            }),
            ["broker", "rebalance"] => Ok(Command::Broker {
                action: BrokerAction::Rebalance,
            }),
            ["broker", ..] => Err(ParseError::Usage(
                "broker [--json] | broker tenant <name> <grant> [static] | \
                 broker demand|use <tenant> <resource> <units> | broker rebalance",
            )),
            ["value", name] => Ok(Command::Value {
                name: name.to_string(),
            }),
            ["value", ..] => Err(ParseError::Usage("value <name>")),
            [verb, ..] => Err(ParseError::UnknownVerb(verb.to_string())),
            [] => Ok(Command::Nop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(Command::parse("help"), Ok(Command::Help));
        assert_eq!(
            Command::parse("mkcur alice"),
            Ok(Command::MkCur {
                name: "alice".into(),
                restricted: false
            })
        );
        assert_eq!(
            Command::parse("mkcur -r alice"),
            Ok(Command::MkCur {
                name: "alice".into(),
                restricted: true
            })
        );
        assert_eq!(
            Command::parse("mktkt t 100 alice"),
            Ok(Command::MkTkt {
                name: "t".into(),
                amount: 100,
                currency: "alice".into()
            })
        );
        assert_eq!(
            Command::parse("fundx 300 bob job"),
            Ok(Command::FundX {
                name: "job".into(),
                amount: 300,
                currency: "bob".into()
            })
        );
        assert_eq!(
            Command::parse("lstkt bob"),
            Ok(Command::LsTkt {
                currency: Some("bob".into()),
                json: false
            })
        );
    }

    #[test]
    fn parses_observability_verbs() {
        assert_eq!(Command::parse("stat"), Ok(Command::Stat));
        assert_eq!(Command::parse("trace on"), Ok(Command::Trace { on: true }));
        assert_eq!(
            Command::parse("trace off"),
            Ok(Command::Trace { on: false })
        );
        assert!(matches!(
            Command::parse("trace maybe"),
            Err(ParseError::Usage(_))
        ));
        assert_eq!(Command::parse("dump"), Ok(Command::Dump));
    }

    #[test]
    fn parses_replay() {
        assert_eq!(
            Command::parse("replay capture.jsonl"),
            Ok(Command::Replay {
                path: "capture.jsonl".into(),
                json: false
            })
        );
        assert_eq!(
            Command::parse("replay capture.jsonl --json"),
            Ok(Command::Replay {
                path: "capture.jsonl".into(),
                json: true
            })
        );
        assert_eq!(
            Command::parse("replay --json capture.jsonl"),
            Ok(Command::Replay {
                path: "capture.jsonl".into(),
                json: true
            })
        );
        assert!(matches!(
            Command::parse("replay"),
            Err(ParseError::Usage(_))
        ));
        assert!(matches!(
            Command::parse("replay a b"),
            Err(ParseError::UnknownVerb(_)) | Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_cluster() {
        assert_eq!(
            Command::parse("cluster"),
            Ok(Command::Cluster {
                nodes: None,
                json: false
            })
        );
        assert_eq!(
            Command::parse("cluster --json"),
            Ok(Command::Cluster {
                nodes: None,
                json: true
            })
        );
        assert_eq!(
            Command::parse("cluster 6"),
            Ok(Command::Cluster {
                nodes: Some(6),
                json: false
            })
        );
        assert_eq!(
            Command::parse("cluster 3 --json"),
            Ok(Command::Cluster {
                nodes: Some(3),
                json: true
            })
        );
        assert_eq!(
            Command::parse("cluster --json 3"),
            Ok(Command::Cluster {
                nodes: Some(3),
                json: true
            })
        );
        assert!(matches!(
            Command::parse("cluster 0"),
            Err(ParseError::BadAmount(_))
        ));
        assert!(matches!(
            Command::parse("cluster a b c"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_broker() {
        assert_eq!(
            Command::parse("broker"),
            Ok(Command::Broker {
                action: BrokerAction::Report { json: false }
            })
        );
        assert_eq!(
            Command::parse("broker --json"),
            Ok(Command::Broker {
                action: BrokerAction::Report { json: true }
            })
        );
        assert_eq!(
            Command::parse("broker tenant gold 2000"),
            Ok(Command::Broker {
                action: BrokerAction::Tenant {
                    name: "gold".into(),
                    grant: 2000,
                    refund: true
                }
            })
        );
        assert_eq!(
            Command::parse("broker tenant gold 2000 static"),
            Ok(Command::Broker {
                action: BrokerAction::Tenant {
                    name: "gold".into(),
                    grant: 2000,
                    refund: false
                }
            })
        );
        assert_eq!(
            Command::parse("broker use gold disk 800"),
            Ok(Command::Broker {
                action: BrokerAction::Use {
                    tenant: "gold".into(),
                    resource: "disk".into(),
                    units: 800
                }
            })
        );
        assert_eq!(
            Command::parse("broker demand gold cpu 1"),
            Ok(Command::Broker {
                action: BrokerAction::Demand {
                    tenant: "gold".into(),
                    resource: "cpu".into(),
                    units: 1
                }
            })
        );
        assert_eq!(
            Command::parse("broker rebalance"),
            Ok(Command::Broker {
                action: BrokerAction::Rebalance
            })
        );
        assert!(matches!(
            Command::parse("broker tenant gold"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_shards() {
        assert_eq!(
            Command::parse("shards"),
            Ok(Command::Shards {
                count: None,
                json: false
            })
        );
        assert_eq!(
            Command::parse("shards --json"),
            Ok(Command::Shards {
                count: None,
                json: true
            })
        );
        assert_eq!(
            Command::parse("shards 4"),
            Ok(Command::Shards {
                count: Some(4),
                json: false
            })
        );
        assert!(matches!(
            Command::parse("shards 0"),
            Err(ParseError::BadAmount(_))
        ));
        assert!(matches!(
            Command::parse("shards 2 --json"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_events() {
        assert_eq!(
            Command::parse("events"),
            Ok(Command::Events { json: false })
        );
        assert_eq!(
            Command::parse("events --json"),
            Ok(Command::Events { json: true })
        );
        assert!(matches!(
            Command::parse("events now"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_par() {
        assert_eq!(
            Command::parse("par"),
            Ok(Command::Par {
                workers: None,
                json: false
            })
        );
        assert_eq!(
            Command::parse("par 8 --json"),
            Ok(Command::Par {
                workers: Some(8),
                json: true
            })
        );
        assert_eq!(
            Command::parse("par --json"),
            Ok(Command::Par {
                workers: None,
                json: true
            })
        );
        assert!(matches!(
            Command::parse("par 0"),
            Err(ParseError::BadAmount(_))
        ));
        assert!(matches!(
            Command::parse("par 2 4"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_structure() {
        assert_eq!(
            Command::parse("structure"),
            Ok(Command::Structure {
                kind: None,
                json: false
            })
        );
        assert_eq!(
            Command::parse("structure --json"),
            Ok(Command::Structure {
                kind: None,
                json: true
            })
        );
        assert_eq!(
            Command::parse("structure alias"),
            Ok(Command::Structure {
                kind: Some(StructureKind::Alias),
                json: false
            })
        );
        assert_eq!(
            Command::parse("structure tree --json"),
            Ok(Command::Structure {
                kind: Some(StructureKind::Tree),
                json: true
            })
        );
        assert!(matches!(
            Command::parse("structure heap"),
            Err(ParseError::Usage(_))
        ));
        assert!(matches!(
            Command::parse("structure list tree"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn parses_compensate() {
        assert_eq!(
            Command::parse("compensate io 5000 20000"),
            Ok(Command::Compensate {
                name: "io".into(),
                used: 5000,
                quantum: 20000
            })
        );
        assert!(matches!(
            Command::parse("compensate io"),
            Err(ParseError::Usage(_))
        ));
        assert!(matches!(
            Command::parse("compensate io x 20000"),
            Err(ParseError::BadAmount(_))
        ));
    }

    #[test]
    fn parses_json_flags() {
        assert_eq!(
            Command::parse("lscur --json"),
            Ok(Command::LsCur { json: true })
        );
        assert_eq!(
            Command::parse("lstkt --json"),
            Ok(Command::LsTkt {
                currency: None,
                json: true
            })
        );
        assert_eq!(
            Command::parse("lstkt bob --json"),
            Ok(Command::LsTkt {
                currency: Some("bob".into()),
                json: true
            })
        );
        assert_eq!(
            Command::parse("lstkt --json bob"),
            Ok(Command::LsTkt {
                currency: Some("bob".into()),
                json: true
            })
        );
        assert!(matches!(
            Command::parse("lscur bob"),
            Err(ParseError::Usage(_))
        ));
    }

    #[test]
    fn comments_and_blanks_are_nops() {
        assert_eq!(Command::parse(""), Ok(Command::Nop));
        assert_eq!(Command::parse("   "), Ok(Command::Nop));
        assert_eq!(Command::parse("# hello"), Ok(Command::Nop));
    }

    #[test]
    fn bad_amounts_rejected() {
        assert!(matches!(
            Command::parse("mktkt t zero base"),
            Err(ParseError::BadAmount(_))
        ));
        assert!(matches!(
            Command::parse("mktkt t 0 base"),
            Err(ParseError::BadAmount(_))
        ));
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(
            Command::parse("mktkt t"),
            Err(ParseError::Usage(_))
        ));
        assert!(matches!(
            Command::parse("bogus x"),
            Err(ParseError::UnknownVerb(_))
        ));
    }

    #[test]
    fn errors_display() {
        assert!(ParseError::UnknownVerb("x".into())
            .to_string()
            .contains("x"));
        assert!(ParseError::Usage("u").to_string().contains("u"));
        assert!(ParseError::BadAmount("y".into()).to_string().contains("y"));
    }
}
