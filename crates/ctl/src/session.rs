//! The command session: a named-object environment over a ledger.
//!
//! The paper's prototype exposes currencies and tickets to users through
//! setuid command-line tools (`mktkt`, `rmtkt`, `mkcur`, `rmcur`, `fund`,
//! `unfund`, `lstkt`, `lscur`, `fundx`). [`Session`] provides the same
//! verbs over an in-process [`Ledger`], addressing objects by user-chosen
//! names, with the permission checks the paper prescribes (a non-root
//! principal may only issue tickets in currencies whose policy admits it).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use lottery_broker::{Resource, ResourceBroker, SplitPolicy, TenantId};
use lottery_core::client::ClientId;
use lottery_core::currency::{CurrencyId, IssuePolicy, Principal};
use lottery_core::ledger::{Ledger, Valuator};
use lottery_core::lottery::alias::AliasLottery;
use lottery_core::lottery::list::ListLottery;
use lottery_core::lottery::tree::TreeLottery;
use lottery_core::lottery::TicketPool;
use lottery_core::ticket::{FundingTarget, TicketId};
use lottery_obs::{json, Aggregator, EventKind, FlightRecorder, ProbeBus, Shared};

use crate::command::{BrokerAction, Command, ParseError, StructureKind};

/// Events the session flight recorder retains (`trace on` … `dump`).
const FLIGHT_CAPACITY: usize = 4096;

/// What a user-visible name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectRef {
    /// A ticket.
    Ticket(TicketId),
    /// A currency.
    Currency(CurrencyId),
    /// A schedulable process (ledger client).
    Proc(ClientId),
}

/// Errors surfaced to the command user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlError {
    /// The command line did not parse.
    Parse(ParseError),
    /// A name was not bound to any object.
    UnknownName(String),
    /// A name was bound to the wrong kind of object.
    WrongKind {
        /// The offending name.
        name: String,
        /// What the command needed.
        expected: &'static str,
    },
    /// The name is already taken.
    NameTaken(String),
    /// The underlying ledger rejected the operation.
    Ledger(lottery_core::errors::LotteryError),
    /// A replay capture could not be read, parsed, or re-executed.
    Replay(String),
}

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "parse error: {e}"),
            Self::UnknownName(n) => write!(f, "unknown name: {n}"),
            Self::WrongKind { name, expected } => {
                write!(f, "{name} is not a {expected}")
            }
            Self::NameTaken(n) => write!(f, "name already in use: {n}"),
            Self::Ledger(e) => write!(f, "{e}"),
            Self::Replay(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for CtlError {}

impl From<lottery_core::errors::LotteryError> for CtlError {
    fn from(e: lottery_core::errors::LotteryError) -> Self {
        Self::Ledger(e)
    }
}

impl From<ParseError> for CtlError {
    fn from(e: ParseError) -> Self {
        Self::Parse(e)
    }
}

/// A command session bound to a principal.
pub struct Session {
    ledger: Ledger,
    names: BTreeMap<String, ObjectRef>,
    principal: Principal,
    /// Always-on counter aggregation backing the `stat` verb.
    stats: Shared<Aggregator>,
    /// Bounded event ring backing `dump`; only fed while tracing.
    flight: Shared<FlightRecorder>,
    tracing: bool,
    /// Multi-resource broker, created on the first `broker` verb. It owns
    /// its own ledger: tenant grants live in the broker's funding graph,
    /// not the session's object environment.
    broker: Option<ResourceBroker>,
    /// The winner-search structure last selected with the `structure`
    /// verb (Section 4.2); a scheduler embedding this session would draw
    /// from the corresponding pool.
    structure: StructureKind,
    /// Statistics from the most recent `structure <kind>` rebuild.
    last_rebuild: Option<RebuildReport>,
}

/// What the last `structure` switch cost.
struct RebuildReport {
    clients: u32,
    stale: u32,
    rebuild_ns: u64,
    tickets: f64,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Creates a root session with an empty environment; the base currency
    /// is pre-bound as `base`.
    pub fn new() -> Self {
        Self::with_principal(Principal::ROOT)
    }

    /// Creates a session acting as `principal`.
    pub fn with_principal(principal: Principal) -> Self {
        let ledger = Ledger::new();
        let mut names = BTreeMap::new();
        names.insert("base".to_string(), ObjectRef::Currency(ledger.base()));
        let mut session = Self {
            ledger,
            names,
            principal,
            stats: Shared::new(Aggregator::new()),
            flight: Shared::new(FlightRecorder::new(FLIGHT_CAPACITY)),
            tracing: false,
            broker: None,
            structure: StructureKind::List,
            last_rebuild: None,
        };
        session.rewire_bus();
        session
    }

    /// Installs a probe bus on the ledger matching the current recorder
    /// set. The bus has no detach, so toggling tracing swaps the whole
    /// bus; the shared recorder handles (and their contents) survive.
    fn rewire_bus(&mut self) {
        let bus = ProbeBus::enabled();
        bus.attach(self.stats.clone());
        if self.tracing {
            bus.attach(self.flight.clone());
        }
        self.ledger.set_probe_bus(bus);
    }

    /// The underlying ledger (for embedding in a scheduler).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Resolves a name.
    pub fn lookup(&self, name: &str) -> Option<ObjectRef> {
        self.names.get(name).copied()
    }

    fn currency(&self, name: &str) -> Result<CurrencyId, CtlError> {
        match self.names.get(name) {
            Some(ObjectRef::Currency(c)) => Ok(*c),
            Some(_) => Err(CtlError::WrongKind {
                name: name.to_string(),
                expected: "currency",
            }),
            None => Err(CtlError::UnknownName(name.to_string())),
        }
    }

    fn ticket(&self, name: &str) -> Result<TicketId, CtlError> {
        match self.names.get(name) {
            Some(ObjectRef::Ticket(t)) => Ok(*t),
            Some(_) => Err(CtlError::WrongKind {
                name: name.to_string(),
                expected: "ticket",
            }),
            None => Err(CtlError::UnknownName(name.to_string())),
        }
    }

    fn proc(&self, name: &str) -> Result<ClientId, CtlError> {
        match self.names.get(name) {
            Some(ObjectRef::Proc(c)) => Ok(*c),
            Some(_) => Err(CtlError::WrongKind {
                name: name.to_string(),
                expected: "process",
            }),
            None => Err(CtlError::UnknownName(name.to_string())),
        }
    }

    fn bind(&mut self, name: &str, obj: ObjectRef) -> Result<(), CtlError> {
        if self.names.contains_key(name) {
            return Err(CtlError::NameTaken(name.to_string()));
        }
        self.names.insert(name.to_string(), obj);
        Ok(())
    }

    /// Parses and executes one command line, returning its output text.
    pub fn eval(&mut self, line: &str) -> Result<String, CtlError> {
        let cmd = Command::parse(line)?;
        self.execute(cmd)
    }

    /// Executes a parsed command.
    pub fn execute(&mut self, cmd: Command) -> Result<String, CtlError> {
        match cmd {
            Command::Nop => Ok(String::new()),
            Command::Help => Ok(Command::HELP.to_string()),
            Command::MkCur { name, restricted } => {
                let policy = if restricted {
                    IssuePolicy::Restricted(vec![self.principal])
                } else {
                    IssuePolicy::Anyone
                };
                let id = self
                    .ledger
                    .create_currency_with_policy(name.clone(), policy)?;
                self.bind(&name, ObjectRef::Currency(id))?;
                Ok(format!("created currency {name}"))
            }
            Command::RmCur { name } => {
                let id = self.currency(&name)?;
                self.ledger.destroy_currency(id)?;
                self.names.remove(&name);
                Ok(format!("destroyed currency {name}"))
            }
            Command::MkTkt {
                name,
                amount,
                currency,
            } => {
                let cur = self.currency(&currency)?;
                let id = self.ledger.issue(cur, amount, self.principal)?;
                self.bind(&name, ObjectRef::Ticket(id))?;
                Ok(format!("issued ticket {name} = {amount}.{currency}"))
            }
            Command::RmTkt { name } => {
                let id = self.ticket(&name)?;
                self.ledger.destroy_ticket(id)?;
                self.names.remove(&name);
                Ok(format!("destroyed ticket {name}"))
            }
            Command::Fund { ticket, target } => {
                let t = self.ticket(&ticket)?;
                match self.names.get(&target) {
                    Some(ObjectRef::Currency(c)) => {
                        self.ledger.fund_currency(t, *c)?;
                        Ok(format!("ticket {ticket} now funds currency {target}"))
                    }
                    Some(ObjectRef::Proc(c)) => {
                        self.ledger.fund_client(t, *c)?;
                        Ok(format!("ticket {ticket} now funds process {target}"))
                    }
                    Some(ObjectRef::Ticket(_)) => Err(CtlError::WrongKind {
                        name: target,
                        expected: "currency or process",
                    }),
                    None => Err(CtlError::UnknownName(target)),
                }
            }
            Command::Unfund { ticket } => {
                let t = self.ticket(&ticket)?;
                self.ledger.unfund(t)?;
                Ok(format!("ticket {ticket} unfunded"))
            }
            Command::MkProc { name } => {
                let id = self.ledger.create_client(name.clone());
                self.bind(&name, ObjectRef::Proc(id))?;
                Ok(format!("created process {name}"))
            }
            Command::RmProc { name } => {
                let id = self.proc(&name)?;
                self.ledger.destroy_client_and_funding(id)?;
                self.names.remove(&name);
                Ok(format!("destroyed process {name}"))
            }
            Command::Activate { name } => {
                let id = self.proc(&name)?;
                self.ledger.activate_client(id)?;
                Ok(format!("process {name} active"))
            }
            Command::Deactivate { name } => {
                let id = self.proc(&name)?;
                self.ledger.deactivate_client(id)?;
                Ok(format!("process {name} inactive"))
            }
            Command::FundX {
                name,
                amount,
                currency,
            } => {
                // The paper's `fundx`: run a command with specified
                // funding — create the process, issue the ticket, fund it,
                // and set it runnable, in one step.
                let cur = self.currency(&currency)?;
                let client = self.ledger.create_client(name.clone());
                let ticket = match self.ledger.issue(cur, amount, self.principal) {
                    Ok(t) => t,
                    Err(e) => {
                        self.ledger.destroy_client(client)?;
                        return Err(e.into());
                    }
                };
                self.ledger.fund_client(ticket, client)?;
                self.ledger.activate_client(client)?;
                self.bind(&name, ObjectRef::Proc(client))?;
                Ok(format!("launched {name} with {amount}.{currency}"))
            }
            Command::LsCur { json } => {
                let mut v = Valuator::new(&self.ledger);
                let rows: Vec<(String, CurrencyId)> = self
                    .names
                    .iter()
                    .filter_map(|(n, o)| match o {
                        ObjectRef::Currency(c) => Some((n.clone(), *c)),
                        _ => None,
                    })
                    .collect();
                if json {
                    let mut items = Vec::with_capacity(rows.len());
                    for (name, id) in rows {
                        let cur = self.ledger.currency(id)?;
                        items.push(format!(
                            "{{\"currency\":\"{}\",\"active\":{},\"issued\":{},\"value\":{}}}",
                            json::escape(&name),
                            cur.active_amount(),
                            cur.total_amount(),
                            json::number(v.currency_value(id)?),
                        ));
                    }
                    return Ok(format!("[{}]", items.join(",")));
                }
                let mut out = format!(
                    "{:<12} {:>8} {:>8} {:>12}\n",
                    "currency", "active", "issued", "value (base)"
                );
                for (name, id) in rows {
                    let cur = self.ledger.currency(id)?;
                    let _ = writeln!(
                        out,
                        "{:<12} {:>8} {:>8} {:>12.1}",
                        name,
                        cur.active_amount(),
                        cur.total_amount(),
                        v.currency_value(id)?,
                    );
                }
                Ok(out)
            }
            Command::LsTkt { currency, json } => {
                let filter = match &currency {
                    Some(c) => Some(self.currency(c)?),
                    None => None,
                };
                let mut v = Valuator::new(&self.ledger);
                let rows: Vec<(String, TicketId)> = self
                    .names
                    .iter()
                    .filter_map(|(n, o)| match o {
                        ObjectRef::Ticket(t) => Some((n.clone(), *t)),
                        _ => None,
                    })
                    .collect();
                let mut out = if json {
                    String::new()
                } else {
                    format!(
                        "{:<12} {:>8} {:<12} {:>8} {:>12}\n",
                        "ticket", "amount", "funds", "active", "value (base)"
                    )
                };
                let mut items = Vec::new();
                for (name, id) in rows {
                    let t = self.ledger.ticket(id)?;
                    if let Some(f) = filter {
                        if t.currency() != f {
                            continue;
                        }
                    }
                    let target = match t.target() {
                        FundingTarget::Unfunded => "-".to_string(),
                        FundingTarget::Currency(c) => self.name_of(ObjectRef::Currency(c)),
                        FundingTarget::Client(c) => self.name_of(ObjectRef::Proc(c)),
                    };
                    let (amount, active) = (t.amount(), t.is_active());
                    if json {
                        items.push(format!(
                            "{{\"ticket\":\"{}\",\"amount\":{},\"funds\":\"{}\",\"active\":{},\"value\":{}}}",
                            json::escape(&name),
                            amount,
                            json::escape(&target),
                            active,
                            json::number(v.ticket_value(id)?),
                        ));
                    } else {
                        let _ = writeln!(
                            out,
                            "{:<12} {:>8} {:<12} {:>8} {:>12.1}",
                            name,
                            amount,
                            target,
                            active,
                            v.ticket_value(id)?,
                        );
                    }
                }
                if json {
                    return Ok(format!("[{}]", items.join(",")));
                }
                Ok(out)
            }
            Command::LsProc => {
                let mut v = Valuator::new(&self.ledger);
                let mut out = format!("{:<12} {:>8} {:>14}\n", "process", "active", "value (base)");
                let rows: Vec<(String, ClientId)> = self
                    .names
                    .iter()
                    .filter_map(|(n, o)| match o {
                        ObjectRef::Proc(c) => Some((n.clone(), *c)),
                        _ => None,
                    })
                    .collect();
                for (name, id) in rows {
                    let active = self.ledger.client(id)?.is_active();
                    out.push_str(&format!(
                        "{:<12} {:>8} {:>14.1}\n",
                        name,
                        active,
                        v.client_value(id)?,
                    ));
                }
                Ok(out)
            }
            Command::Dot => Ok(lottery_core::viz::to_dot(&self.ledger)),
            Command::Stat => Ok(self.stats.with(|a| a.prometheus_text())),
            Command::Trace { on } => {
                self.tracing = on;
                self.rewire_bus();
                if on {
                    Ok(format!(
                        "tracing on (flight recorder keeps the last {FLIGHT_CAPACITY} events)"
                    ))
                } else {
                    Ok("tracing off".to_string())
                }
            }
            Command::Dump => Ok(self.flight.with(|f| f.to_jsonl())),
            Command::Replay { path, json } => Self::exec_replay(&path, json),
            Command::Cluster { nodes, json } => Self::exec_cluster(nodes.unwrap_or(4), json),
            Command::Events { json } => Ok(Self::exec_events(json)),
            Command::Par { workers, json } => Ok(Self::exec_par(workers.unwrap_or(4), json)),
            Command::Shards { count, json } => {
                if let Some(n) = count {
                    return self.partition_shards(n);
                }
                self.report_shards(json)
            }
            Command::Broker { action } => self.exec_broker(action),
            Command::Structure { kind, json } => {
                if let Some(k) = kind {
                    self.switch_structure(k)?;
                }
                Ok(self.report_structure(json))
            }
            Command::Compensate {
                name,
                used,
                quantum,
            } => {
                let id = self.proc(&name)?;
                lottery_core::compensation::grant(&mut self.ledger, id, used, quantum)?;
                let factor = self.ledger.compensation_factor(id);
                if factor > 1.0 {
                    Ok(format!("process {name} compensated {factor:.2}x"))
                } else {
                    Ok(format!("process {name} compensation cleared"))
                }
            }
            Command::Value { name } => {
                let mut v = Valuator::new(&self.ledger);
                let value = match self.names.get(&name) {
                    Some(ObjectRef::Ticket(t)) => v.ticket_value(*t)?,
                    Some(ObjectRef::Currency(c)) => v.currency_value(*c)?,
                    Some(ObjectRef::Proc(c)) => v.client_value(*c)?,
                    None => return Err(CtlError::UnknownName(name)),
                };
                Ok(format!("{value:.1}"))
            }
        }
    }

    /// Every named process, sorted by name (the `names` map order).
    fn procs(&self) -> Vec<(String, ClientId)> {
        self.names
            .iter()
            .filter_map(|(n, o)| match o {
                ObjectRef::Proc(c) => Some((n.clone(), *c)),
                _ => None,
            })
            .collect()
    }

    /// `shards <n>`: re-partition processes across `n` dirty-notification
    /// shards, balancing ticket weight greedily (heaviest process first
    /// onto the lightest shard — the same discipline the distributed
    /// scheduler uses to home threads).
    fn partition_shards(&mut self, n: usize) -> Result<String, CtlError> {
        self.ledger.set_dirty_shards(n);
        let mut weighted: Vec<(String, ClientId, f64)> = {
            let mut v = Valuator::new(&self.ledger);
            self.procs()
                .into_iter()
                .map(|(name, id)| v.client_value(id).map(|value| (name, id, value)))
                .collect::<Result<_, _>>()?
        };
        weighted.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        let mut totals = vec![0.0f64; n];
        let count = weighted.len();
        for (_, id, value) in weighted {
            let lightest = (0..n)
                .min_by(|&a, &b| totals[a].total_cmp(&totals[b]))
                .expect("amount() rejects zero shards");
            self.ledger.assign_dirty_shard(id, lightest as u32);
            totals[lightest] += value;
        }
        Ok(format!("partitioned {count} processes across {n} shards"))
    }

    /// `shards [--json]`: per-shard process counts, ticket totals,
    /// compensation weight and share, and dirty-queue depths, plus the
    /// cumulative migration count. The compensation share is the shard's
    /// extra Section 4.5 weight over its total (compensated) client value —
    /// the fraction of the shard's pull on the lottery that is compensatory
    /// rather than funded.
    fn report_shards(&mut self, json: bool) -> Result<String, CtlError> {
        let n = self.ledger.dirty_shards();
        let procs = self.procs();
        let mut counts = vec![0u32; n];
        let mut totals = vec![0.0f64; n];
        {
            let mut v = Valuator::new(&self.ledger);
            for (_, id) in &procs {
                let value = v.client_value(*id)?;
                let shard = self.ledger.dirty_shard_of(*id) as usize;
                counts[shard] += 1;
                totals[shard] += value;
            }
        }
        let comp: Vec<f64> = (0..n)
            .map(|s| self.ledger.compensation_shard_weight(s as u32))
            .collect();
        let share = |s: usize| {
            if totals[s] > 0.0 {
                comp[s] / totals[s]
            } else {
                0.0
            }
        };
        let migrations = self.ledger.dirty_shard_reassignments();
        if json {
            let rows: Vec<String> = (0..n)
                .map(|s| {
                    format!(
                        "{{\"shard\":{s},\"procs\":{},\"tickets\":{},\"comp_weight\":{},\"compensation_share\":{},\"depth\":{}}}",
                        counts[s],
                        json::number(totals[s]),
                        json::number(comp[s]),
                        json::number(share(s)),
                        self.ledger.dirty_shard_depth(s as u32),
                    )
                })
                .collect();
            return Ok(format!(
                "{{\"shards\":[{}],\"migrations\":{migrations}}}",
                rows.join(",")
            ));
        }
        let mut out = format!(
            "{:<6} {:>6} {:>14} {:>12} {:>11} {:>12}\n",
            "shard", "procs", "tickets (base)", "comp weight", "comp share", "dirty depth"
        );
        for s in 0..n {
            let _ = writeln!(
                out,
                "{:<6} {:>6} {:>14.1} {:>12.1} {:>11.3} {:>12}",
                s,
                counts[s],
                totals[s],
                comp[s],
                share(s),
                self.ledger.dirty_shard_depth(s as u32),
            );
        }
        let _ = writeln!(out, "migrations: {migrations}");
        Ok(out)
    }

    /// `structure <kind>`: rebuild the chosen Section 4.2 winner-search
    /// structure over the session's active processes, draining the
    /// ledger's dirty queue (those clients are the stale set a scheduler
    /// would have to patch) and emitting a `StructureRebuild` probe event
    /// so the `stat` aggregator tracks rebuild counts and costs.
    fn switch_structure(&mut self, kind: StructureKind) -> Result<(), CtlError> {
        let start = Instant::now();
        let stale = self.ledger.drain_dirty_clients().len() as u32;
        // Read through the ledger's incremental cache (not a one-shot
        // `Valuator`): that is the scheduler read path, and warming the
        // cache is what arms dirty notifications for the next switch.
        let weighted: Vec<(ClientId, f64)> = {
            let mut rows = Vec::new();
            for (_, id) in self.procs() {
                if self.ledger.client(id)?.is_active() {
                    rows.push((id, self.ledger.cached_client_value(id)?));
                }
            }
            rows
        };
        let clients = weighted.len() as u32;
        let tickets = match kind {
            StructureKind::List => {
                let mut pool: ListLottery<ClientId, f64> = ListLottery::without_move_to_front();
                for &(id, w) in &weighted {
                    pool.insert(id, w);
                }
                pool.total()
            }
            StructureKind::Tree => {
                let mut pool: TreeLottery<ClientId, f64> =
                    TreeLottery::with_capacity(weighted.len());
                for &(id, w) in &weighted {
                    pool.insert(id, w);
                }
                pool.total()
            }
            StructureKind::Alias => {
                let mut pool: AliasLottery<ClientId> = AliasLottery::with_capacity(weighted.len());
                for &(id, w) in &weighted {
                    pool.insert(id, w);
                }
                pool.rebuild();
                let _ = pool.take_rebuild_events();
                pool.total()
            }
        };
        let rebuild_ns = start.elapsed().as_nanos() as u64;
        self.structure = kind;
        self.last_rebuild = Some(RebuildReport {
            clients,
            stale,
            rebuild_ns,
            tickets,
        });
        self.ledger
            .probe_bus()
            .emit(|| EventKind::StructureRebuild {
                structure: kind.name(),
                clients,
                stale,
                rebuild_ns,
            });
        Ok(())
    }

    /// `structure [--json]`: the active structure and what the last
    /// switch cost.
    fn report_structure(&self, json: bool) -> String {
        let name = self.structure.name();
        match &self.last_rebuild {
            Some(r) => {
                if json {
                    format!(
                        "{{\"structure\":\"{name}\",\"clients\":{},\"stale\":{},\
                         \"rebuild_ns\":{},\"tickets\":{}}}",
                        r.clients,
                        r.stale,
                        r.rebuild_ns,
                        json::number(r.tickets),
                    )
                } else {
                    format!(
                        "structure {name}: rebuilt over {} processes \
                         ({} stale drained, {:.1} base tickets) in {} ns",
                        r.clients, r.stale, r.tickets, r.rebuild_ns
                    )
                }
            }
            None => {
                if json {
                    format!("{{\"structure\":\"{name}\"}}")
                } else {
                    format!("structure {name}: no rebuild yet")
                }
            }
        }
    }

    /// `replay <file>`: load a recorded capture, re-execute it from its
    /// header, and diff the replayed stream against the recording.
    fn exec_replay(path: &str, json_out: bool) -> Result<String, CtlError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| CtlError::Replay(format!("{path}: {e}")))?;
        if lottery_obs::TraceSpec::sniff(&text) {
            return Self::exec_replay_trace(path, &text, json_out);
        }
        let log = lottery_obs::ReplayLog::from_jsonl(&text).map_err(CtlError::Replay)?;
        let header = log.header.clone();
        let recorded = log.events.len();
        let report = lottery_sim::replay::Replayer::new(log)
            .run()
            .map_err(CtlError::Replay)?;
        if json_out {
            let divergence = match &report.divergence {
                None => "null".to_string(),
                Some(d) => {
                    let side = |e: &Option<lottery_obs::Event>| {
                        e.as_ref().map_or("null".to_string(), |e| e.to_json())
                    };
                    format!(
                        "{{\"index\":{},\"recorded\":{},\"replayed\":{}}}",
                        d.index,
                        side(&d.recorded),
                        side(&d.replayed),
                    )
                }
            };
            return Ok(format!(
                "{{\"file\":\"{}\",\"seed\":{},\"structure\":\"{}\",\"shards\":{},\
                 \"recorded\":{},\"replayed\":{},\"bit_exact\":{},\"divergence\":{}}}",
                json::escape(path),
                header.seed,
                json::escape(&header.structure),
                header.shards,
                recorded,
                report.replayed.len(),
                report.bit_exact(),
                divergence,
            ));
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "capture {path}: seed={} structure={} shards={} compensation={} \
             quantum_us={} until_us={} events={recorded}",
            header.seed,
            header.structure,
            header.shards,
            header.compensation,
            header.quantum_us,
            header.until_us,
        );
        match &report.divergence {
            None => {
                let _ = write!(out, "replay: bit-exact ({} events)", report.replayed.len());
            }
            Some(d) => {
                let side = |e: &Option<lottery_obs::Event>| {
                    e.as_ref()
                        .map_or("<stream ended>".to_string(), |e| e.to_json())
                };
                let _ = writeln!(out, "replay: DIVERGED at event {}", d.index);
                let _ = writeln!(out, "  recorded: {}", side(&d.recorded));
                let _ = write!(out, "  replayed: {}", side(&d.replayed));
            }
        }
        Ok(out)
    }

    /// `replay <trace-file>`: the file is an external workload trace
    /// (`TraceSpec` JSONL), not a capture — record it under the default
    /// configuration, self-replay, and diff, so external corpora become
    /// replayable captures in one step.
    fn exec_replay_trace(path: &str, text: &str, json_out: bool) -> Result<String, CtlError> {
        let spec = lottery_obs::TraceSpec::from_jsonl(text)
            .map_err(|e| CtlError::Replay(format!("{path}: {e}")))?;
        let (currencies, jobs) = (spec.currencies.len(), spec.jobs.len());
        let config = lottery_sim::replay::CaptureConfig::default();
        let log = lottery_sim::replay::record(spec, &config).map_err(CtlError::Replay)?;
        let header = log.header.clone();
        let captured = log.events.len();
        let report = lottery_sim::replay::Replayer::new(log)
            .run()
            .map_err(CtlError::Replay)?;
        if json_out {
            return Ok(format!(
                "{{\"file\":\"{}\",\"trace\":true,\"currencies\":{},\"jobs\":{},\
                 \"seed\":{},\"structure\":\"{}\",\"shards\":{},\"captured\":{},\
                 \"bit_exact\":{}}}",
                json::escape(path),
                currencies,
                jobs,
                header.seed,
                json::escape(&header.structure),
                header.shards,
                captured,
                report.bit_exact(),
            ));
        }
        Ok(format!(
            "trace {path}: {currencies} currencies, {jobs} jobs\n\
             captured {captured} events (seed={} structure={} shards={} until_us={})\n\
             self-replay: {}",
            header.seed,
            header.structure,
            header.shards,
            header.until_us,
            if report.bit_exact() {
                "bit-exact".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ))
    }

    /// `cluster [<nodes>]`: the canned cluster-market scenario — a 2:1
    /// tenant pair saturating every node under demand-following budgets,
    /// with the last node killed mid-run so the report shows loss
    /// detection, inverse-lottery reclaim, and conservation.
    /// `events [--json]`: a canned event-driven kernel window. Three
    /// runnable jobs (18 ms of CPU between them) and five far-future
    /// sleepers run for a 10 ms window at a 1 ms quantum; the report
    /// shows the pending-event queue the refactored core schedules
    /// from — depth, the next-event instant, and the horizon to it —
    /// alongside the decision count, which the sleepers never touch.
    fn exec_events(json_out: bool) -> String {
        use lottery_sim::prelude::*;

        let policy = LotteryPolicy::with_quantum(42, SimDuration::from_ms(1));
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        for (i, (tickets, ms)) in [(300u64, 4u64), (200, 6), (100, 8)].iter().enumerate() {
            kernel.spawn(
                format!("job-{i}"),
                Box::new(FiniteJob::new(SimDuration::from_ms(*ms))),
                FundingSpec::new(base, *tickets),
            );
        }
        for i in 0..5u64 {
            kernel.spawn_sleeping(
                format!("sleeper-{i}"),
                Box::new(FiniteJob::new(SimDuration::from_ms(1))),
                FundingSpec::new(base, 50),
                SimTime::from_ms(20 + 5 * i),
            );
        }
        kernel.run_until(SimTime::from_ms(10));

        let now_us = kernel.now().as_us();
        let depth = kernel.pending_events();
        let next_us = kernel.next_event_at().map(|at| at.as_us());
        let horizon_us = next_us.map(|at| at - now_us);
        let decisions = kernel.metrics().decisions;
        let live = kernel.live_threads();
        if json_out {
            return format!(
                "{{\"mode\":\"event\",\"now_us\":{now_us},\"decisions\":{decisions},\
                 \"live_threads\":{live},\"depth\":{depth},\"next_us\":{},\"horizon_us\":{}}}",
                next_us.map_or("null".to_string(), |v| v.to_string()),
                horizon_us.map_or("null".to_string(), |v| v.to_string()),
            );
        }
        let mut out =
            format!("event queue after a 10 ms window (1 ms quantum, {live} live threads)\n");
        let _ = writeln!(out, "now            {now_us:>8} us");
        let _ = writeln!(out, "decisions      {decisions:>8}");
        let _ = writeln!(out, "pending events {depth:>8}");
        match (next_us, horizon_us) {
            (Some(next), Some(h)) => {
                let _ = writeln!(out, "next event at  {next:>8} us (horizon {h} us)");
            }
            _ => {
                let _ = writeln!(out, "next event at      none (queue empty)");
            }
        }
        out
    }

    /// `par [<workers>]`: the canned real-thread scenario. Every shard
    /// gets a 300-ticket and a 100-ticket compute thread (least-loaded
    /// placement deals the heavy group first, then the light group), plus
    /// one heavily funded job that exits 6 ms in, destroying its funding.
    /// Work stealing is on; the report shows per-worker decisions and
    /// steal traffic (zero here — every shard keeps its pair, so none
    /// runs dry; the `par` experiment forces the dry case), the roughly
    /// 3:1 machine-wide dispatch ratio, and the surviving ledger value.
    fn exec_par(workers: u32, json_out: bool) -> String {
        use lottery_par::{ParKernel, WorkSpec};
        use lottery_sim::prelude::*;

        let mut kernel = ParKernel::with_quantum(42, workers, SimDuration::from_ms(5));
        let base = kernel.base_currency();
        for _ in 0..workers {
            kernel.spawn(WorkSpec::Compute, FundingSpec::new(base, 300));
        }
        for _ in 0..workers {
            kernel.spawn(WorkSpec::Compute, FundingSpec::new(base, 100));
        }
        kernel.spawn(
            WorkSpec::Finite(SimDuration::from_ms(6)),
            FundingSpec::new(base, 1_000),
        );
        let report = kernel.run(SimTime::ZERO + SimDuration::from_secs(2));
        let (mut heavy, mut light) = (0u64, 0u64);
        for worker in &report.workers {
            for &(_, tid) in &worker.winners {
                if tid < workers {
                    heavy += 1;
                } else if tid < 2 * workers {
                    light += 1;
                }
            }
        }
        let ratio = heavy as f64 / light.max(1) as f64;
        let decisions = report.decisions();
        let steals = report.steals();
        let value = report.client_value_total();
        if json_out {
            return format!(
                "{{\"workers\":{workers},\"decisions\":{decisions},\"steals\":{steals},\
                 \"ratio\":{ratio:.2},\"heavy\":{heavy},\"light\":{light},\
                 \"value\":{value:.1}}}"
            );
        }
        let mut out = format!(
            "real-thread run: {workers} OS workers, 2 s window, 5 ms quantum \
             ({decisions} decisions, {steals} steals)\n"
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>10} {:>9}",
            "worker", "decisions", "steals-in", "steals-out", "resident"
        );
        for worker in &report.workers {
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>10} {:>10} {:>9}",
                worker.id,
                worker.decisions,
                worker.steals_in,
                worker.steals_out,
                worker.resident.len(),
            );
        }
        let _ = writeln!(
            out,
            "3:1 funded compute pairs: {heavy} heavy vs {light} light dispatches \
             (ratio {ratio:.2})"
        );
        let _ = writeln!(out, "surviving ledger value {value:.1} (base units)");
        out
    }

    fn exec_cluster(nodes: u32, json_out: bool) -> Result<String, CtlError> {
        use lottery_cluster::{BudgetPolicy, ClusterMarket, LOSS_TIMEOUT_ROUNDS};
        let mut market = ClusterMarket::new(
            nodes,
            42,
            BudgetPolicy::DemandFollowing,
            &[("gold", 2000), ("silver", 1000)],
        )
        .map_err(CtlError::Ledger)?;
        let saturate = |m: &mut ClusterMarket| {
            for node in 0..m.node_count() {
                m.offer(node, 0, 6, 6);
                m.offer(node, 1, 3, 3);
            }
        };
        for _ in 0..12 {
            saturate(&mut market);
            market.round(4).map_err(CtlError::Ledger)?;
        }
        if nodes > 1 {
            market.kill(nodes - 1);
        }
        for _ in 0..(LOSS_TIMEOUT_ROUNDS + 10) {
            saturate(&mut market);
            market.round(4).map_err(CtlError::Ledger)?;
        }
        let report = market.report();
        let share_row = |tenant: u32| report.shares.tenants.iter().find(|t| t.tenant == tenant);
        if json_out {
            let tenants: Vec<String> = report
                .tenants
                .iter()
                .map(|t| {
                    let (dominant_share, dominant_resource, complaint) = share_row(t.tenant)
                        .map(|s| (s.dominant_share, s.dominant_resource, s.complaint))
                        .unwrap_or((0.0, "none", false));
                    format!(
                        "{{\"tenant\":{},\"name\":\"{}\",\"grant\":{},\"entitled_share\":{},\
                         \"dominant_share\":{},\"dominant_resource\":\"{}\",\"complaint\":{},\
                         \"disk_units\":{},\"net_units\":{}}}",
                        t.tenant,
                        json::escape(&t.name),
                        t.grant,
                        json::number(t.entitled_share),
                        json::number(dominant_share),
                        json::escape(dominant_resource),
                        complaint,
                        t.usage[1],
                        t.usage[3],
                    )
                })
                .collect();
            let allocs: Vec<String> = report
                .allocs
                .iter()
                .map(|a| {
                    format!(
                        "{{\"tenant\":{},\"node\":{},\"alloc\":{},\"node_grant\":{},\
                         \"backlog\":{}}}",
                        a.tenant, a.node, a.alloc, a.node_grant, a.backlog
                    )
                })
                .collect();
            return Ok(format!(
                "{{\"nodes\":{},\"reachable\":{},\"round\":{},\"policy\":\"{}\",\
                 \"conserved\":{},\"moves\":{},\"heals\":{},\"dropped\":{},\
                 \"tenants\":[{}],\"allocs\":[{}]}}",
                report.nodes,
                report.reachable,
                report.round,
                json::escape(report.policy),
                report.conserved,
                report.moves,
                report.heals,
                report.dropped,
                tenants.join(","),
                allocs.join(","),
            ));
        }
        let mut out = format!(
            "cluster: {} nodes ({} reachable), {} rounds, {} policy\n",
            report.nodes, report.reachable, report.round, report.policy
        );
        let _ = writeln!(
            out,
            "grant moves={} heals={} dropped={} conserved={}",
            report.moves,
            report.heals,
            report.dropped,
            if report.conserved { "yes" } else { "NO" }
        );
        for t in &report.tenants {
            let allocs: Vec<String> = report
                .allocs
                .iter()
                .filter(|a| a.tenant == t.tenant)
                .map(|a| format!("n{}={}", a.node, a.alloc))
                .collect();
            let dominant = share_row(t.tenant)
                .map(|s| format!("{:.3} ({})", s.dominant_share, s.dominant_resource))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "tenant {} grant={} entitled={:.3} dominant={} alloc[{}] disk={} net={}",
                t.name,
                t.grant,
                t.entitled_share,
                dominant,
                allocs.join(" "),
                t.usage[1],
                t.usage[3],
            );
        }
        Ok(out)
    }

    /// Resolves a tenant name against the session broker.
    fn broker_tenant(broker: &ResourceBroker, name: &str) -> Result<TenantId, CtlError> {
        broker
            .find_tenant(name)
            .ok_or_else(|| CtlError::UnknownName(name.to_string()))
    }

    /// Parses a resource tag, surfacing bad tags as unknown names.
    fn broker_resource(tag: &str) -> Result<Resource, CtlError> {
        Resource::parse(tag).ok_or_else(|| CtlError::UnknownName(tag.to_string()))
    }

    /// `broker …`: register tenants, record demand/usage, rebalance, and
    /// report per-tenant per-resource funding and observed shares.
    fn exec_broker(&mut self, action: BrokerAction) -> Result<String, CtlError> {
        match action {
            BrokerAction::Tenant {
                name,
                grant,
                refund,
            } => {
                let broker = self.broker.get_or_insert_with(ResourceBroker::new);
                if broker.find_tenant(&name).is_some() {
                    return Err(CtlError::NameTaken(name));
                }
                let policy = if refund {
                    SplitPolicy::even()
                } else {
                    SplitPolicy::Static([1; 4])
                };
                broker.register_tenant(name.clone(), grant, policy)?;
                Ok(format!(
                    "registered tenant {name}: {grant} base tickets split over \
                     cpu/disk/mem/net ({} split)",
                    if refund { "demand-refund" } else { "static" }
                ))
            }
            BrokerAction::Demand {
                tenant,
                resource,
                units,
            } => {
                let resource = Self::broker_resource(&resource)?;
                let broker = self.broker.get_or_insert_with(ResourceBroker::new);
                let id = Self::broker_tenant(broker, &tenant)?;
                broker.record_demand(id, resource, units);
                Ok(format!(
                    "recorded {units} demand for {tenant} on {}",
                    resource.name()
                ))
            }
            BrokerAction::Use {
                tenant,
                resource,
                units,
            } => {
                let resource = Self::broker_resource(&resource)?;
                let broker = self.broker.get_or_insert_with(ResourceBroker::new);
                let id = Self::broker_tenant(broker, &tenant)?;
                broker.record_usage(id, resource, units);
                Ok(format!(
                    "recorded {units} usage for {tenant} on {}",
                    resource.name()
                ))
            }
            BrokerAction::Rebalance => {
                let broker = self.broker.get_or_insert_with(ResourceBroker::new);
                broker.rebalance()?;
                Ok(format!("rebalanced ({} refunds so far)", broker.refunds()))
            }
            BrokerAction::Report { json } => self.report_broker(json),
        }
    }

    /// `broker [--json]`: per-tenant per-resource funding weights and
    /// observed usage shares, with each tenant's dominant share.
    fn report_broker(&mut self, json: bool) -> Result<String, CtlError> {
        let broker = self.broker.get_or_insert_with(ResourceBroker::new);
        let report = broker.report();
        if json {
            let tenants: Vec<String> = report
                .tenants
                .iter()
                .map(|t| {
                    format!(
                        "{{\"tenant\":{},\"name\":\"{}\",\"grant\":{},\"entitled_share\":{},\
                         \"dominant_share\":{},\"dominant_resource\":\"{}\"}}",
                        t.tenant,
                        json::escape(&t.name),
                        t.grant,
                        json::number(t.entitled_share),
                        json::number(t.dominant_share),
                        json::escape(t.dominant_resource),
                    )
                })
                .collect();
            let rows: Vec<String> = report
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "{{\"tenant\":{},\"resource\":\"{}\",\"funded\":{},\"weight\":{},\
                         \"weight_share\":{},\"usage\":{},\"observed_share\":{}}}",
                        r.tenant,
                        json::escape(r.resource),
                        r.funded,
                        json::number(r.weight),
                        json::number(r.weight_share),
                        r.usage,
                        json::number(r.observed_share),
                    )
                })
                .collect();
            return Ok(format!(
                "{{\"raw\":{},\"tenants\":[{}],\"resources\":[{}]}}",
                report.raw,
                tenants.join(","),
                rows.join(",")
            ));
        }
        let mut out = format!(
            "{:<12} {:<8} {:>6} {:>10} {:>8} {:>10} {:>9}\n",
            "tenant", "resource", "funded", "weight", "share", "usage", "observed"
        );
        for r in &report.rows {
            let name = report
                .tenants
                .iter()
                .find(|t| t.tenant == r.tenant)
                .map(|t| t.name.as_str())
                .unwrap_or("?");
            let _ = writeln!(
                out,
                "{:<12} {:<8} {:>6} {:>10.1} {:>8.3} {:>10} {:>9.3}",
                name,
                r.resource,
                if r.funded { "yes" } else { "no" },
                r.weight,
                r.weight_share,
                r.usage,
                r.observed_share,
            );
        }
        for t in &report.tenants {
            let _ = writeln!(
                out,
                "tenant {} grant={} entitled={:.3} dominant={:.3} ({})",
                t.name, t.grant, t.entitled_share, t.dominant_share, t.dominant_resource
            );
        }
        Ok(out)
    }

    fn name_of(&self, obj: ObjectRef) -> String {
        self.names
            .iter()
            .find(|(_, &o)| o == obj)
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| "?".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(s: &mut Session, line: &str) -> String {
        s.eval(line).unwrap_or_else(|e| panic!("{line}: {e}"))
    }

    #[test]
    fn figure3_via_commands() {
        let mut s = Session::new();
        for line in [
            "mkcur alice",
            "mkcur bob",
            "mktkt a_back 1000 base",
            "mktkt b_back 2000 base",
            "fund a_back alice",
            "fund b_back bob",
            "mkcur task2",
            "mktkt t2_back 200 alice",
            "fund t2_back task2",
            "fundx 200 task2 thread2",
            "fundx 300 task2 thread3",
            "fundx 100 bob thread4",
        ] {
            eval(&mut s, line);
        }
        assert_eq!(eval(&mut s, "value thread2"), "400.0");
        assert_eq!(eval(&mut s, "value thread3"), "600.0");
        assert_eq!(eval(&mut s, "value thread4"), "2000.0");
        let ls = eval(&mut s, "lscur");
        assert!(ls.contains("alice"), "{ls}");
        let lp = eval(&mut s, "lsproc");
        assert!(lp.contains("thread2"), "{lp}");
    }

    #[test]
    fn lstkt_filters_by_currency() {
        let mut s = Session::new();
        eval(&mut s, "mkcur work");
        eval(&mut s, "mktkt wb 10 base");
        eval(&mut s, "fund wb work");
        eval(&mut s, "mktkt t1 5 work");
        eval(&mut s, "mktkt t2 7 base");
        let all = eval(&mut s, "lstkt");
        assert!(all.contains("t1") && all.contains("t2"));
        let filtered = eval(&mut s, "lstkt work");
        assert!(
            filtered.contains("t1") && !filtered.contains("t2"),
            "{filtered}"
        );
    }

    #[test]
    fn unfund_and_rmtkt() {
        let mut s = Session::new();
        eval(&mut s, "mkproc p");
        eval(&mut s, "mktkt t 50 base");
        eval(&mut s, "fund t p");
        eval(&mut s, "activate p");
        assert_eq!(eval(&mut s, "value p"), "50.0");
        eval(&mut s, "unfund t");
        assert_eq!(eval(&mut s, "value p"), "0.0");
        eval(&mut s, "rmtkt t");
        assert!(matches!(s.eval("value t"), Err(CtlError::UnknownName(_))));
    }

    #[test]
    fn restricted_currency_blocks_other_principals() {
        let mut root = Session::new();
        root.eval("mkcur -r locked").unwrap();
        // Root can always issue.
        assert!(root.eval("mktkt t 5 locked").is_ok());

        let mut user = Session::with_principal(Principal(7));
        user.eval("mkcur -r mine").unwrap();
        // The creator principal may issue in its own restricted currency.
        assert!(user.eval("mktkt t 5 mine").is_ok());
        // But not in a currency restricted to someone else.
        let mut other = Session::with_principal(Principal(9));
        other.eval("mkcur open").unwrap();
        // Simulate: rebuild the scenario in one session by checking the
        // ledger error path through a restricted currency created by a
        // different principal.
        let mut s = Session::with_principal(Principal(9));
        s.eval("mkcur -r notmine").unwrap();
        // Switch principal mid-session is not a feature; assert at the
        // ledger level instead.
        let cur = match s.lookup("notmine") {
            Some(ObjectRef::Currency(c)) => c,
            _ => unreachable!(),
        };
        assert!(s
            .ledger()
            .currency(cur)
            .unwrap()
            .policy()
            .permits(Principal(9)));
        assert!(!s
            .ledger()
            .currency(cur)
            .unwrap()
            .policy()
            .permits(Principal(8)));
    }

    #[test]
    fn name_collisions_rejected() {
        let mut s = Session::new();
        eval(&mut s, "mkcur x");
        assert!(matches!(s.eval("mkproc x"), Err(CtlError::NameTaken(_))));
    }

    #[test]
    fn wrong_kind_reported() {
        let mut s = Session::new();
        eval(&mut s, "mkproc p");
        assert!(matches!(s.eval("rmcur p"), Err(CtlError::WrongKind { .. })));
        assert!(matches!(
            s.eval("fund p base"),
            Err(CtlError::WrongKind { .. })
        ));
    }

    #[test]
    fn rmcur_in_use_is_ledger_error() {
        let mut s = Session::new();
        eval(&mut s, "mkcur c");
        eval(&mut s, "mktkt t 5 c");
        assert!(matches!(s.eval("rmcur c"), Err(CtlError::Ledger(_))));
        eval(&mut s, "rmtkt t");
        eval(&mut s, "rmcur c");
    }

    #[test]
    fn rmproc_destroys_funding() {
        let mut s = Session::new();
        eval(&mut s, "fundx 100 base worker");
        let before = s.ledger().tickets().count();
        assert_eq!(before, 1);
        eval(&mut s, "rmproc worker");
        assert_eq!(s.ledger().tickets().count(), 0);
    }

    #[test]
    fn help_and_blank_lines() {
        let mut s = Session::new();
        assert!(eval(&mut s, "help").contains("mktkt"));
        assert_eq!(eval(&mut s, ""), "");
        assert_eq!(eval(&mut s, "  # a comment"), "");
    }

    #[test]
    fn errors_display() {
        let e = CtlError::UnknownName("x".into());
        assert!(e.to_string().contains("x"));
        let e = CtlError::Ledger(lottery_core::errors::LotteryError::CurrencyCycle);
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn stat_counts_ledger_ops() {
        let mut s = Session::new();
        eval(&mut s, "mkcur alice");
        eval(&mut s, "mktkt a 100 base");
        eval(&mut s, "fund a alice");
        let stat = eval(&mut s, "stat");
        assert!(
            stat.contains("lottery_ledger_ops_total{op=\"create-currency\"} 1"),
            "{stat}"
        );
        assert!(
            stat.contains("lottery_ledger_ops_total{op=\"issue\"} 1"),
            "{stat}"
        );
        assert!(
            stat.contains("lottery_ledger_ops_total{op=\"fund-currency\"} 1"),
            "{stat}"
        );
    }

    #[test]
    fn trace_dump_round_trips_jsonl() {
        let mut s = Session::new();
        eval(&mut s, "mkcur alice");
        // Nothing is retained before tracing is enabled.
        assert_eq!(eval(&mut s, "dump"), "");
        assert!(eval(&mut s, "trace on").contains("tracing on"));
        eval(&mut s, "mktkt a 100 base");
        eval(&mut s, "fund a alice");
        let dump = eval(&mut s, "dump");
        assert!(!dump.is_empty());
        for line in dump.lines() {
            let v = lottery_obs::json::parse(line).expect("dump line parses");
            assert!(v.get("kind").is_some(), "{line}");
        }
        assert!(dump.contains("\"issue\""), "{dump}");
        // `trace off` stops feeding the ring; the retained events remain.
        assert_eq!(eval(&mut s, "trace off"), "tracing off");
        let before = eval(&mut s, "dump");
        eval(&mut s, "mkcur bob");
        assert_eq!(eval(&mut s, "dump"), before);
    }

    #[test]
    fn lscur_json_parses_and_matches_values() {
        let mut s = Session::new();
        eval(&mut s, "mkcur alice");
        eval(&mut s, "mktkt a 1000 base");
        eval(&mut s, "fund a alice");
        eval(&mut s, "fundx 200 alice worker");
        let out = eval(&mut s, "lscur --json");
        let v = lottery_obs::json::parse(&out).expect("lscur --json parses");
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let alice = rows
            .iter()
            .find(|r| r.get("currency").and_then(|c| c.as_str()) == Some("alice"))
            .unwrap();
        // The JSON path reports the same valuation the `value` verb does.
        let expected: f64 = eval(&mut s, "value alice").parse().unwrap();
        assert_eq!(alice.get("value").and_then(|x| x.as_f64()), Some(expected));
        assert_eq!(alice.get("active").and_then(|x| x.as_f64()), Some(200.0));
    }

    #[test]
    fn shards_partitions_by_ticket_weight() {
        let mut s = Session::new();
        eval(&mut s, "fundx 400 base heavy");
        eval(&mut s, "fundx 200 base mid");
        eval(&mut s, "fundx 100 base light1");
        eval(&mut s, "fundx 100 base light2");
        assert_eq!(
            eval(&mut s, "shards 2"),
            "partitioned 4 processes across 2 shards"
        );
        // Greedy balance: 400 alone, 200+100+100 together.
        let report = eval(&mut s, "shards");
        assert!(report.contains("400.0"), "{report}");
        assert!(report.contains("migrations: 0"), "{report}");
        let out = eval(&mut s, "shards --json");
        let v = lottery_obs::json::parse(&out).expect("shards --json parses");
        let rows = v.get("shards").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let totals: Vec<f64> = rows
            .iter()
            .map(|r| r.get("tickets").and_then(|t| t.as_f64()).unwrap())
            .collect();
        let mut sorted = totals.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![400.0, 400.0]);
        for r in rows {
            assert_eq!(r.get("comp_weight").and_then(|x| x.as_f64()), Some(0.0));
            assert_eq!(
                r.get("compensation_share").and_then(|x| x.as_f64()),
                Some(0.0)
            );
        }
        // Re-partitioning moves already-assigned processes: the ledger
        // counts those as migrations.
        eval(&mut s, "shards 4");
        let report = eval(&mut s, "shards");
        assert!(!report.contains("migrations: 0"), "{report}");
    }

    #[test]
    fn compensate_reports_shard_share() {
        let mut s = Session::new();
        eval(&mut s, "fundx 300 base io");
        eval(&mut s, "fundx 300 base hog");
        eval(&mut s, "shards 2");
        // A 20ms quantum used for 5ms: factor 4, extra weight 3x the
        // process's 300-base value on whichever shard homes it, so that
        // shard's compensated total is 1200 and 900/1200 of its lottery
        // pull is compensatory.
        assert_eq!(
            eval(&mut s, "compensate io 5000 20000"),
            "process io compensated 4.00x"
        );
        let out = eval(&mut s, "shards --json");
        let v = lottery_obs::json::parse(&out).expect("shards --json parses");
        let rows = v.get("shards").unwrap().as_array().unwrap();
        let weights: Vec<f64> = rows
            .iter()
            .map(|r| r.get("comp_weight").and_then(|x| x.as_f64()).unwrap())
            .collect();
        let shares: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.get("compensation_share")
                    .and_then(|x| x.as_f64())
                    .unwrap()
            })
            .collect();
        let mut w = weights.clone();
        w.sort_by(f64::total_cmp);
        assert_eq!(w, vec![0.0, 900.0], "{out}");
        // Extra 900 over the shard's compensated total 1200: share 0.75.
        assert!(shares.iter().any(|&x| (x - 0.75).abs() < 1e-9), "{out}");
        let table = eval(&mut s, "shards");
        assert!(table.contains("comp share"), "{table}");
        assert!(table.contains("900.0"), "{table}");
        // Equal used/quantum clears the factor and the shard weight.
        assert_eq!(
            eval(&mut s, "compensate io 20000 20000"),
            "process io compensation cleared"
        );
        let out = eval(&mut s, "shards --json");
        assert!(!out.contains("900"), "{out}");
    }

    #[test]
    fn broker_verbs_report_funding_and_dominant_share() {
        let mut s = Session::new();
        eval(&mut s, "broker tenant gold 2000");
        eval(&mut s, "broker tenant silver 1000");
        eval(&mut s, "broker use gold disk 800");
        eval(&mut s, "broker use silver disk 400");
        eval(&mut s, "broker use gold cpu 100");
        let text = eval(&mut s, "broker");
        assert!(text.contains("gold"), "{text}");
        assert!(text.contains("dominant"), "{text}");

        let out = eval(&mut s, "broker --json");
        assert!(out.contains("\"dominant_share\":"), "{out}");
        let v = lottery_obs::json::parse(&out).expect("broker --json parses");
        let tenants = v.get("tenants").and_then(|t| t.as_array()).unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(
            tenants[0].get("name").and_then(|n| n.as_str()),
            Some("gold")
        );
        // Gold's dominant share: 800 of 1200 disk units and 100 of 100
        // cpu units -> cpu at 1.0 dominates.
        assert_eq!(
            tenants[0].get("dominant_resource").and_then(|r| r.as_str()),
            Some("cpu")
        );
        let rows = v.get("resources").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 8);
        let gold_disk = rows
            .iter()
            .find(|r| {
                r.get("resource").and_then(|x| x.as_str()) == Some("disk")
                    && r.get("tenant").and_then(|t| t.as_f64()) == Some(0.0)
            })
            .unwrap();
        let share = gold_disk
            .get("observed_share")
            .and_then(|x| x.as_f64())
            .unwrap();
        assert!((share - 800.0 / 1200.0).abs() < 1e-9, "{share}");
    }

    #[test]
    fn broker_rebalance_refunds_idle_resources() {
        let mut s = Session::new();
        eval(&mut s, "broker tenant gold 2000");
        eval(&mut s, "broker tenant silver 1000");
        // Silver demands everything but net; rebalance refunds its net
        // share back to the grant, re-pricing the active resources.
        for r in ["cpu", "disk", "mem"] {
            eval(&mut s, &format!("broker demand silver {r} 1"));
        }
        for r in ["cpu", "disk", "mem", "net"] {
            eval(&mut s, &format!("broker demand gold {r} 1"));
        }
        let out = eval(&mut s, "broker rebalance");
        assert!(out.contains("1 refunds"), "{out}");
        let v = lottery_obs::json::parse(&eval(&mut s, "broker --json")).unwrap();
        let rows = v.get("resources").and_then(|r| r.as_array()).unwrap();
        let silver_net = rows
            .iter()
            .find(|r| {
                r.get("resource").and_then(|x| x.as_str()) == Some("net")
                    && r.get("tenant").and_then(|t| t.as_f64()) == Some(1.0)
            })
            .unwrap();
        assert_eq!(
            silver_net.get("funded"),
            Some(&lottery_obs::json::Value::Bool(false))
        );
        let silver_cpu = rows
            .iter()
            .find(|r| {
                r.get("resource").and_then(|x| x.as_str()) == Some("cpu")
                    && r.get("tenant").and_then(|t| t.as_f64()) == Some(1.0)
            })
            .unwrap();
        let w = silver_cpu.get("weight").and_then(|x| x.as_f64()).unwrap();
        assert!((w - 1000.0 / 3.0).abs() < 1e-6, "{w}");
    }

    #[test]
    fn broker_rejects_bad_names() {
        let mut s = Session::new();
        eval(&mut s, "broker tenant gold 2000");
        assert!(matches!(
            s.eval("broker tenant gold 500"),
            Err(CtlError::NameTaken(_))
        ));
        assert!(matches!(
            s.eval("broker use nobody cpu 1"),
            Err(CtlError::UnknownName(_))
        ));
        assert!(matches!(
            s.eval("broker use gold tape 1"),
            Err(CtlError::UnknownName(_))
        ));
    }

    #[test]
    fn structure_verb_switches_and_reports() {
        let mut s = Session::new();
        assert_eq!(eval(&mut s, "structure"), "structure list: no rebuild yet");
        eval(&mut s, "fundx 300 base a");
        eval(&mut s, "fundx 100 base b");
        let out = eval(&mut s, "structure alias");
        assert!(out.contains("structure alias"), "{out}");
        assert!(out.contains("2 processes"), "{out}");
        assert!(out.contains("400.0 base tickets"), "{out}");
        // Funding churn between switches lands in the dirty queue; the
        // next rebuild drains it as the stale set.
        eval(&mut s, "mktkt extra 100 base");
        eval(&mut s, "fund extra a");
        let out = eval(&mut s, "structure tree --json");
        let v = lottery_obs::json::parse(&out).expect("structure --json parses");
        assert_eq!(
            v.get("structure").and_then(|x| x.as_str()),
            Some("tree"),
            "{out}"
        );
        assert_eq!(v.get("clients").and_then(|x| x.as_f64()), Some(2.0));
        assert!(
            v.get("stale").and_then(|x| x.as_f64()).unwrap() >= 1.0,
            "{out}"
        );
        assert!(
            v.get("rebuild_ns").and_then(|x| x.as_f64()).unwrap() > 0.0,
            "{out}"
        );
        // A bare report repeats the last rebuild without redoing it.
        assert_eq!(eval(&mut s, "structure --json"), out);
        // Both switches were counted by the session aggregator.
        let stat = eval(&mut s, "stat");
        assert!(
            stat.contains("lottery_structure_rebuilds_total 2"),
            "{stat}"
        );
        assert!(stat.contains("lottery_structure_rebuild_ns_mean"), "{stat}");
    }

    #[test]
    fn lstkt_json_respects_filter() {
        let mut s = Session::new();
        eval(&mut s, "mkcur work");
        eval(&mut s, "mktkt wb 10 base");
        eval(&mut s, "fund wb work");
        eval(&mut s, "mktkt t1 5 work");
        let out = eval(&mut s, "lstkt work --json");
        let v = lottery_obs::json::parse(&out).expect("lstkt --json parses");
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("ticket").and_then(|t| t.as_str()), Some("t1"));
        assert_eq!(rows[0].get("funds").and_then(|f| f.as_str()), Some("-"));
    }

    /// Records a tiny two-tenant capture and writes it next to `target/`.
    fn capture_file(name: &str, tamper: bool) -> std::path::PathBuf {
        use lottery_obs::{CurrencySnapshot, TraceJob, TraceSpec};
        use lottery_sim::replay::{record, CaptureConfig};
        let spec = TraceSpec {
            currencies: vec![CurrencySnapshot {
                name: "web".to_string(),
                amount: 300,
            }],
            jobs: vec![
                TraceJob {
                    arrival_us: 0,
                    service_us: 4_000,
                    sleep_us: 0,
                    tenant: "web".to_string(),
                    tickets: 200,
                },
                TraceJob {
                    arrival_us: 1_500,
                    service_us: 3_000,
                    sleep_us: 1_000,
                    tenant: "base".to_string(),
                    tickets: 100,
                },
            ],
        };
        let config = CaptureConfig {
            quantum_us: 1_000,
            until_us: 50_000,
            ..CaptureConfig::default()
        };
        let mut log = record(spec, &config).expect("capture records");
        if tamper {
            let at = log.events.len() / 2;
            log.events[at].time_us += 3;
        }
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, log.to_jsonl()).expect("capture writes");
        path
    }

    #[test]
    fn replay_verb_confirms_bit_exact_capture() {
        let path = capture_file("lotteryctl-replay-exact.jsonl", false);
        let mut s = Session::new();
        let out = eval(&mut s, &format!("replay {}", path.display()));
        assert!(out.contains("replay: bit-exact"), "{out}");
        assert!(out.contains("structure=list shards=0"), "{out}");
        let out = eval(&mut s, &format!("replay {} --json", path.display()));
        let v = lottery_obs::json::parse(&out).expect("replay --json parses");
        assert_eq!(v.get("bit_exact").and_then(|b| b.as_bool()), Some(true));
        assert!(
            matches!(v.get("divergence"), Some(json::Value::Null)),
            "{out}"
        );
        assert_eq!(
            v.get("recorded").and_then(|n| n.as_f64()),
            v.get("replayed").and_then(|n| n.as_f64()),
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn replay_verb_reports_divergence_with_both_sides() {
        let path = capture_file("lotteryctl-replay-diverged.jsonl", true);
        let mut s = Session::new();
        let out = eval(&mut s, &format!("replay {}", path.display()));
        assert!(out.contains("replay: DIVERGED at event"), "{out}");
        assert!(out.contains("recorded:"), "{out}");
        assert!(out.contains("replayed:"), "{out}");
        let out = eval(&mut s, &format!("replay {} --json", path.display()));
        let v = lottery_obs::json::parse(&out).expect("replay --json parses");
        assert_eq!(v.get("bit_exact").and_then(|b| b.as_bool()), Some(false));
        let d = v.get("divergence").expect("divergence present");
        assert!(d.get("index").and_then(|i| i.as_f64()).is_some(), "{out}");
        assert!(d.get("recorded").unwrap().get("kind").is_some(), "{out}");
        assert!(d.get("replayed").unwrap().get("kind").is_some(), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn replay_verb_accepts_external_trace_files() {
        use lottery_obs::{CurrencySnapshot, TraceJob, TraceSpec};
        let spec = TraceSpec {
            currencies: vec![CurrencySnapshot {
                name: "web".to_string(),
                amount: 300,
            }],
            jobs: vec![
                TraceJob {
                    arrival_us: 0,
                    service_us: 4_000,
                    sleep_us: 0,
                    tenant: "web".to_string(),
                    tickets: 200,
                },
                TraceJob {
                    arrival_us: 1_500,
                    service_us: 3_000,
                    sleep_us: 1_000,
                    tenant: "base".to_string(),
                    tickets: 100,
                },
            ],
        };
        let path = std::env::temp_dir().join("lotteryctl-trace-corpus.jsonl");
        std::fs::write(&path, spec.to_jsonl()).unwrap();
        let mut s = Session::new();
        let out = eval(&mut s, &format!("replay {}", path.display()));
        assert!(out.contains("trace"), "{out}");
        assert!(out.contains("1 currencies, 2 jobs"), "{out}");
        assert!(out.contains("self-replay: bit-exact"), "{out}");
        let out = eval(&mut s, &format!("replay {} --json", path.display()));
        let v = lottery_obs::json::parse(&out).expect("trace replay --json parses");
        assert_eq!(v.get("trace").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(v.get("jobs").and_then(|n| n.as_f64()), Some(2.0));
        assert_eq!(v.get("bit_exact").and_then(|b| b.as_bool()), Some(true));
        assert!(v.get("captured").and_then(|n| n.as_f64()).unwrap() > 0.0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn events_verb_reports_queue_depth_and_horizon() {
        let mut s = Session::new();
        let out = eval(&mut s, "events");
        assert!(out.contains("pending events        5"), "{out}");
        assert!(
            out.contains("next event at     20000 us (horizon 10000 us)"),
            "{out}"
        );
        let out = eval(&mut s, "events --json");
        let v = lottery_obs::json::parse(&out).expect("events --json parses");
        assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("event"));
        assert_eq!(v.get("now_us").and_then(|n| n.as_f64()), Some(10_000.0));
        // The five far-future sleepers sit in the queue untouched: the
        // 10 ms window costs its ten 1 ms-quantum decisions plus one
        // for a job exit ending its quantum early — never a per-sleeper
        // poll.
        assert_eq!(v.get("depth").and_then(|n| n.as_f64()), Some(5.0));
        assert_eq!(v.get("next_us").and_then(|n| n.as_f64()), Some(20_000.0));
        assert_eq!(v.get("horizon_us").and_then(|n| n.as_f64()), Some(10_000.0));
        assert_eq!(v.get("decisions").and_then(|n| n.as_f64()), Some(11.0));
        // The heavily funded 4 ms job finished inside the window.
        assert_eq!(v.get("live_threads").and_then(|n| n.as_f64()), Some(7.0));
    }

    #[test]
    fn par_verb_reports_workers_and_ratio() {
        let mut s = Session::new();
        let out = eval(&mut s, "par 2");
        assert!(out.contains("2 OS workers"), "{out}");
        assert!(out.contains("3:1 funded compute pairs"), "{out}");
        let out = eval(&mut s, "par 2 --json");
        let v = lottery_obs::json::parse(&out).expect("par --json parses");
        assert_eq!(v.get("workers").and_then(|n| n.as_f64()), Some(2.0));
        // 2 s window, 5 ms quantum, both workers busy throughout: 400
        // decisions each, plus one extra on the finite job's worker —
        // its 6 ms job ends a quantum 1 ms early, freeing the CPU off
        // the 5 ms grid.
        assert_eq!(v.get("decisions").and_then(|n| n.as_f64()), Some(801.0));
        // The finite job's funding is destroyed on exit; the four
        // compute threads' 300+300+100+100 base tickets survive.
        assert_eq!(v.get("value").and_then(|n| n.as_f64()), Some(800.0));
        let ratio = v.get("ratio").and_then(|n| n.as_f64()).unwrap();
        assert!((2.0..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cluster_verb_reports_recovered_market() {
        let mut s = Session::new();
        let out = eval(&mut s, "cluster");
        assert!(out.contains("4 nodes (3 reachable)"), "{out}");
        assert!(out.contains("conserved=yes"), "{out}");
        assert!(out.contains("tenant gold grant=2000"), "{out}");
        let out = eval(&mut s, "cluster --json");
        let v = lottery_obs::json::parse(&out).expect("cluster --json parses");
        assert_eq!(v.get("conserved").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(v.get("nodes").and_then(|n| n.as_f64()), Some(4.0));
        assert_eq!(v.get("reachable").and_then(|n| n.as_f64()), Some(3.0));
        assert_eq!(
            v.get("policy").and_then(|p| p.as_str()),
            Some("demand-following")
        );
        let tenants = v.get("tenants").and_then(|t| t.as_array()).unwrap();
        assert_eq!(tenants.len(), 2);
        for t in tenants {
            assert_eq!(t.get("complaint").and_then(|c| c.as_bool()), Some(false));
            assert!(t.get("dominant_share").and_then(|d| d.as_f64()).is_some());
        }
        // The killed node's allocations were reclaimed.
        let allocs = v.get("allocs").and_then(|a| a.as_array()).unwrap();
        for a in allocs {
            if a.get("node").and_then(|n| n.as_f64()) == Some(3.0) {
                assert_eq!(a.get("alloc").and_then(|x| x.as_f64()), Some(0.0), "{out}");
            }
        }
        // A 2-node run on the same verb: smaller market, same invariants.
        let out = eval(&mut s, "cluster 2 --json");
        let v = lottery_obs::json::parse(&out).unwrap();
        assert_eq!(v.get("nodes").and_then(|n| n.as_f64()), Some(2.0));
        assert_eq!(v.get("conserved").and_then(|b| b.as_bool()), Some(true));
    }

    #[test]
    fn replay_verb_surfaces_read_and_parse_errors() {
        let mut s = Session::new();
        assert!(matches!(
            s.eval("replay /nonexistent/capture.jsonl"),
            Err(CtlError::Replay(_))
        ));
        let path = std::env::temp_dir().join("lotteryctl-replay-garbage.jsonl");
        std::fs::write(&path, "not a capture\n").unwrap();
        assert!(matches!(
            s.eval(&format!("replay {}", path.display())),
            Err(CtlError::Replay(_))
        ));
        let _ = std::fs::remove_file(path);
    }
}
