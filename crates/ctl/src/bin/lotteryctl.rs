//! Interactive REPL over [`lottery_ctl::Session`].
//!
//! Reads commands from stdin (one per line; `#` comments allowed), so it
//! works both interactively and with piped scripts.

use std::io::{self, BufRead, Write};

use lottery_ctl::Session;

fn main() -> io::Result<()> {
    let mut session = Session::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let interactive = atty_stdin();
    if interactive {
        println!("lotteryctl — Section 4.7 command interface (try `help`, ^D to exit)");
    }
    loop {
        if interactive {
            print!("> ");
            stdout.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            return Ok(());
        }
        match session.eval(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Minimal TTY detection without a dependency: honor an env override and
/// otherwise assume non-interactive (piped) use prints no prompts.
fn atty_stdin() -> bool {
    std::env::var_os("LOTTERYCTL_INTERACTIVE").is_some()
}
