//! # lottery-ctl
//!
//! The paper's user-level command interface to currencies and tickets
//! (Section 4.7): `mkcur`, `rmcur`, `mktkt`, `rmtkt`, `fund`, `unfund`,
//! `lscur`, `lstkt`, and `fundx` (launch a process with specified
//! funding), plus process management verbs the in-process setting needs.
//!
//! The paper shipped these as setuid binaries against the Mach kernel
//! interface; here [`session::Session`] interprets the same verbs against
//! a [`lottery_core::ledger::Ledger`], and the `lotteryctl` binary wraps
//! it in a REPL:
//!
//! ```console
//! $ cargo run -p lottery-ctl --bin lotteryctl
//! > mkcur alice
//! > mktkt a 1000 base
//! > fund a alice
//! > fundx 200 alice worker
//! > value worker
//! 1000.0
//! ```

pub mod command;
pub mod session;

pub use command::{BrokerAction, Command, ParseError};
pub use session::{CtlError, ObjectRef, Session};
