//! Compensation tickets (Sections 3.4 and 4.5).
//!
//! A client that consumes only a fraction `f` of its allocated quantum
//! would, without correction, receive less than its entitled share of the
//! processor: it competes in the same number of lotteries but banks less
//! CPU per win. The paper's remedy is a *compensation ticket* that inflates
//! the client's value by `1/f` until the client starts its next quantum, so
//! its win frequency rises to exactly offset its shorter runs.
//!
//! In the Mach prototype the compensation ticket is a real ticket valued at
//! `value * (q/used - 1)` base units (the Section 4.5 example grants a
//! 1600-base-unit ticket to a 400-unit thread that used 1/5 of its
//! quantum). Base-unit values are not integers in general, so this library
//! records the equivalent multiplicative factor on the client; the
//! observable lottery behaviour is identical and EXPERIMENTS.md's ablation
//! (`compensation-ablation`) verifies the 1:1 outcome of the paper's
//! example.

use crate::client::ClientId;
use crate::errors::Result;
use crate::ledger::Ledger;

/// Grants a compensation ticket to `client` for having used only
/// `used` of its `quantum` allocation.
///
/// Does nothing when the client consumed its full quantum (or more, which
/// can happen when a workload runs past quantum expiry by one tick). A
/// `used` of zero is clamped to one tick's worth to keep the factor finite;
/// in practice the dispatcher never charges zero time.
pub fn grant(ledger: &mut Ledger, client: ClientId, used: u64, quantum: u64) -> Result<()> {
    debug_assert!(quantum > 0);
    if used >= quantum {
        return clear(ledger, client);
    }
    let used = used.max(1);
    let factor = quantum as f64 / used as f64;
    ledger.set_compensation(client, factor)
}

/// Revokes any compensation when `client` starts its next full quantum.
pub fn clear(ledger: &mut Ledger, client: ClientId) -> Result<()> {
    ledger.set_compensation(client, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Valuator;

    /// Section 4.5's worked example: thread B holds 400 base units and uses
    /// 20 ms of a 100 ms quantum, so it competes with 2000 base units
    /// (equivalently: a compensation ticket worth 1600) until its next
    /// quantum.
    #[test]
    fn section_4_5_example() {
        let mut l = Ledger::new();
        let b = l.create_client("B");
        let t = l.issue_root(l.base(), 400).unwrap();
        l.fund_client(t, b).unwrap();
        l.activate_client(b).unwrap();

        grant(&mut l, b, 20, 100).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(b).unwrap(), 2000.0);
        // The implicit compensation ticket's worth.
        let comp_value = v.client_value(b).unwrap() - v.client_funded_value(b).unwrap();
        assert_eq!(comp_value, 1600.0);

        clear(&mut l, b).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(b).unwrap(), 400.0);
    }

    #[test]
    fn full_quantum_clears_compensation() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        l.set_compensation(c, 3.0).unwrap();
        grant(&mut l, c, 100, 100).unwrap();
        assert_eq!(l.client(c).unwrap().compensation(), 1.0);
    }

    #[test]
    fn overrun_clears_compensation() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        grant(&mut l, c, 150, 100).unwrap();
        assert_eq!(l.client(c).unwrap().compensation(), 1.0);
    }

    #[test]
    fn zero_usage_is_clamped() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        grant(&mut l, c, 0, 100).unwrap();
        let f = l.client(c).unwrap().compensation();
        assert!(f.is_finite());
        assert_eq!(f, 100.0);
    }

    #[test]
    fn factor_is_quantum_over_used() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        grant(&mut l, c, 25, 100).unwrap();
        assert_eq!(l.client(c).unwrap().compensation(), 4.0);
        grant(&mut l, c, 50, 100).unwrap();
        assert_eq!(l.client(c).unwrap().compensation(), 2.0);
    }
}
