//! List-based lottery with the move-to-front heuristic (Section 4.2).
//!
//! The straightforward implementation the paper's prototype uses: draw a
//! winning value, then walk the client list accumulating a running ticket
//! sum until the sum exceeds the winning value (Figure 1). Because clients
//! with many tickets win most often, moving each winner to the front of the
//! list keeps frequently selected clients near the head and substantially
//! shortens the average scan.

use super::{TicketPool, Weight};

/// A list-based lottery pool.
///
/// # Examples
///
/// Figure 1's example lottery: five clients holding 10, 2, 5, 1, and 2
/// tickets; the winning value 15 selects the third client.
///
/// ```
/// use lottery_core::lottery::{list::ListLottery, TicketPool};
///
/// let mut pool = ListLottery::without_move_to_front();
/// for (client, tickets) in [("c1", 10u64), ("c2", 2), ("c3", 5), ("c4", 1), ("c5", 2)] {
///     pool.insert(client, tickets);
/// }
/// assert_eq!(pool.total(), 20);
/// assert_eq!(pool.select(15), Some(&"c3"));
/// ```
#[derive(Debug, Clone)]
pub struct ListLottery<T, W> {
    entries: Vec<(T, W)>,
    total: W,
    move_to_front: bool,
    scans: u64,
    scanned_entries: u64,
}

impl<T, W: Weight> Default for ListLottery<T, W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, W: Weight> ListLottery<T, W> {
    /// Creates an empty pool with the move-to-front heuristic enabled.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            total: W::ZERO,
            move_to_front: true,
            scans: 0,
            scanned_entries: 0,
        }
    }

    /// Creates an empty pool that keeps insertion order on every draw.
    ///
    /// Used by the ablation experiments to quantify what move-to-front buys
    /// (DESIGN.md §4).
    pub fn without_move_to_front() -> Self {
        Self {
            move_to_front: false,
            ..Self::new()
        }
    }

    /// Whether move-to-front is enabled.
    pub fn move_to_front(&self) -> bool {
        self.move_to_front
    }

    /// Average number of entries examined per `select`, for the ablation
    /// benches. Returns `None` before the first selection.
    pub fn mean_scan_length(&self) -> Option<f64> {
        (self.scans > 0).then(|| self.scanned_entries as f64 / self.scans as f64)
    }

    /// Iterates entries in current list order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, W)> {
        self.entries.iter().map(|(t, w)| (t, *w))
    }

    fn recompute_total(&mut self) {
        let mut total = W::ZERO;
        for (_, w) in &self.entries {
            total = total.add(*w);
        }
        self.total = total;
    }
}

impl<T: PartialEq, W: Weight> TicketPool<T, W> for ListLottery<T, W> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn total(&self) -> W {
        self.total
    }

    fn insert(&mut self, item: T, weight: W) {
        if let Some(entry) = self.entries.iter_mut().find(|(t, _)| *t == item) {
            entry.1 = weight;
            self.recompute_total();
            return;
        }
        self.total = self.total.add(weight);
        self.entries.push((item, weight));
    }

    fn remove(&mut self, item: &T) -> Option<W> {
        let pos = self.entries.iter().position(|(t, _)| t == item)?;
        let (_, w) = self.entries.remove(pos);
        // Recompute rather than subtract: repeated f64 subtraction drifts.
        self.recompute_total();
        Some(w)
    }

    fn set_weight(&mut self, item: &T, weight: W) -> bool {
        let Some(entry) = self.entries.iter_mut().find(|(t, _)| t == item) else {
            return false;
        };
        entry.1 = weight;
        self.recompute_total();
        true
    }

    fn select(&mut self, winner: W) -> Option<&T> {
        let mut sum = W::ZERO;
        let mut chosen: Option<usize> = None;
        let mut scanned = 0u64;
        for (i, (_, w)) in self.entries.iter().enumerate() {
            scanned += 1;
            sum = sum.add(*w);
            // The winner owns the first interval whose running sum exceeds
            // the winning value (Figure 1: "Σ > winner?").
            if !w.is_zero() && winner < sum {
                chosen = Some(i);
                break;
            }
        }
        // Floating-point rounding can leave `winner` marginally at or above
        // the accumulated total; fall back to the last positive entry.
        if chosen.is_none() {
            chosen = self.entries.iter().rposition(|(_, w)| !w.is_zero());
        }
        let i = chosen?;
        self.scans += 1;
        self.scanned_entries += scanned;
        if self.move_to_front && i != 0 {
            self.entries[..=i].rotate_right(1);
            return self.entries.first().map(|(t, _)| t);
        }
        self.entries.get(i).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::LotteryError;
    use crate::rng::ParkMiller;

    fn figure1_pool() -> ListLottery<&'static str, u64> {
        let mut pool = ListLottery::without_move_to_front();
        for (client, tickets) in [("c1", 10u64), ("c2", 2), ("c3", 5), ("c4", 1), ("c5", 2)] {
            pool.insert(client, tickets);
        }
        pool
    }

    /// Figure 1: total 20, winning value 15 selects the third client
    /// (running sums 10, 12, 17; 17 > 15).
    #[test]
    fn figure1_example() {
        let mut pool = figure1_pool();
        assert_eq!(pool.total(), 20);
        assert_eq!(pool.select(15), Some(&"c3"));
    }

    #[test]
    fn selection_boundaries() {
        let mut pool = figure1_pool();
        assert_eq!(pool.select(0), Some(&"c1"));
        assert_eq!(pool.select(9), Some(&"c1"));
        assert_eq!(pool.select(10), Some(&"c2"));
        assert_eq!(pool.select(11), Some(&"c2"));
        assert_eq!(pool.select(12), Some(&"c3"));
        assert_eq!(pool.select(17), Some(&"c4"));
        assert_eq!(pool.select(18), Some(&"c5"));
        assert_eq!(pool.select(19), Some(&"c5"));
    }

    #[test]
    fn zero_weight_entries_never_win() {
        let mut pool = ListLottery::new();
        pool.insert("zero", 0u64);
        pool.insert("all", 5u64);
        for w in 0..5 {
            assert_eq!(pool.select(w), Some(&"all"));
        }
    }

    #[test]
    fn empty_draw_fails() {
        let mut pool: ListLottery<&str, u64> = ListLottery::new();
        let mut rng = ParkMiller::new(1);
        assert_eq!(pool.draw(&mut rng), Err(LotteryError::EmptyLottery));
        pool.insert("z", 0);
        assert_eq!(pool.draw(&mut rng), Err(LotteryError::EmptyLottery));
    }

    #[test]
    fn move_to_front_reorders() {
        let mut pool = ListLottery::new();
        pool.insert("a", 1u64);
        pool.insert("b", 1u64);
        pool.insert("c", 98u64);
        assert_eq!(pool.select(99), Some(&"c"));
        let order: Vec<_> = pool.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec!["c", "a", "b"]);
        // Relative order of the displaced prefix is preserved.
    }

    #[test]
    fn move_to_front_shortens_scans_under_skew() {
        let mut mtf = ListLottery::new();
        let mut plain = ListLottery::without_move_to_front();
        // One heavy client at the back of a long list.
        for i in 0..64u64 {
            mtf.insert(i, 1u64);
            plain.insert(i, 1u64);
        }
        mtf.insert(64, 1000u64);
        plain.insert(64, 1000u64);
        let mut rng1 = ParkMiller::new(11);
        let mut rng2 = ParkMiller::new(11);
        for _ in 0..2000 {
            mtf.draw(&mut rng1).unwrap();
            plain.draw(&mut rng2).unwrap();
        }
        let m = mtf.mean_scan_length().unwrap();
        let p = plain.mean_scan_length().unwrap();
        assert!(
            m < p / 2.0,
            "move-to-front should at least halve scans: {m} vs {p}"
        );
    }

    #[test]
    fn insert_existing_replaces_weight() {
        let mut pool = ListLottery::new();
        pool.insert("a", 5u64);
        pool.insert("a", 9u64);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total(), 9);
    }

    #[test]
    fn remove_updates_total() {
        let mut pool = figure1_pool();
        assert_eq!(pool.remove(&"c1"), Some(10));
        assert_eq!(pool.total(), 10);
        assert_eq!(pool.remove(&"c1"), None);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn set_weight_updates_total() {
        let mut pool = figure1_pool();
        assert!(pool.set_weight(&"c2", 8));
        assert_eq!(pool.total(), 26);
        assert!(!pool.set_weight(&"missing", 1));
    }

    #[test]
    fn draws_converge_to_shares() {
        let mut pool = ListLottery::new();
        pool.insert("a", 30u64);
        pool.insert("b", 10u64);
        let mut rng = ParkMiller::new(77);
        let mut wins_a = 0u32;
        let n = 40_000;
        for _ in 0..n {
            if *pool.draw(&mut rng).unwrap() == "a" {
                wins_a += 1;
            }
        }
        let share = f64::from(wins_a) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn f64_pool_draws() {
        let mut pool: ListLottery<u32, f64> = ListLottery::new();
        pool.insert(1, 400.0);
        pool.insert(2, 600.0);
        pool.insert(3, 2000.0);
        let mut rng = ParkMiller::new(5);
        let mut wins = [0u32; 4];
        let n = 30_000;
        for _ in 0..n {
            wins[*pool.draw(&mut rng).unwrap() as usize] += 1;
        }
        let p3 = f64::from(wins[3]) / f64::from(n);
        assert!((p3 - 2.0 / 3.0).abs() < 0.02, "thread4 share {p3}");
    }

    #[test]
    fn f64_top_boundary_falls_back() {
        let mut pool: ListLottery<u32, f64> = ListLottery::new();
        pool.insert(1, 0.1);
        pool.insert(2, 0.2);
        // A winning value numerically at the total must still select.
        let total = pool.total();
        assert_eq!(pool.select(total), Some(&2));
    }
}
