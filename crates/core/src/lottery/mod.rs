//! Lottery selection structures (Sections 2 and 4.2).
//!
//! A lottery draws a uniformly random *winning ticket value* in
//! `[0, total)` and finds the client whose interval of the running ticket
//! sum contains it. Two implementations are provided behind a common
//! [`TicketPool`] abstraction:
//!
//! * [`list::ListLottery`] — the paper's prototype structure: a linear scan
//!   with an optional move-to-front heuristic ("those clients with the
//!   largest number of tickets will be selected most frequently", so MTF
//!   substantially shortens the average search).
//! * [`tree::TreeLottery`] — the paper's suggested optimization for large
//!   client counts: a tree of partial ticket sums with `O(log n)` draws and
//!   updates, suitable as the basis of a distributed lottery scheduler.
//! * [`alias::AliasLottery`] — beyond the paper: an order-preserving
//!   alias-cell table with O(1) expected draws, patched incrementally
//!   through an exact stale overlay so steady-state weight churn never
//!   pays a full O(n) rebuild.
//!
//! The list and tree are generic over the weight type: `u64` for exact
//! ticket counts and `f64` for currency-valued pools (base-unit values are
//! rationals, held as floats as in Section 4.4's prototype). The alias
//! table is `f64`-only — its cell geometry divides the value axis.
//!
//! Tree and alias pools additionally take a pluggable reverse index
//! ([`index::SlotIndex`]): hash-based by default, or a dense arena table
//! ([`index::DenseIndex`]) when keys are arena indices — the schedulers
//! use the dense form so pool maintenance never hashes.

pub mod alias;
pub mod index;
pub mod list;
pub mod tree;

use crate::errors::{LotteryError, Result};
use crate::rng::SchedRng;

/// Weight arithmetic for lottery pools.
///
/// Implemented for `u64` (exact ticket counts) and `f64` (base-unit
/// values). The associated draw routine picks a uniformly distributed
/// winning value below a total.
pub trait Weight: Copy + PartialOrd + core::fmt::Debug {
    /// The additive identity.
    const ZERO: Self;

    /// Saturating/checked addition is not needed: pools bound totals at
    /// construction. Plain addition.
    fn add(self, other: Self) -> Self;

    /// Subtraction; callers guarantee `self >= other` up to rounding.
    fn sub(self, other: Self) -> Self;

    /// Whether this weight contributes nothing to a lottery.
    fn is_zero(self) -> bool;

    /// Draws a uniformly random winning value in `[0, total)`.
    fn draw_below<R: SchedRng + ?Sized>(rng: &mut R, total: Self) -> Self;
}

impl Weight for u64 {
    const ZERO: Self = 0;

    fn add(self, other: Self) -> Self {
        self + other
    }

    fn sub(self, other: Self) -> Self {
        self - other
    }

    fn is_zero(self) -> bool {
        self == 0
    }

    fn draw_below<R: SchedRng + ?Sized>(rng: &mut R, total: Self) -> Self {
        rng.below(total)
    }
}

impl Weight for f64 {
    const ZERO: Self = 0.0;

    fn add(self, other: Self) -> Self {
        self + other
    }

    fn sub(self, other: Self) -> Self {
        // Floating subtraction may produce tiny negative residue; clamp so
        // pool totals never go (spuriously) negative.
        let d = self - other;
        if d < 0.0 {
            0.0
        } else {
            d
        }
    }

    fn is_zero(self) -> bool {
        self <= 0.0
    }

    fn draw_below<R: SchedRng + ?Sized>(rng: &mut R, total: Self) -> Self {
        rng.next_f64() * total
    }
}

/// A pool of weighted entries supporting proportional-share draws.
///
/// `T` identifies a client; entries with zero weight never win.
pub trait TicketPool<T, W: Weight> {
    /// Number of entries (including zero-weighted ones).
    fn len(&self) -> usize;

    /// Whether the pool has no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all weights.
    fn total(&self) -> W;

    /// Inserts an entry; replaces the weight if `item` is already present.
    fn insert(&mut self, item: T, weight: W);

    /// Removes an entry, returning its weight if it was present.
    fn remove(&mut self, item: &T) -> Option<W>;

    /// Updates an entry's weight; returns `false` if absent.
    fn set_weight(&mut self, item: &T, weight: W) -> bool;

    /// Returns the entry owning the winning value `winner ∈ [0, total)`.
    ///
    /// This is the deterministic half of a lottery: the running-sum search
    /// of Figure 1. Use [`TicketPool::draw`] for the full randomized draw.
    fn select(&mut self, winner: W) -> Option<&T>;

    /// Holds a lottery: draws a winning value and selects its owner.
    ///
    /// Fails with [`LotteryError::EmptyLottery`] when the pool is empty or
    /// all weights are zero — the conventional starvation-free guarantee
    /// only covers clients holding tickets (Section 2).
    fn draw<R: SchedRng + ?Sized>(&mut self, rng: &mut R) -> Result<&T> {
        let total = self.total();
        if self.is_empty() || total.is_zero() {
            return Err(LotteryError::EmptyLottery);
        }
        let winner = W::draw_below(rng, total);
        // A winner below the total always has an owner; floating rounding
        // at the extreme top is handled by the implementations, which fall
        // back to the last positive-weight entry.
        self.select(winner).ok_or(LotteryError::EmptyLottery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::ParkMiller;

    #[test]
    fn u64_weight_ops() {
        assert_eq!(5u64.add(3), 8);
        assert_eq!(5u64.sub(3), 2);
        assert!(0u64.is_zero());
        assert!(!1u64.is_zero());
    }

    #[test]
    fn f64_weight_sub_clamps() {
        let a: f64 = 1.0;
        let b: f64 = 1.0 + 1e-16;
        assert_eq!(Weight::sub(a, b), 0.0);
    }

    #[test]
    fn f64_draw_below_in_range() {
        let mut rng = ParkMiller::new(3);
        for _ in 0..1000 {
            let x = <f64 as Weight>::draw_below(&mut rng, 42.0);
            assert!((0.0..42.0).contains(&x));
        }
    }

    #[test]
    fn u64_draw_below_in_range() {
        let mut rng = ParkMiller::new(3);
        for _ in 0..1000 {
            assert!(<u64 as Weight>::draw_below(&mut rng, 42) < 42);
        }
    }
}
