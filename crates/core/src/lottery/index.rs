//! Pluggable item→slot reverse indexes for lottery pools.
//!
//! [`super::tree::TreeLottery`] and [`super::alias::AliasLottery`] keep
//! their entries in a dense `Vec` of slots and need the reverse mapping —
//! *which slot does this item occupy?* — to support keyed updates and
//! swap-removal. The mapping is pluggable through [`SlotIndex`]:
//!
//! * [`HashIndex`] (the default) works for any hashable key — the `&str`
//!   and integer keys of the unit tests and experiments.
//! * [`DenseIndex`] exploits that scheduler keys are already *arena
//!   indices* (thread ids, client handles): a plain `Vec<usize>` keyed by
//!   [`SlotKey::slot_key`], replacing the hash probe on every insert,
//!   remove, and weight update with a single array access. The schedulers'
//!   per-decision pool maintenance is exactly these operations, so the
//!   kernel's dispatch path carries no hashing at all.
//!
//! A dense index trades memory for time: its table spans the *key space*
//! (the arena's high-water mark), not the live population. Arena indices
//! are recycled densely, so the table never outgrows the peak population.

use std::collections::HashMap;
use std::hash::Hash;

use crate::arena::Handle;

/// Reverse index from item to the slot it occupies in a pool.
///
/// Implementations only store the mapping; the pool's item vector remains
/// the source of truth for membership and ordering.
pub trait SlotIndex<T>: Default {
    /// An empty index with room for `capacity` entries.
    fn with_capacity(capacity: usize) -> Self;

    /// The slot `item` occupies, if present.
    fn get(&self, item: &T) -> Option<usize>;

    /// Records that `item` occupies `slot` (inserting or re-homing).
    fn set(&mut self, item: &T, slot: usize);

    /// Forgets `item`, returning the slot it occupied.
    fn remove(&mut self, item: &T) -> Option<usize>;
}

/// Hash-map backed index: works for any `Eq + Hash + Clone` key.
#[derive(Debug, Clone)]
pub struct HashIndex<T> {
    map: HashMap<T, usize>,
}

impl<T> Default for HashIndex<T> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> SlotIndex<T> for HashIndex<T> {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
        }
    }

    fn get(&self, item: &T) -> Option<usize> {
        self.map.get(item).copied()
    }

    fn set(&mut self, item: &T, slot: usize) {
        self.map.insert(item.clone(), slot);
    }

    fn remove(&mut self, item: &T) -> Option<usize> {
        self.map.remove(item)
    }
}

/// Keys that are small dense integers — arena indices, thread ids.
///
/// `slot_key` must be stable for the key's lifetime and densely recycled
/// (an arena's slot index), so a [`DenseIndex`] table stays proportional
/// to the peak population.
pub trait SlotKey {
    /// The dense integer identity of this key.
    fn slot_key(&self) -> usize;
}

impl<T> SlotKey for Handle<T> {
    fn slot_key(&self) -> usize {
        self.index() as usize
    }
}

impl SlotKey for u32 {
    fn slot_key(&self) -> usize {
        *self as usize
    }
}

impl SlotKey for usize {
    fn slot_key(&self) -> usize {
        *self
    }
}

/// Vacant-slot sentinel in a [`DenseIndex`] table.
const VACANT: usize = usize::MAX;

/// Dense vector index over [`SlotKey`] keys: O(1) array lookups with no
/// hashing, sized by the key space's high-water mark.
#[derive(Debug, Clone, Default)]
pub struct DenseIndex {
    slots: Vec<usize>,
}

impl DenseIndex {
    fn slot_at(&self, key: usize) -> Option<usize> {
        match self.slots.get(key) {
            Some(&slot) if slot != VACANT => Some(slot),
            _ => None,
        }
    }
}

impl<T: SlotKey> SlotIndex<T> for DenseIndex {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
        }
    }

    fn get(&self, item: &T) -> Option<usize> {
        self.slot_at(item.slot_key())
    }

    fn set(&mut self, item: &T, slot: usize) {
        let key = item.slot_key();
        if key >= self.slots.len() {
            self.slots.resize(key + 1, VACANT);
        }
        self.slots[key] = slot;
    }

    fn remove(&mut self, item: &T) -> Option<usize> {
        let key = item.slot_key();
        let slot = self.slot_at(key)?;
        self.slots[key] = VACANT;
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_round_trips() {
        let mut idx: HashIndex<&str> = HashIndex::with_capacity(4);
        assert_eq!(idx.get(&"a"), None);
        idx.set(&"a", 3);
        idx.set(&"b", 1);
        assert_eq!(idx.get(&"a"), Some(3));
        idx.set(&"a", 0);
        assert_eq!(idx.get(&"a"), Some(0));
        assert_eq!(idx.remove(&"a"), Some(0));
        assert_eq!(idx.get(&"a"), None);
        assert_eq!(idx.remove(&"a"), None);
        assert_eq!(idx.get(&"b"), Some(1));
    }

    #[test]
    fn dense_index_round_trips() {
        let mut idx = DenseIndex::default();
        assert_eq!(SlotIndex::<u32>::get(&idx, &7), None);
        idx.set(&7u32, 2);
        idx.set(&0u32, 5);
        assert_eq!(idx.get(&7u32), Some(2));
        assert_eq!(idx.get(&0u32), Some(5));
        assert_eq!(idx.get(&3u32), None, "hole between occupied keys");
        idx.set(&7u32, 9);
        assert_eq!(idx.get(&7u32), Some(9));
        assert_eq!(idx.remove(&7u32), Some(9));
        assert_eq!(idx.get(&7u32), None);
        assert_eq!(idx.remove(&7u32), None);
    }

    #[test]
    fn dense_index_grows_on_demand() {
        let mut idx: DenseIndex = SlotIndex::<usize>::with_capacity(0);
        idx.set(&1000usize, 1);
        assert_eq!(idx.get(&1000usize), Some(1));
        assert_eq!(idx.get(&999usize), None);
    }
}
