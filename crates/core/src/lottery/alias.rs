//! Alias-cell lottery: O(1) expected draws over a snapshot prefix table,
//! patched incrementally through an exact stale overlay.
//!
//! Walker's classic alias method reaches O(1) draws by scrambling client
//! intervals across table cells, which makes the winner a different
//! function of the winning value than the paper's Figure 1 list walk — so
//! it can never reproduce the list's winner sequence bit for bit. This
//! structure keeps the *cell* idea but preserves interval order (the
//! "cutpoint" variant of the alias method): a rebuild snapshots the
//! left-to-right prefix sums of every slot and lays a guide table of
//! equal-width cells over the value axis, each cell naming the first slot
//! whose snapshot interval intersects it. A draw lands in its cell by one
//! division and walks forward an expected O(1 + n/K) slots — O(1) for
//! K ≥ n cells.
//!
//! Weights mutate between rebuilds (compensation grants and revocations,
//! funding changes, dispatch churn), so draws consult an **exact stale
//! overlay** first: the sorted set of slots whose current weight differs
//! from the snapshot, with cumulative new/old sums. A draw binary-searches
//! the overlay (O(log s) for s stale slots), wins a stale slot directly,
//! or translates the winning value into snapshot coordinates and finishes
//! with the O(1) cell lookup. Both paths compare exactly the same running
//! sums as the list walk, so winners are bit-identical whenever client
//! values are exactly representable (integral base units).
//!
//! Staleness is *semantic*: a slot whose weight returns to its snapshot
//! value (a compensation ticket revoked, a swap-removed equal-weight
//! neighbour) drops out of the overlay, so steady-state dispatch over a
//! uniform population keeps the overlay empty and draws purely O(1).
//! Rebuild policy follows power-of-two weight buckets: only slots whose
//! weight *crossed a bucket boundary* (≥ 2x drift, which stretches cell
//! geometry) count toward the stale fraction; a full rebuild triggers when
//! crossings exceed 1/8 of the population or the overlay outgrows
//! O(√n), amortized O(1) per mutation by a rebuild-spacing gate.

use std::time::Instant;

use super::index::{HashIndex, SlotIndex};
use super::TicketPool;

/// What one full rebuild cost, for the probe bus and `lotteryctl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildStats {
    /// Entries snapshotted.
    pub clients: u32,
    /// Stale overlay entries folded in.
    pub stale: u32,
    /// Wall-clock rebuild cost in nanoseconds.
    pub rebuild_ns: u64,
}

/// Power-of-two weight bucket: the IEEE-754 exponent, with all
/// non-positive weights in a sentinel bucket. A weight changes bucket only
/// when it at least doubles or halves.
fn bucket(w: f64) -> i32 {
    if w <= 0.0 {
        i32::MIN
    } else {
        ((w.to_bits() >> 52) & 0x7ff) as i32
    }
}

/// One guide-table cell: the first slot whose snapshot interval
/// intersects the cell, with that slot's interval bounds copied in
/// (bit-for-bit from `snap_prefix`), so the common draw resolves from a
/// single guide access without touching the prefix array — one fewer
/// dependent cache miss on the hot path at large populations.
#[derive(Debug, Clone, Copy)]
#[repr(align(32))] // 24 data bytes padded to 32: a cell never straddles a cache line.
struct Cell {
    /// First slot whose snapshot interval intersects the cell.
    slot: u32,
    /// `snap_prefix[slot]`: the slot's interval start.
    lo: f64,
    /// `snap_prefix[slot + 1]`: the slot's interval end.
    hi: f64,
}

/// An alias-cell lottery pool over `f64` weights.
///
/// Slot order mirrors the caller's scan order (the schedulers' ready
/// queues): inserts append, removals swap-remove — the same motion
/// [`super::tree::TreeLottery`] applies — so selections agree with the
/// list walk entry for entry.
#[derive(Debug, Clone)]
pub struct AliasLottery<T, I = HashIndex<T>> {
    /// Current entries in slot order (always up to date).
    items: Vec<(T, f64)>,
    /// Item -> slot (pluggable: hash map or dense arena table).
    index: I,
    /// Exact running total of current weights.
    total: f64,

    /// Snapshot weight per slot at the last rebuild.
    snap_w: Vec<f64>,
    /// Left-to-right prefix sums of `snap_w`; `snap_prefix[i]` is the
    /// value-axis start of slot `i`'s snapshot interval.
    snap_prefix: Vec<f64>,
    /// Guide table: cell `c` names the first slot whose snapshot interval
    /// intersects `[c·cell_width, (c+1)·cell_width)`.
    cells: Vec<Cell>,
    cell_width: f64,

    /// Stale overlay: slots whose current weight differs (bitwise) from
    /// the snapshot, sorted ascending. Parallel arrays carry the current
    /// ("new") and snapshot ("old") weights, the bucket-crossing flag, and
    /// running sums (`len s + 1`, leading zero).
    stale_slots: Vec<u32>,
    stale_new: Vec<f64>,
    stale_old: Vec<f64>,
    stale_crossed: Vec<bool>,
    stale_new_cum: Vec<f64>,
    stale_old_cum: Vec<f64>,
    /// Stale slots whose weight crossed a power-of-two bucket boundary.
    crossed: u32,

    /// Mutations since the last rebuild (the rebuild-spacing gate).
    ops_since_rebuild: u64,
    rebuilds: u64,
    /// Rebuild reports not yet drained by the caller (bounded).
    pending: Vec<RebuildStats>,
    /// Search effort of the last `select` (overlay probes + cell scan).
    last_probes: u32,
}

impl<T, I: SlotIndex<T>> Default for AliasLottery<T, I> {
    fn default() -> Self {
        Self::with_index(0)
    }
}

impl<T: Eq + std::hash::Hash + Clone> AliasLottery<T> {
    /// Creates an empty pool with the default hash-based index.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty pool with room for `capacity` entries, so bulk
    /// population does not reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_index(capacity)
    }
}

impl<T, I: SlotIndex<T>> AliasLottery<T, I> {
    /// Creates an empty pool over a chosen reverse-index type, with room
    /// for `capacity` entries (see [`super::index`]).
    pub fn with_index(capacity: usize) -> Self {
        Self {
            items: Vec::with_capacity(capacity),
            index: I::with_capacity(capacity),
            total: 0.0,
            snap_w: Vec::new(),
            snap_prefix: vec![0.0],
            cells: Vec::new(),
            cell_width: 0.0,
            stale_slots: Vec::new(),
            stale_new: Vec::new(),
            stale_old: Vec::new(),
            stale_crossed: Vec::new(),
            stale_new_cum: vec![0.0],
            stale_old_cum: vec![0.0],
            crossed: 0,
            ops_since_rebuild: 0,
            rebuilds: 0,
            pending: Vec::new(),
            last_probes: 0,
        }
    }

    /// Stale overlay depth (slots differing from the snapshot).
    pub fn stale_len(&self) -> usize {
        self.stale_slots.len()
    }

    /// Full rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Search effort of the last selection: overlay binary-search probes
    /// plus guide-cell scan steps.
    pub fn last_probes(&self) -> u32 {
        self.last_probes
    }

    /// Drains the rebuild reports accumulated since the last drain (for
    /// probe-event emission).
    pub fn take_rebuild_events(&mut self) -> Vec<RebuildStats> {
        std::mem::take(&mut self.pending)
    }

    /// Iterates entries in current slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> {
        self.items.iter().map(|(t, w)| (t, *w))
    }

    fn snap_len(&self) -> usize {
        self.snap_w.len()
    }

    /// Snapshot weight of `slot` (zero beyond the snapshot).
    fn snap_weight(&self, slot: usize) -> f64 {
        self.snap_w.get(slot).copied().unwrap_or(0.0)
    }

    /// Value-axis start of `slot` in snapshot coordinates.
    fn snap_start(&self, slot: usize) -> f64 {
        self.snap_prefix[slot.min(self.snap_len())]
    }

    /// Value-axis start of the `k`-th stale slot in *current* coordinates:
    /// its snapshot start shifted by the net new−old mass of the stale
    /// slots before it. Exact for integral weights.
    fn stale_start(&self, k: usize) -> f64 {
        self.snap_start(self.stale_slots[k] as usize) + self.stale_new_cum[k]
            - self.stale_old_cum[k]
    }

    /// Records that `slot`'s current weight is `new_w`, inserting,
    /// updating, or retiring its overlay entry. `new_w` is 0 for slots the
    /// pool no longer occupies (truncated snapshot tail).
    fn patch(&mut self, slot: usize, new_w: f64) {
        let old_w = self.snap_weight(slot);
        let pos = self.stale_slots.binary_search(&(slot as u32));
        if new_w.to_bits() == old_w.to_bits() {
            // Back at its snapshot value: semantically clean again.
            if let Ok(pos) = pos {
                self.crossed -= u32::from(self.stale_crossed[pos]);
                self.stale_slots.remove(pos);
                self.stale_new.remove(pos);
                self.stale_old.remove(pos);
                self.stale_crossed.remove(pos);
                self.recum(pos);
            }
            return;
        }
        let crossed = bucket(new_w) != bucket(old_w);
        match pos {
            Ok(pos) => {
                self.crossed -= u32::from(self.stale_crossed[pos]);
                self.crossed += u32::from(crossed);
                self.stale_crossed[pos] = crossed;
                self.stale_new[pos] = new_w;
                self.recum(pos);
            }
            Err(pos) => {
                self.stale_slots.insert(pos, slot as u32);
                self.stale_new.insert(pos, new_w);
                self.stale_old.insert(pos, old_w);
                self.stale_crossed.insert(pos, crossed);
                self.crossed += u32::from(crossed);
                self.recum(pos);
            }
        }
    }

    /// Recomputes the overlay's running sums from entry `from` on.
    fn recum(&mut self, from: usize) {
        self.stale_new_cum.truncate(from + 1);
        self.stale_old_cum.truncate(from + 1);
        for k in from..self.stale_slots.len() {
            let n = self.stale_new_cum[k] + self.stale_new[k];
            let o = self.stale_old_cum[k] + self.stale_old[k];
            self.stale_new_cum.push(n);
            self.stale_old_cum.push(o);
        }
    }

    /// Overlay growth bound before a forced rebuild: O(√n), balancing
    /// per-mutation overlay maintenance against amortized rebuild cost.
    fn stale_cap(&self) -> usize {
        64usize.max(8 * (self.items.len() as f64).sqrt() as usize)
    }

    /// Rebuilds when bucket crossings exceed 1/8 of the population or the
    /// overlay outgrows its cap — but no sooner than `max(16, len/4)`
    /// mutations after the previous rebuild, which keeps bulk loading
    /// amortized O(1) per insert.
    fn maybe_rebuild(&mut self) {
        self.ops_since_rebuild += 1;
        let n = self.items.len().max(1);
        let due = (self.crossed as usize) * 8 > n || self.stale_slots.len() > self.stale_cap();
        let spaced = self.ops_since_rebuild >= 16.max(n as u64 / 4);
        if due && spaced {
            self.rebuild();
        }
    }

    /// Snapshots the current weights, rebuilds the guide table, and empties
    /// the overlay. Also re-derives the running total exactly, bounding any
    /// floating-point drift from incremental maintenance.
    pub fn rebuild(&mut self) {
        let start = Instant::now();
        let stale = self.stale_slots.len() as u32;
        let n = self.items.len();
        self.snap_w.clear();
        self.snap_w.extend(self.items.iter().map(|(_, w)| *w));
        self.snap_prefix.clear();
        self.snap_prefix.reserve(n + 1);
        self.snap_prefix.push(0.0);
        let mut sum = 0.0;
        for &w in &self.snap_w {
            sum += w;
            self.snap_prefix.push(sum);
        }
        self.total = sum;
        self.stale_slots.clear();
        self.stale_new.clear();
        self.stale_old.clear();
        self.stale_crossed.clear();
        self.stale_new_cum.clear();
        self.stale_new_cum.push(0.0);
        self.stale_old_cum.clear();
        self.stale_old_cum.push(0.0);
        self.crossed = 0;
        self.ops_since_rebuild = 0;
        if sum > 0.0 {
            let k = n.next_power_of_two();
            self.cell_width = sum / k as f64;
            self.cells.clear();
            self.cells.reserve(k);
            let mut slot = 0usize;
            for c in 0..k {
                let bound = c as f64 * self.cell_width;
                while slot < n && self.snap_prefix[slot + 1] <= bound {
                    slot += 1;
                }
                self.cells.push(Cell {
                    slot: slot as u32,
                    lo: self.snap_prefix[slot],
                    hi: self.snap_prefix[slot + 1],
                });
            }
        } else {
            self.cells.clear();
            self.cell_width = 0.0;
        }
        self.rebuilds += 1;
        let stats = RebuildStats {
            clients: n as u32,
            stale,
            rebuild_ns: start.elapsed().as_nanos() as u64,
        };
        // Bounded: callers that never drain (plain data-structure use)
        // keep only the most recent reports.
        if self.pending.len() >= 64 {
            self.pending.remove(0);
        }
        self.pending.push(stats);
    }

    /// The guide-cell search in snapshot coordinates: the first slot whose
    /// snapshot interval owns `x_snap`. The cell only accelerates the
    /// start; forward/backward correction makes the result exact whatever
    /// the cell geometry, so cells stretched by in-bucket weight drift
    /// cost extra steps, never wrong answers.
    fn guide(&mut self, x_snap: f64) -> Option<usize> {
        let n = self.snap_len();
        let snap_total = self.snap_prefix[n];
        if !(0.0..snap_total).contains(&x_snap) || self.cells.is_empty() {
            return None;
        }
        let c = ((x_snap / self.cell_width) as usize).min(self.cells.len() - 1);
        let cell = self.cells[c];
        let mut slot = cell.slot as usize;
        // Fast path: the winning value lies inside the cell's first
        // slot's own interval. The bounds are bit-copies of the prefix
        // sums, so this is the same comparison the scans below make.
        if cell.lo <= x_snap && x_snap < cell.hi {
            return Some(slot);
        }
        while slot > 0 && self.snap_prefix[slot] > x_snap {
            slot -= 1;
            self.last_probes += 1;
        }
        while slot < n && self.snap_prefix[slot + 1] <= x_snap {
            slot += 1;
            self.last_probes += 1;
        }
        (slot < n).then_some(slot)
    }
}

impl<T: Copy, I: SlotIndex<T>> TicketPool<T, f64> for AliasLottery<T, I> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn total(&self) -> f64 {
        self.total
    }

    fn insert(&mut self, item: T, weight: f64) {
        if self.index.get(&item).is_some() {
            self.set_weight(&item, weight);
            return;
        }
        let slot = self.items.len();
        self.items.push((item, weight));
        self.index.set(&item, slot);
        self.total += weight;
        self.patch(slot, weight);
        self.maybe_rebuild();
    }

    fn remove(&mut self, item: &T) -> Option<f64> {
        let slot = self.index.remove(item)?;
        let (_, weight) = self.items.swap_remove(slot);
        self.total -= weight;
        let end = self.items.len();
        if slot < end {
            // The displaced last entry now occupies `slot` — the same
            // swap-remove motion the ready queues and the tree apply.
            let (moved, moved_w) = self.items[slot];
            self.index.set(&moved, slot);
            self.patch(slot, moved_w);
        }
        // The vacated tail slot holds nothing; against a snapshot that
        // still covers it, that is a weight of zero.
        self.patch(end, 0.0);
        self.maybe_rebuild();
        Some(weight)
    }

    fn set_weight(&mut self, item: &T, weight: f64) -> bool {
        let Some(slot) = self.index.get(item) else {
            return false;
        };
        let prev = self.items[slot].1;
        self.items[slot].1 = weight;
        self.total = self.total - prev + weight;
        self.patch(slot, weight);
        self.maybe_rebuild();
        true
    }

    /// Figure 1's running-sum search, in O(log s + 1) expected: the stale
    /// overlay locates the winning value among stale intervals exactly;
    /// clean regions translate to snapshot coordinates (exactly, for
    /// integral weights) and finish with the O(1) cell lookup.
    fn select(&mut self, winner: f64) -> Option<&T> {
        self.last_probes = 1;
        let s = self.stale_slots.len();
        // Largest k with stale_start(k) <= winner (monotone in k).
        let (mut lo, mut hi) = (0usize, s);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.last_probes += 1;
            if self.stale_start(mid) <= winner {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let x_snap = if lo == 0 {
            // Before the first stale slot: current and snapshot
            // coordinates agree.
            winner
        } else {
            let k = lo - 1;
            if winner < self.stale_start(k) + self.stale_new[k] {
                // The winning value lands inside a stale slot's current
                // interval: that slot wins outright.
                let slot = self.stale_slots[k] as usize;
                return self.items.get(slot).map(|(t, _)| t);
            }
            // A clean run after stale slot k: strip the net new−old mass
            // of every stale slot at or before it. Both cumulative sums
            // are exact integers in the exact regime, and subtracting an
            // integer from an f64 of larger magnitude is exact, so this
            // translation preserves every comparison the list walk makes.
            winner - (self.stale_new_cum[lo] - self.stale_old_cum[lo])
        };
        if let Some(slot) = self.guide(x_snap) {
            if slot < self.items.len() {
                return self.items.get(slot).map(|(t, _)| t);
            }
        }
        // Floating-point top boundary (mirrors the tree's step-back): fall
        // back to the last slot with positive current weight.
        self.items
            .iter()
            .rposition(|(_, w)| *w > 0.0)
            .and_then(|i| self.items.get(i).map(|(t, _)| t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lottery::list::ListLottery;
    use crate::rng::{ParkMiller, SchedRng};

    /// Reference: the list walk's winner for integral weights.
    fn list_winner(weights: &[f64], x: f64) -> Option<usize> {
        let mut sum = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            sum += w;
            if w > 0.0 && x < sum {
                return Some(i);
            }
        }
        weights.iter().rposition(|&w| w > 0.0)
    }

    #[test]
    fn figure1_example() {
        let mut pool = AliasLottery::new();
        for (client, tickets) in [
            ("c1", 10.0),
            ("c2", 2.0),
            ("c3", 5.0),
            ("c4", 1.0),
            ("c5", 2.0),
        ] {
            pool.insert(client, tickets);
        }
        assert_eq!(pool.total(), 20.0);
        assert_eq!(pool.select(15.0), Some(&"c3"));
    }

    #[test]
    fn selection_boundaries_match_list() {
        let weights = [10.0, 2.0, 5.0, 1.0, 2.0];
        let mut pool = AliasLottery::new();
        for (i, &w) in weights.iter().enumerate() {
            pool.insert(i, w);
        }
        pool.rebuild();
        for x in 0..20 {
            let x = x as f64;
            assert_eq!(
                pool.select(x).copied(),
                list_winner(&weights, x),
                "winning value {x}"
            );
        }
    }

    #[test]
    fn zero_weight_entries_never_win() {
        let mut pool = AliasLottery::new();
        pool.insert("zero", 0.0);
        pool.insert("all", 5.0);
        pool.rebuild();
        for x in 0..5 {
            assert_eq!(pool.select(x as f64), Some(&"all"));
        }
    }

    #[test]
    fn stale_overlay_patches_exactly() {
        // Snapshot [10, 2, 5, 1, 2], then mutate slots 1 and 3 without a
        // rebuild: every winning value must still match the list walk over
        // the *current* weights.
        let mut pool = AliasLottery::new();
        let mut weights = [10.0, 2.0, 5.0, 1.0, 2.0];
        for (i, &w) in weights.iter().enumerate() {
            pool.insert(i, w);
        }
        pool.rebuild();
        let rebuilds = pool.rebuilds();
        pool.set_weight(&1, 6.0);
        pool.set_weight(&3, 0.0);
        weights[1] = 6.0;
        weights[3] = 0.0;
        assert_eq!(pool.rebuilds(), rebuilds, "patches must not rebuild");
        assert!(pool.stale_len() >= 1);
        let total: f64 = weights.iter().sum();
        assert_eq!(pool.total(), total);
        for x in 0..(total as u64) {
            let x = x as f64;
            assert_eq!(
                pool.select(x).copied(),
                list_winner(&weights, x),
                "winning value {x} with stale overlay"
            );
        }
    }

    #[test]
    fn overlay_retires_when_weight_returns() {
        let mut pool = AliasLottery::new();
        for i in 0..8 {
            pool.insert(i, 100.0);
        }
        pool.rebuild();
        pool.set_weight(&3, 200.0);
        assert_eq!(pool.stale_len(), 1);
        pool.set_weight(&3, 100.0);
        assert_eq!(pool.stale_len(), 0, "snapshot value retires the entry");
    }

    #[test]
    fn swap_remove_mirrors_ready_queue_order() {
        // Remove from the middle: the last entry moves into the hole, as
        // in the schedulers' ready queues; selection follows the new order.
        let mut pool = AliasLottery::new();
        let weights = [10.0, 2.0, 5.0, 1.0, 2.0];
        for (i, &w) in weights.iter().enumerate() {
            pool.insert(i, w);
        }
        pool.rebuild();
        assert_eq!(pool.remove(&1), Some(2.0));
        // Order is now [0:10, 4:2, 2:5, 3:1].
        let current = [10.0, 2.0, 5.0, 1.0];
        let ids = [0, 4, 2, 3];
        assert_eq!(pool.total(), 18.0);
        for x in 0..18 {
            let x = x as f64;
            let expect = list_winner(&current, x).map(|i| ids[i]);
            assert_eq!(pool.select(x).copied(), expect, "winning value {x}");
        }
        assert_eq!(pool.remove(&1), None);
    }

    #[test]
    fn agrees_with_list_under_random_churn() {
        // Random integral weights, random point mutations, removals, and
        // re-inserts; every few steps compare selection across the whole
        // value axis against a parallel list pool.
        let mut rng = ParkMiller::new(20_260_807);
        let mut alias: AliasLottery<u32> = AliasLottery::new();
        let mut live: Vec<u32> = Vec::new();
        let mut next_id = 0u32;
        for step in 0..3000u32 {
            let op = rng.below(4);
            if live.is_empty() || op == 0 {
                let w = rng.below(50) as f64;
                alias.insert(next_id, w);
                // Mirror slot order: the list pool has no swap-remove, so
                // rebuild it from the alias pool's slot order below.
                live.push(next_id);
                next_id += 1;
            } else if op == 1 {
                let victim = live[rng.below(live.len() as u64) as usize];
                alias.remove(&victim);
                live.retain(|&t| t != victim);
            } else {
                let target = live[rng.below(live.len() as u64) as usize];
                let w = rng.below(50) as f64;
                alias.set_weight(&target, w);
            }
            if step % 7 == 0 {
                // Reference pool in the alias pool's current slot order.
                let mut list: ListLottery<u32, f64> = ListLottery::without_move_to_front();
                let weights: Vec<f64> = alias.iter().map(|(_, w)| w).collect();
                for (t, w) in alias.iter() {
                    list.insert(*t, w);
                }
                let total: f64 = weights.iter().sum();
                assert_eq!(alias.total(), total, "step {step}");
                let probes = (total as u64).min(200);
                for p in 0..=probes {
                    let x = if probes == 0 {
                        0.0
                    } else {
                        ((p * (total as u64).max(1)) / (probes.max(1) + 1)) as f64
                    };
                    if x >= total {
                        continue;
                    }
                    assert_eq!(
                        alias.select(x).copied(),
                        list.select(x).copied(),
                        "step {step}, winning value {x}"
                    );
                }
            }
        }
        assert!(alias.rebuilds() > 0, "churn never triggered a rebuild");
    }

    #[test]
    fn draws_converge_to_shares() {
        let mut pool = AliasLottery::new();
        pool.insert("a", 30.0);
        pool.insert("b", 10.0);
        pool.rebuild();
        let mut rng = ParkMiller::new(77);
        let mut wins_a = 0u32;
        let n = 40_000;
        for _ in 0..n {
            if *pool.draw(&mut rng).unwrap() == "a" {
                wins_a += 1;
            }
        }
        let share = f64::from(wins_a) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn uniform_dispatch_churn_keeps_overlay_empty() {
        // The steady state the million-client bench exercises: equal
        // weights, every pick swap-removes the winner and re-appends it.
        // Equal weights mean every swap lands on its snapshot value, so
        // the overlay stays empty and draws never leave the O(1) path.
        let mut pool = AliasLottery::new();
        for i in 0..256u32 {
            pool.insert(i, 100.0);
        }
        pool.rebuild();
        let rebuilds = pool.rebuilds();
        let mut rng = ParkMiller::new(9);
        for _ in 0..2000 {
            let winner = *pool.draw(&mut rng).unwrap();
            pool.remove(&winner);
            assert!(pool.stale_len() <= 1, "overlay grew under uniform churn");
            pool.insert(winner, 100.0);
            assert_eq!(pool.stale_len(), 0);
        }
        assert_eq!(pool.rebuilds(), rebuilds, "uniform churn forced a rebuild");
    }

    #[test]
    fn bucket_crossings_trigger_threshold_rebuild() {
        let mut pool = AliasLottery::new();
        for i in 0..256u32 {
            pool.insert(i, 100.0);
        }
        pool.rebuild();
        pool.take_rebuild_events(); // discard build-phase reports
        let before = pool.rebuilds();
        // Doubling crosses a power-of-two bucket; past 1/8 of the
        // population (and the spacing gate) the pool must rebuild.
        for i in 0..128u32 {
            pool.set_weight(&i, 200.0);
        }
        assert!(pool.rebuilds() > before, "crossings never forced a rebuild");
        assert!(pool.stale_len() < 128, "rebuild should fold the overlay in");
        let events = pool.take_rebuild_events();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.clients == 256));
        assert!(pool.take_rebuild_events().is_empty());
    }

    #[test]
    fn in_bucket_drift_stays_incremental() {
        let mut pool = AliasLottery::new();
        for i in 0..256u32 {
            pool.insert(i, 100.0);
        }
        pool.rebuild();
        let before = pool.rebuilds();
        // +10% stays inside the weight's power-of-two bucket: exact via
        // the overlay, never counted toward the rebuild threshold (the
        // count stays under the O(√n) overlay cap).
        for i in 0..100u32 {
            pool.set_weight(&i, 110.0);
        }
        assert_eq!(pool.rebuilds(), before, "in-bucket drift forced a rebuild");
        assert_eq!(pool.stale_len(), 100);
        // Still exact: slot 0 now owns [0, 110).
        assert_eq!(pool.select(109.0), Some(&0));
        assert_eq!(pool.select(110.0), Some(&1));
    }

    #[test]
    fn empty_draw_fails() {
        use crate::errors::LotteryError;
        let mut pool: AliasLottery<&str> = AliasLottery::new();
        let mut rng = ParkMiller::new(1);
        assert_eq!(pool.draw(&mut rng), Err(LotteryError::EmptyLottery));
        pool.insert("z", 0.0);
        assert_eq!(pool.draw(&mut rng), Err(LotteryError::EmptyLottery));
    }

    #[test]
    fn insert_existing_replaces_weight() {
        let mut pool = AliasLottery::new();
        pool.insert("a", 5.0);
        pool.insert("a", 9.0);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total(), 9.0);
    }

    #[test]
    fn top_boundary_falls_back_to_last_positive() {
        let mut pool = AliasLottery::new();
        pool.insert(1, 0.1);
        pool.insert(2, 0.2);
        let total = pool.total();
        assert_eq!(pool.select(total), Some(&2));
    }

    #[test]
    fn probes_stay_flat_as_population_grows() {
        // The O(1) claim, structurally: mean guide probes per draw must
        // not grow with n (the partial-sum tree's depth would).
        let mean_probes = |n: u32| -> f64 {
            let mut pool = AliasLottery::new();
            for i in 0..n {
                pool.insert(i, 100.0);
            }
            pool.rebuild();
            let mut rng = ParkMiller::new(123);
            let mut probes = 0u64;
            let draws = 4000;
            for _ in 0..draws {
                pool.draw(&mut rng).unwrap();
                probes += u64::from(pool.last_probes());
            }
            probes as f64 / f64::from(draws)
        };
        let small = mean_probes(128);
        let large = mean_probes(16_384);
        assert!(
            large < small + 1.0,
            "probe count grew with population: {small} -> {large}"
        );
    }
}
